//===- parmonc/lint/Cfg.h - Per-function control-flow graphs --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third analysis stage of the mclint pipeline: per-function
/// control-flow graphs built directly over the token stream, between the
/// Lexer/Index stages and the rules. The flow-sensitive rules (R11-R13)
/// run dataflow fixed points over these graphs; see Dataflow.h.
///
/// The builder is a structured mini-parser, not a compiler front end. It
/// recognizes function definitions heuristically (identifier + balanced
/// parameter list + body brace, the same shape the project index uses),
/// then parses the body into basic blocks connected by edges for if/else,
/// while, do-while, for, switch (including case fallthrough), early
/// returns, break/continue and try/catch. Everything it cannot model
/// soundly — goto, preprocessor conditionals inside the body — sets a
/// conservative flag instead of guessing, and the flow rules skip such
/// functions entirely: a CFG can only ever cost a missed finding, never a
/// false one.
///
/// Statements keep their token range in the file's token stream plus the
/// physical line/column of their first token, so dataflow findings can
/// carry step-by-step SARIF code flows that point at real source
/// locations.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_CFG_H
#define PARMONC_LINT_CFG_H

#include "parmonc/lint/Lexer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parmonc {
namespace lint {

/// What role a statement plays in the graph; the dataflow transfer
/// functions use this to interpret the token range.
enum class StmtKind : uint8_t {
  Plain,     ///< Expression/declaration statement ending in ';'.
  Condition, ///< An if/while/switch head: `kw ( ... )`.
  LoopHeader,///< A for head: `for ( ... )`, condition truth unknown.
  CaseLabel, ///< `case X:` / `default:` inside a switch body.
  Return,    ///< `return ...;` — the block edges to the exit block.
};

/// One statement inside a function body.
struct CfgStatement {
  StmtKind Kind = StmtKind::Plain;
  /// Token range [TokenBegin, TokenEnd) in the file's token stream,
  /// comments included (clients skip them).
  uint32_t TokenBegin = 0;
  uint32_t TokenEnd = 0;
  /// 0-based physical line/column of the first token.
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// A basic block: a straight-line run of statements plus successor edges.
struct CfgBlock {
  std::vector<uint32_t> Statements; ///< Indices into FunctionCfg::Statements.
  std::vector<uint32_t> Successors; ///< Indices into FunctionCfg::Blocks.
};

/// The control-flow graph of one function definition.
struct FunctionCfg {
  std::string Name;          ///< The defined function's (unqualified) name.
  uint32_t NameLine = 0;     ///< 0-based line of the name token.
  uint32_t BodyBeginToken = 0; ///< Token index of the opening '{'.
  uint32_t BodyEndToken = 0;   ///< One past the matching '}'.
  uint32_t BodyFirstLine = 0;  ///< 0-based line of the opening '{'.
  uint32_t BodyLastLine = 0;   ///< 0-based line of the closing '}'.
  std::vector<CfgStatement> Statements;
  std::vector<CfgBlock> Blocks;
  uint32_t Entry = 0; ///< Index of the entry block.
  uint32_t Exit = 0;  ///< Index of the single synthetic exit block (empty).
  /// The body uses goto or a label the parser cannot model.
  bool HasGoto = false;
  /// The body contains preprocessor directives; both arms of an #if would
  /// appear as straight-line code, so flow analysis would be unsound.
  bool HasDirectives = false;
  /// True when the flow rules may analyze this function.
  bool analyzable() const { return !HasGoto && !HasDirectives; }
};

/// Builds a CFG for every function definition found in \p Tokens. Function
/// bodies never nest (local lambdas stay inside their enclosing
/// statement), so the result is a flat, source-ordered list.
std::vector<FunctionCfg> buildFunctionCfgs(const std::vector<Token> &Tokens);

/// Reverse postorder over the blocks reachable from Entry — the iteration
/// order under which a forward fixed point converges fastest.
std::vector<uint32_t> reversePostorder(const FunctionCfg &Cfg);

/// Shortest successor path From -> To (inclusive of both), or empty when
/// unreachable. Used to reconstruct one concrete witness path for SARIF
/// code flows.
std::vector<uint32_t> shortestBlockPath(const FunctionCfg &Cfg, uint32_t From,
                                        uint32_t To);

/// A stable fingerprint of the graph shapes in \p Cfgs (function names,
/// block/statement counts, edge lists). Stored in the per-file facts so
/// the incremental cache key covers the CFG stage: any change to the
/// builder that alters a graph invalidates cached dataflow diagnostics
/// through the config stamp, and the shape crc makes drift observable per
/// file.
uint32_t cfgShapeCrc(const std::vector<FunctionCfg> &Cfgs);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_CFG_H
