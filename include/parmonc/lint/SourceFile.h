//===- parmonc/lint/SourceFile.h - Lexed view of one source file ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight lexical model of a C++ source file for the mclint rules.
/// The file is split into lines twice: the raw text, and a "scrubbed" copy
/// in which comments, string literals and character literals are blanked
/// out (replaced by spaces, preserving column positions). Rules match on
/// the scrubbed text so that `std::thread` in a comment or a string never
/// triggers, while preprocessor-oriented checks (include hygiene, header
/// guards) read the raw lines.
///
/// Waivers: a comment containing `mclint: allow(R3)` suppresses the named
/// rule(s) on that line — or on the next line when the comment stands
/// alone — and `mclint: allow-file(R3)` suppresses them for the whole
/// file. Waivers are the escape hatch for reviewed exceptions (e.g. the
/// engine-internal atomics in core/Runner.cpp) and are themselves grep-able.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_SOURCEFILE_H
#define PARMONC_LINT_SOURCEFILE_H

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// One source file, lexed for rule matching.
class SourceFile {
public:
  /// Builds the lexed view from in-memory contents (the analyzer reads the
  /// file; tests can lint synthetic buffers).
  SourceFile(std::string Path, std::string_view Contents);

  const std::string &path() const { return Path; }

  /// True for .h/.hpp files.
  bool isHeader() const;

  size_t lineCount() const { return RawLines.size(); }

  /// Raw text of 0-based line \p Index, without the trailing newline.
  std::string_view rawLine(size_t Index) const { return RawLines[Index]; }

  /// Scrubbed text of 0-based line \p Index: comments and string/char
  /// literal bodies replaced by spaces.
  std::string_view scrubbedLine(size_t Index) const {
    return ScrubbedLines[Index];
  }

  /// True when \p RuleId is waived on 0-based line \p Index (line waiver,
  /// stand-alone-comment waiver on the preceding line, or file waiver).
  bool isWaived(size_t Index, std::string_view RuleId) const;

private:
  std::string Path;
  std::vector<std::string> RawLines;
  std::vector<std::string> ScrubbedLines;
  /// Rule ids waived per 0-based line.
  std::vector<std::set<std::string>> LineWaivers;
  /// Rule ids waived for the entire file.
  std::set<std::string> FileWaivers;
};

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_SOURCEFILE_H
