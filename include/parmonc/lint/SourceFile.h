//===- parmonc/lint/SourceFile.h - Lexed view of one source file ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lexical model of a C++ source file for the mclint rules, built on the
/// token stream from Lexer.h. The file is kept in three forms: the raw
/// lines (for preprocessor-oriented checks like include hygiene and header
/// guards), a "scrubbed" copy in which comments and string/character
/// literal bodies are blanked out (spaces, preserving column positions) so
/// `std::thread` in a comment or a string never triggers a rule, and the
/// token stream itself for the project index and token-level rules.
///
/// Waivers: a comment containing `mclint: allow(Rn)` suppresses the named
/// rule(s) on the lines the comment spans — or on the next line when the
/// comment stands alone — and `mclint: allow-file(Rn)` suppresses them for
/// the whole file. Because waivers are parsed from comment tokens only, a
/// waiver-shaped string inside a raw string literal is never honored, and
/// a line comment continued with a backslash splice is honored once for
/// its whole physical extent. Waivers are the escape hatch for reviewed
/// exceptions and are themselves audited by rule R10 (stale-waiver).
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_SOURCEFILE_H
#define PARMONC_LINT_SOURCEFILE_H

#include "parmonc/lint/Cfg.h"
#include "parmonc/lint/Lexer.h"

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// One parsed waiver directive entry. A directive naming several rules
/// (`allow(R2,R3)`) produces one Waiver per rule id, sharing a
/// DirectiveIndex so autofix can tell when removing the comment is safe.
struct Waiver {
  /// The rule id this entry suppresses, e.g. "R3".
  std::string RuleId;
  /// 0-based ordinal of the directive comment within the file, shared by
  /// entries parsed from the same comment.
  uint32_t DirectiveIndex = 0;
  /// 0-based first and last physical line of the directive comment.
  uint32_t DirectiveLine = 0;
  uint32_t DirectiveEndLine = 0;
  /// Column of the comment's first byte on DirectiveLine.
  uint32_t DirectiveColumn = 0;
  /// True for `allow-file(...)`: covers the whole file.
  bool FileScope = false;
  /// True when the comment has no code on any line it spans (a stand-alone
  /// waiver, which also covers the following line).
  bool Standalone = false;
  /// Inclusive 0-based line range covered (unused when FileScope).
  uint32_t CoverBegin = 0;
  uint32_t CoverEnd = 0;
};

/// One source file, lexed for rule matching.
class SourceFile {
public:
  /// Builds the lexed view from in-memory contents (the analyzer reads the
  /// file; tests can lint synthetic buffers).
  SourceFile(std::string Path, std::string_view Contents);

  const std::string &path() const { return Path; }

  /// True for .h/.hpp files.
  bool isHeader() const;

  size_t lineCount() const { return RawLines.size(); }

  /// Raw text of 0-based line \p Index, without the trailing newline.
  std::string_view rawLine(size_t Index) const { return RawLines[Index]; }

  /// Scrubbed text of 0-based line \p Index: comments and string/char
  /// literal bodies replaced by spaces.
  std::string_view scrubbedLine(size_t Index) const {
    return ScrubbedLines[Index];
  }

  /// The file's token stream (comments included), in source order.
  const std::vector<Token> &tokens() const { return Tokens; }

  /// All waiver entries parsed from comments, in source order.
  const std::vector<Waiver> &waivers() const { return Waivers; }

  /// Control-flow graphs of every function defined in this file, built
  /// lazily on first use and cached. Only the flow-sensitive rules pay for
  /// CFG construction; token-level rules never touch it. Not synchronized:
  /// each file is analyzed by exactly one worker at a time.
  const std::vector<FunctionCfg> &functions() const;

  /// True when \p RuleId is waived on 0-based line \p Index (line waiver,
  /// stand-alone-comment waiver on the preceding line, or file waiver).
  bool isWaived(size_t Index, std::string_view RuleId) const;

private:
  std::string Path;
  std::vector<std::string> RawLines;
  std::vector<std::string> ScrubbedLines;
  std::vector<Token> Tokens;
  std::vector<Waiver> Waivers;
  /// Rule ids waived per 0-based line.
  std::vector<std::set<std::string>> LineWaivers;
  /// Rule ids waived for the entire file.
  std::set<std::string> FileWaivers;
  /// Lazily built per-function CFGs; null until functions() is called.
  mutable std::unique_ptr<std::vector<FunctionCfg>> Cfgs;
};

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_SOURCEFILE_H
