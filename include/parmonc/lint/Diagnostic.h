//===- parmonc/lint/Diagnostic.h - Lint findings --------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finding type produced by mclint rules and its rendering. One
/// diagnostic pins one rule violation to a file and line; the textual form
///
///   <path>:<line>: warning: <message> [R3:raw-concurrency]
///
/// is byte-stable so the lint test fixtures can assert exact output and CI
/// logs stay greppable.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_DIAGNOSTIC_H
#define PARMONC_LINT_DIAGNOSTIC_H

#include <string>
#include <vector>

namespace parmonc {
namespace lint {

/// A mechanically safe, line-granular repair attached to a diagnostic.
/// Applied by `mclint --fix`: either the whole line is replaced by NewText
/// or deleted outright.
struct FixIt {
  unsigned Line = 0;      ///< 1-based line to edit.
  bool RemoveLine = false; ///< Delete the line instead of replacing it.
  std::string NewText;    ///< Replacement text (without trailing newline).
};

/// One rule violation at a specific source location.
struct Diagnostic {
  std::string Path;   ///< File path as given to the analyzer.
  unsigned Line = 0;  ///< 1-based line number.
  std::string RuleId; ///< "R1".."R10".
  std::string RuleName; ///< e.g. "discarded-status".
  std::string Message;  ///< Human-readable explanation.
  std::vector<FixIt> Fixes; ///< Optional autofix (R4, R10).
};

/// Renders one diagnostic. \p AsError selects "error:" over "warning:"
/// (mclint --werror).
std::string formatDiagnostic(const Diagnostic &Diag, bool AsError);

/// Sorts by (path, line, rule id) so output order is deterministic
/// regardless of rule execution order.
void sortDiagnostics(std::vector<Diagnostic> &Diags);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_DIAGNOSTIC_H
