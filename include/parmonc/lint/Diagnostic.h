//===- parmonc/lint/Diagnostic.h - Lint findings --------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finding type produced by mclint rules and its rendering. One
/// diagnostic pins one rule violation to a file and line; the textual form
///
///   <path>:<line>: warning: <message> [R3:raw-concurrency]
///
/// is byte-stable so the lint test fixtures can assert exact output and CI
/// logs stay greppable.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_DIAGNOSTIC_H
#define PARMONC_LINT_DIAGNOSTIC_H

#include <string>
#include <vector>

namespace parmonc {
namespace lint {

/// A mechanically safe, line-granular repair attached to a diagnostic.
/// Applied by `mclint --fix`: either the whole line is replaced by NewText
/// or deleted outright.
struct FixIt {
  unsigned Line = 0;      ///< 1-based line to edit.
  bool RemoveLine = false; ///< Delete the line instead of replacing it.
  std::string NewText;    ///< Replacement text (without trailing newline).
};

/// One step of a flow-sensitive finding's witness path, in source order.
/// A step defaults to the diagnostic's own file (the CFG rules R11-R13
/// never leave it); the interprocedural rules (R14-R16) set Path on steps
/// that land in another translation unit, and SARIF renders each step at
/// its own location.
struct FlowStep {
  FlowStep() = default;
  FlowStep(unsigned Line, unsigned Column, std::string Message,
           std::string Path = {})
      : Line(Line), Column(Column), Message(std::move(Message)),
        Path(std::move(Path)) {}

  unsigned Line = 0;   ///< 1-based line number.
  unsigned Column = 0; ///< 1-based column, 0 when unknown.
  std::string Message; ///< What happens at this step.
  /// File the step points into; empty means the diagnostic's own file.
  std::string Path;
};

/// One rule violation at a specific source location.
struct Diagnostic {
  Diagnostic() = default;
  /// The token-level rules' one-liner: location + identity + message,
  /// optionally with an autofix. Flow and Column stay at their defaults;
  /// the flow rules (R11-R13) fill those in member-by-member.
  Diagnostic(std::string Path, unsigned Line, std::string RuleId,
             std::string RuleName, std::string Message,
             std::vector<FixIt> Fixes = {})
      : Path(std::move(Path)), Line(Line), RuleId(std::move(RuleId)),
        RuleName(std::move(RuleName)), Message(std::move(Message)),
        Fixes(std::move(Fixes)) {}

  std::string Path;   ///< File path as given to the analyzer.
  unsigned Line = 0;  ///< 1-based line number.
  std::string RuleId; ///< "R1".."R13".
  std::string RuleName; ///< e.g. "discarded-status".
  std::string Message;  ///< Human-readable explanation.
  std::vector<FixIt> Fixes; ///< Optional autofix (R4, R10).
  /// Witness path for flow-sensitive findings (R11-R13), rendered as a
  /// SARIF codeFlow. Empty for token-level findings.
  std::vector<FlowStep> Flow;
  /// 1-based column, 0 when unknown. Token-level rules leave this 0 and
  /// nothing downstream renders it; the flow rules set it so SARIF regions
  /// and code-flow steps point at the exact token.
  unsigned Column = 0;
};

/// Renders one diagnostic. \p AsError selects "error:" over "warning:"
/// (mclint --werror).
std::string formatDiagnostic(const Diagnostic &Diag, bool AsError);

/// Sorts by (path, line, rule id, column, message) — a total order, so
/// output is byte-identical regardless of rule execution order or --jobs
/// count.
void sortDiagnostics(std::vector<Diagnostic> &Diags);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_DIAGNOSTIC_H
