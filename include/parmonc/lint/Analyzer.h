//===- parmonc/lint/Analyzer.h - Project-wide lint driver -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver behind the mclint tool. One run is a pipeline:
///
///   collect files -> lex / extract facts (cache-aware) -> build the
///   project index and cross-file context -> per-file rules (cache-aware)
///   -> project-wide rules (R9) -> central waiver filtering -> stale-waiver
///   synthesis (R10) -> baseline filtering -> sorted diagnostics.
///
/// Waivers are applied here, centrally, rather than inside each rule: the
/// analyzer is the only place that can know a waiver suppressed nothing
/// at all, which is exactly what R10 reports.
///
/// The library form exists so the lint test suite can run the analyzer
/// in-process against fixture trees and assert exact findings.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_ANALYZER_H
#define PARMONC_LINT_ANALYZER_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/support/Status.h"

#include <string>
#include <vector>

namespace parmonc {
namespace lint {

/// What to lint and how strictly.
struct AnalyzerOptions {
  /// Files and/or directories; directories are walked recursively for
  /// .h/.hpp/.cpp/.cc/.cxx files. Build trees (build*/), dot directories
  /// and lint fixture trees (fixtures/) are skipped — fixtures are full
  /// of deliberate violations and are linted by naming them as a root.
  std::vector<std::string> Paths;

  /// Rule ids or names to run ("R1".."R13", "stream-discipline");
  /// empty means all rules.
  std::vector<std::string> RuleIds;

  /// Incremental cache file (`--cache=<file>`); empty disables caching.
  std::string CachePath;

  /// Baseline to subtract from the findings (`--baseline=<file>`).
  std::string BaselinePath;

  /// Compute autofixes (R4, R10) and attach them to the diagnostics.
  /// Bypasses cached diagnostics (cached entries carry no fix data).
  bool ComputeFixes = false;

  /// Worker threads for the per-file passes (`--jobs=N`); 0 and 1 both
  /// mean serial. Only the embarrassingly parallel per-file work fans
  /// out; index construction, project rules, filtering and output order
  /// are unchanged, so results are byte-identical at any job count.
  unsigned Jobs = 1;
};

/// Outcome of one analyzer run.
struct LintReport {
  std::vector<Diagnostic> Diagnostics;
  size_t FileCount = 0;    ///< Source files scanned.
  size_t CacheHits = 0;    ///< Files whose diagnostics came from the cache.
  size_t CacheMisses = 0;  ///< Files analyzed from scratch.
  size_t BaselineSuppressed = 0; ///< Findings subtracted by the baseline.
  /// The raw text of the line each diagnostic points at, for baseline
  /// writing and SARIF fingerprints; parallel to Diagnostics.
  std::vector<std::string> DiagnosticLineText;
};

/// Runs the analyzer. Fails (as a Status) only on environmental errors —
/// unknown rule id, unreadable path, malformed baseline; rule findings
/// are data, not errors.
[[nodiscard]] Result<LintReport> runAnalyzer(const AnalyzerOptions &Options);

/// Applies the FixIts attached to \p Diags to the files on disk, editing
/// bottom-up per file so line numbers stay valid, writing atomically.
/// Returns the number of files rewritten (or the first write error).
[[nodiscard]] Result<size_t> applyFixes(const std::vector<Diagnostic> &Diags);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_ANALYZER_H
