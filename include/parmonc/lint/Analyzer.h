//===- parmonc/lint/Analyzer.h - Project-wide lint driver -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver behind the mclint tool: collects source files under the
/// given roots, builds the cross-file LintContext, runs the requested
/// rules and returns deterministic, sorted diagnostics. The library form
/// exists so the lint test suite can run the analyzer in-process against
/// fixture trees and assert exact findings.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_ANALYZER_H
#define PARMONC_LINT_ANALYZER_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/support/Status.h"

#include <string>
#include <vector>

namespace parmonc {
namespace lint {

/// What to lint and how strictly.
struct AnalyzerOptions {
  /// Files and/or directories; directories are walked recursively for
  /// .h/.hpp/.cpp/.cc/.cxx files. Build trees (build*/) and dot
  /// directories are skipped.
  std::vector<std::string> Paths;

  /// Rule ids to run ("R1".."R5"); empty means all rules.
  std::vector<std::string> RuleIds;
};

/// Outcome of one analyzer run.
struct LintReport {
  std::vector<Diagnostic> Diagnostics;
  size_t FileCount = 0; ///< Source files scanned.
};

/// Runs the analyzer. Fails (as a Status) only on environmental errors —
/// unknown rule id, unreadable path; rule findings are data, not errors.
[[nodiscard]] Result<LintReport> runAnalyzer(const AnalyzerOptions &Options);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_ANALYZER_H
