//===- parmonc/lint/Rules.h - The enforced project invariants -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-checkable invariants mclint enforces. Each rule guards one
/// way a Monte Carlo run can go silently wrong (see DESIGN.md, "Enforced
/// invariants", and docs/LINT_RULES.md for rationale and examples):
///
///   R1  discarded-status     — no fallible call may drop its Status/Result;
///                              a swallowed save-point failure corrupts the
///                              eq. (5) merged results undetectably.
///   R2  nondeterminism       — no wall-clock/entropy sources outside the
///                              support/Clock.h seam; reproducibility of the
///                              §2.4 stream hierarchy depends on it.
///   R3  raw-concurrency      — thread/mutex/atomic primitives only inside
///                              mpsim/, obs/ and core/ (where R8 applies the
///                              stricter mailbox-discipline check instead).
///   R4  include-hygiene      — canonical PARMONC_* header guards, quoted
///                              includes only for project headers, no
///                              <bits/...>, no using-namespace in headers.
///   R5  narrowing-estimator  — no float in stats/ and core/: the eq. (5)
///                              moment sums must stay double end to end.
///   R6  stream-discipline    — no Lcg128/LcgPow2 seeding or raw-recurrence
///                              stepping outside rng/; realization code must
///                              obtain randomness from the cursor so the
///                              eq. (8) leap partition is never bypassed.
///   R7  unchecked-snapshot   — a sealed-checkpoint load must reach the
///                              readSnapshotWithFallback/".prev" path.
///   R8  mailbox-discipline   — core/ must not use raw std:: synchronization
///                              directly nor call functions that do; all
///                              cross-thread state flows through
///                              mpsim::Mailbox / WorkerGroup.
///   R9  include-layering     — no include cycles, no upward layer includes
///                              (e.g. rng/ including core/).
///   R10 stale-waiver         — a waiver whose rule no longer fires on its
///                              lines is itself a diagnostic.
///
/// The flow-sensitive rules run a forward dataflow over per-function CFGs
/// (Cfg.h, Dataflow.h) and attach step-by-step witness paths to their
/// findings (SARIF code flows):
///
///   R11 must-check           — a Status/Result local must be consumed on
///                              every path before scope exit; inside
///                              analyzable bodies it supersedes R1, which
///                              stands down there (see
///                              LintContext::FlowRulesActive).
///   R12 stream-lifecycle     — a stream handle must not be copied, escape
///                              by reference into a lambda, or be touched
///                              after std::move handoff to a worker.
///   R13 wire-protocol        — frame sends follow the session state
///                              machine (no sends after Goodbye/Abort, one
///                              Hello) and FrameDecoder results are
///                              checked before their value is consumed.
///
/// The interprocedural rules follow call chains across translation units
/// through the project call graph and the bottom-up function summaries
/// (CallGraph.h, Summary.h); their witness paths span files:
///
///   R14 determinism-taint    — wall-clock/entropy/environment reads,
///                              unordered iteration order and pointer
///                              hashing must not flow through any call
///                              chain into estimator accumulation,
///                              snapshot payloads or the parmonc_exp.dat
///                              registry; obs/ and support/Clock.h are the
///                              sanctioned carriers.
///   R15 lock-discipline      — a field written under a lock somewhere
///                              must be locked everywhere, including in
///                              helpers only ever called with the lock
///                              held; double-acquires through a callee and
///                              raw locks leaked on early return are
///                              flagged.
///   R16 deep-must-check      — a Status/Result forwarded up a call chain
///                              (e.g. through `auto` wrappers returning a
///                              fallible callee's result) must be consumed
///                              by some frame; extends R11 past the
///                              declared-type heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_RULES_H
#define PARMONC_LINT_RULES_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/lint/Index.h"
#include "parmonc/lint/SourceFile.h"

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// One enforced invariant.
///
/// Rules emit every violation they find; the analyzer applies waivers
/// centrally (so it can also audit unused waivers for R10) and filters the
/// diagnostics afterwards.
class Rule {
public:
  virtual ~Rule() = default;

  /// Stable identifier, "R1".."R16".
  virtual std::string_view id() const = 0;

  /// Short kebab-case name, e.g. "discarded-status".
  virtual std::string_view name() const = 0;

  /// One-line description for `mclint --list-rules`.
  virtual std::string_view summary() const = 0;

  /// A paragraph explaining why the rule exists (`mclint --explain R6`).
  virtual std::string_view rationale() const = 0;

  /// A short violating/compliant example pair (`mclint --explain R6`).
  virtual std::string_view example() const = 0;

  /// Appends a diagnostic to \p Out for every violation in \p File.
  virtual void check(const SourceFile &File, const LintContext &Context,
                     std::vector<Diagnostic> &Out) const {
    (void)File;
    (void)Context;
    (void)Out;
  }

  /// Project-wide pass over the index, for rules whose evidence spans
  /// files (R9). Runs once per analysis, after every per-file check.
  virtual void checkProject(const ProjectIndex &Index,
                            const LintContext &Context,
                            std::vector<Diagnostic> &Out) const {
    (void)Index;
    (void)Context;
    (void)Out;
  }

  /// True when every diagnostic this rule emits depends only on the file
  /// it names plus the LintContext (whose fingerprint is part of the
  /// incremental cache key); such diagnostics are safe to reuse from the
  /// cache when both the content hash and the context hash match. False
  /// for rules that walk the whole project index (R9) or are synthesized
  /// by the analyzer (R10).
  virtual bool isPerFile() const { return true; }
};

/// All rules, in id order.
std::vector<std::unique_ptr<Rule>> makeAllRules();

/// The flow-sensitive rules, defined in FlowRules.cpp.
std::unique_ptr<Rule> makeMustCheckRule();       ///< R11
std::unique_ptr<Rule> makeStreamLifecycleRule(); ///< R12
std::unique_ptr<Rule> makeWireProtocolRule();    ///< R13

/// The interprocedural rules, defined in InterRules.cpp. They consult
/// LintContext::Summaries / Graph and stand down when the summary stage
/// did not run.
std::unique_ptr<Rule> makeDeterminismTaintRule(); ///< R14
std::unique_ptr<Rule> makeLockDisciplineRule();   ///< R15
std::unique_ptr<Rule> makeDeepMustCheckRule();    ///< R16

/// The project's fallible APIs that R1 knows about even when their headers
/// are outside the scanned roots.
std::set<std::string, std::less<>> builtinFallibleFunctions();

/// Adds every function \p File declares [[nodiscard]] to \p Names.
void harvestNodiscardFunctions(const SourceFile &File,
                               std::set<std::string, std::less<>> &Names);

/// True when \p Text contains \p Token bounded by non-identifier chars.
/// Returns the offset of the first such occurrence, or npos.
size_t findWordToken(std::string_view Text, std::string_view Token);

/// The std:: synchronization type names R3/R8 ban and the project index
/// uses as its taint evidence.
const std::vector<std::string_view> &rawConcurrencyTypeNeedles();

/// The concurrency headers R3/R8 ban (`<thread>`, `<mutex>`, ...).
const std::vector<std::string_view> &rawConcurrencyIncludeNeedles();

/// The raw socket identifiers R8 bans outside mpsim/ (`socketpair`,
/// `AF_UNIX`, ...): wire I/O belongs to the transport layer.
const std::vector<std::string_view> &rawSocketTokenNeedles();

/// The socket headers R8 bans outside mpsim/ (`<sys/socket.h>`, ...).
const std::vector<std::string_view> &rawSocketIncludeNeedles();

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_RULES_H
