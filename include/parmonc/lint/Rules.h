//===- parmonc/lint/Rules.h - The enforced project invariants -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-checkable invariants mclint enforces. Each rule guards one
/// way a Monte Carlo run can go silently wrong (see DESIGN.md, "Enforced
/// invariants"):
///
///   R1 discarded-status    — no fallible call may drop its Status/Result;
///                            a swallowed save-point failure corrupts the
///                            eq. (5) merged results undetectably.
///   R2 nondeterminism      — no wall-clock/entropy sources outside the
///                            support/Clock.h seam; reproducibility of the
///                            §2.4 stream hierarchy depends on it.
///   R3 raw-concurrency     — thread/mutex/atomic primitives only inside
///                            mpsim/ and obs/ (and the Clock seam), so all
///                            cross-rank communication flows through the
///                            idempotent collector protocol.
///   R4 include-hygiene     — canonical PARMONC_* header guards, quoted
///                            includes only for project headers, no
///                            <bits/...>, no using-namespace in headers.
///   R5 narrowing-estimator — no float in stats/ and core/: the eq. (5)
///                            moment sums must stay double end to end.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_RULES_H
#define PARMONC_LINT_RULES_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/lint/SourceFile.h"

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// Cross-file facts rules may consult. Built by the analyzer in a pre-pass
/// over every scanned file, before any rule runs.
struct LintContext {
  /// Names of functions whose return value must not be discarded: the
  /// project's known fallible APIs plus every function declared
  /// [[nodiscard]] in the scanned files.
  std::set<std::string, std::less<>> NodiscardFunctions;
};

/// One enforced invariant.
class Rule {
public:
  virtual ~Rule() = default;

  /// Stable identifier, "R1".."R5".
  virtual std::string_view id() const = 0;

  /// Short kebab-case name, e.g. "discarded-status".
  virtual std::string_view name() const = 0;

  /// One-line description for `mclint --list-rules`.
  virtual std::string_view summary() const = 0;

  /// Appends a diagnostic to \p Out for every violation in \p File.
  /// Implementations must honour File.isWaived(line, id()).
  virtual void check(const SourceFile &File, const LintContext &Context,
                     std::vector<Diagnostic> &Out) const = 0;
};

/// All rules, in id order.
std::vector<std::unique_ptr<Rule>> makeAllRules();

/// The project's fallible APIs that R1 knows about even when their headers
/// are outside the scanned roots.
std::set<std::string, std::less<>> builtinFallibleFunctions();

/// Adds every function \p File declares [[nodiscard]] to \p Names.
void harvestNodiscardFunctions(const SourceFile &File,
                               std::set<std::string, std::less<>> &Names);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_RULES_H
