//===- parmonc/lint/Baseline.h - Accepted-findings baseline ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baselines let a tree adopt a new rule without a flag-day cleanup:
/// `mclint --write-baseline=f` records today's findings, and subsequent
/// `mclint --baseline=f` runs report only findings NOT in the record — new
/// debt fails CI, existing debt is burned down at leisure.
///
/// An entry identifies a finding by rule id, file path and the crc32 of
/// the trimmed source line text — deliberately not the line number, so
/// unrelated edits above a baselined finding do not resurrect it. Matching
/// consumes entries multiset-style: two identical findings need two
/// entries, so fixing one of two duplicated violations still surfaces the
/// survivor... the baseline shrinks monotonically with the debt.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_BASELINE_H
#define PARMONC_LINT_BASELINE_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/support/Status.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// One accepted finding.
struct BaselineEntry {
  std::string RuleId;
  std::string Path;     ///< Normalized (forward-slash) file path.
  uint32_t LineCrc = 0; ///< crc32 of the trimmed source line text.
};

/// Parses a baseline file. Lines are `<ruleId> <hex8> <path>`; blank lines
/// and `#` comments are ignored. Malformed records are an error — a
/// silently half-read baseline would un-suppress accepted findings.
[[nodiscard]] Result<std::vector<BaselineEntry>>
loadBaseline(const std::string &Path);

/// Serializes \p Diags as a baseline. \p LineTextOf must return the raw
/// source line a diagnostic points at (for the content hash).
std::string
formatBaseline(const std::vector<Diagnostic> &Diags,
               const std::function<std::string_view(const Diagnostic &)>
                   &LineTextOf);

/// Removes from \p Diags every finding matched (and consumed) by an entry.
/// Returns the number of suppressed findings.
size_t applyBaseline(std::vector<BaselineEntry> Entries,
                     const std::function<std::string_view(const Diagnostic &)>
                         &LineTextOf,
                     std::vector<Diagnostic> &Diags);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_BASELINE_H
