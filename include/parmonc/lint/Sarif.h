//===- parmonc/lint/Sarif.h - SARIF 2.1.0 output --------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an analyzer run as a SARIF 2.1.0 log (`mclint --format=sarif`),
/// the interchange format GitHub code scanning and most editors ingest.
/// One run, one tool.driver carrying all rule metadata (id, name, summary,
/// helpUri into docs/LINT_RULES.md), one result per diagnostic with a
/// partialFingerprints entry (rule id + crc32 of the flagged line) so
/// alert identity survives line-number churn.
///
/// The emitter is deliberately tiny: mclint produces a known-shape
/// document, so a full JSON library would be dead weight. Strings are
/// escaped per RFC 8259.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_SARIF_H
#define PARMONC_LINT_SARIF_H

#include "parmonc/lint/Diagnostic.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

class Rule;

/// Escapes \p Text for embedding in a JSON string literal (quotes not
/// included).
std::string jsonEscape(std::string_view Text);

/// Renders a complete SARIF 2.1.0 document. \p Rules supplies the
/// tool.driver.rules metadata (typically makeAllRules()); \p LineTextOf
/// returns the raw source line a diagnostic points at, for the stable
/// fingerprint. \p AsError maps findings to SARIF level "error" rather
/// than "warning" (mclint --werror).
std::string
formatSarif(const std::vector<Diagnostic> &Diags,
            const std::vector<const Rule *> &Rules, bool AsError,
            const std::function<std::string_view(const Diagnostic &)>
                &LineTextOf);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_SARIF_H
