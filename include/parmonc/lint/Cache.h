//===- parmonc/lint/Cache.h - Incremental analysis cache ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk incremental cache behind `mclint --cache=<dir>`. One text
/// file keyed by content hashes:
///
///   - per file, the serialized FileFacts under the file's content crc32,
///     so unchanged files are never re-lexed when rebuilding the project
///     index, and
///   - per file, the raw per-file diagnostics (the per-file rules,
///     including the flow-sensitive R11-R13 with their column and witness
///     path, before waiver and baseline filtering) under the pair
///     (content crc32, context crc32) — the context hash fingerprints the
///     cross-file LintContext plus the active rule set, so a new
///     [[nodiscard]] function or a new taint source anywhere in the
///     project invalidates every cached diagnostic list, not just the
///     file that changed. The per-file facts also carry a CFG shape crc,
///     and the config stamp carries the engine generation, so changes to
///     the CFG/dataflow stage invalidate cached dataflow findings.
///
/// Project-wide rules (R9) and the synthesized R10 are recomputed on every
/// run from the (cached) facts; they are cheap once lexing is skipped.
///
/// The format is versioned and parsing is strict: any malformed or
/// version-mismatched cache is silently discarded and rebuilt — a cache
/// can only ever cost a cold run, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_CACHE_H
#define PARMONC_LINT_CACHE_H

#include "parmonc/lint/Diagnostic.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// Cached state for one source file.
struct CacheEntry {
  uint32_t ContentCrc = 0;
  /// Serialized FileFacts (see serializeFileFacts), valid for ContentCrc.
  std::string FactsBlock;
  /// True when Diags below were stored (a facts-only entry is possible
  /// when the diagnostic pass ran with --fix, which bypasses diag reuse).
  bool HasDiags = false;
  /// Context fingerprint the diagnostics were computed under.
  uint32_t ContextCrc = 0;
  /// Dependency fingerprint: the fold of the summaries of every function
  /// this file's calls can transitively reach (Summary.h). A change to a
  /// callee's summary anywhere in the project invalidates exactly the
  /// files that depend on it — not the whole cache.
  uint32_t DepsCrc = 0;
  /// Raw per-file diagnostics, pre-waiver and pre-baseline.
  std::vector<Diagnostic> Diags;
};

/// The cache: path-addressed entries plus load/store.
class LintCache {
public:
  /// Loads \p Path. A missing file yields an empty cache; a malformed or
  /// version-mismatched file is discarded (never an error).
  void load(const std::string &Path, std::string_view ExpectedConfig);

  /// Writes the cache atomically.
  [[nodiscard]] Status save(const std::string &Path,
                            std::string_view Config) const;

  const CacheEntry *lookup(std::string_view FilePath) const;
  void update(std::string FilePath, CacheEntry Entry);

  size_t size() const { return Entries.size(); }

private:
  std::map<std::string, CacheEntry, std::less<>> Entries;
};

/// The cache-format + configuration stamp: engine version and the active
/// rule ids. Two runs with different configs never share cache state.
std::string cacheConfigStamp(const std::vector<std::string> &ActiveRuleIds);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_CACHE_H
