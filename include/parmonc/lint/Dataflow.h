//===- parmonc/lint/Dataflow.h - Forward dataflow over function CFGs ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward-dataflow framework over FunctionCfg graphs. Clients
/// implement DataflowClient: a fixed number of tracked facts, each a
/// one-byte lattice element, with a join for merge points and a transfer
/// function applied statement by statement. runForwardDataflow computes
/// the fixed point — reverse postorder with a worklist, so back edges
/// (loops) iterate until block-entry states stop changing — and returns
/// the state at every block boundary. Rules then walk individual blocks,
/// re-applying transfer from the block-entry state, to locate the exact
/// statement a finding anchors to.
///
/// Lattice elements are plain uint8_t by design: the hosted analyses
/// (must-check, stream-lifecycle, wire-protocol) all need only a handful
/// of states per tracked fact, and a byte-vector state makes join and
/// change detection trivially cheap, which keeps the fixed point fast
/// enough to run on every file in the tree on every lint invocation.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_DATAFLOW_H
#define PARMONC_LINT_DATAFLOW_H

#include "parmonc/lint/Cfg.h"

#include <cstdint>
#include <vector>

namespace parmonc {
namespace lint {

/// The analysis-specific half of a dataflow problem.
class DataflowClient {
public:
  virtual ~DataflowClient() = default;

  /// Number of tracked facts; every state vector has this length. The
  /// initial state at function entry is all zeros.
  virtual size_t factCount() const = 0;

  /// Lattice join of two elements of one fact, applied elementwise at
  /// control-flow merge points. Must be commutative, associative and
  /// idempotent, or the fixed point may not terminate.
  virtual uint8_t join(uint8_t A, uint8_t B) const = 0;

  /// Applies one statement's effect to \p State in place.
  virtual void transfer(const CfgStatement &Stmt,
                        std::vector<uint8_t> &State) const = 0;
};

/// Fixed-point result: the dataflow state at each block's entry and exit.
/// Blocks unreachable from Entry never had their Reached flag set; their
/// states stay all-zero (the initial value), which is the safe answer for
/// the must-analyses hosted here.
struct DataflowResult {
  std::vector<std::vector<uint8_t>> In;
  std::vector<std::vector<uint8_t>> Out;
  std::vector<uint8_t> Reached; ///< 1 when the block is reachable.
};

/// Runs \p Client to a fixed point over \p Cfg. The iteration order is
/// reverse postorder with a change-driven worklist; each edge propagates
/// the source's Out into the target's In (copied on first arrival, joined
/// elementwise after), and a block whose In changed is re-queued.
DataflowResult runForwardDataflow(const FunctionCfg &Cfg,
                                  const DataflowClient &Client);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_DATAFLOW_H
