//===- parmonc/lint/Index.h - Cross-TU project index for mclint -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle stage of the mclint pipeline: per-file facts extracted from
/// the token stream in one pass over every TU, and the project-wide index
/// the interprocedural rules consult. Facts are deliberately small and
/// serializable — the incremental cache stores them keyed by file content
/// hash, so an unchanged file is never re-lexed.
///
/// What the facts capture:
///   - the include list (for R4 and the R9 include-cycle/layering checks),
///   - [[nodiscard]] declarations and heuristic function definitions (the
///     fallible-API and taint sets for R1 and R8),
///   - call edges into the fallible-API set (R7's snapshot-load analysis),
///   - raw-synchronization usage (the R8 taint source),
///   - which files construct Lcg128 / StreamHierarchy / RealizationCursor
///     (the R6 stream-discipline evidence),
///   - the file's waiver directives (R10 stale-waiver auditing).
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_INDEX_H
#define PARMONC_LINT_INDEX_H

#include "parmonc/lint/SourceFile.h"
#include "parmonc/lint/Summary.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// Normalizes a path to forward slashes for suffix/substring matching.
std::string normalizedPath(std::string_view Path);

/// True when \p Path contains \p Dir as a whole path component.
bool pathContainsComponent(std::string_view Path, std::string_view Dir);

/// True when the normalized \p Path ends with \p Suffix.
bool pathEndsWith(std::string_view Path, std::string_view Suffix);

/// True for macro-style ALL_CAPS names (no lowercase, at least one upper).
bool isMacroStyleName(std::string_view Name);

/// One #include directive.
struct IncludeRecord {
  std::string Spec;   ///< The path between the delimiters.
  uint32_t Line = 0;  ///< 0-based line of the directive.
  bool Quoted = false; ///< "..." rather than <...>.
};

/// Everything the project index knows about one file. Extracted from the
/// token stream; cheap to serialize for the incremental cache.
struct FileFacts {
  std::vector<IncludeRecord> Includes;
  /// Functions this file declares [[nodiscard]].
  std::vector<std::string> NodiscardFunctions;
  /// Functions this file appears to define (identifier + parameter list +
  /// body). Heuristic; ALL_CAPS macro-style names are excluded.
  std::vector<std::string> DefinedFunctions;
  /// Call sites into the fallible-API set: callee -> 0-based lines.
  std::map<std::string, std::vector<uint32_t>> FallibleCalls;
  /// True when the file uses raw std:: synchronization primitives or
  /// includes a concurrency header (the R8 taint source).
  bool UsesRawSync = false;
  /// True when any string literal mentions the ".prev" snapshot
  /// generation (evidence of a handled fallback path, R7).
  bool MentionsPrevGeneration = false;
  /// Stream-construction evidence for R6.
  bool ConstructsLcg128 = false;
  bool ConstructsStreamHierarchy = false;
  bool ConstructsCursor = false;
  /// Waiver directives parsed from comments.
  std::vector<Waiver> Waivers;
  /// Per-function interprocedural evidence (call sites, taint sources,
  /// lock operations, field writes — see Summary.h), in source order. The
  /// call-graph/summary stage runs entirely off this, so warm runs rebuild
  /// every summary from cached facts without re-lexing.
  std::vector<FunctionEvidence> Functions;
  /// Structural fingerprint of the file's function CFGs (cfgShapeCrc).
  /// Stored in the facts so the incremental cache observes the CFG stage:
  /// a builder change that reshapes any graph changes the serialized facts
  /// and therefore the cached dataflow diagnostics' validity.
  uint32_t CfgShapeCrc = 0;
};

/// Extracts facts from one lexed file.
FileFacts extractFileFacts(const SourceFile &File);

/// The functions \p File appears to define (same heuristic as
/// FileFacts::DefinedFunctions), for rules that need the caller's own
/// definition set without a full index entry.
std::vector<std::string> definedFunctions(const SourceFile &File);

/// Serializes facts to a line-oriented text block (for the cache).
std::string serializeFileFacts(const FileFacts &Facts);

/// Parses a serialized facts block. Returns an error on malformed input
/// (a corrupt cache entry is discarded, not trusted).
[[nodiscard]] Result<FileFacts> parseFileFacts(std::string_view Block);

/// The project-wide index: facts for every scanned file, path-addressable.
class ProjectIndex {
public:
  void add(std::string Path, FileFacts Facts);

  size_t fileCount() const { return Paths.size(); }
  const std::string &path(size_t I) const { return Paths[I]; }
  const FileFacts &facts(size_t I) const { return Facts[I]; }

  /// Facts for an exact path, or nullptr.
  const FileFacts *factsFor(std::string_view Path) const;

  /// Resolves an include spec from \p FromPath to the index of the
  /// included project file, or npos when the target is outside the scanned
  /// set. "parmonc/..." specs resolve by path suffix; other quoted specs
  /// resolve relative to the including file's directory.
  static constexpr size_t npos = size_t(-1);
  size_t resolveInclude(std::string_view FromPath,
                        const IncludeRecord &Include) const;

private:
  std::vector<std::string> Paths;
  std::vector<FileFacts> Facts;
  std::map<std::string, size_t, std::less<>> ByPath;
};

/// Cross-file facts rules may consult. Built from the project index in a
/// pre-pass over every scanned file, before any rule runs.
struct LintContext {
  /// Names of functions whose return value must not be discarded: the
  /// project's known fallible APIs plus every function declared
  /// [[nodiscard]] in the scanned files.
  std::set<std::string, std::less<>> NodiscardFunctions;
  /// Functions defined in files that use raw synchronization primitives,
  /// outside the blessed mpsim/ and obs/ layers (the R8 taint set).
  std::set<std::string, std::less<>> TaintedFunctions;
  /// Functions also defined in some synchronization-free file; an
  /// ambiguous name appearing in both sets is silenced.
  std::set<std::string, std::less<>> CleanFunctions;
  /// True when the flow-sensitive rules (R11-R13) are part of this run.
  /// R1 consults it to demote itself to declarations-only territory:
  /// inside analyzable function bodies the path-sensitive R11 supersedes
  /// the token-level heuristic, and double-reporting would force users to
  /// waive the same line twice.
  bool FlowRulesActive = false;
  /// The project-wide function summaries (null when the interprocedural
  /// stage did not run). The interprocedural rules (R14-R16) consult this
  /// to follow call chains across translation units; the per-file
  /// dependency fingerprint derived from it keys their cached findings.
  const SummaryStore *Summaries = nullptr;
  /// The call graph the summaries were propagated over (null with
  /// Summaries). Used to reconstruct cross-file witness paths.
  const CallGraph *Graph = nullptr;
};

/// Derives the cross-file rule context from the index: the union of
/// builtin + harvested nodiscard names, the R8 taint set, and the clean
/// set that silences ambiguous names.
void populateContextFromIndex(const ProjectIndex &Index, LintContext &Context);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_INDEX_H
