//===- parmonc/lint/Summary.h - Per-function interprocedural summaries ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural stage of the mclint pipeline: per-function evidence
/// extracted locally from each body, and the function summaries the
/// call-graph engine derives from it bottom-up over SCCs (CallGraph.h).
/// The interprocedural rules (R14-R16) consult the summaries through the
/// LintContext instead of re-walking other translation units, so a finding
/// in one file can carry a witness path whose steps span the files its
/// call chain crosses.
///
/// Evidence is deliberately token-level and serializable: it rides inside
/// the per-file facts in the incremental cache (format v5), so a warm run
/// rebuilds every summary from cached evidence without re-lexing a single
/// file. Summaries themselves are recomputed each run — propagation over
/// the call graph is pure graph work, cheap once lexing is skipped — and
/// each summary folds to a fingerprint; the per-file dependency
/// fingerprint (the fold of every summary a file's calls can transitively
/// reach) keys cached diagnostics, so editing one leaf TU invalidates only
/// the files whose analysis could observe the change.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_SUMMARY_H
#define PARMONC_LINT_SUMMARY_H

#include "parmonc/lint/SourceFile.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

class ProjectIndex;
class CallGraph;

/// What kind of nondeterminism a taint source introduces (R14).
enum class TaintKind : uint8_t {
  WallClock,     ///< time(), gettimeofday(), system_clock::now(), ...
  Entropy,       ///< rand(), drand48(), std::random_device, ...
  Environment,   ///< getenv() / secure_getenv()
  UnorderedIter, ///< iteration order of an unordered container
  PointerHash,   ///< std::hash over a pointer / reinterpret_cast to uintptr_t
};

/// Human-readable label for a taint kind ("wall-clock read", ...).
std::string_view taintKindLabel(TaintKind Kind);

/// Which determinism-critical output a sink call feeds (R14).
enum class SinkKind : uint8_t {
  Estimator, ///< EstimatorMatrix accumulation
  Snapshot,  ///< snapshot / manifest payload writes
  ExpLog,    ///< the parmonc_exp.dat registry
};

/// Human-readable label for a sink kind ("estimator accumulation", ...).
std::string_view sinkKindLabel(SinkKind Kind);

/// True when \p Name is a direct determinism-taint call (time, rand,
/// getenv, ...); sets \p Kind. Shared by the evidence extractor and R14's
/// in-body argument matching.
bool taintCallName(std::string_view Name, TaintKind &Kind);

/// True when \p Name is a determinism-critical sink callee (accumulate,
/// writeSnapshot, appendExperimentLog, ...); sets \p Kind.
bool sinkCallName(std::string_view Name, SinkKind &Kind);

/// One call site inside a function body.
struct CallSiteRecord {
  std::string Callee;   ///< Unqualified callee name.
  uint32_t Line = 0;    ///< 0-based line of the callee token.
  bool UnderLock = false; ///< A lock is held at the call (linear scan).
  /// The mutexes held at the call (R15's double-acquire check compares
  /// them against the callee's transitive acquire set).
  std::vector<std::string> HeldMutexes;
};

/// One local determinism-taint source (R14).
struct TaintSiteRecord {
  TaintKind Kind = TaintKind::WallClock;
  uint32_t Line = 0; ///< 0-based line.
};

/// One local sink call (R14).
struct SinkSiteRecord {
  SinkKind Kind = SinkKind::Estimator;
  uint32_t Line = 0; ///< 0-based line.
};

/// One lock acquire/release site (R15). Scoped covers lock_guard /
/// unique_lock / scoped_lock; Acquire and Release are raw .lock()/.unlock()
/// member calls.
struct LockOpRecord {
  enum class Op : uint8_t { Scoped, Acquire, Release };
  Op Kind = Op::Scoped;
  std::string Mutex; ///< The mutex variable's (unqualified) name.
  uint32_t Line = 0; ///< 0-based line.
};

/// One write to a name that is neither a local nor a parameter — a member
/// field, in this codebase's idiom (R15).
struct FieldWriteRecord {
  std::string Field;
  bool UnderLock = false; ///< A lock is held at the write (linear scan).
  uint32_t Line = 0;      ///< 0-based line.
};

/// A `return callee(...);` statement: the function forwards the callee's
/// result as its own, which is how returns-fallible propagates through
/// `auto` wrappers (R16).
struct ReturnCallRecord {
  std::string Callee;
  uint32_t Line = 0; ///< 0-based line of the return statement.
};

/// Everything the summary engine needs to know about one function body,
/// extracted locally and serialized with the file facts.
struct FunctionEvidence {
  std::string Name;    ///< Unqualified defined name.
  uint32_t Line = 0;   ///< 0-based line of the name token.
  /// The declared return type is Status / Result<...>.
  bool ReturnsFallibleType = false;
  /// The body reads a Status/Result-typed parameter (the function consumes
  /// its caller's fallible value for it).
  bool ConsumesStatusParam = false;
  std::vector<ReturnCallRecord> ReturnCalls;
  std::vector<CallSiteRecord> Calls;
  std::vector<TaintSiteRecord> TaintSources;
  std::vector<SinkSiteRecord> Sinks;
  std::vector<LockOpRecord> LockOps;
  std::vector<FieldWriteRecord> FieldWrites;
};

/// Extracts the evidence for every function \p File defines, in source
/// order. Shares the CFG function finder with the flow rules, so the two
/// stages agree on what a "function definition" is.
std::vector<FunctionEvidence> extractFunctionEvidence(const SourceFile &File);

/// The bottom-up summary of one function (merged over its overload set:
/// same-name definitions are folded conservatively, so a call edge by name
/// covers every candidate). Derived facts hold transitively: a function
/// "taints determinism" when any call chain out of it reaches a source.
struct FunctionSummary {
  std::string File;  ///< Defining file (first definition in index order).
  uint32_t Line = 0; ///< 0-based line of that definition's name token.

  /// Returns Status/Result — by declared type or by forwarding a fallible
  /// callee's result up the chain (R16).
  bool ReturnsFallible = false;
  /// The callee the fallible return is forwarded from; empty when the
  /// declared type itself is fallible.
  std::string FallibleVia;
  /// 0-based line of the forwarding return (or of the definition).
  uint32_t FallibleLine = 0;

  /// Some call chain out of this function reaches a determinism-taint
  /// source (R14). Sanctioned layers (obs/, support/Clock.h) never carry.
  bool TaintsDeterminism = false;
  TaintKind TaintOrigin = TaintKind::WallClock;
  /// The callee the taint arrives through; empty when the source is local.
  std::string TaintVia;
  /// 0-based line of the local source or of the tainting call site.
  uint32_t TaintLine = 0;

  /// Mutexes this function acquires, directly or through any callee (R15).
  std::set<std::string> AcquiresLocks;
  /// Witness provenance per acquired mutex: the callee the acquire happens
  /// in (empty for a local acquire) and the 0-based local site line.
  std::map<std::string, std::pair<std::string, uint32_t>> LockVia;

  /// Some caller invokes this function while holding a lock; its lock-free
  /// field writes are treated as protected by the caller's lock (R15).
  bool CalledUnderLock = false;

  /// The function consumes a Status/Result parameter (R16 treats passing a
  /// fallible result into it as handled).
  bool ConsumesStatusParam = false;

  /// A stream-hierarchy handle constructed here can escape through calls
  /// (reserved evidence for the stream rules; informational).
  bool EscapesStream = false;

  /// Stable fold of every field above, provenance included — the unit the
  /// per-file dependency fingerprint is built from.
  uint32_t fingerprint() const;
};

/// The project-wide summary store, name-addressed.
class SummaryStore {
public:
  const FunctionSummary *find(std::string_view Name) const {
    auto It = Map.find(Name);
    return It == Map.end() ? nullptr : &It->second;
  }

  std::map<std::string, FunctionSummary, std::less<>> Map;
};

/// Computes every summary bottom-up over the call graph's SCC condensation,
/// iterating each SCC to a fixed point so recursion converges.
SummaryStore computeSummaries(const ProjectIndex &Index,
                              const CallGraph &Graph);

/// Per-file dependency fingerprint: for each indexed file, the crc32 fold
/// of the summaries of every function its call sites can transitively
/// reach. Cached diagnostics are valid only while this matches — touching
/// a leaf TU re-analyzes exactly the files that could observe the changed
/// summaries.
std::vector<uint32_t> dependencyFingerprints(const ProjectIndex &Index,
                                             const CallGraph &Graph,
                                             const SummaryStore &Summaries);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_SUMMARY_H
