//===- parmonc/lint/CallGraph.h - Project-wide call graph -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project-wide call graph the interprocedural stage (Summary.h) walks.
/// Nodes are function *names*, not definitions: mclint resolves calls from
/// the token stream without types, so a call edge `f -> g` conservatively
/// targets the whole overload set of `g` — every same-name definition's
/// evidence is folded into one node before summaries propagate. Names that
/// never resolve to a definition in the scanned set (std:: calls, external
/// libraries) are not nodes; edges to them are dropped rather than guessed
/// at.
///
/// The graph exposes its SCC condensation in bottom-up (callee-first)
/// order, which is the evaluation order the summary fixed point needs:
/// every non-recursive callee is final before its callers are visited, and
/// mutual recursion is iterated inside its SCC until stable.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_CALLGRAPH_H
#define PARMONC_LINT_CALLGRAPH_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

class ProjectIndex;

/// The name-keyed call graph. Immutable once built.
class CallGraph {
public:
  /// Builds the graph from the per-function evidence in \p Index: one node
  /// per defined function name, one deduplicated edge per (caller name,
  /// callee name) pair where the callee is also defined in the index.
  static CallGraph build(const ProjectIndex &Index);

  size_t nodeCount() const { return Names.size(); }
  const std::string &name(uint32_t Node) const { return Names[Node]; }

  /// The node for \p Name, or npos when no scanned file defines it.
  static constexpr uint32_t npos = uint32_t(-1);
  uint32_t nodeFor(std::string_view Name) const;

  /// Callee nodes of \p Node, sorted and deduplicated.
  const std::vector<uint32_t> &callees(uint32_t Node) const {
    return Edges[Node];
  }

  /// Caller nodes of \p Node, sorted and deduplicated.
  const std::vector<uint32_t> &callers(uint32_t Node) const {
    return ReverseEdges[Node];
  }

  /// Strongly connected components in bottom-up order: every edge leaving
  /// a component targets a component that appears *earlier* in the result,
  /// so visiting the list front to back sees callees before callers.
  std::vector<std::vector<uint32_t>> sccsBottomUp() const;

  /// Every node reachable from \p Roots along call edges, roots included
  /// (unresolved root names are skipped). Sorted.
  std::vector<uint32_t> reachableFrom(const std::vector<uint32_t> &Roots) const;

private:
  std::vector<std::string> Names;
  std::map<std::string, uint32_t, std::less<>> NodeByName;
  std::vector<std::vector<uint32_t>> Edges;
  std::vector<std::vector<uint32_t>> ReverseEdges;
};

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_CALLGRAPH_H
