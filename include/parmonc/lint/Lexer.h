//===- parmonc/lint/Lexer.h - C++-aware tokenizer for mclint --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lexical front end of the mclint pipeline. Replaces the old
/// scrub-to-spaces pass with a real tokenizer: the file is split into
/// identifiers, numbers, string/character literals (including raw strings
/// and encoding prefixes), comments and punctuation, with line splices
/// (backslash-newline, C++ phase 2) removed before lexing so a spliced
/// line comment is one Comment token spanning several physical lines and a
/// spliced identifier is one Identifier token.
///
/// Every token records both its physical byte range in the original file
/// (for column-preserving scrubbing) and its logical spelling with splices
/// removed (for directive scanning). Rules and the project index consume
/// tokens; nothing downstream re-parses raw text for lexical structure.
///
/// Deliberate simplifications (this is a project linter, not a compiler):
/// splices are removed inside raw string bodies too (the standard reverts
/// them; a raw-string delimiter split across a splice would mis-lex), and
/// preprocessor lines are lexed as ordinary token soup — include/guard
/// rules read the raw lines, which the lexer leaves untouched.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_LINT_LEXER_H
#define PARMONC_LINT_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace lint {

/// Lexical class of one token.
enum class TokenKind : uint8_t {
  Identifier,  ///< Identifiers and keywords (the lexer does not separate them).
  Number,      ///< pp-number: integer/float literals incl. separators/suffixes.
  String,      ///< Ordinary string literal, with any encoding prefix.
  CharLiteral, ///< Character literal, with any encoding prefix.
  RawString,   ///< Raw string literal R"delim(...)delim", with any prefix.
  Comment,     ///< Line or block comment, markers included.
  Punct,       ///< Any other non-whitespace character (operators, #, braces).
};

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Punct;
  /// Physical byte range [Begin, End) in the original file contents,
  /// including any line splices the spelling spans.
  uint32_t Begin = 0;
  uint32_t End = 0;
  /// 0-based physical lines of the first and last byte.
  uint32_t Line = 0;
  uint32_t EndLine = 0;
  /// 0-based physical column of the first byte on Line. Computed from the
  /// physical offset, not the logical one, so a token that follows a line
  /// splice still points at its true source column (a logical-offset
  /// mapping would drift left by the removed backslash-newline bytes).
  uint32_t Column = 0;
  /// Logical spelling: the token's text with line splices removed. For
  /// comments this includes the // or /* */ markers.
  std::string Text;
};

/// Result of lexing one file.
struct LexedFile {
  std::vector<Token> Tokens;
  /// Byte offset of the first character of each physical line.
  std::vector<uint32_t> LineStarts;
};

/// Lexes \p Contents. Never fails: unterminated literals and comments are
/// closed at end of file, and any byte the grammar does not recognize
/// becomes a one-byte Punct token.
LexedFile lexFile(std::string_view Contents);

/// True for identifier characters [A-Za-z0-9_].
bool isIdentifierChar(char C);

} // namespace lint
} // namespace parmonc

#endif // PARMONC_LINT_LEXER_H
