//===- parmonc/obs/Trace.h - Chrome-trace-format span recording -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer. TraceWriter records
/// complete spans ("ph":"X") and instant events ("ph":"i") and renders
/// them as Chrome trace format JSON (load in chrome://tracing or
/// https://ui.perfetto.dev). Timestamps are nanoseconds from the run
/// clock's epoch, emitted as microseconds with 0.001 us resolution — the
/// unit Chrome expects.
///
/// Determinism contract (what the obs test harness checks): toJson()
/// sorts events by (timestamp, tid, per-writer sequence). Under an
/// injected ManualClock a single-rank run therefore produces a
/// byte-identical trace on every execution; multi-rank runs are
/// deterministic per thread lane. Events may also be recorded with
/// explicit timestamps (no clock at all), which is how the virtual-time
/// cluster model emits spans in simulated seconds.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_OBS_TRACE_H
#define PARMONC_OBS_TRACE_H

#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace obs {

/// Collects trace events; thread-safe (one mutex per record — tracing is
/// opt-in, so runs that do not attach a writer pay nothing at all).
class TraceWriter {
public:
  /// \p TimeSource is used by nowNanos()/ScopedSpan; it may be null when
  /// every event carries explicit timestamps (virtual-time producers).
  explicit TraceWriter(const Clock *TimeSource = nullptr)
      : Time(TimeSource) {}

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  bool hasClock() const { return Time != nullptr; }

  /// Current time on the attached clock. Requires hasClock().
  int64_t nowNanos() const {
    assert(Time && "TraceWriter has no clock attached");
    return Time->nowNanos();
  }

  /// Records a complete span [\p StartNanos, \p EndNanos] on lane \p Tid.
  void completeSpan(std::string_view Name, int Tid, int64_t StartNanos,
                    int64_t EndNanos);

  /// Records an instant event at \p TsNanos on lane \p Tid.
  void instantAt(std::string_view Name, int Tid, int64_t TsNanos);

  /// Records an instant event at the attached clock's current time.
  void instant(std::string_view Name, int Tid) {
    instantAt(Name, Tid, nowNanos());
  }

  size_t eventCount() const;

  /// Renders the Chrome trace JSON document: one event per line inside
  /// "traceEvents", deterministically ordered (see file comment).
  std::string toJson() const;

private:
  struct Event {
    std::string Name;
    int Tid = 0;
    int64_t TsNanos = 0;
    int64_t DurNanos = 0;
    uint64_t Seq = 0; ///< per-writer record order (tie-break within a lane)
    char Phase = 'X';
  };

  mutable std::mutex Mutex;
  std::vector<Event> Events;
  uint64_t NextSeq = 0;
  const Clock *Time;
};

} // namespace obs
} // namespace parmonc

#endif // PARMONC_OBS_TRACE_H
