//===- parmonc/obs/Stopwatch.h - Probe timers over injectable clocks ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small timing utilities that compose with the support/Clock.h injection
/// point: a Stopwatch measuring elapsed nanoseconds on any Clock, and a
/// ScopedSpan RAII probe that (optionally) emits a trace span and records
/// into a latency histogram. Both take the clock explicitly, so the same
/// probe code runs against WallClock in production and ManualClock in the
/// deterministic-trace tests — the traces come out byte-identical under a
/// fake clock because no probe ever touches std::chrono directly.
///
/// A ScopedSpan with neither sink attached performs no clock reads at all:
/// disabled observability costs two pointer compares per probe site.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_OBS_STOPWATCH_H
#define PARMONC_OBS_STOPWATCH_H

#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/support/Clock.h"

#include <string>
#include <string_view>

namespace parmonc {
namespace obs {

/// Measures elapsed time on an injected Clock.
class Stopwatch {
public:
  explicit Stopwatch(const Clock &TimeSource)
      : Time(&TimeSource), StartNanos(TimeSource.nowNanos()) {}

  int64_t startNanos() const { return StartNanos; }
  int64_t elapsedNanos() const { return Time->nowNanos() - StartNanos; }
  double elapsedSeconds() const { return double(elapsedNanos()) * 1e-9; }
  void restart() { StartNanos = Time->nowNanos(); }

private:
  const Clock *Time;
  int64_t StartNanos;
};

/// RAII probe around a scope: on destruction emits a complete trace span
/// (when \p Trace is attached) and records the duration into \p Latency
/// (when attached). With both sinks null the probe is inert and reads no
/// clock.
class ScopedSpan {
public:
  ScopedSpan(const Clock &TimeSource, std::string_view Name, int Tid,
             TraceWriter *Trace, LatencyHistogram *Latency = nullptr)
      : Time(&TimeSource), Name(Name), Tid(Tid), Trace(Trace),
        Latency(Latency),
        StartNanos(Trace || Latency ? TimeSource.nowNanos() : 0) {}

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  ~ScopedSpan() {
    if (!Trace && !Latency)
      return;
    const int64_t EndNanos = Time->nowNanos();
    if (Trace)
      Trace->completeSpan(Name, Tid, StartNanos, EndNanos);
    if (Latency)
      Latency->recordNanos(EndNanos - StartNanos);
  }

private:
  const Clock *Time;
  std::string Name;
  int Tid;
  TraceWriter *Trace;
  LatencyHistogram *Latency;
  int64_t StartNanos;
};

} // namespace obs
} // namespace parmonc

#endif // PARMONC_OBS_STOPWATCH_H
