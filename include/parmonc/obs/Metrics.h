//===- parmonc/obs/Metrics.h - Lock-cheap run-time metrics ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: named counters, gauges and
/// latency histograms collected while the engine runs. Registration (name
/// lookup) takes a mutex and happens on the cold path — once, before the
/// worker threads start; every hot-path update is a handful of relaxed
/// atomic operations on a stable reference, so instrumentation stays cheap
/// enough to leave on permanently (§2.2 argues the exchange expenses are
/// negligible; this is how we *measure* that instead of asserting it).
///
/// A MetricsSnapshot is an immutable copy of every instrument, sorted by
/// name, with byte-stable text serialization (results/metrics.dat) that
/// the mcstat tool parses back. Under an injected ManualClock the snapshot
/// is fully deterministic, which is what the obs test harness relies on.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_OBS_METRICS_H
#define PARMONC_OBS_METRICS_H

#include "parmonc/support/Status.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace obs {

/// A monotonically increasing 64-bit event count.
class Counter {
public:
  void add(int64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// A last-value-wins instantaneous measurement.
class Gauge {
public:
  void set(double NewValue) {
    Value.store(NewValue, std::memory_order_relaxed);
  }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// A histogram of durations in nanoseconds with power-of-two buckets:
/// bucket 0 holds durations <= 0 ns (possible under a frozen test clock),
/// bucket b >= 1 holds durations in [2^(b-1), 2^b - 1] ns. Recording is a
/// few relaxed atomics; there is no locking anywhere.
class LatencyHistogram {
public:
  static constexpr size_t BucketCount = 64;

  void recordNanos(int64_t Nanos) {
    Count.fetch_add(1, std::memory_order_relaxed);
    SumNanos.fetch_add(Nanos > 0 ? Nanos : 0, std::memory_order_relaxed);
    Buckets[bucketIndexFor(Nanos)].fetch_add(1, std::memory_order_relaxed);
    int64_t SeenMax = MaxNanos.load(std::memory_order_relaxed);
    while (Nanos > SeenMax &&
           !MaxNanos.compare_exchange_weak(SeenMax, Nanos,
                                           std::memory_order_relaxed))
      ;
  }

  int64_t count() const { return Count.load(std::memory_order_relaxed); }
  int64_t sumNanos() const { return SumNanos.load(std::memory_order_relaxed); }
  int64_t maxNanos() const { return MaxNanos.load(std::memory_order_relaxed); }
  int64_t bucketValue(size_t Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

  /// Bucket index a duration falls into.
  static size_t bucketIndexFor(int64_t Nanos) {
    if (Nanos <= 0)
      return 0;
    size_t Width = 64 - size_t(__builtin_clzll(uint64_t(Nanos)));
    return Width < BucketCount ? Width : BucketCount - 1;
  }

  /// Inclusive upper bound of bucket \p Index (0 for bucket 0).
  static int64_t bucketUpperNanos(size_t Index) {
    if (Index == 0)
      return 0;
    if (Index >= 63)
      return INT64_MAX;
    return (int64_t(1) << Index) - 1;
  }

private:
  std::atomic<int64_t> Count{0};
  std::atomic<int64_t> SumNanos{0};
  std::atomic<int64_t> MaxNanos{0};
  std::array<std::atomic<int64_t>, BucketCount> Buckets{};
};

/// Snapshot of one latency histogram: name, totals, and the non-empty
/// buckets as (bucket index, count) pairs.
struct LatencySummary {
  std::string Name;
  int64_t Count = 0;
  int64_t SumNanos = 0;
  int64_t MaxNanos = 0;
  std::vector<std::pair<unsigned, int64_t>> Buckets;

  double meanNanos() const {
    return Count > 0 ? double(SumNanos) / double(Count) : 0.0;
  }

  /// Upper bound (ns) of the bucket containing the \p Quantile-th fraction
  /// of recorded durations (e.g. 0.5, 0.9, 0.99). Conservative: reports
  /// the bucket ceiling. 0 when nothing was recorded.
  int64_t quantileUpperNanos(double Quantile) const;
};

/// Immutable, name-sorted copy of a registry's instruments.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<LatencySummary> Latencies;

  /// Line-oriented serialization (results/metrics.dat). Byte-stable:
  /// instruments are sorted by name and numbers use the canonical
  /// formatScientific rendering.
  std::string toFileContents() const;

  /// Parses the toFileContents() format (mcstat, tests).
  [[nodiscard]] static Result<MetricsSnapshot> fromFileContents(std::string_view Contents);

  /// JSON object rendering, for machine consumers.
  std::string toJson() const;

  /// Aligned human-readable table with humanized durations (mcstat).
  std::string toPrettyText() const;

  // Lookup helpers (null when the name is absent). Linear scans: snapshots
  // are small and these run in tests and tools only.
  const int64_t *counterValue(std::string_view Name) const;
  const double *gaugeValue(std::string_view Name) const;
  const LatencySummary *latencySummary(std::string_view Name) const;
};

/// Owns named instruments. counter()/gauge()/latency() return stable
/// references: instruments are heap-allocated and never move or disappear
/// for the registry's lifetime, so hot paths may cache the reference and
/// update it without any further locking.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates the counter named \p Name.
  Counter &counter(std::string_view Name);

  /// Finds or creates the gauge named \p Name.
  Gauge &gauge(std::string_view Name);

  /// Finds or creates the latency histogram named \p Name.
  LatencyHistogram &latency(std::string_view Name);

  /// Copies every instrument into a name-sorted snapshot. Safe to call
  /// while other threads keep updating (values are read atomically).
  MetricsSnapshot snapshot() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      Latencies;
};

} // namespace obs
} // namespace parmonc

#endif // PARMONC_OBS_METRICS_H
