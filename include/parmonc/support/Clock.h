//===- parmonc/support/Clock.h - Injectable time sources ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time abstraction used by the run engine so that the perpass/peraver
/// periodic behaviour (the paper expresses both in minutes) is testable
/// without real waiting: production code uses WallClock, tests and the
/// discrete-event cluster use ManualClock.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SUPPORT_CLOCK_H
#define PARMONC_SUPPORT_CLOCK_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace parmonc {

/// Abstract monotonic clock measured in nanoseconds from an arbitrary epoch.
class Clock {
public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since the clock's epoch. Monotonic.
  virtual int64_t nowNanos() const = 0;

  /// Blocks the calling thread for \p DurationNanos of this clock's time.
  /// Retry backoff funnels through here so tests with a ManualClock never
  /// really sleep: the manual implementation advances nothing and returns
  /// immediately (virtual time only moves when the test advances it).
  virtual void sleepNanos(int64_t DurationNanos) const = 0;

  /// Convenience: current time in (floating) seconds since the epoch.
  double nowSeconds() const { return double(nowNanos()) * 1e-9; }
};

/// Real time, backed by std::chrono::steady_clock.
class WallClock final : public Clock {
public:
  int64_t nowNanos() const override {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count();
  }

  void sleepNanos(int64_t DurationNanos) const override {
    if (DurationNanos > 0)
      std::this_thread::sleep_for(std::chrono::nanoseconds(DurationNanos));
  }
};

/// A clock advanced explicitly by the caller. Thread-safe: readers may run
/// concurrently with a single advancing writer.
class ManualClock final : public Clock {
public:
  explicit ManualClock(int64_t StartNanos = 0) : Nanos(StartNanos) {}

  int64_t nowNanos() const override {
    return Nanos.load(std::memory_order_acquire);
  }

  /// Manual time only moves via advanceNanos()/setNanos(); a sleeper must
  /// not block waiting for it (single-threaded tests would deadlock).
  void sleepNanos(int64_t) const override {}

  /// Moves the clock forward by \p DeltaNanos (>= 0).
  void advanceNanos(int64_t DeltaNanos) {
    Nanos.fetch_add(DeltaNanos, std::memory_order_acq_rel);
  }

  /// Moves the clock forward by \p Seconds.
  void advanceSeconds(double Seconds) {
    advanceNanos(int64_t(Seconds * 1e9));
  }

  /// Sets the absolute time. Must not move backwards in correct usage.
  void setNanos(int64_t NewNanos) {
    Nanos.store(NewNanos, std::memory_order_release);
  }

private:
  std::atomic<int64_t> Nanos;
};

} // namespace parmonc

#endif // PARMONC_SUPPORT_CLOCK_H
