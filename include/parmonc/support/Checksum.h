//===- parmonc/support/Checksum.h - CRC32 file seals ----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe persistence support: every durable PARMONC file (checkpoint,
/// base, rank subtotals, result files) carries a one-line versioned seal
///
///   #%parmonc-seal v1 crc32 <hex8> bytes <n>
///
/// ahead of its body. The seal makes two failure classes detectable that
/// plain text files silently absorb: short reads (a crash or full disk
/// truncated the file — `bytes` disagrees with what is actually there) and
/// bit rot / hostile edits (the CRC32 disagrees). Loaders verify the seal
/// before parsing and fall back to the previous file generation instead of
/// resuming from garbage. The line starts with '#', so seal-unaware
/// comment-skipping parsers of the legacy formats keep working.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SUPPORT_CHECKSUM_H
#define PARMONC_SUPPORT_CHECKSUM_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace parmonc {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of \p Bytes.
uint32_t crc32(std::string_view Bytes);

/// Prepends the seal line for \p Body and returns the sealed file contents.
std::string sealFileContents(std::string_view Body);

/// True if \p Contents begins with a PARMONC seal line.
bool hasFileSeal(std::string_view Contents);

/// Verifies the seal of \p Contents (read from \p Path, used only for
/// error messages) and returns the body. Fails with a descriptive Status
/// on a malformed seal, a short read (declared vs. actual byte count) or a
/// CRC mismatch.
[[nodiscard]] Result<std::string> unsealFileContents(const std::string &Path,
                                                     std::string_view Contents);

} // namespace parmonc

#endif // PARMONC_SUPPORT_CHECKSUM_H
