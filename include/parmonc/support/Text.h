//===- parmonc/support/Text.h - Small text/formatting helpers -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting and parsing helpers shared by the result-file writer, the CLI
/// tools and the benches. All number formatting funnels through here so the
/// on-disk formats stay byte-stable across the codebase.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SUPPORT_TEXT_H
#define PARMONC_SUPPORT_TEXT_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {

/// Formats \p Value in scientific notation with \p Precision significant
/// digits after the point (e.g. "1.234567890123456e+02"). This is the
/// canonical representation used in all result files; it round-trips
/// doubles exactly at Precision >= 17.
std::string formatScientific(double Value, int Precision = 17);

/// Formats \p Value with a fixed number of decimals, for human-facing logs.
std::string formatFixed(double Value, int Decimals);

/// Parses a double. Fails on trailing garbage or empty input.
[[nodiscard]] Result<double> parseDouble(std::string_view Text);

/// Parses a signed 64-bit integer in base 10. Fails on trailing garbage,
/// empty input or overflow.
[[nodiscard]] Result<int64_t> parseInt64(std::string_view Text);

/// Parses an unsigned 64-bit integer in base 10.
[[nodiscard]] Result<uint64_t> parseUInt64(std::string_view Text);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view Text);

/// Splits \p Text on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string_view> splitWhitespace(std::string_view Text);

/// Splits \p Text on each occurrence of \p Separator; empty fields are kept.
std::vector<std::string_view> splitChar(std::string_view Text, char Separator);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Reads a whole file into a string.
[[nodiscard]] Result<std::string> readFileToString(const std::string &Path);

/// Writes \p Contents to \p Path atomically and durably (write to a
/// sibling temp file, fsync, rename, fsync the directory). Used for
/// save-points so a crash mid-write never corrupts previous results — a
/// requirement for the paper's resumption feature.
[[nodiscard]] Status writeFileAtomic(const std::string &Path, std::string_view Contents);

/// Fsyncs the regular file at \p Path (platform-guarded; a no-op where
/// the platform offers no fsync). Used to make an already-renamed file's
/// contents durable before a dependent commit record is written.
[[nodiscard]] Status fsyncFile(const std::string &Path);

/// Fsyncs the directory at \p Path so completed renames and creates
/// inside it survive power loss. Best effort where directories cannot be
/// opened for reading; never fails the caller for that — returns a Status
/// only for a genuinely missing directory.
[[nodiscard]] Status fsyncDirectory(const std::string &Path);

/// Appends \p Line to \p Path durably: O_APPEND write of the whole line
/// in one call, then fsync. Unlike writeFileAtomic this never rewrites
/// existing content, so concurrent appenders and crash-interrupted
/// appends can at worst leave one torn *trailing* line — which per-line
/// checksums (see ResultsStore::appendExperimentLog) make detectable.
[[nodiscard]] Status appendLineDurable(const std::string &Path,
                                       std::string_view Line);

/// Creates \p Path and any missing parents. Ok if it already exists.
[[nodiscard]] Status createDirectories(const std::string &Path);

/// True if a regular file exists at \p Path.
bool fileExists(const std::string &Path);

} // namespace parmonc

#endif // PARMONC_SUPPORT_TEXT_H
