//===- parmonc/support/Contract.h - Invariant checking macros -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contract macros guarding the library's statistical-correctness
/// invariants. The leap-ahead stream hierarchy (§2.4, eq. 6–8) and the
/// eq.-(5) merge are only trustworthy if structural invariants — odd LCG
/// state, multiplier ≡ 5 (mod 8), matching merge shapes, monotone sample
/// volume — hold at every step; a silent violation corrupts results
/// undetectably (Mertens, "Random Number Generators: A Survival Guide").
///
///   PARMONC_ASSERT(Cond, Msg)  — always on, in every build type. Use on
///     cold paths and for invariants whose violation would silently poison
///     statistics (stream state, merge shapes).
///   PARMONC_DCHECK(Cond, Msg)  — compiled out under NDEBUG. Use on hot
///     paths or for redundant checks that are too expensive to always run.
///
/// Both print `file:line: contract violated: <condition> (<message>)` to
/// stderr and abort. They deliberately do not throw: the library is
/// exception-free, and a broken invariant means results can no longer be
/// trusted, so the only safe response is to stop the run.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SUPPORT_CONTRACT_H
#define PARMONC_SUPPORT_CONTRACT_H

namespace parmonc {
namespace detail {

/// Reports a violated contract and aborts. Out of line so the macro
/// expansion stays small at every check site.
[[noreturn]] void contractFailure(const char *File, int Line,
                                  const char *Condition, const char *Message);

} // namespace detail
} // namespace parmonc

/// Always-on invariant check.
#define PARMONC_ASSERT(Cond, Msg)                                            \
  do {                                                                       \
    if (!(Cond))                                                             \
      ::parmonc::detail::contractFailure(__FILE__, __LINE__, #Cond, Msg);    \
  } while (false)

/// Debug-only invariant check; compiled out (condition not evaluated)
/// under NDEBUG.
#ifdef NDEBUG
#define PARMONC_DCHECK(Cond, Msg)                                            \
  do {                                                                       \
  } while (false)
#else
#define PARMONC_DCHECK(Cond, Msg) PARMONC_ASSERT(Cond, Msg)
#endif

#endif // PARMONC_SUPPORT_CONTRACT_H
