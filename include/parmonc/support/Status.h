//===- parmonc/support/Status.h - Error handling without exceptions ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error propagation types. Library code does not throw; every
/// fallible operation returns a Status (or a Result<T> carrying a payload).
/// This mirrors the style of llvm::Error / llvm::Expected in spirit while
/// staying dependency-free.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SUPPORT_STATUS_H
#define PARMONC_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace parmonc {

/// Broad classification of a failure. Keep this list short: callers mostly
/// branch on success/failure and use the message for diagnostics.
enum class StatusCode {
  Ok = 0,
  InvalidArgument,
  NotFound,
  IoError,
  ParseError,
  FailedPrecondition,
  OutOfRange,
  Internal,
};

/// Returns a stable human-readable name for \p Code ("ok", "io-error", ...).
const char *statusCodeName(StatusCode Code);

/// A success/failure value with an optional diagnostic message. The type is
/// [[nodiscard]]: a fallible call whose Status is dropped is a correctness
/// bug (a failed save-point or merge would silently corrupt results), so
/// the compiler — and mclint rule R1 — reject it. Deliberate discards must
/// be spelled `(void)call(...)`.
class [[nodiscard]] Status {
public:
  /// Constructs a success status.
  Status() : Code(StatusCode::Ok) {}

  /// Constructs a failure status. \p Code must not be StatusCode::Ok; use the
  /// default constructor (or Status::ok()) for success.
  Status(StatusCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {
    assert(Code != StatusCode::Ok && "use Status::ok() for success");
  }

  /// Named constructor for the success value.
  static Status ok() { return Status(); }

  bool isOk() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return isOk(); }

  StatusCode code() const { return Code; }

  /// Diagnostic message; empty for success statuses.
  const std::string &message() const { return Message; }

  /// Renders "ok" or "<code-name>: <message>" for logs and test failures.
  std::string toString() const;

private:
  StatusCode Code;
  std::string Message;
};

/// Convenience factories matching the StatusCode enumerators.
Status invalidArgument(std::string Message);
Status notFound(std::string Message);
Status ioError(std::string Message);
Status parseError(std::string Message);
Status failedPrecondition(std::string Message);
Status outOfRange(std::string Message);
Status internalError(std::string Message);

/// A value-or-error type. Holds either a T (success) or a failure Status.
/// Accessing value() on a failed Result asserts. [[nodiscard]] for the same
/// reason as Status: dropping one drops an error.
template <typename T> class [[nodiscard]] Result {
public:
  /// Success: wraps the payload.
  Result(T Value) : Value(std::move(Value)) {}

  /// Failure: wraps a non-ok status. Asserts if \p Failure is ok, because a
  /// success status carries no payload.
  Result(Status Failure) : Failure(std::move(Failure)) {
    assert(!this->Failure.isOk() && "Result from an ok Status has no value");
  }

  bool isOk() const { return Failure.isOk(); }
  explicit operator bool() const { return isOk(); }

  /// The failure status; Status::ok() when the result holds a value.
  const Status &status() const { return Failure; }

  const T &value() const & {
    assert(isOk() && "value() on a failed Result");
    return Value;
  }
  T &value() & {
    assert(isOk() && "value() on a failed Result");
    return Value;
  }
  T &&value() && {
    assert(isOk() && "value() on a failed Result");
    return std::move(Value);
  }

  /// Returns the payload, or \p Default when this result is a failure.
  T valueOr(T Default) const & { return isOk() ? Value : std::move(Default); }

private:
  T Value{};
  Status Failure;
};

} // namespace parmonc

#endif // PARMONC_SUPPORT_STATUS_H
