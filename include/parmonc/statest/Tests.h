//===- parmonc/statest/Tests.h - RNG statistical test battery -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "rigorous statistical testing" of §2.4, reconstructed: a battery of
/// classical empirical tests (Knuth TAOCP §3.3.2 and the Marsaglia
/// tradition). Each test consumes numbers from a RandomSource and returns
/// a statistic plus an asymptotic p-value. A sound generator yields p
/// roughly uniform on (0,1); structural defects drive p toward 0.
///
/// The deliberately defective generators in rng/Baselines.h (RANDU, the
/// short-period LCG40) are the battery's negative controls; the tests on
/// the battery itself assert that they fail here while lcg128 passes.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATEST_TESTS_H
#define PARMONC_STATEST_TESTS_H

#include "parmonc/rng/RandomSource.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parmonc {

/// Outcome of one statistical test.
struct TestResult {
  std::string Name;     ///< e.g. "chi2-uniformity"
  double Statistic = 0; ///< the raw test statistic
  double PValue = 1;    ///< asymptotic p-value in [0,1]

  /// Conventional verdict at significance \p Alpha (two-sided tests fold
  /// both tails into PValue already).
  bool passesAt(double Alpha = 1e-4) const { return PValue >= Alpha; }
};

/// Chi-square goodness of fit of \p SampleCount uniforms against \p Bins
/// equal cells. df = Bins - 1.
TestResult chiSquareUniformityTest(RandomSource &Source,
                                   int64_t SampleCount, int Bins = 64);

/// One-sample Kolmogorov–Smirnov test of \p SampleCount uniforms against
/// U(0,1), with Stephens' small-sample correction.
TestResult kolmogorovSmirnovTest(RandomSource &Source, int64_t SampleCount);

/// Serial (pairs) test: chi-square of \p SampleCount consecutive
/// non-overlapping pairs on a BinsPerAxis x BinsPerAxis grid.
/// df = BinsPerAxis² - 1. Detects 2-D lattice structure.
TestResult serialPairsTest(RandomSource &Source, int64_t PairCount,
                           int BinsPerAxis = 16);

/// Serial (triples) test on a 3-D grid; df = BinsPerAxis³ - 1. This is the
/// test RANDU fails catastrophically (its triples lie on 15 planes).
TestResult serialTriplesTest(RandomSource &Source, int64_t TripleCount,
                             int BinsPerAxis = 8);

/// Runs above/below 1/2: the number of maximal same-side runs is
/// asymptotically normal; returns the two-sided p-value of the z-score.
TestResult runsTest(RandomSource &Source, int64_t SampleCount);

/// Gap test (Knuth 3.3.2D): lengths of gaps between visits to
/// [\p Low, \p High); chi-square over gap lengths 0..MaxGap with a pooled
/// tail. df = MaxGap + 1.
TestResult gapTest(RandomSource &Source, int64_t GapCount, double Low = 0.0,
                   double High = 0.5, int MaxGap = 15);

/// Lag-\p Lag serial correlation of \p SampleCount uniforms; the
/// normalized coefficient is asymptotically N(0, 1/n) under independence;
/// two-sided p-value.
TestResult autocorrelationTest(RandomSource &Source, int64_t SampleCount,
                               int Lag = 1);

/// Collision test: throw \p BallCount values into \p CellCountLog2 bits of
/// cells; the collision count is approximately Poisson(n²/2m). Two-sided
/// Poisson p-value.
TestResult collisionTest(RandomSource &Source, int64_t BallCount = 1 << 14,
                         int CellCountLog2 = 20);

/// Birthday-spacings test (Marsaglia): \p BirthdayCount birthdays in
/// 2^\p DayCountLog2 days; the number of duplicate spacings is
/// approximately Poisson(n³/4m). Two-sided Poisson p-value.
TestResult birthdaySpacingsTest(RandomSource &Source,
                                int64_t BirthdayCount = 4096,
                                int DayCountLog2 = 32);

/// Maximum-of-t test (Knuth 3.3.2C): max of t consecutive uniforms has CDF
/// x^t; chi-square of the transformed maxima. df = Bins - 1.
TestResult maximumOfTTest(RandomSource &Source, int64_t GroupCount,
                          int GroupSize = 5, int Bins = 32);

/// Poker (partition) test (Knuth 3.3.2B): hands of \p HandSize digits in
/// base \p DigitBase, classified by the number of distinct digits;
/// chi-square against the Stirling-number probabilities.
/// df = HandSize - 1.
TestResult pokerTest(RandomSource &Source, int64_t HandCount,
                     int HandSize = 5, int DigitBase = 10);

/// Coupon-collector test (Knuth 3.3.2E): lengths of segments needed to
/// collect all \p DigitBase digits, chi-square over lengths d..MaxLength
/// with a pooled tail.
TestResult couponCollectorTest(RandomSource &Source, int64_t SegmentCount,
                               int DigitBase = 5, int MaxLength = 25);

/// Runs the whole battery with default parameters sized around
/// \p SampleCount total draws per test.
std::vector<TestResult> runBattery(RandomSource &Source,
                                   int64_t SampleCount = 1 << 20);

/// True if every result passes at \p Alpha.
bool allPass(const std::vector<TestResult> &Results, double Alpha = 1e-4);

} // namespace parmonc

#endif // PARMONC_STATEST_TESTS_H
