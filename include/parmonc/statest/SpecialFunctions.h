//===- parmonc/statest/SpecialFunctions.h - p-value machinery -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Special functions needed to turn test statistics into p-values:
/// regularized incomplete gamma (chi-square tails), the Kolmogorov
/// distribution, and Poisson tail sums. Self-contained (series + continued
/// fraction, Numerical-Recipes style) so the battery has no external
/// dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATEST_SPECIALFUNCTIONS_H
#define PARMONC_STATEST_SPECIALFUNCTIONS_H

#include <cstdint>

namespace parmonc {

/// Regularized lower incomplete gamma P(s, x) = γ(s,x)/Γ(s), for s > 0,
/// x >= 0. Monotone from 0 to 1 in x.
double regularizedGammaP(double S, double X);

/// Regularized upper incomplete gamma Q(s, x) = 1 - P(s, x).
double regularizedGammaQ(double S, double X);

/// Survival function of the chi-square distribution with \p DegreesOfFreedom
/// degrees of freedom: P(X² >= Statistic) = Q(k/2, x/2).
double chiSquareSurvival(double Statistic, double DegreesOfFreedom);

/// Kolmogorov distribution complement Q_KS(λ) = 2 Σ_{j>=1} (-1)^{j-1}
/// exp(-2 j² λ²); the asymptotic p-value of the KS statistic
/// λ = (sqrt(n) + 0.12 + 0.11/sqrt(n)) · D_n.
double kolmogorovQ(double Lambda);

/// P(Poisson(Mean) <= Count) = Q(Count+1, Mean); accurate in both tails.
double poissonCdf(int64_t Count, double Mean);

/// P(Poisson(Mean) >= Count) = P(Count, Mean); accurate in both tails
/// (1 - cdf would floor at ~2e-16).
double poissonSurvival(int64_t Count, double Mean);

/// Two-sided Poisson p-value: 2·min(P(X <= Count), P(X >= Count)), capped
/// at 1. Used by the collision and birthday-spacings tests.
double poissonTwoSidedPValue(int64_t Count, double Mean);

} // namespace parmonc

#endif // PARMONC_STATEST_SPECIALFUNCTIONS_H
