//===- parmonc/ckpt/CheckpointStore.h - Sharded checkpoint store ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk side of sharded checkpointing. The store owns one directory
/// tree:
///
///   <root>/
///     staging/                    – shards are written here first
///     shards/                     – published, immutable sealed shards
///       rank<m>_s<seq>_k<K>.dat   – rank m's K-th cumulative shard
///       base_s<seq>_g<G>.dat      – merged base of generation G
///     manifest.dat                – the current committed generation
///     manifest.dat.prev           – the previous generation (rotation)
///
/// Two-phase commit: every shard of a generation is staged, fsynced and
/// renamed into shards/ first; only then is the sealed manifest renamed
/// into place (rotating the old one to .prev). A crash between the phases
/// leaves the previous manifest fully intact with all of its shards still
/// on disk — the restore ladder (manifest.dat, then manifest.dat.prev)
/// always finds a self-consistent generation. Shard files are never
/// overwritten: filenames carry the run's sequence number and a per-rank
/// write index, so a live manifest's references stay valid while newer
/// shards accumulate; commit-time pruning rotates out files no manifest
/// references anymore.
///
/// The store knows nothing about moment snapshots — shard payloads are
/// opaque bodies sealed with the standard CRC-32 file seal. core glues
/// MomentSnapshot serialization on top (core/CheckpointBridge.h), which
/// keeps this module below core in the layering DAG.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CKPT_CHECKPOINTSTORE_H
#define PARMONC_CKPT_CHECKPOINTSTORE_H

#include "parmonc/ckpt/Manifest.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace ckpt {

/// Fault-injection seam: may replace the bytes about to land at \p Path.
/// The store computes manifest CRCs over the *intended* contents before
/// consulting the hook, which models a disk corrupting data after the
/// writer believed the write succeeded — exactly what restores must catch.
using WriteInterceptor = std::function<std::optional<std::string>(
    const std::string &Path, std::string_view Contents)>;

/// Owns one sharded-checkpoint directory tree.
class CheckpointStore {
public:
  /// \p RootDir is created lazily by prepareDirectories().
  explicit CheckpointStore(std::string RootDir);

  const std::string &rootDir() const { return Root; }
  std::string stagingDir() const;
  std::string shardsDir() const;
  std::string manifestPath() const;
  std::string prevManifestPath() const;

  /// "rank<m>_s<seq>_k<K>.dat": immutable per write index, collision-free
  /// across resumed runs (resume enforces a fresh sequence number).
  static std::string shardFileName(int Rank, uint64_t SequenceNumber,
                                   int64_t WriteIndex);
  /// "base_s<seq>_g<G>.dat": one merged-base shard per generation.
  static std::string baseFileName(uint64_t SequenceNumber,
                                  int64_t Generation);

  /// Installs the fault-injection hook (testing only; empty = never).
  void setWriteInterceptor(WriteInterceptor Hook);

  /// Attaches ckpt.* counters and latencies; null detaches.
  void attachMetrics(obs::MetricsRegistry *Registry);

  /// Creates root/, staging/ and shards/. Idempotent.
  [[nodiscard]] Status prepareDirectories() const;

  /// Seals \p Body, stages it, fsyncs and publishes it under shards/ as
  /// shardFileName(Rank, SequenceNumber, WriteIndex). Returns the entry a
  /// manifest needs to reference it. Safe to call concurrently from many
  /// ranks (threads or forked processes): every writer owns its own
  /// filename. Durability of the publish rename is deferred to the next
  /// commit's directory fsync — a shard is meaningless until a manifest
  /// references it, and the manifest only commits after that fsync.
  [[nodiscard]] Result<ShardEntry> writeShard(int Rank,
                                              uint64_t SequenceNumber,
                                              int64_t WriteIndex,
                                              std::string_view Body,
                                              int64_t Volume) const;

  /// Everything one commit needs. The base body is carried by value so a
  /// background writer can own the request outright.
  struct CommitRequest {
    int64_t Generation = 0;
    uint64_t SequenceNumber = 0;
    int RankCount = 0;
    /// Unsealed body of the merged-base shard.
    std::string BaseBody;
    int64_t BaseVolume = 0;
    /// Latest published shard per contributing rank (any order).
    std::vector<ShardEntry> Shards;
    /// Rotation: per-rank shard files retained beyond the manifest-
    /// referenced ones (>= 1).
    int KeepShards = 2;
  };

  /// Commits one generation: writes the base shard, fsyncs the shards
  /// directory (making every rank's published shards durable), rotates
  /// manifest.dat to .prev, writes the sealed manifest atomically, then
  /// prunes files no live manifest references. Pruning is best-effort;
  /// its failures never fail the commit.
  [[nodiscard]] Status commit(const CommitRequest &Request) const;

  /// Reads and unseals one manifest file. No fallback: callers outside
  /// ckpt/ must use restoreWithFallback() (or spell their own .prev
  /// ladder) — enforced by mclint rule R7.
  [[nodiscard]] Result<Manifest>
  readManifest(const std::string &Path) const;

  /// One shard's unsealed payload as recovered by a restore.
  struct RestoredShard {
    int Rank = -1;
    std::string Body;
    int64_t Volume = 0;
  };

  /// A fully validated checkpoint generation.
  struct RestoredGeneration {
    Manifest Source;
    std::string BaseBody;
    /// Ascending rank order.
    std::vector<RestoredShard> Shards;
    /// True when manifest.dat was rejected and .prev was restored.
    bool FromBackup = false;
    /// Why the primary generation was rejected (empty when !FromBackup).
    std::string PrimaryError;
  };

  /// Validates and loads the generation \p ManifestPath describes: the
  /// manifest must unseal and parse, and every referenced shard must
  /// exist with exactly the recorded byte count and CRC-32 before it is
  /// unsealed. Any failure rejects the whole generation.
  [[nodiscard]] Result<RestoredGeneration>
  restoreGeneration(const std::string &ManifestPath) const;

  /// The recovery ladder: restoreGeneration(manifest.dat), falling back
  /// to manifest.dat.prev when the current generation is missing or fails
  /// any validation. Reports the primary's error when both fail.
  [[nodiscard]] Result<RestoredGeneration> restoreWithFallback() const;

  /// True if manifest.dat or manifest.dat.prev exists (i.e. a sharded
  /// checkpoint has ever been committed here).
  bool hasAnyManifest() const;

  /// Removes the whole checkpoint tree (the res=0 fresh-start behaviour).
  [[nodiscard]] Status removeAll() const;

private:
  [[nodiscard]] Result<ShardEntry>
  publishSealed(const std::string &FileName, std::string_view Body,
                int Rank, int64_t Volume) const;
  void pruneCommitted(const Manifest &Current, int KeepShards) const;

  std::string Root;
  WriteInterceptor Interceptor;
  obs::MetricsRegistry *Metrics = nullptr;
};

} // namespace ckpt
} // namespace parmonc

#endif // PARMONC_CKPT_CHECKPOINTSTORE_H
