//===- parmonc/ckpt/Manifest.h - Checkpoint generation manifest -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The commit record of one sharded checkpoint generation. A generation is
/// a set of immutable, CRC-sealed shard files (one merged base plus one
/// cumulative shard per contributing rank) plus this manifest, which lists
/// every shard with its CRC-32 and byte count. The manifest is the *commit
/// point*: shards land first, the sealed manifest is renamed into place
/// last, so an interrupted save can never make a half-written generation
/// visible — a reader either sees the previous manifest or a fully
/// described new one. The format is line-oriented text (like every other
/// PARMONC durable file) and is strict on purpose: any unknown directive,
/// duplicate rank, count mismatch or missing `end` terminator is a parse
/// error, because a manifest that fails validation must route the restore
/// to the previous generation, never be "partially" trusted.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CKPT_MANIFEST_H
#define PARMONC_CKPT_MANIFEST_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace ckpt {

/// One shard referenced by a manifest. \p File is a bare filename inside
/// the store's shards directory — never a path — so a hostile or corrupted
/// manifest cannot direct reads outside the checkpoint tree.
struct ShardEntry {
  /// Contributing rank; -1 for the merged-base shard.
  int Rank = -1;

  /// Filename of the sealed shard inside the shards directory.
  std::string File;

  /// CRC-32 over the full sealed file bytes as the writer intended them.
  /// Restores verify the on-disk bytes against this before unsealing, so
  /// a shard that was silently swapped, truncated or bit-rotted after its
  /// own write is still caught at the manifest level.
  uint32_t Crc = 0;

  /// Exact size of the sealed file in bytes (short-read detection).
  uint64_t Bytes = 0;

  /// Sample volume the shard carries (diagnostics and recovery reports).
  int64_t Volume = 0;
};

/// A parsed (or to-be-written) checkpoint manifest.
struct Manifest {
  /// Save-point index that produced this generation (1-based per run).
  int64_t Generation = 0;

  /// Experiment subsequence number of the run that committed it.
  uint64_t SequenceNumber = 0;

  /// Rank count of the committing run; shard ranks must lie below it.
  int RankCount = 0;

  /// The merged-base shard (resumed volume at run start).
  ShardEntry Base;

  /// Per-rank cumulative shards, sorted by ascending rank. Ranks that had
  /// not reported a shard by commit time are simply absent — cumulative
  /// subtotals make a missing rank a freshness loss, never corruption.
  std::vector<ShardEntry> Shards;

  /// Serializes to the manifest text format (the body that gets sealed).
  /// Shard lines are emitted in ascending rank order regardless of the
  /// vector's order, so equal manifests serialize byte-identically.
  std::string toFileContents() const;

  /// Strict parser for the manifest text format. \p Path is used only for
  /// error messages.
  [[nodiscard]] static Result<Manifest>
  fromFileContents(const std::string &Path, std::string_view Contents);
};

} // namespace ckpt
} // namespace parmonc

#endif // PARMONC_CKPT_MANIFEST_H
