//===- parmonc/ckpt/BackgroundWriter.h - Non-blocking commit queue --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decouples the collector's save-point path from checkpoint disk I/O: the
/// owner hands a CommitRequest to enqueue() — a memcpy-sized hand-off —
/// and a dedicated writer thread performs the store commit. The queue is
/// bounded; when commits fall behind, backpressure is *skip-and-coalesce*:
/// the oldest still-queued request is dropped in favour of the newest one.
/// That is always safe for checkpoints — every request carries the full
/// cumulative state, so committing generation N subsumes generation N-1 —
/// and the drop is observable (coalescedCount(), "ckpt.coalesced_saves",
/// RunReport::CoalescedCheckpoints), never silent.
///
/// Concurrency is message-passing only: a work mailbox in, a result
/// mailbox out (the blessed mpsim primitives — no raw threads, mutexes or
/// atomics in this module, per lint rule R3). All public methods belong to
/// the single owner thread.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CKPT_BACKGROUNDWRITER_H
#define PARMONC_CKPT_BACKGROUNDWRITER_H

#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/mpsim/Communicator.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <memory>

namespace parmonc {
namespace ckpt {

/// One writer thread committing checkpoint generations off the save path.
class BackgroundWriter {
public:
  /// Spawns the writer thread. \p QueueDepth >= 1 bounds the number of
  /// pending commits before enqueue() starts coalescing. \p Store must
  /// outlive the writer; \p Registry may be null.
  BackgroundWriter(const CheckpointStore &Store, int QueueDepth,
                   obs::MetricsRegistry *Registry);

  /// Stops the writer if still running (draining queued commits first).
  ~BackgroundWriter();

  BackgroundWriter(const BackgroundWriter &) = delete;
  BackgroundWriter &operator=(const BackgroundWriter &) = delete;

  /// Hands one commit to the writer and returns immediately. When the
  /// queue is at capacity the oldest pending request is coalesced away
  /// first (newest-wins); returns false exactly when that happened.
  bool enqueue(CheckpointStore::CommitRequest Request);

  /// Blocks until every commit enqueued so far has been written. Returns
  /// the first commit error seen over the writer's lifetime.
  [[nodiscard]] Status drain();

  /// Drains queued commits, stops the thread and joins it. Idempotent.
  /// Returns the first commit error seen over the writer's lifetime.
  [[nodiscard]] Status stop();

  /// Simulated crash: discards every queued commit and joins the thread
  /// without writing them — the on-disk state stays at the last finished
  /// commit, exactly as if the process had been killed.
  void abandon();

  /// Requests coalesced away by backpressure so far (owner thread only).
  int64_t coalescedCount() const { return Coalesced; }

  /// Commits the writer thread has completed successfully, as observed by
  /// the owner (refreshed by enqueue()/drain()/stop()).
  int64_t committedCount() const { return Committed; }

private:
  void writerLoop();
  void recordResult(const Message &Response);
  void drainResponses();

  const CheckpointStore &Store;
  const int QueueDepth;
  obs::MetricsRegistry *Metrics = nullptr;

  /// Owner -> writer: commit requests, barrier probes, stop.
  Mailbox Work;
  /// Writer -> owner: per-commit results, barrier acks.
  Mailbox Done;
  std::unique_ptr<WorkerGroup> Writer;

  // Owner-thread state (never touched by the writer thread).
  bool Stopped = false;
  int64_t Coalesced = 0;
  int64_t Committed = 0;
  uint64_t BarrierToken = 0;
  Status FirstError;
};

} // namespace ckpt
} // namespace parmonc

#endif // PARMONC_CKPT_BACKGROUNDWRITER_H
