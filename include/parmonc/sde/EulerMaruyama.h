//===- parmonc/sde/EulerMaruyama.h - SDE integration (eq. 9) --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "generalized Euler method" of §4, eq. (9): for the d-dimensional
/// system  dy(t) = a(t,y) dt + b(t,y) dw(t)  the scheme is
///
///   y^{(n+1)} = y^{(n)} + h a(t_n, y^{(n)}) + sqrt(h) b(t_n, y^{(n)}) ξ^{(n)}
///
/// with ξ^{(n)} i.i.d. standard normal vectors. The paper's performance
/// test uses the constant-coefficient case dy = C dt + D dw, for which the
/// scheme is exact in expectation (E y(t_i) = y(0) + C t_i) — that exactness
/// is what the integration tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SDE_EULERMARUYAMA_H
#define PARMONC_SDE_EULERMARUYAMA_H

#include "parmonc/rng/RandomSource.h"
#include "parmonc/sde/Distributions.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace parmonc {

/// Coefficients of a general (possibly nonlinear, time-dependent) SDE
/// system. Both callbacks fill caller-provided buffers.
struct SdeSystem {
  /// State dimension d.
  size_t Dimension = 0;
  /// Driving-noise dimension m (columns of the diffusion matrix).
  size_t NoiseDimension = 0;
  /// Drift a(t, y): writes d values into \p DriftOut.
  std::function<void(double Time, const double *State, double *DriftOut)>
      Drift;
  /// Diffusion b(t, y): writes the d x m matrix (row-major) into
  /// \p DiffusionOut.
  std::function<void(double Time, const double *State, double *DiffusionOut)>
      Diffusion;
};

/// A constant-coefficient linear system dy = C dt + D dw (the paper's §4
/// test problem shape). Exact moments: E y(t) = y0 + C t and
/// Cov y(t) = D Dᵀ t — used by the validation tests.
struct LinearSdeSystem {
  std::vector<double> InitialState;   ///< y(0), length d
  std::vector<double> DriftVector;    ///< C, length d
  std::vector<double> DiffusionMatrix; ///< D, d x m row-major
  size_t NoiseDimension = 0;          ///< m

  size_t dimension() const { return InitialState.size(); }

  /// Wraps the constant coefficients in the generic callback form.
  SdeSystem toSystem() const;

  /// E y_j(t) = y0_j + C_j t.
  double exactMean(size_t Component, double Time) const;

  /// Var y_j(t) = (D Dᵀ)_jj t.
  double exactVariance(size_t Component, double Time) const;
};

/// Euler–Maruyama integrator. Stateless across trajectories; every
/// trajectory consumes randomness only from the RandomSource passed in,
/// which is what lets the run engine hand each realization its own stream.
class EulerMaruyama {
public:
  /// \p StepSize is the mesh h > 0 of eq. (9).
  EulerMaruyama(SdeSystem System, double StepSize);

  /// Integrates one trajectory from \p InitialState (length d) at time 0 to
  /// time \p EndTime, sampling the state at each time in \p OutputTimes
  /// (strictly increasing, within (0, EndTime]). Writes the samples
  /// row-major into \p Samples: OutputTimes.size() rows x d columns.
  /// Sampling happens at the first mesh point >= the requested time.
  void simulateTrajectory(RandomSource &Source, const double *InitialState,
                          double EndTime,
                          const std::vector<double> &OutputTimes,
                          double *Samples) const;

  /// Single trajectory, final state only.
  std::vector<double> simulateToEnd(RandomSource &Source,
                                    const std::vector<double> &InitialState,
                                    double EndTime) const;

  double stepSize() const { return StepSize; }
  const SdeSystem &system() const { return System; }

private:
  SdeSystem System;
  double StepSize;
};

/// The PARMONC performance-test problem (§4): a 2-D linear SDE on [0,100]
/// whose component expectations are evaluated at the 1000 output times
/// t_i = i/10. The paper's scanned coefficient values are not legible, so
/// this reproduction fixes documented stand-ins (see DESIGN.md §2); the
/// experiment's behaviour depends only on the per-realization *cost*, which
/// is set by the mesh, not by the coefficient values.
struct PaperDiffusionProblem {
  /// Number of output times (rows of the realization matrix): 1000.
  static constexpr size_t OutputCount = 1000;
  /// Matrix columns: the 2 components of the solution.
  static constexpr size_t Dimension = 2;
  /// End of the time interval: 100.
  static constexpr double EndTime = 100.0;

  /// The system: y(0) = (1, -1), C = (1.0, -0.5),
  /// D = [[1.0, 0.2], [0.2, 1.0]].
  static LinearSdeSystem makeSystem();

  /// Output times t_i = i * 0.1, i = 1..1000.
  static std::vector<double> outputTimes();

  /// Simulates one realization of the 1000 x 2 matrix [ζ_ij] = y_j(t_i)
  /// using mesh \p StepSize; writes row-major into \p Out (2000 doubles).
  /// The paper uses h = 1e-6 (1e8 steps, τ ≈ 7.7 s on 2011 hardware);
  /// tests and thread-scaling benches pass coarser meshes.
  static void simulateRealization(RandomSource &Source, double StepSize,
                                  double *Out);
};

} // namespace parmonc

#endif // PARMONC_SDE_EULERMARUYAMA_H
