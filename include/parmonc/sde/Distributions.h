//===- parmonc/sde/Distributions.h - Samplers over a RandomSource ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distribution samplers built on the base random numbers of eq. (2):
/// every complex variable is a function of uniforms drawn from a
/// RandomSource, so all samplers here take the source as an argument and
/// contain no generator state of their own (except the documented
/// Box–Muller spare). That keeps them usable inside PARMONC realization
/// routines, where the engine supplies a per-realization stream.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SDE_DISTRIBUTIONS_H
#define PARMONC_SDE_DISTRIBUTIONS_H

#include "parmonc/rng/RandomSource.h"
#include "parmonc/support/Status.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parmonc {

/// Uniform on [Low, High).
double sampleUniform(RandomSource &Source, double Low, double High);

/// Standard normal via Box–Muller (two uniforms -> two normals; the second
/// is *not* cached — realization independence forbids state that survives
/// across realization boundaries).
double sampleStandardNormal(RandomSource &Source);

/// Normal with the given mean and standard deviation (>= 0).
double sampleNormal(RandomSource &Source, double Mean, double StdDev);

/// A pair of independent standard normals from one Box–Muller transform —
/// use this in inner loops that need normals in bulk (e.g. SDE steps) to
/// avoid discarding half of the transform.
struct NormalPair {
  double First;
  double Second;
};
NormalPair sampleStandardNormalPair(RandomSource &Source);

/// Exponential with rate \p Rate > 0 (mean 1/Rate), by inversion.
double sampleExponential(RandomSource &Source, double Rate);

/// Bernoulli with success probability \p Probability in [0,1].
bool sampleBernoulli(RandomSource &Source, double Probability);

/// Poisson with mean \p Mean > 0. Knuth's product method for small means,
/// the PTRD-style transformed-rejection for large ones; O(1) expected time
/// for large means.
int64_t samplePoisson(RandomSource &Source, double Mean);

/// Geometric: number of Bernoulli(p) failures before the first success.
int64_t sampleGeometric(RandomSource &Source, double Probability);

/// Gamma with shape \p Shape > 0 and scale \p Scale > 0 (mean
/// Shape*Scale). Marsaglia–Tsang squeeze for Shape >= 1, with the
/// standard boosting transform for Shape < 1.
double sampleGamma(RandomSource &Source, double Shape, double Scale = 1.0);

/// Beta(α, β) via two gammas.
double sampleBeta(RandomSource &Source, double Alpha, double Beta);

/// Binomial(n, p) by direct Bernoulli summation for small n and by the
/// beta-splitting recursion (BTPE-free, exact) for large n; O(min(n, ~30))
/// expected work.
int64_t sampleBinomial(RandomSource &Source, int64_t Trials,
                       double Probability);

/// Chi-square with \p DegreesOfFreedom > 0: Gamma(k/2, 2).
double sampleChiSquare(RandomSource &Source, double DegreesOfFreedom);

/// Student-t with \p DegreesOfFreedom > 0: normal / sqrt(chi2/ν).
double sampleStudentT(RandomSource &Source, double DegreesOfFreedom);

/// Lognormal: exp(Normal(MeanLog, SdLog)).
double sampleLognormal(RandomSource &Source, double MeanLog, double SdLog);

/// In-place lower Cholesky factor of a symmetric positive-definite matrix
/// (row-major d x d). Fails on non-positive-definite input. The strict
/// upper triangle of the output is zeroed.
[[nodiscard]] Status choleskyFactor(std::vector<double> &Matrix, size_t Dimension);

/// Correlated normal vectors: X = Mean + L Z with L a lower-triangular
/// factor (e.g. from choleskyFactor) and Z i.i.d. standard normal. The
/// factor is validated once at construction; sampling is allocation-free.
class MultivariateNormal {
public:
  /// \p Covariance is row-major d x d SPD; factored internally.
  /// Construction fails (asserts in debug, produces a degenerate sampler
  /// flagged by isValid() in release) on non-SPD input.
  MultivariateNormal(std::vector<double> Mean,
                     std::vector<double> Covariance);

  bool isValid() const { return Valid; }
  size_t dimension() const { return Mean.size(); }

  /// Draws one vector into \p Out (length dimension()).
  void sample(RandomSource &Source, double *Out) const;

  /// The lower Cholesky factor (row-major), for tests.
  const std::vector<double> &factor() const { return Factor; }

private:
  std::vector<double> Mean;
  std::vector<double> Factor;
  bool Valid = false;
};

/// Walker alias table: O(1) sampling from a fixed discrete distribution.
/// Build cost is O(n); the table is immutable afterwards and safe to share
/// across threads.
class AliasTable {
public:
  /// \p Weights must be non-empty, non-negative, with a positive sum; they
  /// are normalized internally.
  explicit AliasTable(const std::vector<double> &Weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. Consumes exactly one base random number.
  size_t sample(RandomSource &Source) const;

  size_t size() const { return Probability.size(); }

  /// Normalized probability of outcome \p Index (for tests).
  double probabilityOf(size_t Index) const;

private:
  std::vector<double> Probability; ///< acceptance threshold per cell
  std::vector<size_t> Alias;       ///< fallback outcome per cell
  std::vector<double> Normalized;  ///< original normalized weights
};

} // namespace parmonc

#endif // PARMONC_SDE_DISTRIBUTIONS_H
