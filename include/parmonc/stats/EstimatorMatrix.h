//===- parmonc/stats/EstimatorMatrix.h - Matrix moment accumulation -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The estimator algebra of §2.1–2.2. A realization of the random object is
/// an n_row x n_col matrix [ζ_ij]; the library accumulates raw moment sums
///
///   S_ij = Σ ζ_ij,   Q_ij = Σ ζ_ij²,   volume l,
///
/// from which it derives the matrices PARMONC saves: sample means ζ̄_ij,
/// sample variances σ²_ij = ξ̄_ij - ζ̄²_ij, absolute errors
/// ε_ij = γ σ_ij l^-1/2 and relative errors ρ_ij = ε_ij/|ζ̄_ij|·100%, plus
/// their maxima. Keeping *sums* (not means) makes the cross-processor merge
/// of eq. (5) and run resumption exact: both are plain additions.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATS_ESTIMATORMATRIX_H
#define PARMONC_STATS_ESTIMATORMATRIX_H

#include "parmonc/stats/Confidence.h"
#include "parmonc/support/Status.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace parmonc {

/// Derived per-entry statistics at a given moment of the simulation.
struct EntryStatistics {
  double Mean = 0.0;          ///< ζ̄_ij
  double Variance = 0.0;      ///< σ²_ij (clamped at 0 against rounding)
  double AbsoluteError = 0.0; ///< ε_ij = γ σ l^-1/2
  double RelativeError = 0.0; ///< ρ_ij in percent; +inf when the mean is 0
};

/// Upper bounds over all matrix entries (the ε_max, ρ_max, σ²_max of §2.1).
struct ErrorBounds {
  double MaxAbsoluteError = 0.0;
  double MaxRelativeError = 0.0;
  double MaxVariance = 0.0;
};

/// Accumulates realizations of a matrix-valued random object and produces
/// the derived statistic matrices. Row-major storage.
class EstimatorMatrix {
public:
  /// An empty accumulator for \p Rows x \p Columns objects (both >= 1).
  EstimatorMatrix(size_t Rows, size_t Columns);

  /// Default-constructs a 1x1 accumulator (scalar estimators).
  EstimatorMatrix() : EstimatorMatrix(1, 1) {}

  size_t rows() const { return Rows; }
  size_t columns() const { return Columns; }
  size_t entryCount() const { return Rows * Columns; }

  /// Total number of accumulated realizations l.
  int64_t sampleVolume() const { return Volume; }

  /// Adds one realization. \p Realization is row-major with entryCount()
  /// elements.
  void accumulate(const double *Realization);
  void accumulate(const std::vector<double> &Realization) {
    assert(Realization.size() == entryCount() &&
           "realization has wrong shape");
    accumulate(Realization.data());
  }

  /// Adds another accumulator's raw sums into this one — eq. (5), used both
  /// for collecting processor subtotals on rank 0 and for resumption.
  /// Shapes must match.
  [[nodiscard]] Status merge(const EstimatorMatrix &Other);

  /// Raw moment sums (needed by the checkpoint format).
  const std::vector<double> &valueSums() const { return SumValues; }
  const std::vector<double> &squareSums() const { return SumSquares; }

  /// Rebuilds an accumulator from checkpointed raw sums.
  [[nodiscard]] static Result<EstimatorMatrix> fromRawSums(size_t Rows, size_t Columns,
                                             std::vector<double> ValueSums,
                                             std::vector<double> SquareSums,
                                             int64_t Volume);

  /// Derived statistics of entry (\p Row, \p Column). Requires a positive
  /// sample volume. \p ErrorMultiplier is γ(λ); the default is the paper's
  /// γ = 3 (λ = 0.997).
  EntryStatistics entryStatistics(
      size_t Row, size_t Column,
      double ErrorMultiplier = DefaultErrorMultiplier) const;

  /// Full derived matrices, row-major. Each output vector is resized to
  /// entryCount(). Any pointer may be null to skip that matrix.
  void computeMatrices(std::vector<double> *Means,
                       std::vector<double> *AbsoluteErrors,
                       std::vector<double> *RelativeErrors,
                       std::vector<double> *Variances,
                       double ErrorMultiplier = DefaultErrorMultiplier) const;

  /// ε_max, ρ_max, σ²_max over all entries. Entries with zero mean are
  /// excluded from ρ_max (their relative error is undefined), matching
  /// what a user can meaningfully bound.
  ErrorBounds errorBounds(
      double ErrorMultiplier = DefaultErrorMultiplier) const;

  /// Forgets all accumulated data.
  void reset();

private:
  size_t Rows;
  size_t Columns;
  int64_t Volume = 0;
  std::vector<double> SumValues;
  std::vector<double> SumSquares;
};

} // namespace parmonc

#endif // PARMONC_STATS_ESTIMATORMATRIX_H
