//===- parmonc/stats/HistogramEstimator.h - Density estimation ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.1 closes with "the above-mentioned matrices ... give exhaustive
/// information" — for means. Many stochastic-simulation users also need
/// the *distribution* of a scalar observable. HistogramEstimator
/// accumulates a fixed-grid histogram with the same algebraic properties
/// the engine requires of EstimatorMatrix: counts are raw sums, so
/// cross-processor merging and resumption are exact additions, and the
/// density estimate with its per-bin 3σ error falls out of the binomial
/// counts.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATS_HISTOGRAMESTIMATOR_H
#define PARMONC_STATS_HISTOGRAMESTIMATOR_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parmonc {

/// A fixed, equal-width binning of [Low, High) with underflow/overflow
/// side bins. Exactly mergeable.
class HistogramEstimator {
public:
  /// \p BinCount >= 1 equal bins covering [\p Low, \p High), Low < High.
  HistogramEstimator(double Low, double High, size_t BinCount);

  /// Default: unit interval, 64 bins.
  HistogramEstimator() : HistogramEstimator(0.0, 1.0, 64) {}

  double low() const { return Low; }
  double high() const { return High; }
  size_t binCount() const { return Counts.size(); }
  double binWidth() const { return (High - Low) / double(Counts.size()); }

  /// Total observations including the side bins.
  int64_t totalCount() const { return Total; }
  int64_t underflowCount() const { return Underflow; }
  int64_t overflowCount() const { return Overflow; }

  /// Adds one observation.
  void add(double Value);

  /// Raw count of bin \p Index.
  int64_t countOf(size_t Index) const;

  /// Left edge of bin \p Index.
  double binLeftEdge(size_t Index) const;

  /// Estimated probability mass of bin \p Index: count / total.
  double massOf(size_t Index) const;

  /// Estimated density at bin \p Index: mass / bin width.
  double densityOf(size_t Index) const;

  /// 3σ absolute error of the bin's mass estimate (binomial):
  /// 3 sqrt(p(1-p)/n) with p the estimated mass.
  double massErrorOf(size_t Index, double ErrorMultiplier = 3.0) const;

  /// Exact merge of another histogram with identical geometry.
  [[nodiscard]] Status merge(const HistogramEstimator &Other);

  /// Serializes to a line-oriented text format (same conventions as the
  /// snapshot files).
  std::string toFileContents() const;

  /// Parses the text format back.
  [[nodiscard]] static Result<HistogramEstimator> fromFileContents(
      std::string_view Contents);

  /// Empirical CDF at \p Value (fraction of observations <= Value,
  /// resolved at bin granularity; side bins count as below/above).
  double cdfAt(double Value) const;

  void reset();

private:
  double Low;
  double High;
  std::vector<int64_t> Counts;
  int64_t Underflow = 0;
  int64_t Overflow = 0;
  int64_t Total = 0;
};

} // namespace parmonc

#endif // PARMONC_STATS_HISTOGRAMESTIMATOR_H
