//===- parmonc/stats/Confidence.h - Normal quantiles & intervals ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Confidence-interval support for §2.1, eq. (3): the half-width of the
/// level-λ interval is γ(λ) * σ * L^-1/2 where γ(λ) is the (1+λ)/2
/// standard-normal quantile. PARMONC's reported "absolute error" fixes
/// λ = 0.997, γ = 3; this module generalizes to arbitrary levels.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATS_CONFIDENCE_H
#define PARMONC_STATS_CONFIDENCE_H

namespace parmonc {

/// The confidence level and multiplier PARMONC reports by default:
/// λ = 0.997 with γ(λ) rounded to 3, per §2.1.
inline constexpr double DefaultConfidenceLevel = 0.997;
inline constexpr double DefaultErrorMultiplier = 3.0;

/// Standard normal cumulative distribution function Φ(x).
double normalCdf(double X);

/// Inverse of the standard normal CDF (Acklam's rational approximation with
/// one Halley refinement; relative error well below 1e-12 on (0,1)).
/// \p Probability must be strictly inside (0,1).
double normalQuantile(double Probability);

/// γ(λ) = Φ⁻¹((1+λ)/2), the two-sided multiplier for confidence level
/// \p Level in (0,1). γ(0.997) ≈ 2.9677 (the paper rounds it to 3).
double confidenceMultiplier(double Level);

/// A symmetric confidence interval [Center - HalfWidth, Center + HalfWidth].
struct ConfidenceInterval {
  double Center = 0.0;
  double HalfWidth = 0.0;

  double lower() const { return Center - HalfWidth; }
  double upper() const { return Center + HalfWidth; }
  bool contains(double Value) const {
    return Value >= lower() && Value <= upper();
  }
};

/// Interval for an expectation given its sample mean, sample standard
/// deviation and sample volume: half-width γ(Level)·σ·L^-1/2.
ConfidenceInterval makeMeanInterval(double Mean, double StdDev,
                                    double SampleVolume,
                                    double Level = DefaultConfidenceLevel);

} // namespace parmonc

#endif // PARMONC_STATS_CONFIDENCE_H
