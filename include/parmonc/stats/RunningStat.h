//===- parmonc/stats/RunningStat.h - Welford scalar accumulator -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A numerically stable scalar mean/variance accumulator (Welford). The
/// run engine uses it for the per-realization timing statistics reported
/// in func_log.dat (the paper's "mean computer time per realization"), and
/// tests use it as an independent cross-check of EstimatorMatrix, whose
/// sum-based formulas are dictated by the mergeability requirement.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_STATS_RUNNINGSTAT_H
#define PARMONC_STATS_RUNNINGSTAT_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace parmonc {

/// Single-pass mean / variance / min / max of a scalar sample.
class RunningStat {
public:
  void add(double Value) {
    ++Count;
    const double Delta = Value - Mean;
    Mean += Delta / double(Count);
    SumSquaredDeltas += Delta * (Value - Mean);
    if (Count == 1 || Value < Minimum)
      Minimum = Value;
    if (Count == 1 || Value > Maximum)
      Maximum = Value;
  }

  int64_t count() const { return Count; }

  double mean() const {
    assert(Count > 0 && "mean of an empty sample");
    return Mean;
  }

  /// Population (biased) variance, matching the paper's σ² convention.
  double variance() const {
    assert(Count > 0 && "variance of an empty sample");
    return SumSquaredDeltas / double(Count);
  }

  /// Unbiased (n-1) variance, for tests that need it.
  double sampleVariance() const {
    assert(Count > 1 && "sample variance needs at least two points");
    return SumSquaredDeltas / double(Count - 1);
  }

  double stdDev() const { return std::sqrt(variance()); }

  double min() const {
    assert(Count > 0 && "min of an empty sample");
    return Minimum;
  }

  double max() const {
    assert(Count > 0 && "max of an empty sample");
    return Maximum;
  }

  /// Combines two disjoint samples (Chan et al. parallel update).
  void merge(const RunningStat &Other) {
    if (Other.Count == 0)
      return;
    if (Count == 0) {
      *this = Other;
      return;
    }
    const double TotalCount = double(Count + Other.Count);
    const double Delta = Other.Mean - Mean;
    SumSquaredDeltas += Other.SumSquaredDeltas +
                        Delta * Delta * double(Count) * double(Other.Count) /
                            TotalCount;
    Mean += Delta * double(Other.Count) / TotalCount;
    Count += Other.Count;
    Minimum = std::fmin(Minimum, Other.Minimum);
    Maximum = std::fmax(Maximum, Other.Maximum);
  }

  void reset() { *this = RunningStat(); }

private:
  int64_t Count = 0;
  double Mean = 0.0;
  double SumSquaredDeltas = 0.0;
  double Minimum = 0.0;
  double Maximum = 0.0;
};

} // namespace parmonc

#endif // PARMONC_STATS_RUNNINGSTAT_H
