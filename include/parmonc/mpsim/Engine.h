//===- parmonc/mpsim/Engine.h - Transport-selecting rank engine -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// runEngine() is the transport-agnostic "launch as an MPI job"
/// substitute: it hosts RankCount copies of a rank body — as threads over
/// the in-process fabric, or as forked worker processes over CRC-framed
/// socket pairs — and hands each one a Communicator. Rank 0 always runs
/// on the calling thread's side of the fence (in the calling process under
/// both transports), so collector state, run reports and result files
/// written by rank 0 stay visible to the caller either way. That is what
/// lets the same Runner/collector/checkpoint code run unchanged across
/// backends, with the thread engine as the differential oracle.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_ENGINE_H
#define PARMONC_MPSIM_ENGINE_H

#include "parmonc/mpsim/Communicator.h"
#include "parmonc/mpsim/Transport.h"

#include <functional>

namespace parmonc {

/// Cross-cutting knobs of a run, shared by both transports.
struct EngineOptions {
  /// Observability sink; the thread engine registers comm.* on its fabric,
  /// the process engine adds transport.* router counters.
  obs::MetricsRegistry *Metrics = nullptr;

  /// Fault hook consulted on every send attempt, in both transports at
  /// the same protocol points — deterministic injectors therefore replay
  /// the same per-source fault sequence over threads and sockets.
  SendFaultHook FaultHook;

  /// Clock timing Delay verdicts and retry backoff.
  const Clock *FaultClock = nullptr;

  /// Process transport only: how long the supervisor waits for worker
  /// processes to exit after rank 0 finishes before escalating to
  /// SIGKILL. Keeps a wedged worker from hanging the run forever.
  int64_t TeardownGraceNanos = 10'000'000'000;
};

/// Hosts \p RankCount ranks of \p Body under \p Kind and returns the
/// engine-level diagnostics. Blocking; returns once rank 0 finished and —
/// under the process transport — every worker process was reaped.
[[nodiscard]] Result<EngineReport>
runEngine(TransportKind Kind, int RankCount,
          const std::function<void(Communicator &)> &Body,
          const EngineOptions &Options = {});

} // namespace parmonc

#endif // PARMONC_MPSIM_ENGINE_H
