//===- parmonc/mpsim/Transport.h - Rank transport selection ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How the ranks of one run are hosted: as threads sharing one address
/// space (the original mpsim fabric, DESIGN.md §2), or as separate OS
/// processes exchanging CRC-framed messages over Unix-domain socket pairs
/// (§3.2's real cluster deployment, minus the network). The two backends
/// implement the same Communicator interface and are proven bit-identical
/// on estimator output by the cross-backend differential suite, so the
/// thread backend acts as the permanent oracle for the wire.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_TRANSPORT_H
#define PARMONC_MPSIM_TRANSPORT_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace parmonc {

/// The rank-hosting backend of a run.
enum class TransportKind {
  Threads,   ///< one thread per rank over the in-process fabric
  Processes, ///< one forked process per rank over socket pairs
};

/// Stable lowercase name ("threads" / "processes") for flags and logs.
const char *transportName(TransportKind Kind);

/// Parses a transport name as accepted by --transport; empty optional on
/// anything else.
std::optional<TransportKind> parseTransport(std::string_view Name);

/// Why a run was asked to stop, carried on cross-rank stop broadcasts so
/// the supervising process can fill the run report even when the deciding
/// rank lives in another address space.
enum class StopReason : uint8_t {
  None = 0,
  TimeLimit = 1,
  ErrorTarget = 2,
};

/// Post-mortem of one worker process (Processes transport only): how it
/// exited and the counters it reported in its GOODBYE frame. A rank that
/// died without a GOODBYE (crash, SIGKILL) has GoodbyeReceived false and
/// its waitpid status decoded into the exit fields.
struct ProcessRankStatus {
  int Rank = -1;
  bool ExitedCleanly = false;   ///< exited with status 0
  bool Signaled = false;        ///< terminated by a signal
  int ExitCode = 0;             ///< WEXITSTATUS when !Signaled
  int Signal = 0;               ///< WTERMSIG when Signaled
  bool GoodbyeReceived = false; ///< the orderly-shutdown frame arrived
  int64_t FailedSends = 0;      ///< sends lost after every retry
  int64_t MessagesSent = 0;
  int64_t BytesSent = 0;
};

/// What the engine learned about the run, beyond what the rank bodies
/// computed themselves. Thread runs fill only the stop flags and byte
/// count; process runs add the per-child diagnostics that would otherwise
/// die with the workers' address spaces.
struct EngineReport {
  bool StopOnTimeLimit = false;   ///< some rank broadcast StopReason::TimeLimit
  bool StopOnErrorTarget = false; ///< some rank broadcast StopReason::ErrorTarget
  uint64_t BytesTransferred = 0;  ///< payload bytes moved between ranks
  int64_t ChildFailedSends = 0;   ///< sum of worker-process FailedSends
  std::vector<ProcessRankStatus> Ranks; ///< Processes only: ranks 1..N-1
};

} // namespace parmonc

#endif // PARMONC_MPSIM_TRANSPORT_H
