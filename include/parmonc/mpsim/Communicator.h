//===- parmonc/mpsim/Communicator.h - In-process message passing ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MPI substitute (DESIGN.md §2): a fabric of per-rank mailboxes with
/// tagged, asynchronous point-to-point messages. This is deliberately the
/// subset PARMONC's parallelization technique needs — asynchronous send,
/// non-blocking probe/receive, a barrier — nothing more. The run engine is
/// written against Communicator exactly the way PARMONC is written against
/// MPI, and user code never sees either.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_COMMUNICATOR_H
#define PARMONC_MPSIM_COMMUNICATOR_H

#include "parmonc/obs/Metrics.h"

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace parmonc {

/// A tagged point-to-point message.
struct Message {
  int Source = -1;
  int Tag = 0;
  std::vector<uint8_t> Payload;
};

/// One rank's incoming queue. Thread-safe multi-producer/single-consumer.
class Mailbox {
public:
  /// Enqueues a message (called by any sender thread).
  void push(Message Incoming);

  /// Removes and returns the oldest message whose tag matches \p Tag, or
  /// any message when \p Tag is negative. Non-blocking; empty optional if
  /// nothing matches.
  std::optional<Message> tryPop(int Tag = -1);

  /// Blocking variant with a deadline; empty optional on timeout.
  std::optional<Message> popWait(int Tag, int64_t TimeoutNanos);

  /// Number of queued messages (any tag).
  size_t pendingCount() const;

  /// True if a message with \p Tag (-1 = any) is queued, without removing
  /// anything.
  bool contains(int Tag = -1) const;

private:
  mutable std::mutex Mutex;
  std::condition_variable Available;
  std::deque<Message> Queue;
};

/// The shared state connecting all ranks of one run.
class Fabric {
public:
  explicit Fabric(int RankCount);

  int rankCount() const { return int(Mailboxes.size()); }

  Mailbox &mailboxOf(int Rank) {
    assert(Rank >= 0 && Rank < rankCount() && "rank out of range");
    return *Mailboxes[size_t(Rank)];
  }

  /// Cumulative bytes pushed through the fabric (for the benches that
  /// account exchange volume, e.g. the paper's ~120 KB per message figure).
  uint64_t bytesTransferred() const;
  void addBytesTransferred(uint64_t Bytes);

  /// Rendezvous of all ranks; generation-counted so it is reusable.
  void arriveAtBarrier();

  /// Attaches observability counters ("comm.messages_sent",
  /// "comm.bytes_sent") and the "comm.collector_queue_depth" gauge
  /// (sampled at every send to rank 0 — the §2.2 collector-congestion
  /// signal). Call before any rank starts sending.
  void attachMetrics(obs::MetricsRegistry &Registry);

  obs::Counter *messagesSentCounter() const { return MessagesSent; }
  obs::Counter *bytesSentCounter() const { return BytesSent; }
  obs::Gauge *collectorQueueDepthGauge() const {
    return CollectorQueueDepth;
  }

private:
  std::vector<std::unique_ptr<Mailbox>> Mailboxes;
  obs::Counter *MessagesSent = nullptr;
  obs::Counter *BytesSent = nullptr;
  obs::Gauge *CollectorQueueDepth = nullptr;
  std::mutex BarrierMutex;
  std::condition_variable BarrierRelease;
  int BarrierWaiting = 0;
  uint64_t BarrierGeneration = 0;
  std::atomic<uint64_t> TotalBytes{0};
};

/// A rank's handle to the fabric: the MPI-communicator equivalent.
class Communicator {
public:
  Communicator(Fabric &SharedFabric, int Rank)
      : SharedFabric(SharedFabric), Rank(Rank) {
    assert(Rank >= 0 && Rank < SharedFabric.rankCount());
  }

  int rank() const { return Rank; }
  int size() const { return SharedFabric.rankCount(); }

  /// Asynchronous send: enqueues into the destination mailbox and returns
  /// immediately (the paper's workers never wait on the collector).
  void send(int Destination, int Tag, std::vector<uint8_t> Payload);

  /// Non-blocking receive of the oldest message with \p Tag (-1 = any).
  std::optional<Message> tryReceive(int Tag = -1);

  /// Blocking receive with timeout; empty on timeout.
  std::optional<Message> receiveWait(int Tag, int64_t TimeoutNanos);

  /// True if a message with \p Tag is waiting.
  bool probe(int Tag = -1);

  /// Blocks until every rank has arrived.
  void barrier() { SharedFabric.arriveAtBarrier(); }

  Fabric &fabric() { return SharedFabric; }

private:
  Fabric &SharedFabric;
  int Rank;
};

/// Runs \p RankCount copies of \p Body concurrently, one thread per rank,
/// over a fresh fabric. Returns after every rank finishes. This is the
/// "launch as an MPI job" substitute: rank 0 plays the collector role
/// exactly as in §2.2.
void runThreadEngine(int RankCount,
                     const std::function<void(Communicator &)> &Body,
                     obs::MetricsRegistry *Metrics = nullptr);

} // namespace parmonc

#endif // PARMONC_MPSIM_COMMUNICATOR_H
