//===- parmonc/mpsim/Communicator.h - In-process message passing ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MPI substitute (DESIGN.md §2): a fabric of per-rank mailboxes with
/// tagged, asynchronous point-to-point messages. This is deliberately the
/// subset PARMONC's parallelization technique needs — asynchronous send,
/// non-blocking probe/receive, a barrier — nothing more. The run engine is
/// written against the abstract Communicator exactly the way PARMONC is
/// written against MPI, and user code never sees either. Two backends
/// implement it: FabricCommunicator (threads-as-ranks over this file's
/// Fabric) and the socket-pair process transport in SocketTransport.cpp,
/// selected through mpsim/Engine.h.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_COMMUNICATOR_H
#define PARMONC_MPSIM_COMMUNICATOR_H

#include "parmonc/mpsim/Transport.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace parmonc {

/// A tagged point-to-point message.
struct Message {
  int Source = -1;
  int Tag = 0;
  std::vector<uint8_t> Payload;
};

/// Verdict of the fabric's fault hook for one send attempt. The fabric is
/// deliberately ignorant of fault *policy* — parmonc::fault::FaultInjector
/// adapts its plan onto this type, and production fabrics carry no hook at
/// all (zero cost).
struct SendFault {
  enum class Action {
    Deliver,   ///< normal delivery
    Drop,      ///< lost in transit; the sender still sees success
    Duplicate, ///< delivered twice
    Delay,     ///< held back for DelayNanos of fabric-clock time
    Fail,      ///< visible send failure (sendReliable may retry)
  };
  Action Act = Action::Deliver;
  int64_t DelayNanos = 0;
};

/// Hook consulted on every send attempt: (source, destination, tag). Both
/// transports consult it at the same points, so a deterministic injector
/// produces the same per-source fault sequence over threads and sockets.
using SendFaultHook = std::function<SendFault(int, int, int)>;

/// One rank's incoming queue. Thread-safe multi-producer/single-consumer.
class Mailbox {
public:
  /// Enqueues a message (called by any sender thread). Messages pushed
  /// after close() are dropped — the backend is tearing down and nobody
  /// will ever pop them.
  void push(Message Incoming);

  /// Removes and returns the oldest message whose tag matches \p Tag, or
  /// any message when \p Tag is negative. Non-blocking; empty optional if
  /// nothing matches. Draining an already-closed mailbox is allowed.
  std::optional<Message> tryPop(int Tag = -1);

  /// Blocking variant with a deadline; empty optional on timeout. The
  /// predicate is rechecked after every wakeup, so spurious wakeups and
  /// notifications for non-matching tags neither return early nor extend
  /// the deadline. With \p TimeSource set the deadline is measured on that
  /// clock (a ManualClock-driven waiter polls and returns as soon as the
  /// injected time passes the deadline); null uses the steady clock.
  /// Returns immediately (with a match if one is queued, empty otherwise)
  /// once the mailbox is closed — a teardown must never leave a waiter
  /// blocked for its full timeout.
  std::optional<Message> popWait(int Tag, int64_t TimeoutNanos,
                                 const Clock *TimeSource = nullptr);

  /// Closes the mailbox: wakes every blocked popWait immediately and
  /// makes further waits return without blocking. Queued messages stay
  /// drainable through tryPop. Idempotent; safe to call concurrently with
  /// waiters and pushers — this is the shutdown-ordering seam that lets a
  /// backend be torn down while peers still hold queued messages.
  void close();

  /// True once close() has been called.
  bool isClosed() const;

  /// Number of queued messages (any tag).
  size_t pendingCount() const;

  /// True if a message with \p Tag (-1 = any) is queued, without removing
  /// anything.
  bool contains(int Tag = -1) const;

private:
  std::optional<Message> popMatchingLocked(int Tag);
  bool containsLocked(int Tag) const;

  mutable std::mutex Mutex;
  std::condition_variable Available;
  std::deque<Message> Queue;
  bool Closed = false;
};

/// The shared state connecting all ranks of one thread-backed run.
class Fabric {
public:
  explicit Fabric(int RankCount);

  int rankCount() const { return int(Mailboxes.size()); }

  Mailbox &mailboxOf(int Rank) {
    assert(Rank >= 0 && Rank < rankCount() && "rank out of range");
    return *Mailboxes[size_t(Rank)];
  }

  /// Cumulative bytes pushed through the fabric (for the benches that
  /// account exchange volume, e.g. the paper's ~120 KB per message figure).
  uint64_t bytesTransferred() const;
  void addBytesTransferred(uint64_t Bytes);

  /// Rendezvous of all ranks; generation-counted so it is reusable. Ranks
  /// marked dead are excluded from the count, so the survivors of a
  /// degraded run still rendezvous.
  void arriveAtBarrier();

  /// Installs the fault hook consulted on every send, plus the clock that
  /// times Delay verdicts and retry backoff. Call before any rank sends
  /// (runThreadEngine's Setup callback runs at the right moment).
  void setSendFaultHook(SendFaultHook Hook, const Clock *TimeSource);

  /// Excludes \p Rank from the barrier count (a crashed rank never
  /// arrives). Idempotent per rank; releases the barrier if the survivors
  /// are already all waiting.
  void markDead(int Rank);

  /// Ranks not marked dead.
  int aliveRankCount() const;

  /// Asks every rank to stop (cooperative; ranks poll stopRequested()).
  void requestStop(StopReason Reason);
  bool stopRequested() const;
  /// OR of every StopReason broadcast so far.
  uint8_t stopReasonBits() const;

  /// Marks the run aborted: the collector died, ranks must skip
  /// finalization. Implies requestStop.
  void requestAbort();
  bool abortRequested() const;

  /// Tears the fabric down while peers may still hold queued messages:
  /// closes every mailbox (waking all blocked receivers) and releases any
  /// barrier waiters. After shutdown the rank threads can be joined in
  /// any order without deadlocking — the shutdown-ordering contract the
  /// adversarial-join regression tests pin down.
  void shutdown();

  /// Moves every delayed message whose release time has passed into its
  /// destination mailbox. Called from the communicator's send/receive
  /// paths; harmless when no messages are delayed.
  void pumpDelayedMessages();

  /// Holds \p Held back until the fabric clock reaches \p ReleaseNanos.
  void delayMessage(int Destination, int64_t ReleaseNanos, Message Held);

  /// Attaches observability counters ("comm.messages_sent",
  /// "comm.bytes_sent") and the "comm.collector_queue_depth" gauge
  /// (sampled at every send to rank 0 — the §2.2 collector-congestion
  /// signal). Call before any rank starts sending.
  void attachMetrics(obs::MetricsRegistry &Registry);

  obs::Counter *messagesSentCounter() const { return MessagesSent; }
  obs::Counter *bytesSentCounter() const { return BytesSent; }
  obs::Counter *sendRetriesCounter() const { return SendRetries; }
  obs::Counter *sendsFailedCounter() const { return SendsFailed; }
  obs::Gauge *collectorQueueDepthGauge() const {
    return CollectorQueueDepth;
  }
  const SendFaultHook &sendFaultHook() const { return FaultHook; }
  const Clock *faultClock() const { return FaultTime; }

private:
  /// A message held back by a Delay verdict.
  struct DelayedMessage {
    int64_t ReleaseNanos = 0;
    int Destination = 0;
    Message Held;
  };

  std::vector<std::unique_ptr<Mailbox>> Mailboxes;
  obs::Counter *MessagesSent = nullptr;
  obs::Counter *BytesSent = nullptr;
  obs::Counter *SendRetries = nullptr;
  obs::Counter *SendsFailed = nullptr;
  obs::Gauge *CollectorQueueDepth = nullptr;
  SendFaultHook FaultHook;
  const Clock *FaultTime = nullptr;
  std::mutex DelayedMutex;
  std::vector<DelayedMessage> Delayed;
  mutable std::mutex BarrierMutex;
  std::condition_variable BarrierRelease;
  int BarrierWaiting = 0;
  int DeadRanks = 0;
  uint64_t BarrierGeneration = 0;
  std::vector<bool> DeadByRank;
  std::atomic<uint64_t> TotalBytes{0};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint8_t> StopBits{0};
  std::atomic<bool> AbortFlag{false};
};

/// A rank's handle to its run: the MPI-communicator equivalent. Abstract
/// so the engine and the collectives are transport-agnostic — the same
/// collector/checkpoint code runs over threads (FabricCommunicator) and
/// over forked processes (the socket transport), and the differential
/// suite holds the two backends byte-identical on estimator output.
class Communicator {
public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Asynchronous send: enqueues toward the destination and returns
  /// immediately (the paper's workers never wait on the collector). A
  /// Fail verdict from the fault hook is swallowed — use sendReliable when
  /// the caller needs to see failures.
  void send(int Destination, int Tag, std::vector<uint8_t> Payload) {
    (void)sendReliable(Destination, Tag, std::move(Payload),
                       /*MaxAttempts=*/1, /*BackoffNanos=*/0,
                       /*TimeSource=*/nullptr);
  }

  /// Send with a bounded retry loop: a Fail verdict from the fault hook is
  /// retried up to \p MaxAttempts times total, sleeping \p BackoffNanos on
  /// \p TimeSource between attempts (a ManualClock backoff costs nothing).
  /// Returns the final failure once the attempts are exhausted. Dropped
  /// messages still count as success — a real network loses data without
  /// telling the sender.
  [[nodiscard]] virtual Status sendReliable(int Destination, int Tag,
                                            std::vector<uint8_t> Payload,
                                            int MaxAttempts,
                                            int64_t BackoffNanos,
                                            const Clock *TimeSource) = 0;

  /// Non-blocking receive of the oldest message with \p Tag (-1 = any).
  virtual std::optional<Message> tryReceive(int Tag = -1) = 0;

  /// Blocking receive with timeout; empty on timeout. \p TimeSource as in
  /// Mailbox::popWait.
  virtual std::optional<Message> receiveWait(
      int Tag, int64_t TimeoutNanos, const Clock *TimeSource = nullptr) = 0;

  /// True if a message with \p Tag is waiting.
  virtual bool probe(int Tag = -1) = 0;

  /// Blocks until every live rank has arrived.
  virtual void barrier() = 0;

  /// Declares \p Rank dead: it is dropped from barrier rendezvous and
  /// liveness accounting (the collector's straggler declaration, and a
  /// crashing rank's own last act).
  virtual void markDead(int Rank) = 0;

  /// Broadcasts a cooperative stop to every rank of the run, crossing
  /// address spaces under the process transport.
  virtual void requestStop(StopReason Reason) = 0;
  virtual bool stopRequested() const = 0;

  /// Broadcasts "the collector is dead; skip finalization" — the injected
  /// collector crash turning into a whole-job kill.
  virtual void requestAbort() = 0;
  virtual bool abortRequested() const = 0;

  /// Kills the calling rank's host immediately and unrecoverably — under
  /// the process transport, raise(SIGKILL) on the worker process, the
  /// harshest crash the fault suite injects. Not supported (asserts) on
  /// the thread transport, where ranks share the test runner's process.
  [[noreturn]] virtual void crashHard();
};

/// The thread-backed rank handle over a shared Fabric.
class FabricCommunicator final : public Communicator {
public:
  FabricCommunicator(Fabric &SharedFabric, int Rank)
      : SharedFabric(SharedFabric), Rank(Rank) {
    assert(Rank >= 0 && Rank < SharedFabric.rankCount());
  }

  int rank() const override { return Rank; }
  int size() const override { return SharedFabric.rankCount(); }

  [[nodiscard]] Status sendReliable(int Destination, int Tag,
                                    std::vector<uint8_t> Payload,
                                    int MaxAttempts, int64_t BackoffNanos,
                                    const Clock *TimeSource) override;

  std::optional<Message> tryReceive(int Tag = -1) override;
  std::optional<Message> receiveWait(int Tag, int64_t TimeoutNanos,
                                     const Clock *TimeSource = nullptr)
      override;
  bool probe(int Tag = -1) override;
  void barrier() override { SharedFabric.arriveAtBarrier(); }
  void markDead(int DeadRank) override { SharedFabric.markDead(DeadRank); }
  void requestStop(StopReason Reason) override {
    SharedFabric.requestStop(Reason);
  }
  bool stopRequested() const override {
    return SharedFabric.stopRequested();
  }
  void requestAbort() override { SharedFabric.requestAbort(); }
  bool abortRequested() const override {
    return SharedFabric.abortRequested();
  }

  Fabric &fabric() { return SharedFabric; }

private:
  Fabric &SharedFabric;
  int Rank;
};

/// Runs \p RankCount copies of \p Body concurrently, one thread per rank,
/// over a fresh fabric. Returns after every rank finishes. This is the
/// "launch as an MPI job" substitute: rank 0 plays the collector role
/// exactly as in §2.2. \p Setup, when set, runs on the launching thread
/// before any rank starts — the race-free moment to install fabric hooks.
void runThreadEngine(int RankCount,
                     const std::function<void(Communicator &)> &Body,
                     obs::MetricsRegistry *Metrics = nullptr,
                     const std::function<void(Fabric &)> &Setup = {});

/// A joinable group of worker threads; each runs \p Body with its worker
/// index in [0, Count). This is the *intra-rank* fan-out primitive of the
/// threaded realization engine (RunConfig::WorkerThreadsPerRank): worker
/// threads inside one rank hand their results to the rank thread through a
/// Mailbox, never by shared mutable state, so the thread primitive itself
/// lives here in mpsim with the rest of the approved concurrency seam.
/// The spawning thread stays free to service its own loop (rank 0 keeps
/// collecting) and joins when the workers are done.
class WorkerGroup {
public:
  /// Spawns \p Count threads immediately; each thread holds its own copy
  /// of \p Body (state the workers share must be captured by reference and
  /// outlive join()).
  WorkerGroup(int Count, const std::function<void(int)> &Body);

  /// Joins every worker; idempotent. The destructor calls it, so a
  /// WorkerGroup can never outlive its workers' captured state.
  void join();

  ~WorkerGroup() { join(); }

  WorkerGroup(const WorkerGroup &) = delete;
  WorkerGroup &operator=(const WorkerGroup &) = delete;

private:
  std::vector<std::thread> Threads;
};

} // namespace parmonc

#endif // PARMONC_MPSIM_COMMUNICATOR_H
