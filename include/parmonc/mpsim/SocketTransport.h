//===- parmonc/mpsim/SocketTransport.h - Ranks as forked processes --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Processes transport: rank 0 stays in the calling process; ranks
/// 1..N-1 are forked worker processes, each connected to the parent by one
/// Unix-domain socket pair carrying the CRC-framed messages of
/// mpsim/Wire.h in a star topology. A router thread in the parent moves
/// worker frames to their destinations (rank 0's mailbox, or another
/// worker's socket), runs the barrier, fans out stop/abort broadcasts, and
/// supervises the children: HELLO on start, GOODBYE with diagnostics on
/// orderly exit, EOF without GOODBYE = unexpected death (the rank is
/// marked dead so barriers and degraded collection keep working), waitpid
/// reaping with a grace period and SIGKILL escalation on teardown.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_SOCKETTRANSPORT_H
#define PARMONC_MPSIM_SOCKETTRANSPORT_H

#include "parmonc/mpsim/Engine.h"

namespace parmonc {

/// Hosts \p RankCount ranks with rank 0 on the calling thread and every
/// other rank as a forked process. Returns after rank 0's body finished
/// and all workers were reaped; per-worker exit diagnostics land in the
/// report. Fails with a Status if the process fleet cannot be launched.
[[nodiscard]] Result<EngineReport>
runProcessEngine(int RankCount,
                 const std::function<void(Communicator &)> &Body,
                 const EngineOptions &Options = {});

} // namespace parmonc

#endif // PARMONC_MPSIM_SOCKETTRANSPORT_H
