//===- parmonc/mpsim/VirtualCluster.h - Discrete-event cluster model ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A virtual-time model of the paper's performance test (§4, Fig. 2): M
/// processors simulate realizations asynchronously (τ ≈ 7.7 s each) and —
/// in the paper's "strictest conditions" — send their ~120 KB subtotal to
/// processor 0 after *every* realization; processor 0 receives, averages
/// and saves. The model is a discrete-event simulation: worker completion
/// events feed a single-server collector queue with transfer latency,
/// per-message processing cost and save cost. Tcomp(L) is the virtual time
/// at which the collector has received, averaged and saved data covering L
/// realizations — exactly how the paper defines the measured quantity.
///
/// This substitutes for the 512-processor SSCC cluster (DESIGN.md §2):
/// the figure's claim is about cost accounting of asynchronous exchanges,
/// which the model reproduces with calibrated constants, not about any
/// particular interconnect.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_VIRTUALCLUSTER_H
#define PARMONC_MPSIM_VIRTUALCLUSTER_H

#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <vector>

namespace parmonc {

/// A scheduled worker failure in the virtual cluster: \p Worker stops
/// producing after completing \p AfterRealizations realizations. Its last
/// subtotal message is still sent — in PARMONC terms, the subtotal file on
/// disk is always at least as fresh as the collector's view (§3.4), so the
/// crash loses no already-completed work.
struct VirtualWorkerFailure {
  int Worker = 0;
  int64_t AfterRealizations = 1;
};

/// Calibration of the virtual cluster. Defaults reproduce the paper's
/// setup: τ = 7.7 s, 120 KB messages, send after every realization, and
/// interconnect/collector constants typical of a 2011 cluster.
struct VirtualClusterConfig {
  /// Number of processors M (>= 1). Rank 0 both simulates and collects.
  int ProcessorCount = 1;

  /// Mean compute time per realization, seconds (the paper's τ ≈ 7.7).
  double MeanRealizationSeconds = 7.7;

  /// Relative standard deviation of the per-realization time. The paper
  /// notes volumes l_m diverge because of "different performances of
  /// processors or diversity of time expenses per realization".
  double RealizationJitter = 0.05;

  /// Subtotal message size, bytes (the paper's ~120 KB).
  double MessageBytes = 120.0e3;

  /// One-way message latency, seconds.
  double LinkLatencySeconds = 50e-6;

  /// Link bandwidth, bytes/second (1 GB/s-class cluster interconnect).
  double LinkBandwidthBytesPerSecond = 1.0e9;

  /// Collector cost to receive + average one subtotal message, seconds.
  double CollectorProcessSeconds = 2.0e-3;

  /// Collector cost to save result files at a save-point, seconds.
  double SaveSeconds = 20.0e-3;

  /// Realizations a worker simulates between sends. 1 = the paper's
  /// strictest conditions.
  int64_t RealizationsPerSend = 1;

  /// Seed of the jitter stream (deterministic replay).
  uint64_t Seed = 1;

  /// Optional per-processor speed factors (the paper's "different
  /// performances of processors", §2.2): processor m's realizations cost
  /// MeanRealizationSeconds * SpeedFactors[m]. Empty = homogeneous.
  /// When non-empty, must have ProcessorCount positive entries.
  std::vector<double> SpeedFactors;

  /// Scheduled worker failures (degraded-mode modelling). Each entry names
  /// a distinct worker in [0, ProcessorCount); the survivors must be able
  /// to cover the requested volume or the run fails.
  std::vector<VirtualWorkerFailure> WorkerFailures;

  /// Optional observability sinks. Metrics receives the collector
  /// busy/queue-delay gauges and message/byte counters; Trace receives
  /// per-message collector-processing spans stamped in *virtual* time
  /// (nanoseconds = virtual seconds * 1e9), so the resulting Chrome trace
  /// is fully deterministic for a fixed Seed. Attaching either sink must
  /// not — and does not — perturb the simulated results (tested).
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceWriter *Trace = nullptr;

  /// Sanity-checks ranges.
  [[nodiscard]] Status validate() const;
};

/// Output of one virtual run.
struct VirtualClusterResult {
  /// Completion time Tcomp(L) in virtual seconds for each requested target
  /// volume, in the same order as the request.
  std::vector<double> CompletionSeconds;

  /// Total subtotal messages processed by the collector.
  int64_t MessagesProcessed = 0;

  /// Total bytes moved to the collector.
  double BytesTransferred = 0.0;

  /// Fraction of the final completion time the collector spent processing
  /// messages — the §2.2 "negligible exchange expenses" quantity.
  double CollectorBusyFraction = 0.0;

  /// Mean queueing delay (arrival to processing start) at the collector.
  double MeanCollectorQueueDelay = 0.0;

  /// Per-worker realization counts at the end (the l_m of eq. 4/5).
  std::vector<int64_t> PerWorkerVolumes;

  /// Workers that failed during the run (sorted), per the configured
  /// schedule. Their PerWorkerVolumes entries stop at the failure point.
  std::vector<int> FailedWorkers;
};

/// Runs the discrete-event model until the collector has covered the
/// largest volume in \p TargetVolumes (each >= 1, need not be sorted).
[[nodiscard]] Result<VirtualClusterResult>
runVirtualCluster(const VirtualClusterConfig &Config,
                  const std::vector<int64_t> &TargetVolumes);

} // namespace parmonc

#endif // PARMONC_MPSIM_VIRTUALCLUSTER_H
