//===- parmonc/mpsim/Serialize.h - Message payload (de)serialization ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal byte-stream archive for message payloads and checkpoint
/// blobs. Fixed little-endian layout, length-prefixed containers, explicit
/// bounds checks on the read side so a truncated or corrupted message can
/// never read out of bounds.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_SERIALIZE_H
#define PARMONC_MPSIM_SERIALIZE_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace parmonc {

/// Appends typed values to a byte buffer.
class ByteWriter {
public:
  void writeU64(uint64_t Value) {
    // Explicit little-endian layout, independent of host byte order.
    for (int Byte = 0; Byte < 8; ++Byte)
      Buffer.push_back(uint8_t(Value >> (8 * Byte)));
  }

  void writeI64(int64_t Value) { writeU64(uint64_t(Value)); }

  void writeU32(uint32_t Value) {
    for (int Byte = 0; Byte < 4; ++Byte)
      Buffer.push_back(uint8_t(Value >> (8 * Byte)));
  }

  void writeDouble(double Value) {
    uint64_t Bits;
    std::memcpy(&Bits, &Value, sizeof(Bits));
    writeU64(Bits);
  }

  void writeDoubleVector(const std::vector<double> &Values) {
    writeU64(Values.size());
    for (double Value : Values)
      writeDouble(Value);
  }

  void writeString(const std::string &Text) {
    writeU64(Text.size());
    Buffer.insert(Buffer.end(), Text.begin(), Text.end());
  }

  const std::vector<uint8_t> &bytes() const { return Buffer; }
  std::vector<uint8_t> takeBytes() { return std::move(Buffer); }

private:
  std::vector<uint8_t> Buffer;
};

/// Reads typed values back out of a byte buffer; every read is
/// bounds-checked and fails with a Status instead of overrunning.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Buffer)
      : Buffer(Buffer) {}

  [[nodiscard]] Result<uint64_t> readU64() {
    if (Cursor + 8 > Buffer.size())
      return parseError("message truncated reading u64");
    uint64_t Value = 0;
    for (int Byte = 0; Byte < 8; ++Byte)
      Value |= uint64_t(Buffer[Cursor + size_t(Byte)]) << (8 * Byte);
    Cursor += 8;
    return Value;
  }

  [[nodiscard]] Result<int64_t> readI64() {
    Result<uint64_t> Raw = readU64();
    if (!Raw)
      return Raw.status();
    return int64_t(Raw.value());
  }

  [[nodiscard]] Result<uint32_t> readU32() {
    if (Cursor + 4 > Buffer.size())
      return parseError("message truncated reading u32");
    uint32_t Value = 0;
    for (int Byte = 0; Byte < 4; ++Byte)
      Value |= uint32_t(Buffer[Cursor + size_t(Byte)]) << (8 * Byte);
    Cursor += 4;
    return Value;
  }

  [[nodiscard]] Result<double> readDouble() {
    Result<uint64_t> Raw = readU64();
    if (!Raw)
      return Raw.status();
    double Value;
    uint64_t Bits = Raw.value();
    std::memcpy(&Value, &Bits, sizeof(Value));
    return Value;
  }

  [[nodiscard]] Result<std::vector<double>> readDoubleVector() {
    Result<uint64_t> Count = readU64();
    if (!Count)
      return Count.status();
    if (Count.value() > (Buffer.size() - Cursor) / 8)
      return parseError("message truncated reading double vector");
    std::vector<double> Values;
    Values.reserve(Count.value());
    for (uint64_t Index = 0; Index < Count.value(); ++Index) {
      Result<double> Value = readDouble();
      if (!Value)
        return Value.status();
      Values.push_back(Value.value());
    }
    return Values;
  }

  [[nodiscard]] Result<std::string> readString() {
    Result<uint64_t> Count = readU64();
    if (!Count)
      return Count.status();
    if (Count.value() > Buffer.size() - Cursor)
      return parseError("message truncated reading string");
    std::string Text(Buffer.begin() + std::ptrdiff_t(Cursor),
                     Buffer.begin() + std::ptrdiff_t(Cursor + Count.value()));
    Cursor += Count.value();
    return Text;
  }

  /// True when every byte has been consumed (useful for format tests).
  bool atEnd() const { return Cursor == Buffer.size(); }

private:
  const std::vector<uint8_t> &Buffer;
  size_t Cursor = 0;
};

} // namespace parmonc

#endif // PARMONC_MPSIM_SERIALIZE_H
