//===- parmonc/mpsim/Collectives.h - Collective operations ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collective operations over a Communicator, mirroring the MPI calls a
/// Monte Carlo code occasionally needs around the core asynchronous
/// pattern: broadcasting a configuration from rank 0, reducing final
/// scalars, gathering per-rank volumes. All are implemented on the tagged
/// point-to-point layer with a dedicated tag namespace (high tags), so
/// they can interleave with user traffic. Every rank of the communicator
/// must call the collective (standard MPI semantics); they are blocking.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_COLLECTIVES_H
#define PARMONC_MPSIM_COLLECTIVES_H

#include "parmonc/mpsim/Communicator.h"

#include <cstdint>
#include <vector>

namespace parmonc {

/// Tags reserved for collectives; user code must stay below this range.
inline constexpr int FirstCollectiveTag = 1 << 20;

/// Broadcasts \p Values from rank \p Root to every rank. On non-root
/// ranks the vector is resized and overwritten.
void broadcast(Communicator &Comm, std::vector<double> &Values, int Root = 0);

/// Element-wise sum-reduction of \p Values onto rank \p Root. On the root
/// the vector holds the totals afterwards; elsewhere it is unchanged.
/// All ranks must pass vectors of identical length.
void reduceSum(Communicator &Comm, std::vector<double> &Values,
               int Root = 0);

/// All-reduce: every rank ends with the element-wise sum.
void allReduceSum(Communicator &Comm, std::vector<double> &Values);

/// Gathers each rank's \p Value into \p GatheredOut (size() entries, rank
/// order) on rank \p Root; elsewhere GatheredOut is left empty.
void gather(Communicator &Comm, double Value,
            std::vector<double> &GatheredOut, int Root = 0);

/// Gathers variable-length vectors; on the root, \p GatheredOut[r] is
/// rank r's contribution.
void gatherVectors(Communicator &Comm, const std::vector<double> &Values,
                   std::vector<std::vector<double>> &GatheredOut,
                   int Root = 0);

} // namespace parmonc

#endif // PARMONC_MPSIM_COLLECTIVES_H
