//===- parmonc/mpsim/Wire.h - CRC-framed socket message codec -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the Processes transport: every message crosses a
/// socket as one frame
///
///   magic u32 ('PMNC') | bodyLen u32 | bodyCrc u32 | body
///   body := kind u8 | a i32 | b i32 | c i32 | payload bytes
///
/// little-endian throughout, CRC-32 (the same polynomial the sealed result
/// files use) over the body. The decoder is incremental — feed it whatever
/// a read() returned and ask for complete frames — and rejects corruption
/// with a clean Status, mirroring the short-read rejection discipline of
/// ResultsStore: a truncated, bit-flipped or length-lying frame can stall
/// or fail the stream, but never crash it or yield a partial message.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_MPSIM_WIRE_H
#define PARMONC_MPSIM_WIRE_H

#include "parmonc/support/Status.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace parmonc {

/// What a frame means to the router/supervisor.
enum class FrameKind : uint8_t {
  Hello = 1,          ///< child -> root: rank is up (A = rank)
  Data = 2,           ///< routed message (A = source, B = destination, C = tag)
  BarrierArrive = 3,  ///< child -> root: rank reached the barrier (A = rank)
  BarrierRelease = 4, ///< root -> child: barrier opened
  Dead = 5,           ///< either way: rank A is dead, drop it from barriers
  Stop = 6,           ///< either way: stop request (A = StopReason bits)
  Abort = 7,          ///< root -> child: collector died, skip finalization
  Goodbye = 8,        ///< child -> root: orderly exit + diagnostics payload
};

/// One decoded frame. The three i32 fields are kind-specific (see
/// FrameKind); Payload carries the message body for Data and the
/// diagnostics blob for Goodbye.
struct Frame {
  FrameKind Kind = FrameKind::Data;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  std::vector<uint8_t> Payload;
};

/// 'PMNC' in the frame header.
inline constexpr uint32_t FrameMagic = 0x434e4d50u;

/// Upper bound on a frame body: anything larger is a length-lying header,
/// rejected before any allocation of that size is attempted.
inline constexpr uint32_t MaxFrameBodyBytes = 1u << 28;

/// Encodes \p Outgoing into one self-delimiting frame.
std::vector<uint8_t> encodeFrame(const Frame &Outgoing);

/// Incremental frame parser over a byte stream. Feed raw read() chunks;
/// next() yields complete frames in order. Corruption (bad magic, CRC
/// mismatch, oversized length) poisons the decoder: every subsequent
/// next() returns the same error, because a framing error leaves no way to
/// resynchronize a stream.
class FrameDecoder {
public:
  /// Appends raw stream bytes to the internal buffer.
  void feed(const uint8_t *Data, size_t Size);

  /// Returns the next complete frame; an empty optional when more bytes
  /// are needed; an error Status on a corrupt stream.
  [[nodiscard]] Result<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by complete frames.
  size_t bufferedBytes() const { return Buffer.size() - Consumed; }

private:
  std::vector<uint8_t> Buffer;
  size_t Consumed = 0;
  Status Poisoned = Status::ok();
};

} // namespace parmonc

#endif // PARMONC_MPSIM_WIRE_H
