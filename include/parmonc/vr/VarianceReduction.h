//===- parmonc/vr/VarianceReduction.h - Variance-reduction toolkit --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classical variance-reduction techniques packaged over RandomSource, so
/// they compose with PARMONC realization routines. §2.2 observes that the
/// sample volume needed for a target error is proportional to Var ζ;
/// these tools attack exactly that constant:
///
///  - antithetic variates: pair each realization with its mirrored-stream
///    twin; for monotone integrands the pair average has lower variance,
///  - control variates: subtract β(C - E C) for a correlated control C
///    with known expectation, with the optimal β estimated from the data,
///  - stratified sampling: split the first uniform into equal strata,
///  - importance sampling helpers: likelihood-ratio bookkeeping for
///    exponential tilting of uniform/exponential draws.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_VR_VARIANCEREDUCTION_H
#define PARMONC_VR_VARIANCEREDUCTION_H

#include "parmonc/rng/RandomSource.h"
#include "parmonc/support/Status.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace parmonc {

/// A RandomSource adaptor that either passes the base stream through or
/// mirrors it (u -> 1-u). The antithetic estimator evaluates the same
/// realization routine once on the plain stream and once on the mirrored
/// *replay* of the identical underlying numbers.
class MirroredSource final : public RandomSource {
public:
  /// \p Base must outlive this adaptor.
  explicit MirroredSource(RandomSource &Base, bool Mirror)
      : Base(Base), Mirror(Mirror) {}

  double nextUniform() override {
    const double Value = Base.nextUniform();
    return Mirror ? 1.0 - Value : Value;
  }

  uint64_t nextBits64() override {
    const uint64_t Bits = Base.nextBits64();
    return Mirror ? ~Bits : Bits;
  }

  const char *name() const override {
    return Mirror ? "mirrored" : "pass-through";
  }

private:
  RandomSource &Base;
  bool Mirror;
};

/// A RandomSource that records every uniform drawn from a base source, so
/// the identical sequence can be replayed (mirrored or not).
class RecordingSource final : public RandomSource {
public:
  explicit RecordingSource(RandomSource &Base) : Base(Base) {}

  double nextUniform() override {
    const double Value = Base.nextUniform();
    Recorded.push_back(Value);
    return Value;
  }

  uint64_t nextBits64() override {
    // Recorded replay is defined over uniforms; derive bits from one so
    // mirrored replay stays meaningful.
    const double Value = nextUniform();
    return uint64_t(Value * 9007199254740992.0) << 11;
  }

  const char *name() const override { return "recording"; }

  const std::vector<double> &recorded() const { return Recorded; }
  void clear() { Recorded.clear(); }

private:
  RandomSource &Base;
  std::vector<double> Recorded;
};

/// Replays a recorded uniform sequence, optionally mirrored. Drawing past
/// the end asserts — the antithetic twin must consume exactly as many
/// numbers as the original realization.
class ReplaySource final : public RandomSource {
public:
  ReplaySource(const std::vector<double> &Values, bool Mirror)
      : Values(Values), Mirror(Mirror) {}

  double nextUniform() override {
    assert(Cursor < Values.size() &&
           "antithetic replay consumed more numbers than the original");
    const double Value = Values[Cursor++];
    return Mirror ? 1.0 - Value : Value;
  }

  uint64_t nextBits64() override {
    const double Value = nextUniform();
    return uint64_t(Value * 9007199254740992.0) << 11;
  }

  const char *name() const override { return "replay"; }

  size_t consumed() const { return Cursor; }

private:
  const std::vector<double> &Values;
  bool Mirror;
  size_t Cursor = 0;
};

/// Scalar estimate with its variance bookkeeping.
struct VrEstimate {
  double Mean = 0.0;
  double Variance = 0.0;       ///< per-sample variance of the estimator
  double StandardError = 0.0;  ///< sqrt(Variance / SampleCount)
  int64_t SampleCount = 0;
};

/// A scalar-realization routine for the toolkit's drivers.
using ScalarRealization = double (*)(RandomSource &);

/// Plain Monte Carlo baseline: \p Pairs * 2 independent realizations
/// (same budget as the antithetic estimator, for fair comparison).
VrEstimate estimatePlain(ScalarRealization Realization,
                         RandomSource &Source, int64_t Pairs);

/// Antithetic variates: for each pair, run the realization on a recorded
/// stream and again on its mirror; average the two. Effective when the
/// realization is monotone in its uniforms.
VrEstimate estimateAntithetic(ScalarRealization Realization,
                              RandomSource &Source, int64_t Pairs);

/// Control variates: realizations return (value, control); the control's
/// exact expectation is known. Computes the optimal coefficient
/// β* = Cov(Y,C)/Var(C) from the sample and returns the adjusted
/// estimator Y - β*(C - E C). The β* estimation bias is O(1/n) and
/// ignored, as is standard.
struct ValueWithControl {
  double Value;
  double Control;
};
using ControlledRealization = ValueWithControl (*)(RandomSource &);

VrEstimate estimateWithControlVariate(ControlledRealization Realization,
                                      RandomSource &Source,
                                      int64_t SampleCount,
                                      double ControlExpectation);

/// Stratified sampling over the realization's *first* uniform: stratum s
/// of K receives the first uniform from ((s + u)/K); remaining draws pass
/// through. Proportional allocation (equal samples per stratum).
/// \p SamplesPerStratum >= 2 so the within-stratum variance is estimable.
VrEstimate estimateStratified(ScalarRealization Realization,
                              RandomSource &Source, int StrataCount,
                              int64_t SamplesPerStratum);

/// A RandomSource adaptor that confines the FIRST uniform drawn to a
/// stratum and passes everything else through. Exposed for tests.
class StratifiedFirstDraw final : public RandomSource {
public:
  StratifiedFirstDraw(RandomSource &Base, int Stratum, int StrataCount)
      : Base(Base), Stratum(Stratum), StrataCount(StrataCount) {
    assert(Stratum >= 0 && Stratum < StrataCount && "stratum out of range");
  }

  double nextUniform() override {
    const double Value = Base.nextUniform();
    if (FirstDrawDone)
      return Value;
    FirstDrawDone = true;
    return (double(Stratum) + Value) / double(StrataCount);
  }

  uint64_t nextBits64() override { return Base.nextBits64(); }

  const char *name() const override { return "stratified-first"; }

private:
  RandomSource &Base;
  int Stratum;
  int StrataCount;
  bool FirstDrawDone = false;
};

/// Importance sampling for exponential tilting of U(0,1): draws X with
/// density g(x) = θ e^{θx}/(e^θ - 1) on (0,1) and accumulates the
/// likelihood ratio f/g = (e^θ - 1)/(θ e^{θX}). Positive θ pushes mass
/// toward 1 (rare events near 1), negative toward 0.
class TiltedUniform {
public:
  explicit TiltedUniform(double Theta);

  /// One tilted draw; \p LikelihoodRatio receives f(X)/g(X).
  double sample(RandomSource &Source, double *LikelihoodRatio) const;

  double theta() const { return Theta; }

private:
  double Theta;
  double Normalizer; ///< e^θ - 1
};

} // namespace parmonc

#endif // PARMONC_VR_VARIANCEREDUCTION_H
