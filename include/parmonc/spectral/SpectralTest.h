//===- parmonc/spectral/SpectralTest.h - Knuth spectral test --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spectral test (Knuth TAOCP §3.3.4) for multiplicative congruential
/// generators — the theoretical lattice test Dyadkin & Hamilton (the
/// paper's ref. [14]) used to select 128-bit multipliers like 5^101.
///
/// Overlapping t-tuples of an LCG with modulus m and multiplier a fall on
/// the lattice dual to
///
///   L*_t = { x ∈ Z^t : x₁ + a x₂ + ... + a^{t-1} x_t ≡ 0 (mod m) } .
///
/// ν_t = length of the shortest nonzero vector of L*_t is the reciprocal
/// of the largest inter-hyperplane distance: small ν_t = coarse planes
/// (RANDU: ν₃² = 118). We compute ν_t exactly: an exact-integer LLL
/// reduction of the standard basis of L*_t followed by Fincke–Pohst
/// enumeration with exact integer norm evaluation.
///
/// The normalized figure of merit S_t = ν_t / (γ_t^{1/2} m^{1/t}), with
/// γ_t the Hermite constants, lies in (0, 1]; Knuth calls S_t >= 0.1
/// passable and S_t >= 0.75 very good.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SPECTRAL_SPECTRALTEST_H
#define PARMONC_SPECTRAL_SPECTRALTEST_H

#include "parmonc/spectral/BigInt.h"
#include "parmonc/support/Status.h"

#include <vector>

namespace parmonc {

/// A lattice basis: row vectors of exact integers.
using LatticeBasis = std::vector<std::vector<BigInt>>;

/// Builds the standard basis of the dual lattice L*_t for modulus \p M
/// and multiplier \p A: rows (m,0,...), (-a,1,0,...), (-a²,0,1,...), ...
/// \p Dimension >= 2.
LatticeBasis makeDualLatticeBasis(const BigInt &M, const BigInt &A,
                                  int Dimension);

/// Exact integral LLL reduction (Cohen, Algorithm 2.6.3) with the
/// standard parameter δ = 3/4. \p Basis is reduced in place.
void reduceLll(LatticeBasis &Basis);

/// Exact squared Euclidean norm of an integer vector.
BigInt squaredNorm(const std::vector<BigInt> &Vector);

/// Shortest nonzero vector of the lattice spanned by \p Basis
/// (Fincke–Pohst enumeration over an LLL-reduced copy; exact result).
/// Practical for Dimension <= 8.
struct ShortestVectorResult {
  BigInt SquaredLength;
  std::vector<BigInt> Vector;
};
ShortestVectorResult findShortestVector(const LatticeBasis &Basis);

/// Spectral figures for one generator and one dimension.
struct SpectralResult {
  int Dimension = 0;
  BigInt SquaredNu;      ///< ν_t² exactly
  double Nu = 0.0;       ///< sqrt of the above
  double NormalizedMerit = 0.0; ///< S_t in (0, 1]
};

/// Runs the spectral test for t = 2..\p MaxDimension on the generator
/// u <- a u mod m. \p MaxDimension in [2, 8].
std::vector<SpectralResult> runSpectralTest(const BigInt &M, const BigInt &A,
                                            int MaxDimension);

/// Convenience for this library's power-of-two-modulus generators. For a
/// maximal-period *multiplicative* generator mod 2^e (a ≡ 5 mod 8, odd
/// states) the visited t-tuples live on a sublattice of index 4, so Knuth
/// prescribes running the test with the effective modulus 2^(e-2);
/// \p UseEffectiveModulus selects that correction (default on).
std::vector<SpectralResult> runSpectralTestPow2(
    unsigned ModulusBits, UInt128 Multiplier, int MaxDimension,
    bool UseEffectiveModulus = true);

/// Hermite constant γ_t for t in [1, 8] (exact known values).
double hermiteConstant(int Dimension);

} // namespace parmonc

#endif // PARMONC_SPECTRAL_SPECTRALTEST_H
