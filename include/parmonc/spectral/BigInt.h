//===- parmonc/spectral/BigInt.h - Arbitrary-precision signed integers ----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integers for the spectral test's
/// exact lattice arithmetic. Intermediate values in integral LLL grow like
/// (max |b|²)^k — far beyond 128 bits for the m = 2^128 lattices we
/// reduce — so fixed-width types do not suffice. Performance is a
/// non-goal: the spectral test runs offline on a handful of multipliers.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_SPECTRAL_BIGINT_H
#define PARMONC_SPECTRAL_BIGINT_H

#include "parmonc/int128/UInt128.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace parmonc {

/// Arbitrary-precision signed integer, sign + little-endian 64-bit limbs.
/// Zero is canonical: empty limb vector, non-negative sign.
class BigInt {
public:
  /// Zero.
  BigInt() = default;

  /// From a signed 64-bit value.
  BigInt(int64_t Value);

  /// From an unsigned 128-bit value (always non-negative).
  static BigInt fromUInt128(UInt128 Value);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }

  /// Number of significant bits of the magnitude; 0 for zero.
  unsigned bitWidth() const;

  BigInt operator-() const;
  BigInt abs() const;

  friend BigInt operator+(const BigInt &A, const BigInt &B);
  friend BigInt operator-(const BigInt &A, const BigInt &B);
  friend BigInt operator*(const BigInt &A, const BigInt &B);

  BigInt &operator+=(const BigInt &B) { return *this = *this + B; }
  BigInt &operator-=(const BigInt &B) { return *this = *this - B; }
  BigInt &operator*=(const BigInt &B) { return *this = *this * B; }

  /// Truncating division (toward zero) and the matching remainder
  /// (same sign as the dividend). \p Divisor must be nonzero.
  struct DivModResult;
  static DivModResult divMod(const BigInt &Dividend, const BigInt &Divisor);

  friend BigInt operator/(const BigInt &A, const BigInt &B);
  friend BigInt operator%(const BigInt &A, const BigInt &B);

  /// Division rounded to the nearest integer (ties away from zero) —
  /// the rounding LLL's size-reduction step needs.
  static BigInt divRound(const BigInt &Dividend, const BigInt &Divisor);

  /// Left shift by \p Bits.
  BigInt shiftLeft(unsigned Bits) const;

  /// Three-way comparison: negative, zero or positive.
  static int compare(const BigInt &A, const BigInt &B);

  friend bool operator==(const BigInt &A, const BigInt &B) {
    return compare(A, B) == 0;
  }
  friend bool operator!=(const BigInt &A, const BigInt &B) {
    return compare(A, B) != 0;
  }
  friend bool operator<(const BigInt &A, const BigInt &B) {
    return compare(A, B) < 0;
  }
  friend bool operator>(const BigInt &A, const BigInt &B) {
    return compare(A, B) > 0;
  }
  friend bool operator<=(const BigInt &A, const BigInt &B) {
    return compare(A, B) <= 0;
  }
  friend bool operator>=(const BigInt &A, const BigInt &B) {
    return compare(A, B) >= 0;
  }

  /// Nearest double (rounded through limb accumulation; may overflow to
  /// +-inf for gigantic values, which callers treat as "huge").
  double toDouble() const;

  /// Exact conversion when the value fits in int64; asserts otherwise.
  int64_t toInt64() const;

  /// True if the value fits in a signed 64-bit integer.
  bool fitsInt64() const;

  /// Base-10 rendering with a leading '-' when negative.
  std::string toDecimalString() const;

private:
  /// Magnitude comparison only.
  static int compareMagnitude(const BigInt &A, const BigInt &B);
  /// Magnitude addition/subtraction (B's magnitude must not exceed A's
  /// for subtraction).
  static std::vector<uint64_t> addMagnitude(const std::vector<uint64_t> &A,
                                            const std::vector<uint64_t> &B);
  static std::vector<uint64_t> subMagnitude(const std::vector<uint64_t> &A,
                                            const std::vector<uint64_t> &B);
  void trim();

  bool Negative = false;
  std::vector<uint64_t> Limbs; // little-endian, no trailing zero limbs
};

struct BigInt::DivModResult {
  BigInt Quotient;
  BigInt Remainder;
};

} // namespace parmonc

#endif // PARMONC_SPECTRAL_BIGINT_H
