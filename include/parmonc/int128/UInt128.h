//===- parmonc/int128/UInt128.h - Portable 128-bit unsigned integer -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit unsigned integer built from two 64-bit limbs, with wrapping
/// arithmetic mod 2^128. This is the numeric substrate of the paper's RNG:
///
///   u_{k+1} = u_k * A (mod 2^128),  A = 5^101 (mod 2^128)        (eq. 6)
///   A(n)    = A^n (mod 2^128)                                    (leaps)
///
/// Two multiply implementations coexist (see docs/NUMERICS.md):
///
/// - the **portable path** — 32-bit-halves schoolbook arithmetic with
///   explicit carries, compiled unconditionally; it is the auditable
///   reference semantics of the library, and what the genparam/manaver
///   file formats and the spectral test were validated against;
/// - the **fast path** — `unsigned __int128` compiler arithmetic, used by
///   `operator*` / `mulWide64` when the compiler provides it (detected via
///   `__SIZEOF_INT128__`), which lowers to two or three hardware multiply
///   instructions on 64-bit targets.
///
/// The fast path is a pure strength reduction: tests/int128 pins both
/// paths bit-equal over random and adversarial operands. Configure with
/// `-DPARMONC_PORTABLE_INT128=ON` (which defines
/// `PARMONC_FORCE_PORTABLE_INT128`) to force the portable path everywhere,
/// e.g. to reproduce results from a compiler without `__int128`.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_INT128_UINT128_H
#define PARMONC_INT128_UINT128_H

#include "parmonc/support/Status.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

/// PARMONC_NATIVE_INT128 is 1 when the wrapping multiplies below lower to
/// compiler `unsigned __int128` arithmetic, 0 when they run the portable
/// 32-bit-halves reference. The portable functions are compiled either way.
#if !defined(PARMONC_FORCE_PORTABLE_INT128) && defined(__SIZEOF_INT128__)
#define PARMONC_NATIVE_INT128 1
#else
#define PARMONC_NATIVE_INT128 0
#endif

namespace parmonc {

class UInt128;

/// Portable 64x64 -> 128-bit multiply: 32-bit-halves schoolbook with
/// explicit carries. The reference semantics of the fast path; exposed so
/// differential tests (and forced-portable builds) can run it directly.
UInt128 mulWide64Portable(uint64_t A, uint64_t B);

/// Portable 128x128 -> low-128-bits multiply (the congruential-generator
/// step, mod 2^128), built on mulWide64Portable. Reference for operator*.
UInt128 mul128Portable(UInt128 A, UInt128 B);

/// Unsigned 128-bit integer with wrapping (mod 2^128) arithmetic.
class UInt128 {
public:
  /// Zero.
  constexpr UInt128() : Lo(0), Hi(0) {}

  /// Zero-extends a 64-bit value.
  constexpr UInt128(uint64_t Low) : Lo(Low), Hi(0) {}

  /// Builds a value from explicit high and low limbs.
  constexpr UInt128(uint64_t High, uint64_t Low) : Lo(Low), Hi(High) {}

  constexpr uint64_t low() const { return Lo; }
  constexpr uint64_t high() const { return Hi; }

  constexpr bool isZero() const { return Lo == 0 && Hi == 0; }

  /// Bit \p Index (0 = least significant). \p Index must be < 128.
  constexpr bool bit(unsigned Index) const {
    assert(Index < 128 && "bit index out of range");
    return Index < 64 ? ((Lo >> Index) & 1u) != 0
                      : ((Hi >> (Index - 64)) & 1u) != 0;
  }

  /// Number of leading zero bits; 128 for zero.
  unsigned countLeadingZeros() const;

  /// Number of trailing zero bits; 128 for zero.
  unsigned countTrailingZeros() const;

  /// Position of the most significant set bit plus one; 0 for zero.
  unsigned bitWidth() const { return 128 - countLeadingZeros(); }

  // -------------------------------------------------------------------------
  // Wrapping arithmetic (mod 2^128).
  // -------------------------------------------------------------------------

  friend constexpr UInt128 operator+(UInt128 A, UInt128 B) {
    uint64_t Low = A.Lo + B.Lo;
    uint64_t Carry = Low < A.Lo ? 1 : 0;
    return UInt128(A.Hi + B.Hi + Carry, Low);
  }

  friend constexpr UInt128 operator-(UInt128 A, UInt128 B) {
    uint64_t Low = A.Lo - B.Lo;
    uint64_t Borrow = A.Lo < B.Lo ? 1 : 0;
    return UInt128(A.Hi - B.Hi - Borrow, Low);
  }

  /// Wrapping product mod 2^128 (exactly the congruential-generator step).
  /// Inline because this is the RNG hot loop: with the native fast path it
  /// compiles to three 64-bit multiplies and two adds.
  friend UInt128 operator*(UInt128 A, UInt128 B) {
#if PARMONC_NATIVE_INT128
    const unsigned __int128 Product =
        ((static_cast<unsigned __int128>(A.Hi) << 64) | A.Lo) *
        ((static_cast<unsigned __int128>(B.Hi) << 64) | B.Lo);
    return UInt128(static_cast<uint64_t>(Product >> 64),
                   static_cast<uint64_t>(Product));
#else
    return mul128Portable(A, B);
#endif
  }

  /// Truncating division. \p B must be nonzero.
  friend UInt128 operator/(UInt128 A, UInt128 B);

  /// Remainder. \p B must be nonzero.
  friend UInt128 operator%(UInt128 A, UInt128 B);

  UInt128 &operator+=(UInt128 B) { return *this = *this + B; }
  UInt128 &operator-=(UInt128 B) { return *this = *this - B; }
  UInt128 &operator*=(UInt128 B) { return *this = *this * B; }
  UInt128 &operator/=(UInt128 B) { return *this = *this / B; }
  UInt128 &operator%=(UInt128 B) { return *this = *this % B; }

  // -------------------------------------------------------------------------
  // Shifts and bitwise operators.
  // -------------------------------------------------------------------------

  /// Left shift; \p Amount >= 128 yields zero.
  friend constexpr UInt128 operator<<(UInt128 A, unsigned Amount) {
    if (Amount == 0)
      return A;
    if (Amount >= 128)
      return UInt128();
    if (Amount >= 64)
      return UInt128(A.Lo << (Amount - 64), 0);
    return UInt128((A.Hi << Amount) | (A.Lo >> (64 - Amount)),
                   A.Lo << Amount);
  }

  /// Logical right shift; \p Amount >= 128 yields zero.
  friend constexpr UInt128 operator>>(UInt128 A, unsigned Amount) {
    if (Amount == 0)
      return A;
    if (Amount >= 128)
      return UInt128();
    if (Amount >= 64)
      return UInt128(0, A.Hi >> (Amount - 64));
    return UInt128(A.Hi >> Amount,
                   (A.Lo >> Amount) | (A.Hi << (64 - Amount)));
  }

  UInt128 &operator<<=(unsigned Amount) { return *this = *this << Amount; }
  UInt128 &operator>>=(unsigned Amount) { return *this = *this >> Amount; }

  friend constexpr UInt128 operator&(UInt128 A, UInt128 B) {
    return UInt128(A.Hi & B.Hi, A.Lo & B.Lo);
  }
  friend constexpr UInt128 operator|(UInt128 A, UInt128 B) {
    return UInt128(A.Hi | B.Hi, A.Lo | B.Lo);
  }
  friend constexpr UInt128 operator^(UInt128 A, UInt128 B) {
    return UInt128(A.Hi ^ B.Hi, A.Lo ^ B.Lo);
  }
  friend constexpr UInt128 operator~(UInt128 A) {
    return UInt128(~A.Hi, ~A.Lo);
  }

  UInt128 &operator&=(UInt128 B) { return *this = *this & B; }
  UInt128 &operator|=(UInt128 B) { return *this = *this | B; }
  UInt128 &operator^=(UInt128 B) { return *this = *this ^ B; }

  // -------------------------------------------------------------------------
  // Comparisons.
  // -------------------------------------------------------------------------

  friend constexpr bool operator==(UInt128 A, UInt128 B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend constexpr bool operator!=(UInt128 A, UInt128 B) { return !(A == B); }
  friend constexpr bool operator<(UInt128 A, UInt128 B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
  friend constexpr bool operator>(UInt128 A, UInt128 B) { return B < A; }
  friend constexpr bool operator<=(UInt128 A, UInt128 B) { return !(B < A); }
  friend constexpr bool operator>=(UInt128 A, UInt128 B) { return !(A < B); }

  // -------------------------------------------------------------------------
  // Wide and modular operations.
  // -------------------------------------------------------------------------

  /// Keeps the low \p Bits bits (reduction mod 2^Bits). \p Bits <= 128;
  /// 128 is the identity.
  static constexpr UInt128 truncateToBits(UInt128 Value, unsigned Bits) {
    assert(Bits <= 128 && "bit count out of range");
    if (Bits == 128)
      return Value;
    if (Bits == 0)
      return UInt128();
    // Mask = 2^Bits - 1.
    UInt128 Mask = (UInt128(1) << Bits) - UInt128(1);
    return Value & Mask;
  }

  /// Computes Base^Exponent mod 2^Bits by square-and-multiply. This is the
  /// genparam primitive: A(n) = A^n (mod 2^r) with n itself up to 2^115.
  static UInt128 powModPow2(UInt128 Base, UInt128 Exponent, unsigned Bits);

  /// Computes 2^Exponent as a UInt128. \p Exponent must be < 128.
  static constexpr UInt128 powerOfTwo(unsigned Exponent) {
    assert(Exponent < 128 && "2^Exponent does not fit in 128 bits");
    return UInt128(1) << Exponent;
  }

  // -------------------------------------------------------------------------
  // Conversions.
  // -------------------------------------------------------------------------

  /// Rounds to the nearest double. Exact for values < 2^53.
  double toDouble() const;

  /// Base-10 rendering with no leading zeros ("0" for zero).
  std::string toDecimalString() const;

  /// Fixed-width base-16 rendering: "0x" + 32 hex digits.
  std::string toHexString() const;

  /// Parses a base-10 string; fails on empty input, non-digits or overflow.
  [[nodiscard]] static Result<UInt128> fromDecimalString(std::string_view Text);

  /// Parses a base-16 string with optional "0x" prefix.
  [[nodiscard]] static Result<UInt128> fromHexString(std::string_view Text);

  /// True when this build's operator*/mulWide64 use compiler __int128
  /// (the fast path); false when they run the portable reference. Useful
  /// for benchmark labelling — the semantics are identical either way.
  static constexpr bool hasNativeMultiply() {
    return PARMONC_NATIVE_INT128 != 0;
  }

private:
  uint64_t Lo;
  uint64_t Hi;
};

/// 64x64 -> 128-bit multiply, exposed because the RNG's double conversion
/// and the tests use it directly. Dispatches to the native fast path when
/// available, with bit-identical results to mulWide64Portable.
inline UInt128 mulWide64(uint64_t A, uint64_t B) {
#if PARMONC_NATIVE_INT128
  const unsigned __int128 Product = static_cast<unsigned __int128>(A) * B;
  return UInt128(static_cast<uint64_t>(Product >> 64),
                 static_cast<uint64_t>(Product));
#else
  return mulWide64Portable(A, B);
#endif
}

/// Full 128x128 -> 256-bit product, as {high 128 bits, low 128 bits}.
struct WideProduct128 {
  UInt128 High;
  UInt128 Low;
};
WideProduct128 mulFull128(UInt128 A, UInt128 B);

/// Quotient and remainder of a truncating division.
struct DivMod128 {
  UInt128 Quotient;
  UInt128 Remainder;
};

/// Divides, returning quotient and remainder in one pass. \p Divisor must
/// be nonzero.
DivMod128 divMod128(UInt128 Dividend, UInt128 Divisor);

} // namespace parmonc

#endif // PARMONC_INT128_UINT128_H
