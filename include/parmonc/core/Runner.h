//===- parmonc/core/Runner.h - The parallel simulation engine (§3.2) ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// runSimulation() is the C++ equivalent of the paper's parmoncc: it takes
/// a user routine that computes a single realization of a matrix-valued
/// random object, and does everything else — initializes the parallel RNG
/// hierarchy, distributes realizations over M asynchronous processors,
/// periodically passes subtotals to rank 0, averages them by eq. (5),
/// saves results and checkpoints, and supports exact resumption.
///
/// The user routine receives a RandomSource positioned at the start of its
/// own realization subsequence — calling Source.nextUniform() inside it is
/// the paper's `a = rnd128();` line. The routine must be thread-safe in
/// the weak sense that it only touches its arguments (it runs concurrently
/// on every simulated processor).
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CORE_RUNNER_H
#define PARMONC_CORE_RUNNER_H

#include "parmonc/core/ResultsStore.h"
#include "parmonc/core/RunConfig.h"
#include "parmonc/rng/RandomSource.h"
#include "parmonc/support/Clock.h"

#include <functional>

namespace parmonc {

/// Message tags of the worker-to-collector protocol. Exposed so fault
/// plans can exempt specific tags — e.g. keep final snapshots reliable
/// while dropping periodic ones.
enum ProtocolTag : int {
  TagSubtotal = 1,    ///< periodic cumulative snapshot
  TagFinal = 2,       ///< last snapshot of a finished worker
  TagShardReport = 3, ///< sharded checkpointing: a rank published a new
                      ///< cumulative shard file; payload references it
                      ///< (write index, filename, CRC, bytes, volume)
};

/// A user routine computing one realization of the random object: fills
/// \p Out (row-major, Rows x Columns doubles) using only randomness drawn
/// from \p Source.
using RealizationFn =
    std::function<void(RandomSource &Source, double *Out)>;

/// Runs one stochastic experiment. Returns the run report, or a Status on
/// configuration/IO errors. \p ClockOverride injects a test clock; null
/// uses real time.
[[nodiscard]] Result<RunReport> runSimulation(const RealizationFn &Realization,
                                const RunConfig &Config,
                                Clock *ClockOverride = nullptr);

} // namespace parmonc

#endif // PARMONC_CORE_RUNNER_H
