//===- parmonc/core/ResultsStore.h - Result & checkpoint files (§3.6) -----===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk layout the paper describes in §3.6, rooted at the user's
/// working directory:
///
///   parmonc_data/
///     parmonc_exp.dat        – registry of every experiment started
///     base.dat               – moment sums inherited at run start (resume)
///     checkpoint.dat         – merged moment sums at the last save-point
///     subtotals/rank_<m>.dat – each worker's own latest subtotal
///     results/func.dat       – matrix of sample means
///     results/func_ci.dat    – means + absolute/relative errors + variances
///     results/func_log.dat   – run log (volume, mean τ, error bounds, ...)
///
/// All moment files store raw sums (Σζ, Σζ², l) at full precision, which is
/// what makes resumption and manaver averaging exact. base.dat plus the
/// rank subtotal files exist precisely so manaver can rebuild results that
/// are *fresher* than the collector's last save after a killed job (§3.4).
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CORE_RESULTSSTORE_H
#define PARMONC_CORE_RESULTSSTORE_H

#include "parmonc/core/RunConfig.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/stats/EstimatorMatrix.h"
#include "parmonc/stats/HistogramEstimator.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parmonc {

namespace fault {
class FaultInjector;
} // namespace fault

/// A set of moment sums together with its provenance — the unit of both
/// checkpointing and worker-to-collector messages.
struct MomentSnapshot {
  /// The experiment subsequence number the sums were produced under.
  uint64_t SequenceNumber = 0;

  /// Total compute seconds spent on the accumulated realizations (for the
  /// mean-τ statistic in func_log.dat).
  double ComputeSeconds = 0.0;

  /// The raw moment sums.
  EstimatorMatrix Moments;

  /// Optional distribution observables (one histogram per configured
  /// RunConfig::Histograms entry, in the same order). Like the moment
  /// sums, these are raw counts: merging and resumption are exact.
  std::vector<HistogramEstimator> Histograms;

  /// Serializes to the text snapshot format (checkpoint/base/subtotal
  /// files).
  std::string toFileContents() const;

  /// Parses the text snapshot format.
  [[nodiscard]] static Result<MomentSnapshot> fromFileContents(std::string_view Contents);

  /// Serializes to the compact binary form used for mailbox messages.
  std::vector<uint8_t> toBytes() const;

  /// Parses the binary message form.
  [[nodiscard]] static Result<MomentSnapshot> fromBytes(const std::vector<uint8_t> &Bytes);

  /// Accumulates \p Other into this snapshot: moment sums, histogram
  /// counts and compute seconds add; the sequence number stays. Fails when
  /// the shapes or histogram geometries disagree — discard *this then, it
  /// may be partially merged. This is the collector's merge (paper eq. 5);
  /// the sharded-checkpoint restore path goes through the same arithmetic
  /// in the same rank order, which is what makes recovery bit-identical.
  [[nodiscard]] Status mergeFrom(const MomentSnapshot &Other);
};

/// The per-run log block written to func_log.dat.
struct RunLogInfo {
  int64_t TotalSampleVolume = 0;
  int64_t NewSampleVolume = 0;
  double MeanRealizationSeconds = 0.0;
  double ElapsedSeconds = 0.0;
  double MaxAbsoluteError = 0.0;
  double MaxRelativeErrorPercent = 0.0;
  double MaxVariance = 0.0;
  int ProcessorCount = 0;
  uint64_t SequenceNumber = 0;
  bool Resumed = false;
  bool Degraded = false;        ///< survivors-only results (dead workers
                                ///< or permanently failed sends)
  int DeadWorkerCount = 0;      ///< ranks declared dead during collection
  bool ResumedFromBackup = false; ///< checkpoint.dat.prev was loaded
  /// Generator backend token ("lcg128", "philox"); empty omits the
  /// parmonc_exp.dat "rng" field, matching pre-backend-era lines.
  std::string RngBackend;
};

/// Owns the parmonc_data/ tree under one working directory.
class ResultsStore {
public:
  explicit ResultsStore(std::string WorkDir);

  /// Creates parmonc_data/, results/ and subtotals/. Idempotent.
  [[nodiscard]] Status prepareDirectories() const;

  // Paths (all absolute or relative to the process CWD, derived from
  // WorkDir).
  std::string dataDir() const;
  std::string resultsDir() const;
  std::string subtotalsDir() const;
  /// Root of the sharded checkpoint tree (ckpt::CheckpointStore home).
  std::string checkpointDir() const;
  std::string checkpointPath() const;
  std::string basePath() const;
  std::string subtotalPath(int Rank) const;
  std::string meansPath() const;       ///< results/func.dat
  std::string confidencePath() const;  ///< results/func_ci.dat
  std::string logPath() const;         ///< results/func_log.dat
  std::string experimentLogPath() const;
  std::string metricsPath() const; ///< results/metrics.dat
  std::string tracePath() const;   ///< results/trace.json
  /// parmonc_genparam.dat lives in the working directory itself (§3.5).
  std::string genparamPath() const;

  /// The previous-generation sibling of a snapshot file ("<path>.prev"),
  /// rotated into place on every write. Loads fall back to it when the
  /// primary fails its CRC — a half-written checkpoint never loses a run.
  static std::string backupPath(const std::string &Path);

  /// Attaches observability sinks: checkpoint/subtotal writes and reads
  /// get "store.snapshot_write"/"store.snapshot_read" spans and latency
  /// histograms plus snapshots-written/read and bytes counters. All three
  /// pointers may be null independently; timing needs \p TimeSource.
  void attachObservers(obs::MetricsRegistry *Metrics,
                       obs::TraceWriter *Trace, const Clock *TimeSource);

  /// Installs a fault injector whose corruptWrite hook may damage snapshot
  /// writes (testing only; the pointer must outlive the store's use).
  void setFaultInjector(fault::FaultInjector *Injector);

  /// Writes one snapshot file: the body is sealed with a CRC32 integrity
  /// header, the previous generation is rotated to backupPath(Path), and
  /// the new contents land via atomic rename — a crash mid-save leaves
  /// either the old sealed file or the new one, never a torn mix.
  [[nodiscard]] Status writeSnapshot(const std::string &Path,
                       const MomentSnapshot &Snapshot) const;

  /// Reads one snapshot file, verifying the seal when present (files from
  /// before the seal era still load). A corrupted file is an IoError and
  /// is never parsed into moments.
  [[nodiscard]] Result<MomentSnapshot> readSnapshot(const std::string &Path) const;

  /// readSnapshot result plus where the data actually came from.
  struct RecoveredSnapshot {
    MomentSnapshot Snapshot;
    bool FromBackup = false; ///< the primary failed; .prev was loaded
  };

  /// Reads \p Path, falling back to backupPath(Path) when the primary is
  /// missing or fails its integrity check. Reports the *primary's* error
  /// when both generations are unreadable.
  [[nodiscard]] Result<RecoveredSnapshot>
  readSnapshotWithFallback(const std::string &Path) const;

  /// Writes func.dat, func_ci.dat and func_log.dat from the merged moments.
  [[nodiscard]] Status writeResults(const EstimatorMatrix &Merged, const RunLogInfo &Log,
                      double ErrorMultiplier) const;

  /// Appends one line to parmonc_exp.dat describing a started experiment.
  /// The append is durable (O_APPEND + fsync) and each line carries its own
  /// CRC32 suffix so a torn trailing line from a crash is detectable.
  [[nodiscard]] Status appendExperimentLog(const RunLogInfo &Log) const;

  /// One parsed parmonc_exp.dat line.
  struct ExperimentLogEntry {
    uint64_t SequenceNumber = 0;
    bool Resumed = false;
    int ProcessorCount = 0;
    int64_t StartVolume = 0;
    /// Generator backend token; empty for lines from before the backend
    /// field existed (which implicitly ran the LCG).
    std::string RngBackend;
  };

  /// Everything readExperimentLog learned, including damage it skipped.
  struct ExperimentLogContents {
    std::vector<ExperimentLogEntry> Entries;
    /// 1-based line numbers that failed their CRC or would not parse and
    /// were skipped (a torn trailing line from a crashed append lands
    /// here — the registry before it is still fully usable).
    std::vector<int> SkippedLines;
  };

  /// Reads parmonc_exp.dat, verifying each line's CRC suffix when present
  /// (pre-CRC-era lines still load). Damaged lines are skipped and
  /// reported, never fatal; a missing file yields an empty registry.
  [[nodiscard]] Result<ExperimentLogContents> readExperimentLog() const;

  /// Reads the means matrix back from func.dat (tests, manaver, tools).
  [[nodiscard]] Result<std::vector<double>> readMeans(size_t Rows, size_t Columns) const;

  /// Lists the rank subtotal files currently present, as (rank, path).
  std::vector<std::pair<int, std::string>> listSubtotalFiles() const;

  /// Removes checkpoint/base/subtotal/result files from a previous
  /// simulation (the res=0 "brand new files" behaviour).
  [[nodiscard]] Status clearPreviousRun() const;

  const std::string &workDir() const { return WorkDir; }

private:
  std::string WorkDir;
  // Observability (attachObservers); null = uninstrumented.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceWriter *Trace = nullptr;
  const Clock *Time = nullptr;
  // Fault injection (setFaultInjector); null = writes are never damaged.
  fault::FaultInjector *Injector = nullptr;
};

/// Writes/reads the per-observable histogram files under results/
/// (hist_r<row>_c<col>.dat).
std::string histogramPath(const ResultsStore &Store, size_t Row,
                          size_t Column);

/// The manaver command's core (§3.4): rebuilds merged results from
/// base.dat plus every subtotal file in the store and writes result files
/// and a fresh checkpoint. Returns the merged snapshot. Corrupted inputs
/// fall back to their .prev generation; when \p RecoveredPaths is non-null
/// it receives the primary paths that needed the fallback.
[[nodiscard]] Result<MomentSnapshot>
runManualAverage(const ResultsStore &Store, double ErrorMultiplier = 3.0,
                 std::vector<std::string> *RecoveredPaths = nullptr);

} // namespace parmonc

#endif // PARMONC_CORE_RESULTSSTORE_H
