//===- parmonc/core/RunConfig.h - Simulation run configuration ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parameters of a PARMONC run — the C++ face of the parmoncc argument
/// list (§3.2): matrix shape (nrow, ncol), maximal sample volume (maxsv),
/// resumption flag (res), experiment subsequence number (seqnum), and the
/// data-passing / averaging periods (perpass, peraver). Extended with the
/// knobs the paper leaves to the cluster environment: processor count
/// (mpirun -np equivalent), working directory, optional stopping targets.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CORE_RUNCONFIG_H
#define PARMONC_CORE_RUNCONFIG_H

#include "parmonc/mpsim/Transport.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/support/Status.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace parmonc {

namespace fault {
struct FaultPlan;
} // namespace fault

/// A save-point progress report, delivered to RunConfig::OnSavePoint.
struct RunProgress {
  int64_t TotalSampleVolume = 0;           ///< merged volume so far
  double MaxAbsoluteError = 0.0;           ///< ε_max at this save-point
  double MaxRelativeErrorPercent = 0.0;    ///< ρ_max at this save-point
  double ElapsedSeconds = 0.0;
  int SavePointCount = 0;                  ///< 1-based index of this save
};

/// Which production generator realizes the three-level stream hierarchy.
/// Both backends share the exact same StreamCoordinates discipline, so a
/// realization routine sees the identical RandomSource seam either way.
enum class RngBackendKind {
  /// The paper's rnd128: 128-bit LCG with windowed leap multiplies.
  Lcg128,
  /// Philox4x32-10 counter partitioning (rng/Philox.h): the hierarchy is
  /// realized by counter intervals instead of leap multiplies, so jumping
  /// to any stream position is constant time with no power table.
  Philox,
};

/// The stable lower-case token for a backend, as recorded in
/// parmonc_exp.dat and RunReport.
inline const char *rngBackendName(RngBackendKind Kind) {
  return Kind == RngBackendKind::Philox ? "philox" : "lcg128";
}

/// Requests a distribution estimate (fixed-grid histogram) of one entry
/// of the realization matrix, accumulated alongside the moments with the
/// same exact merge/resume semantics.
struct HistogramSpec {
  size_t Row = 0;       ///< matrix row of the observable (0-based)
  size_t Column = 0;    ///< matrix column of the observable (0-based)
  double Low = 0.0;     ///< left edge of the binned range
  double High = 1.0;    ///< right edge (exclusive)
  size_t BinCount = 64; ///< equal-width bins over [Low, High)
};

/// Configuration of one stochastic experiment run.
struct RunConfig {
  /// Realization matrix shape [ζ_ij]: nrow x ncol (§2.1). Scalar estimators
  /// use 1 x 1.
  size_t Rows = 1;
  size_t Columns = 1;

  /// Maximal total sample volume to simulate (the paper's maxsv). Choose a
  /// huge value for an "endless" run bounded by TimeLimitNanos instead.
  int64_t MaxSampleVolume = 0;

  /// Resumption flag (res): false = brand-new simulation, true = load the
  /// previous checkpoint and average into it per eq. (5).
  bool Resume = false;

  /// The "experiments" subsequence number (seqnum). When resuming, it must
  /// differ from the previous run's number (§3.2) — enforced.
  uint64_t SequenceNumber = 0;

  /// Number of simulated processors M. Rank 0 both simulates and collects,
  /// as in the paper's performance test.
  int ProcessorCount = 1;

  /// How the ranks are hosted: Threads = one thread per rank inside this
  /// process (the differential oracle), Processes = forked worker
  /// processes exchanging CRC-framed messages over Unix-domain socket
  /// pairs (mpsim/SocketTransport.h). Rank 0 runs in the calling process
  /// either way, so reports and result files are identical. Processes
  /// requires DeterministicSchedule (there is no cross-process shared
  /// work counter) — enforced by validate().
  TransportKind Transport = TransportKind::Threads;

  /// Period with which each worker passes its subtotal to rank 0
  /// (perpass). The paper expresses this in minutes; the engine takes
  /// nanoseconds so tests can compress time. 0 = send after every
  /// realization (the paper's "strictest conditions").
  int64_t PassPeriodNanos = 0;

  /// Period with which rank 0 averages and saves results (peraver);
  /// 0 = at every collector poll.
  int64_t AveragePeriodNanos = 0;

  /// Directory that receives the parmonc_data/ tree (§3.6).
  std::string WorkDir = ".";

  /// Leap configuration of the stream hierarchy. Callers normally leave
  /// the default; the engine overrides it from parmonc_genparam.dat when
  /// that file exists in WorkDir (§3.5).
  LeapConfig Leaps;

  /// Which generator backs every realization stream. Default Lcg128 is
  /// byte-identical to before this knob existed. Philox draws from the
  /// same (experiment, processor, realization) coordinates, so per-rank
  /// stream assignment, merge order and resume semantics are unchanged —
  /// only the pseudorandom numbers themselves differ. A
  /// parmonc_genparam.dat that overrides the LCG *multiplier* is
  /// rejected under Philox (the multiplier has no counter-based
  /// equivalent); its exponent overrides apply to both backends.
  RngBackendKind RngBackend = RngBackendKind::Lcg128;

  /// Error multiplier γ for reported absolute errors (§2.1; 3 ≙ λ=0.997).
  double ErrorMultiplier = 3.0;

  /// Optional: stop early once the max absolute error over all entries
  /// falls below this bound (0 = disabled). Checked at save-points.
  double TargetMaxAbsoluteError = 0.0;

  /// Optional: stop early once the max relative error (percent) falls
  /// below this bound (0 = disabled).
  double TargetMaxRelativeErrorPercent = 0.0;

  /// Optional wall-clock budget for the run (0 = unlimited) — the cluster
  /// job time limit the paper relies on for "endless" simulations.
  int64_t TimeLimitNanos = 0;

  /// Optional distribution observables: one histogram per entry, written
  /// to results/hist_r<row>_c<col>.dat at every save-point.
  std::vector<HistogramSpec> Histograms;

  /// Optional observer invoked on rank 0's thread at every save-point,
  /// after result files are written. Must be fast and thread-agnostic;
  /// it runs concurrently with the other workers.
  std::function<void(const RunProgress &)> OnSavePoint;

  /// Optional external metrics registry. When null the engine uses a
  /// private registry; either way RunReport::Metrics carries the final
  /// snapshot and results/metrics.dat is written. Supplying one lets
  /// callers share a registry across runs or pre-register extra metrics.
  obs::MetricsRegistry *Metrics = nullptr;

  /// Optional trace sink. When set, the engine emits Chrome-trace spans
  /// (per-realization compute, subtotal sends, collector merges, saves,
  /// checkpoint I/O) and writes results/trace.json at the end. Tracing
  /// never perturbs simulation results; with an injected deterministic
  /// clock the emitted JSON is byte-identical across runs (tested).
  obs::TraceWriter *Trace = nullptr;

  /// Optional fault-injection plan (testing only; null = no faults and
  /// zero added cost). The plan must outlive the run. Because worker
  /// subtotals are cumulative, every injected message fault is recoverable
  /// and the recovery paths (§3.2 res=1, §3.4 manaver) reproduce the
  /// unfailed moment sums bit-exactly — tested.
  const fault::FaultPlan *Faults = nullptr;

  /// When true, each rank simulates a fixed quota (MaxSampleVolume split
  /// as evenly as ranks allow, earlier ranks taking the remainder) instead
  /// of claiming work from a shared counter. Per-rank volumes — and hence
  /// merged sums — become independent of thread scheduling, which the
  /// byte-exact fault-recovery tests require.
  bool DeterministicSchedule = false;

  /// Worker threads per simulated processor (>= 1). With N > 1 each rank
  /// fans its realizations out over N threads: thread t of a rank runs the
  /// rank's realization subsequences t, t + N, t + 2N, ... on a stride-N
  /// RealizationCursor (one precomputed leap A(n_r)^N per realization)
  /// with a private moment accumulator, and the rank merges the thread
  /// partials in thread order before anything enters the §2.2 collector
  /// protocol. The set of consumed substreams is exactly the serial (N=1)
  /// assignment, so moment sums match the serial run whenever the
  /// accumulated sums are exact (and are run-to-run deterministic under
  /// DeterministicSchedule regardless). Default 1 = the paper's
  /// one-thread-per-processor engine, byte-identical to before this knob
  /// existed. Incompatible with injected worker crashes, which model
  /// whole-rank death.
  int WorkerThreadsPerRank = 1;

  /// Attempts per subtotal send before the worker gives up on the message
  /// (it keeps simulating; the next cumulative subtotal covers the loss).
  int SendMaxAttempts = 4;

  /// Backoff slept on the run clock between send retries.
  int64_t SendRetryBackoffNanos = 1'000'000;

  /// Collector-side liveness deadline: if no worker message arrives for
  /// this long during final collection, the remaining workers are declared
  /// dead and the run completes degraded over the survivors' subtotals
  /// (eq. 5 over fewer ranks). 0 = wait forever (the pre-fault behavior).
  int64_t WorkerDeadlineNanos = 0;

  /// Sharded checkpointing: every rank publishes its own CRC-sealed
  /// cumulative shard (at subtotal-persist cadence) and rank 0 commits a
  /// manifest referencing the latest shard of every rank instead of
  /// writing the monolithic checkpoint.dat. Restore merges base + shards
  /// in rank order, bit-identical to the single-file path, and falls back
  /// to the previous manifest generation on any validation failure.
  /// Default off: the legacy checkpoint.dat path, byte-identical to
  /// before this knob existed. Either kind of checkpoint can be resumed
  /// regardless of the flag's value in the resuming run; when both a
  /// manifest and a checkpoint.dat exist (e.g. after a manaver rebuild),
  /// the loadable state with the larger sample volume is restored —
  /// snapshots are cumulative, so larger means fresher.
  bool CheckpointShards = false;

  /// Hands manifest commits to a background writer thread on rank 0 so
  /// save-points return after a queue push instead of stalling on
  /// checkpoint I/O. Queue overflow coalesces (newest request wins —
  /// always safe, snapshots are cumulative) and is counted in
  /// RunReport::CoalescedCheckpoints and "ckpt.coalesced_saves".
  /// Requires CheckpointShards.
  bool CheckpointAsync = false;

  /// Bound of the background writer's commit queue (>= 1).
  int CheckpointQueueDepth = 2;

  /// Shard files retained per rank beyond the manifest-referenced ones
  /// when commits prune the shard directory (>= 1).
  int CheckpointKeepShards = 2;

  /// Checks ranges and cross-field constraints.
  [[nodiscard]] Status validate() const;
};

/// Summary of a finished run, mirroring what func_log.dat records.
struct RunReport {
  /// Total accumulated sample volume (including any resumed volume).
  int64_t TotalSampleVolume = 0;

  /// Volume contributed by this run only.
  int64_t NewSampleVolume = 0;

  /// Mean compute time per realization in seconds (this run).
  double MeanRealizationSeconds = 0.0;

  /// Wall-clock duration of the run in seconds.
  double ElapsedSeconds = 0.0;

  /// ε_max, ρ_max, σ²_max at the end of the run.
  double MaxAbsoluteError = 0.0;
  double MaxRelativeErrorPercent = 0.0;
  double MaxVariance = 0.0;

  /// Save-points written (periodic + final).
  int SavePointCount = 0;

  /// Final per-processor volumes l_m (eq. 4); diverge under jitter.
  std::vector<int64_t> PerProcessorVolumes;

  /// True if the run stopped because an error target was met.
  bool StoppedOnErrorTarget = false;

  /// True if the run stopped on the time limit.
  bool StoppedOnTimeLimit = false;

  /// True if any worker died or any subtotal send was permanently lost:
  /// the results cover the survivors per eq. (5) and manaver can rebuild
  /// the full total from the on-disk subtotals (§3.4).
  bool Degraded = false;

  /// Ranks declared dead during final collection (deadline expiry or
  /// injected crash), sorted.
  std::vector<int> DeadWorkers;

  /// Subtotal sends that failed even after retries.
  int64_t FailedSends = 0;

  /// True if the (injected) collector crash fired: the run ended without
  /// final saves, exactly as a killed job would.
  bool SimulatedCrash = false;

  /// True if the checkpoint failed its integrity check on resume and the
  /// previous generation (checkpoint.dat.prev, or the .prev manifest when
  /// sharded) was loaded instead.
  bool ResumedFromBackup = false;

  /// True when the resume state came from a sharded checkpoint manifest
  /// rather than the legacy checkpoint.dat.
  bool RestoredFromShards = false;

  /// Sharded async checkpointing only: save-point commits that were
  /// coalesced away by queue backpressure (each one subsumed by a newer
  /// commit; never a silent loss).
  int64_t CoalescedCheckpoints = 0;

  /// The generator backend that produced every draw of this run
  /// (rngBackendName of RunConfig::RngBackend), as also recorded in the
  /// run's parmonc_exp.dat line.
  std::string RngBackendName;

  /// Final values of every engine metric (runner.*, rng.*, comm.*,
  /// store.*), also persisted to results/metrics.dat for mcstat.
  obs::MetricsSnapshot Metrics;

  /// Process transport only: per-worker exit diagnostics (exit code or
  /// terminating signal, whether the orderly GOODBYE arrived, send
  /// counters). Empty under the thread transport.
  std::vector<ProcessRankStatus> ProcessRanks;
};

} // namespace parmonc

#endif // PARMONC_CORE_RUNCONFIG_H
