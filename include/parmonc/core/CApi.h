//===- parmonc/core/CApi.h - The paper's C calling convention -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-callable entry points with the paper's signatures (§3.2, §3.3, §4):
///
///   parmoncc(difftraj, &nrow, &ncol, &maxsv, &res, &seqnum,
///            &perpass, &peraver);
///   a = rnd128();
///
/// The realization routine takes only the output buffer; inside it the
/// user draws base random numbers with rnd128(), which transparently reads
/// from the stream the engine assigned to the current realization on the
/// current simulated processor. Arguments are passed by pointer exactly as
/// in the paper (a FORTRAN-compatible convention).
///
/// Knobs MPI would normally provide are taken from the environment:
/// PARMONC_NP (processor count, default: hardware concurrency) and
/// PARMONC_WORKDIR (default ".").
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CORE_CAPI_H
#define PARMONC_CORE_CAPI_H

#ifdef __cplusplus
extern "C" {
#endif

/// A user routine computing one realization of the random object: fills
/// \p out with nrow*ncol values, row-major, drawing randomness via
/// rnd128().
typedef void (*parmonc_realization_fn)(double *out);

/// Runs the parallel simulation (the paper's main subroutine for C
/// programs). perpass and peraver are in minutes, as in the paper.
/// Returns 0 on success, nonzero on error (a diagnostic is printed to
/// stderr).
int parmoncc(parmonc_realization_fn realization, const int *nrow,
             const int *ncol, const long long *maxsv, const int *res,
             const int *seqnum, const int *perpass, const int *peraver);

/// The FORTRAN-convention entry point (§3.2, parmoncf): identical
/// semantics to parmoncc with gfortran's external naming (trailing
/// underscore) and by-reference argument passing — which the C signature
/// already uses, so a FORTRAN caller compiled with the usual conventions
/// links directly against this symbol:
///
///   call parmoncf(difftraj, nrow, ncol, maxsv, res, seqnum,
///  &              perpass, peraver)
///
/// The realization subroutine receives the output array address, exactly
/// like the C routine. rnd128() is likewise callable from FORTRAN via the
/// rnd128_() alias below.
int parmoncf_(parmonc_realization_fn realization, const int *nrow,
              const int *ncol, const long long *maxsv, const int *res,
              const int *seqnum, const int *perpass, const int *peraver);

/// FORTRAN-conventions alias of rnd128() (gfortran name mangling).
double rnd128_(void);

/// The parallel generator (§3.3): the next base random number, uniform on
/// (0,1), from the current realization's subsequence. Must be called from
/// inside a realization routine invoked by parmoncc; calling it elsewhere
/// draws from a fallback whole-sequence stream (useful for quick
/// sequential experiments, exactly like using the raw generator).
double rnd128(void);

#ifdef __cplusplus
} // extern "C"

namespace parmonc {
class RandomSource;

/// Binds rnd128() on this thread to \p Source (null restores the fallback
/// stream). The engine wraps every realization with this; exposed so tests
/// and custom drivers can do the same.
void setThreadRandomSource(RandomSource *Source);
} // namespace parmonc
#endif

#endif // PARMONC_CORE_CAPI_H
