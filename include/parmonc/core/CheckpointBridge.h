//===- parmonc/core/CheckpointBridge.h - Shard <-> snapshot glue ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glues the opaque-payload ckpt store to core's MomentSnapshot world. The
/// store neither parses nor merges moments (it lives below core in the
/// layering DAG); this bridge restores a committed generation and rebuilds
/// the merged collector snapshot from it — base first, then every rank
/// shard in ascending rank order, through MomentSnapshot::mergeFrom. That
/// is the collector's own save-time arithmetic replayed in the same order,
/// which makes a sharded restore bit-identical to loading the legacy
/// single-file checkpoint.dat the same run would have written.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_CORE_CHECKPOINTBRIDGE_H
#define PARMONC_CORE_CHECKPOINTBRIDGE_H

#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/core/ResultsStore.h"
#include "parmonc/support/Status.h"

#include <cstdint>

namespace parmonc {

/// A merged snapshot recovered from a sharded checkpoint generation.
struct RecoveredCheckpoint {
  /// Base plus every rank shard, merged in ascending rank order.
  MomentSnapshot Merged;
  /// True when manifest.dat was rejected (CRC, short read, missing shard,
  /// torn write, unparsable payload) and the .prev generation was used.
  bool FromBackupManifest = false;
  /// The generation number of the manifest that was actually restored.
  int64_t Generation = 0;
};

/// Restores the newest loadable generation from \p Store and rebuilds the
/// merged snapshot. Walks the full recovery ladder: a generation whose
/// manifest, shard bytes or shard *payloads* fail validation is rejected
/// and the previous generation is tried before giving up.
[[nodiscard]] Result<RecoveredCheckpoint>
restoreShardedCheckpoint(const ckpt::CheckpointStore &Store);

} // namespace parmonc

#endif // PARMONC_CORE_CHECKPOINTBRIDGE_H
