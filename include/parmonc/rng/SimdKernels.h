//===- parmonc/rng/SimdKernels.h - Wide-interleave batch kernels ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wide (16-lane) interleaved batch kernels behind `Lcg128::fillBatch`
/// and friends, compiled in exactly one translation unit
/// (src/rng/SimdKernels.cpp) with the instruction-set flags selected by
/// the `PARMONC_SIMD` CMake option:
///
///   - `AUTO`    — `-march=native` on the kernel TU; the best backend the
///                 host supports is selected at compile time,
///   - `AVX2`    — explicit AVX2 (4x64-bit lanes per register, four
///                 register groups),
///   - `AVX512`  — explicit AVX-512F/DQ (8x64-bit lanes per register,
///                 two register groups),
///   - `SCALAR`  — the portable 16-lane scalar interleave, the fallback
///                 for targets without x86 vector units (NEON hosts get
///                 this path today).
///
/// Every backend runs the same recurrence shape: lane j carries
/// u_{k+1+16t+j} and steps by the precomputed A^16, so sixteen 128-bit
/// multiply chains are independent. Sixteen lanes — not one register's
/// worth — is deliberate: a single vector group's step depends on its own
/// previous step, so one group is bound by vector-multiply *latency*;
/// splitting the lanes across independent register groups lets
/// consecutive steps overlap and moves the kernel to the multiplier's
/// *throughput* limit. Outputs are emitted in sequence order and are
/// **bit-identical** to the scalar recurrence — including the
/// unit-interval mapping, which each vector backend computes with
/// exact-by-construction double arithmetic (see docs/RNG.md#kernel-paths).
/// The four-lane kernel in Lcg128.cpp is kept as the differential oracle
/// for these paths, the same way `mul128Portable` oracles the `__int128`
/// fast path.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_SIMDKERNELS_H
#define PARMONC_RNG_SIMDKERNELS_H

#include "parmonc/int128/UInt128.h"

#include <cstddef>
#include <cstdint>

namespace parmonc {
namespace rngsimd {

/// Which instruction set the kernel translation unit was compiled for.
enum class Backend {
  Scalar, ///< portable 16-lane interleave, no vector intrinsics
  Avx2,   ///< explicit AVX2, 4x64-bit lanes per ymm register
  Avx512, ///< explicit AVX-512F/DQ, 8x64-bit lanes per zmm register
};

/// The backend baked into this build's kernel TU. Data, not code: safe to
/// read on any host, including one that cannot execute the kernels.
extern const Backend CompiledBackend;

/// Stable lower-case name of \p Which for reports ("scalar", "avx2",
/// "avx512"). Compiled without target flags (SimdDispatch.cpp), safe on
/// any host.
const char *backendName(Backend Which);

/// True when the executing CPU can run `CompiledBackend`'s kernels (always
/// true for the scalar backend). Compiled without target flags
/// (SimdDispatch.cpp), so probing is safe even on hosts that cannot
/// execute the kernel TU; `Lcg128` falls back to the four-lane path when
/// this is false.
bool runtimeSupportsCompiledBackend();

/// Number of interleaved recurrence lanes every backend runs, split
/// across independent register groups so vector steps overlap.
inline constexpr size_t LaneCount = 16;

/// Fills \p Out[0..Count) with unit-interval draws u_{k+1}..u_{k+Count},
/// advancing \p State from u_k to u_{k+Count}. Bit-equal to the scalar
/// recurrence for every \p Count, including the sub-lane tail (which runs
/// the plain serial recurrence).
void fillBatchWide(UInt128 &State, UInt128 Multiplier, double *Out,
                   size_t Count);

/// Same kernel emitting the raw top-64-bit outputs.
void fillBatchBits64Wide(UInt128 &State, UInt128 Multiplier, uint64_t *Out,
                         size_t Count);

/// Block-leap kernel: lanes are *blocks*, not interleaved positions — the
/// sixteen subsequences started by consecutive leap multiplies are
/// independent streams, so each lane steps by the base multiplier A and
/// emits its own block's draws with no per-block re-interleave setup.
/// Emits \p DrawsPerBlock draws for each of \p BlockCount blocks into
/// \p Out (block-major), advancing \p State by LeapMultiplier^BlockCount.
/// Trailing blocks beyond the last full lane group run serially.
void fillBlockLeapWide(UInt128 &State, UInt128 Multiplier, double *Out,
                       size_t BlockCount, size_t DrawsPerBlock,
                       UInt128 LeapMultiplier);

} // namespace rngsimd
} // namespace parmonc

#endif // PARMONC_RNG_SIMDKERNELS_H
