//===- parmonc/rng/LeapWindow.h - Windowed leap-ahead power table ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precomputed windowed powers for O(log n) leap-ahead. The paper's
/// subsequencing machinery keeps asking for A^n (mod 2^128) — leap
/// multipliers A(n) = A^(2^j) at genparam time, A(n_e)^e·A(n_p)^p·A(n_r)^k
/// at stream-creation time, A(n_r)^Stride at cursor-construction time.
/// Square-and-multiply (`UInt128::powModPow2`) answers each query with a
/// fresh 127-squaring chain; a `PowerWindow` spends those multiplies once,
/// building a radix-16 digit table for a fixed base, after which any
/// 128-bit exponent costs at most 31 table multiplies and zero squarings.
/// See docs/RNG.md#windowed-leap for the capacity math this accelerates.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_LEAPWINDOW_H
#define PARMONC_RNG_LEAPWINDOW_H

#include "parmonc/int128/UInt128.h"

#include <array>

namespace parmonc {

/// Windowed power table for a fixed base: Table[k][d] = Base^(d·16^k)
/// (mod 2^Bits), one row per radix-16 digit of a 128-bit exponent.
///
/// Construction performs 16·32 - 1 = 511 multiplies and holds 8 KiB of
/// table; each `pow()` afterwards is at most `DigitCount - 1` = 31
/// multiplies (one per nonzero exponent digit — a power-of-two exponent,
/// the leap-multiplier shape, needs exactly one). `powModPow2` by
/// comparison walks all 128 exponent bits with a squaring each, so the
/// window pays for itself after a handful of queries and every query
/// after that is ~4x cheaper. Results are bit-identical to `powModPow2`
/// for every base/exponent/modulus.
class PowerWindow {
public:
  /// Radix-16 windows: 4 exponent bits per table row.
  static constexpr unsigned WindowBits = 4;
  /// Rows: one per base-16 digit of a 128-bit exponent.
  static constexpr unsigned DigitCount = 128 / WindowBits;
  /// Entries per row: one per digit value.
  static constexpr unsigned DigitRange = 1u << WindowBits;

  /// Builds the table for \p Base mod 2^ModulusBits. \p ModulusBits must
  /// be in [1, 128].
  explicit PowerWindow(UInt128 Base, unsigned ModulusBits = 128);

  /// Base^Exponent (mod 2^ModulusBits): the product of Table[k][digit_k]
  /// over the nonzero radix-16 digits of \p Exponent. Exponent zero
  /// yields one.
  UInt128 pow(UInt128 Exponent) const;

  /// The base this table was built for.
  UInt128 base() const { return BaseValue; }

  /// The modulus exponent: results are reduced mod 2^modulusBits().
  unsigned modulusBits() const { return Bits; }

private:
  UInt128 BaseValue;
  unsigned Bits;
  std::array<std::array<UInt128, DigitRange>, DigitCount> Table;
};

} // namespace parmonc

#endif // PARMONC_RNG_LEAPWINDOW_H
