//===- parmonc/rng/Baselines.h - Comparison generators --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference generators the benches compare rnd128 against, mirroring the
/// related work the paper cites (§1: SPRNG-style leapfrog LCGs, JAPARA,
/// counter-based designs):
///
///  - SplitMix64        — fast 64-bit mixing generator (speed baseline),
///  - Xoshiro256**      — modern general-purpose generator,
///  - Philox4x32-10     — counter-based generator (Random123 family),
///  - Mcg64             — 64-bit multiplicative congruential (Knuth M_61'),
///  - Randu             — IBM's infamous RANDU; *deliberately bad*, used as
///                        the negative control in the statistical-quality
///                        bench and tests.
///
/// All implement RandomSource so workloads and tests are generator-blind.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_BASELINES_H
#define PARMONC_RNG_BASELINES_H

#include "parmonc/rng/RandomSource.h"

#include <cassert>
#include <cstdint>

namespace parmonc {

/// Steele, Lea & Flood's SplitMix64. One 64-bit Weyl step plus a finalizer;
/// period 2^64.
class SplitMix64 final : public RandomSource {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  uint64_t nextBits64() override {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Mixed = State;
    Mixed = (Mixed ^ (Mixed >> 30)) * 0xbf58476d1ce4e5b9ull;
    Mixed = (Mixed ^ (Mixed >> 27)) * 0x94d049bb133111ebull;
    return Mixed ^ (Mixed >> 31);
  }

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  const char *name() const override { return "splitmix64"; }

private:
  uint64_t State;
};

/// Blackman & Vigna's xoshiro256**; period 2^256 - 1.
class Xoshiro256StarStar final : public RandomSource {
public:
  /// Seeds the four state words from a SplitMix64 stream, the seeding the
  /// authors recommend (the all-zero state is thereby unreachable).
  explicit Xoshiro256StarStar(uint64_t Seed = 1);

  uint64_t nextBits64() override {
    const uint64_t Scrambled = rotateLeft(State[1] * 5, 7) * 9;
    const uint64_t Shifted = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= Shifted;
    State[3] = rotateLeft(State[3], 45);
    return Scrambled;
  }

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  const char *name() const override { return "xoshiro256**"; }

private:
  static uint64_t rotateLeft(uint64_t Value, unsigned Amount) {
    return (Value << Amount) | (Value >> (64 - Amount));
  }

  uint64_t State[4];
};

/// Philox4x32 with 10 rounds (Salmon et al., Random123). Counter-based:
/// each block of four 32-bit outputs is a keyed bijection of a 128-bit
/// counter, so leaping is free — the natural modern comparator for the
/// paper's leap-ahead design.
class Philox4x32 final : public RandomSource {
public:
  explicit Philox4x32(uint64_t Key = 0xdeadbeefcafebabeull);

  uint64_t nextBits64() override;

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  const char *name() const override { return "philox4x32-10"; }

  /// Jumps the counter to block \p BlockIndex; the next output is word 0 of
  /// that block.
  void seekToBlock(uint64_t BlockIndex);

private:
  void generateBlock();

  uint32_t Counter[4] = {0, 0, 0, 0};
  uint32_t Key[2];
  uint32_t Block[4] = {0, 0, 0, 0};
  unsigned NextWord = 4; ///< 4 == block exhausted, generate on next call.
};

/// 64-bit multiplicative congruential generator modulo 2^64 with the
/// spectral-test-selected multiplier from Steele & Vigna's "Computationally
/// easy, spectrally good multipliers" (2022). Period 2^62. The "one machine
/// word" classical design, i.e. the paper's generator family at r = 64.
class Mcg64 final : public RandomSource {
public:
  explicit Mcg64(uint64_t Seed = 1) : State(Seed | 1) {}

  uint64_t nextBits64() override {
    State *= 0xd1342543de82ef95ull; // ≡ 5 (mod 8): maximal period 2^62.
    return State;
  }

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  const char *name() const override { return "mcg64"; }

private:
  uint64_t State;
};

/// IBM RANDU: u <- 65539*u (mod 2^31). Triples fall on 15 planes — the
/// canonical example of a generator that passes 1-D uniformity but fails
/// multidimensional tests. Kept as the negative control.
class Randu final : public RandomSource {
public:
  explicit Randu(uint32_t Seed = 1) : State(Seed | 1) {
    assert((Seed & 1u) != 0 && "RANDU state must be odd");
  }

  /// One RANDU step; the state stays in (0, 2^31).
  uint32_t nextRaw() {
    State = (65539u * State) & 0x7fffffffu;
    return State;
  }

  /// Concatenates two 31-bit outputs and pads; preserves the generator's
  /// (bad) structure in the high bits where the tests look.
  uint64_t nextBits64() override {
    uint64_t High = uint64_t(nextRaw()) << 33;
    uint64_t Low = uint64_t(nextRaw()) << 2;
    return High | Low;
  }

  double nextUniform() override {
    // The classical way RANDU was consumed: u * 2^-31, one output per call.
    return (double(nextRaw()) + 0.5) * 0x1p-31;
  }

  const char *name() const override { return "randu"; }

private:
  uint32_t State;
};

} // namespace parmonc

#endif // PARMONC_RNG_BASELINES_H
