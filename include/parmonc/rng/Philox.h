//===- parmonc/rng/Philox.h - Counter-based production generator ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A counter-based alternative to the 128-bit LCG, registered behind the
/// same `RandomSource` seam: Philox4x32-10 (Salmon et al., SC'11) driven
/// by a 128-bit draw position. Where the LCG realizes the paper's
/// three-level hierarchy with leap *multiplies*, this backend realizes it
/// with counter *partitioning* — experiment e / processor p /
/// realization k simply owns draw positions
///
///   D = e·2^ne + p·2^np + k·2^nr + d,   d in [0, 2^nr)
///
/// of the keyed sequence, the very same interval arithmetic the leap
/// hierarchy guarantees (2^10 experiments × 2^17 processors × 2^55
/// realizations at the defaults). Because a block is a keyed bijection of
/// its counter, "leaping" to any position is free: no power table, no
/// squaring chain, no state walk. See docs/RNG.md#philox-backend for the
/// partitioning math and the validation story (full statest battery;
/// the exact lattice spectral test is LCG-specific and does not apply).
///
/// Distinct from the bench-only `Philox4x32` baseline in Baselines.h:
/// this class carries the full 128-bit position, the hierarchy mapping,
/// and the batched fill path, and is meant for production use.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_PHILOX_H
#define PARMONC_RNG_PHILOX_H

#include "parmonc/int128/UInt128.h"
#include "parmonc/rng/RandomSource.h"
#include "parmonc/rng/StreamHierarchy.h"

namespace parmonc {

/// Counter-based generator: Philox4x32-10 over a 128-bit block counter.
/// Each 128-bit counter value is bijected through ten keyed rounds into
/// 128 output bits, consumed as two 64-bit draws; the stream is the
/// sequence of draws at positions 0, 1, 2, ... and `seek()` jumps to any
/// position in constant time.
class Philox final : public RandomSource {
public:
  /// Draws per counter block: each block's 128 output bits yield two
  /// 64-bit draws.
  static constexpr unsigned DrawsPerBlock = 2;

  /// log2 of the usable stream length per key. The counter spans 2^128
  /// blocks = 2^129 draws; capping hierarchy use at 2^126 draws mirrors
  /// the LCG's usable-half discipline and keeps every partition interval
  /// comfortably inside one period.
  static constexpr unsigned UsableLog2 = 126;

  /// A stream at draw position 0 under \p Key (the key is the "which
  /// sequence" selector — independent keys give independent sequences).
  explicit Philox(uint64_t Key = 0) : KeyLo(uint32_t(Key)),
                                      KeyHi(uint32_t(Key >> 32)) {}

  /// The stream positioned where the hierarchy places \p Where: draw
  /// position e·2^ne + p·2^np + k·2^nr of the sequence keyed by \p Key.
  /// Asserts the same per-level capacity bounds as
  /// StreamHierarchy::initialNumber, so LCG and Philox deployments share
  /// one coordinate discipline. \p Config must validate().
  static Philox streamFor(const StreamCoordinates &Where,
                          const LeapConfig &Config = LeapConfig(),
                          uint64_t Key = 0);

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  uint64_t nextBits64() override;

  /// Batched generation, bit-equal to \p Count nextBits64()-backed
  /// nextUniform() calls: whole blocks are expanded straight into \p Out,
  /// with scalar draws only at the unaligned edges.
  void fillUniforms(double *Out, size_t Count) override;

  const char *name() const override { return "philox"; }

  /// The absolute draw position the next output will come from.
  UInt128 position() const { return Position; }

  /// Jumps to absolute draw position \p DrawIndex in constant time — the
  /// counter-based equivalent of the LCG's leap multiply.
  void seek(UInt128 DrawIndex);

  /// Advances by \p Draws positions without generating output.
  void skip(UInt128 Draws) { seek(Position + Draws); }

  /// The 64-bit key this stream was built with.
  uint64_t key() const { return (uint64_t(KeyHi) << 32) | KeyLo; }

private:
  /// Bijects block \p BlockIndex through the ten Philox rounds into
  /// Cached[0..1] and records the index in CachedBlock.
  void computeBlock(UInt128 BlockIndex);

  uint32_t KeyLo;
  uint32_t KeyHi;
  UInt128 Position;              ///< next draw index
  UInt128 CachedBlock;           ///< which block Cached[] holds
  bool CacheValid = false;       ///< Cached[]/CachedBlock populated
  uint64_t Cached[DrawsPerBlock] = {0, 0};
};

} // namespace parmonc

#endif // PARMONC_RNG_PHILOX_H
