//===- parmonc/rng/StreamHierarchy.h - Leap-ahead stream partition --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's three-level partition of the general sequence {alpha_k}
/// (§2.4). "Leaps" of length n are taken with the auxiliary generator
///
///   û_0 = 1, û_{m+1} = û_m * A(n) (mod 2^128),  A(n) = A^n (mod 2^128)
///
/// producing the initial numbers of disjoint subsequences:
///
///   general sequence  ⊃ "experiments"  subsequences  (leap n_e = 2^115)
///   experiment        ⊃ "processors"   subsequences  (leap n_p = 2^98)
///   processor         ⊃ "realizations" subsequences  (leap n_r = 2^43)
///
/// so experiment e / processor p / realization k starts at
/// u = A(n_e)^e * A(n_p)^p * A(n_r)^k (mod 2^128) — position
/// e*n_e + p*n_p + k*n_r of the general sequence. With the defaults one
/// gets 2^10 experiments x 2^17 processors x 2^55 realizations, each
/// realization owning 2^43 ≈ 10^13 numbers, all within the recommended
/// first half (2^125) of the period.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_STREAMHIERARCHY_H
#define PARMONC_RNG_STREAMHIERARCHY_H

#include "parmonc/int128/UInt128.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LeapWindow.h"
#include "parmonc/support/Status.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

namespace parmonc {

/// The three leap lengths, stored as exponents of two. This is what the
/// genparam tool computes and what parmonc_genparam.dat stores.
struct LeapConfig {
  /// Experiment leap exponent: n_e = 2^ExperimentLog2.
  unsigned ExperimentLog2 = DefaultExperimentLog2;
  /// Processor leap exponent: n_p = 2^ProcessorLog2.
  unsigned ProcessorLog2 = DefaultProcessorLog2;
  /// Realization leap exponent: n_r = 2^RealizationLog2.
  unsigned RealizationLog2 = DefaultRealizationLog2;

  static constexpr unsigned DefaultExperimentLog2 = 115;
  static constexpr unsigned DefaultProcessorLog2 = 98;
  static constexpr unsigned DefaultRealizationLog2 = 43;

  /// Checks the paper's ordering requirement n_e > n_p > n_r and that the
  /// experiment subsequences fit in the usable half of the period.
  [[nodiscard]] Status validate() const;

  /// Capacity at each level implied by the exponents, as log2 counts:
  /// usable half / n_e experiments, n_e / n_p processors per experiment,
  /// n_p / n_r realizations per processor.
  unsigned maxExperimentsLog2() const {
    return Lcg128::UsableLog2 - ExperimentLog2;
  }
  unsigned maxProcessorsLog2() const { return ExperimentLog2 - ProcessorLog2; }
  unsigned maxRealizationsLog2() const {
    return ProcessorLog2 - RealizationLog2;
  }
};

/// Precomputed leap multipliers A(n_e), A(n_p), A(n_r) for a multiplier A,
/// plus the windowed power table of A that makes every later A^n query
/// O(log n) (see LeapWindow.h and docs/RNG.md#windowed-leap).
class LeapTable {
public:
  /// Builds the windowed power table of \p Multiplier and reads the three
  /// leap multipliers A(2^Config.*Log2) mod 2^128 out of it. \p Config
  /// must validate().
  LeapTable(UInt128 Multiplier, const LeapConfig &Config);

  /// Default table: A = 5^101, default exponents.
  LeapTable() : LeapTable(Lcg128::defaultMultiplier(), LeapConfig()) {}

  UInt128 experimentLeap() const { return ExperimentLeap; }
  UInt128 processorLeap() const { return ProcessorLeap; }
  UInt128 realizationLeap() const { return RealizationLeap; }
  UInt128 baseMultiplier() const { return BaseMultiplier; }
  const LeapConfig &config() const { return Config; }

  /// A^Exponent (mod 2^128) through the windowed table: at most 31
  /// multiplies for any 128-bit exponent, bit-identical to
  /// UInt128::powModPow2 on the same inputs.
  UInt128 powerOfBase(UInt128 Exponent) const {
    return BaseWindow->pow(Exponent);
  }

  /// The underlying windowed table of the base multiplier. Shared (and
  /// immutable) across every copy of this LeapTable — copying a table
  /// into a RealizationCursor does not re-derive the 8 KiB of windows.
  const PowerWindow &baseWindow() const { return *BaseWindow; }

  /// Serializes to the parmonc_genparam.dat format (§3.5).
  std::string toFileContents() const;

  /// Parses a parmonc_genparam.dat and revalidates the multipliers against
  /// the recorded exponents, so a corrupted file cannot silently produce
  /// overlapping streams.
  [[nodiscard]] static Result<LeapTable> fromFileContents(std::string_view Contents);

  /// Loads from \p Path if the file exists, otherwise returns the default
  /// table — matching the library behaviour described in §3.5.
  [[nodiscard]] static Result<LeapTable> loadOrDefault(const std::string &Path);

private:
  LeapConfig Config;
  UInt128 BaseMultiplier;
  UInt128 ExperimentLeap;
  UInt128 ProcessorLeap;
  UInt128 RealizationLeap;
  std::shared_ptr<const PowerWindow> BaseWindow;
};

/// Identifies one realization subsequence inside the hierarchy.
struct StreamCoordinates {
  uint64_t Experiment = 0;  ///< seqnum, the user-chosen experiment index.
  uint64_t Processor = 0;   ///< MPI-rank equivalent.
  uint64_t Realization = 0; ///< realization counter on that processor.
};

/// Factory for the initial numbers of the hierarchy and for per-realization
/// generator streams.
class StreamHierarchy {
public:
  explicit StreamHierarchy(LeapTable Table) : Table(std::move(Table)) {}
  StreamHierarchy() = default;

  /// Initial number u of the subsequence at \p Where:
  /// A(n_e)^e * A(n_p)^p * A(n_r)^k (mod 2^128). Asserts each index is
  /// within the capacity implied by the leap exponents.
  UInt128 initialNumber(const StreamCoordinates &Where) const;

  /// A generator positioned at the start of the realization subsequence
  /// \p Where.
  Lcg128 makeStream(const StreamCoordinates &Where) const;

  const LeapTable &leapTable() const { return Table; }

  /// Attaches the "rng.streams_issued" counter from \p Registry: every
  /// makeStream()/beginRealization() afterwards increments it (cursors
  /// created from this hierarchy inherit the counter). Cheap: one relaxed
  /// atomic add per stream.
  void attachMetrics(obs::MetricsRegistry &Registry);

  /// The attached streams-issued counter, or null.
  obs::Counter *streamsIssuedCounter() const { return StreamsIssued; }

private:
  LeapTable Table;
  obs::Counter *StreamsIssued = nullptr;
};

/// Iterates the realization subsequences of one processor. The cursor keeps
/// the *start* of the current realization subsequence separately from any
/// consuming stream: beginning realization k+1 multiplies the start marker
/// by A(n_r), abandoning whatever tail of subsequence k went unused. That
/// abandonment is what keeps realizations independent regardless of how
/// many base numbers each one consumed (as long as it is at most n_r).
class RealizationCursor {
public:
  /// Positions the cursor at realization \p Start.Realization of processor
  /// \p Start.Processor in experiment \p Start.Experiment. \p Stride (>= 1)
  /// makes successive beginRealization() calls visit realizations
  /// Start.Realization, Start.Realization + Stride, ... — the leap-ahead
  /// partition the threaded engine uses to give each of N worker threads
  /// every N-th realization subsequence: thread t strides by N from start
  /// index t, and the N cursors jointly cover exactly the serial stream
  /// assignment. The stride leap A(n_r)^Stride = A^(Stride·2^nr) is read
  /// from the table's power window (O(log n) multiplies, no squaring
  /// chain), so striding costs the same one multiply per realization as
  /// stride 1.
  RealizationCursor(const StreamHierarchy &Hierarchy, StreamCoordinates Start,
                    uint64_t Stride = 1)
      : Table(Hierarchy.leapTable()),
        StartState(Hierarchy.initialNumber(Start)),
        StrideLeap(Stride == 1
                       ? Table.realizationLeap()
                       : Table.powerOfBase(
                             UInt128(Stride)
                             << Table.config().RealizationLog2)),
        NextRealization(Start.Realization), Stride(Stride),
        StreamsIssued(Hierarchy.streamsIssuedCounter()) {
    assert(Stride >= 1 && "cursor stride must be at least 1");
  }

  /// Index of the realization the next beginRealization() call will start.
  uint64_t nextRealizationIndex() const { return NextRealization; }

  /// The stride between successive realization indices (1 = every one).
  uint64_t stride() const { return Stride; }

  /// Returns a generator positioned at the start of the next realization
  /// subsequence and advances the cursor by the stride.
  Lcg128 beginRealization() {
    Lcg128 Stream(Table.baseMultiplier(), StartState);
    StartState = StartState * StrideLeap;
    NextRealization += Stride;
    if (StreamsIssued)
      StreamsIssued->add();
    return Stream;
  }

  /// Advances the cursor by one stride and counts the stream without
  /// touching the LCG state — for backends (Philox) that position by the
  /// cursor's *coordinates* rather than by its leap-multiplied state.
  void noteRealizationIssued() {
    NextRealization += Stride;
    if (StreamsIssued)
      StreamsIssued->add();
  }

  /// Skips \p Count *stride steps* (i.e. Count * stride() realization
  /// subsequences) without producing streams — used when resuming a
  /// processor mid-run.
  void skipRealizations(uint64_t Count) {
    StartState = StartState *
                 UInt128::powModPow2(StrideLeap, UInt128(Count), 128);
    NextRealization += Count * Stride;
  }

private:
  LeapTable Table;
  UInt128 StartState;
  UInt128 StrideLeap;
  uint64_t NextRealization;
  uint64_t Stride = 1;
  obs::Counter *StreamsIssued = nullptr;
};

} // namespace parmonc

#endif // PARMONC_RNG_STREAMHIERARCHY_H
