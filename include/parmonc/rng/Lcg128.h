//===- parmonc/rng/Lcg128.h - The paper's 128-bit congruential RNG --------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PARMONC base generator (§2.4, eq. 6–7):
///
///   u_0 = 1,  u_{k+1} = u_k * A (mod 2^128),  alpha_k = u_k * 2^-128,
///   A = 5^101 (mod 2^128), period 2^126.
///
/// Because A ≡ 5 (mod 8) and the seed is odd, the sequence cycles over the
/// full set of residues ≡ u_0 in the odd multiplicative group, giving the
/// maximal period 2^(r-2) = 2^126 (Dyadkin & Hamilton, 2000). Leaping is a
/// single multiplication by A^n (mod 2^128), which is what makes the
/// paper's three-level stream hierarchy cheap.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_LCG128_H
#define PARMONC_RNG_LCG128_H

#include "parmonc/int128/UInt128.h"
#include "parmonc/rng/RandomSource.h"
#include "parmonc/support/Contract.h"

namespace parmonc {

/// The paper's multiplicative congruential generator modulo 2^128.
class Lcg128 final : public RandomSource {
public:
  /// Starts at the canonical initial number u_0 = 1 with the default
  /// multiplier A = 5^101 (mod 2^128). Note the first *output* is u_1.
  Lcg128() : Lcg128(defaultMultiplier(), UInt128(1)) {}

  /// Starts from an explicit state, e.g. a subsequence initial number
  /// produced by the stream hierarchy. \p InitialNumber must be odd —
  /// even states fall out of the maximal-period orbit.
  Lcg128(UInt128 Multiplier, UInt128 InitialNumber)
      : Multiplier(Multiplier), State(InitialNumber) {
    // Always-on contracts: an even state or a multiplier outside 5 (mod 8)
    // silently drops the period from 2^126 and breaks stream disjointness.
    PARMONC_ASSERT(InitialNumber.bit(0), "LCG state must be odd");
    PARMONC_ASSERT(Multiplier.low() % 8 == 5,
                   "multiplier must be congruent to 5 mod 8 for period "
                   "2^126");
  }

  /// The default multiplier A = 5^101 (mod 2^128), computed once.
  static UInt128 defaultMultiplier();

  /// Advances one step and returns the new raw state u_{k+1}.
  UInt128 nextRaw() {
    State = State * Multiplier;
    return State;
  }

  /// alpha_k = u_k * 2^-128 mapped to the open unit interval. Uses the top
  /// 52 bits of the 128-bit state — the high bits are the statistically
  /// strongest part of a power-of-two-modulus LCG.
  double nextUniform() override { return bitsToUnitOpen(nextRaw().high()); }

  uint64_t nextBits64() override { return nextRaw().high(); }

  /// Batched generation: fills \p Out[0..Count) with the next \p Count
  /// uniforms, bit-equal to \p Count nextUniform() calls and leaving the
  /// state at u_{k+Count}. Dispatches to the wide 8-lane kernel
  /// (rng/SimdKernels.h — AVX2/AVX-512/portable, selected by the
  /// `PARMONC_SIMD` configure option and a runtime CPU-support probe) when
  /// the batch is large enough, and to the four-lane interleave otherwise.
  /// Every path emits the identical byte stream; see
  /// docs/RNG.md#kernel-paths.
  void fillBatch(double *Out, size_t Count);

  /// Same batch dispatch emitting the raw top-64-bit outputs (the
  /// nextBits64() sequence) instead of unit-interval doubles.
  void fillBatchBits64(uint64_t *Out, size_t Count);

  /// Block-leap batched generation over the §2.4 auxiliary generator: for
  /// each block b in [0, BlockCount), emits the first \p DrawsPerBlock
  /// uniforms of the subsequence starting at u_k * LeapMultiplier^b into
  /// Out[b*DrawsPerBlock ...]. Block starts advance by the auxiliary
  /// recurrence û_{m+1} = û_m * A(n); on return the state is
  /// u_k * LeapMultiplier^BlockCount — the start of block BlockCount —
  /// mirroring RealizationCursor's abandon-the-tail semantics. With
  /// \p LeapMultiplier = A(n_r) each block is the prefix of one
  /// realization subsequence. \p Out must hold BlockCount*DrawsPerBlock
  /// doubles. The wide kernel assigns whole blocks to lanes, so block
  /// generation pays no per-block re-interleave setup.
  void fillBlockLeap(double *Out, size_t BlockCount, size_t DrawsPerBlock,
                     UInt128 LeapMultiplier);

  /// The four-lane interleaved batch kernel (lane j emits u_{k+1+4t+j} and
  /// steps by the precomputed A^4). Kept callable as the differential
  /// oracle for the wide SIMD kernels — the same role `mul128Portable`
  /// plays for the `__int128` fast path — and used as the small-batch and
  /// no-CPU-support fallback.
  void fillBatchFourLane(double *Out, size_t Count);

  /// Four-lane oracle for fillBatchBits64.
  void fillBatchBits64FourLane(uint64_t *Out, size_t Count);

  /// Four-lane oracle for fillBlockLeap. Derives the interleave constants
  /// once and reuses them across blocks.
  void fillBlockLeapFourLane(double *Out, size_t BlockCount,
                             size_t DrawsPerBlock, UInt128 LeapMultiplier);

  /// Stable name of the batch kernel fillBatch will actually run on this
  /// host ("avx512", "avx2", "scalar-wide", or "four-lane" when the
  /// compiled backend is not executable here). For bench labelling.
  static const char *batchKernelName();

  /// RandomSource bulk interface, routed to the unrolled kernel: one
  /// virtual call per batch, zero per draw.
  void fillUniforms(double *Out, size_t Count) override {
    fillBatch(Out, Count);
  }

  const char *name() const override { return "lcg128"; }

  /// Jumps the stream forward by \p Steps positions: u <- u * A^Steps
  /// (mod 2^128). For the default multiplier A = 5^101 this reads A^Steps
  /// out of a shared windowed power table (at most 31 multiplies, no
  /// squaring chain — see rng/LeapWindow.h); other multipliers fall back
  /// to square-and-multiply. Both paths are bit-identical.
  void skip(UInt128 Steps);

  /// Jumps forward by a precomputed leap multiplier A(n): u <- u * LeapA.
  /// This is the per-realization fast path of the stream hierarchy.
  void skipWithMultiplier(UInt128 LeapMultiplier) {
    State = State * LeapMultiplier;
  }

  /// Current raw state u_k.
  UInt128 state() const { return State; }

  /// Resets the state. \p NewState must be odd.
  void setState(UInt128 NewState) {
    PARMONC_ASSERT(NewState.bit(0), "LCG state must be odd");
    State = NewState;
  }

  UInt128 multiplier() const { return Multiplier; }

  /// log2 of the generator period: 2^126.
  static constexpr unsigned PeriodLog2 = 126;

  /// log2 of the usable prefix: the paper recommends consuming only the
  /// first half of the period (2^125 numbers).
  static constexpr unsigned UsableLog2 = 125;

private:
  UInt128 Multiplier;
  UInt128 State;
};

} // namespace parmonc

#endif // PARMONC_RNG_LCG128_H
