//===- parmonc/rng/LcgPow2.h - Generic power-of-two-modulus LCG -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The general multiplicative congruential family of §2.4 with a modulus
/// 2^r for any r in [4,128]. Two members matter for the reproduction:
///
///  - r=40, A=5^17: the classical generator the paper calls out as having
///    a period (2^38 ≈ 2.75e11) too short for modern runs — the short-period
///    baseline in the quality and error-convergence benches;
///  - r=128, A=5^101: equivalent to Lcg128 (used to cross-check it).
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_LCGPOW2_H
#define PARMONC_RNG_LCGPOW2_H

#include "parmonc/int128/UInt128.h"
#include "parmonc/rng/RandomSource.h"

namespace parmonc {

/// Multiplicative congruential generator u <- u*A (mod 2^ModulusBits),
/// alpha = u * 2^-ModulusBits.
class LcgPow2 final : public RandomSource {
public:
  /// \p ModulusBits is r in [4,128]. \p Multiplier must satisfy A ≡ 3 or 5
  /// (mod 8) so the period is maximal (2^(r-2)); \p InitialNumber must be
  /// odd.
  LcgPow2(unsigned ModulusBits, UInt128 Multiplier,
          UInt128 InitialNumber = UInt128(1))
      : ModulusBits(ModulusBits),
        Multiplier(UInt128::truncateToBits(Multiplier, ModulusBits)),
        State(UInt128::truncateToBits(InitialNumber, ModulusBits)) {
    assert(ModulusBits >= 4 && ModulusBits <= 128 && "unsupported modulus");
    uint64_t Low3 = this->Multiplier.low() % 8;
    assert((Low3 == 3 || Low3 == 5) &&
           "multiplier must be 3 or 5 mod 8 for maximal period");
    (void)Low3;
    assert(InitialNumber.bit(0) && "LCG state must be odd");
  }

  /// The paper's short-period example: r=40, A=5^17, period 2^38.
  static LcgPow2 makeClassic40();

  /// Advances one step; returns the new state (already reduced mod 2^r).
  UInt128 nextRaw() {
    State = UInt128::truncateToBits(State * Multiplier, ModulusBits);
    return State;
  }

  double nextUniform() override { return bitsToUnitOpen(nextBits64()); }

  /// Top 64 bits of the fixed-point fraction u * 2^-r: shifts the state up
  /// so its most significant modulus bit becomes bit 63. For r < 64 the low
  /// bits are zero-padded — exactly the resolution the real generator has.
  uint64_t nextBits64() override {
    UInt128 Raw = nextRaw();
    return ModulusBits >= 64 ? (Raw >> (ModulusBits - 64)).low()
                             : Raw.low() << (64 - ModulusBits);
  }

  const char *name() const override { return "lcg-pow2"; }

  /// Jumps forward \p Steps positions via A^Steps (mod 2^r).
  void skip(UInt128 Steps) {
    State = UInt128::truncateToBits(
        State * UInt128::powModPow2(Multiplier, Steps, ModulusBits),
        ModulusBits);
  }

  UInt128 state() const { return State; }
  UInt128 multiplier() const { return Multiplier; }
  unsigned modulusBits() const { return ModulusBits; }

  /// log2 of the period of a maximal member: r - 2.
  unsigned periodLog2() const { return ModulusBits - 2; }

private:
  unsigned ModulusBits;
  UInt128 Multiplier;
  UInt128 State;
};

} // namespace parmonc

#endif // PARMONC_RNG_LCGPOW2_H
