//===- parmonc/rng/StdAdapter.h - <random> interoperability ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters between this library's RandomSource world and the standard
/// <random> ecosystem, so user realization routines can drive
/// std::*_distribution objects from a PARMONC stream (keeping the
/// stream-hierarchy guarantees) and, conversely, tests can wrap any
/// std::URBG as a RandomSource.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_STDADAPTER_H
#define PARMONC_RNG_STDADAPTER_H

#include "parmonc/rng/RandomSource.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

namespace parmonc {

/// Wraps a RandomSource as a C++ UniformRandomBitGenerator, usable with
/// every std::*_distribution and std::shuffle. Holds a reference; the
/// source must outlive the adapter.
class StdBitGenerator {
public:
  using result_type = uint64_t;

  explicit StdBitGenerator(RandomSource &Source) : Source(Source) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() { return Source.nextBits64(); }

private:
  RandomSource &Source;
};

/// Wraps any std uniform random bit generator (e.g. std::mt19937_64) as a
/// RandomSource, for tests and comparisons. The generator must produce
/// 64-bit outputs over the full range.
template <typename Urbg> class UrbgSource final : public RandomSource {
  static_assert(Urbg::max() == std::numeric_limits<uint64_t>::max() &&
                    Urbg::min() == 0,
                "UrbgSource requires a full-range 64-bit generator");

public:
  explicit UrbgSource(Urbg Generator) : Generator(std::move(Generator)) {}

  uint64_t nextBits64() override { return Generator(); }
  double nextUniform() override { return bitsToUnitOpen(Generator()); }
  const char *name() const override { return "std-urbg"; }

private:
  Urbg Generator;
};

/// Fills \p Out with \p Count uniforms from \p Source — the bulk
/// generation shape that a GPU port (the paper's stated future work, §5)
/// would specialize per backend. Delegates to the virtual
/// RandomSource::fillUniforms, so sources with a batched kernel (Lcg128)
/// get their fast path; kept for source compatibility with older callers.
inline void fillUniforms(RandomSource &Source, double *Out, size_t Count) {
  Source.fillUniforms(Out, Count);
}

} // namespace parmonc

#endif // PARMONC_RNG_STDADAPTER_H
