//===- parmonc/rng/RandomSource.h - Uniform random number interface -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every generator in this library implements. The paper's
/// contract (§2.3) is a function returning a base random number uniform on
/// the *open* interval (0,1); user realization routines are written against
/// exactly that. Baseline generators used in comparison benches implement
/// the same interface so workloads are generator-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_RNG_RANDOMSOURCE_H
#define PARMONC_RNG_RANDOMSOURCE_H

#include <cstddef>
#include <cstdint>

namespace parmonc {

/// Abstract stream of uniform random numbers.
class RandomSource {
public:
  virtual ~RandomSource() = default;

  /// Next base random number, uniform on the open interval (0,1). Being
  /// strictly inside the interval matters: realization routines routinely
  /// compute log(alpha) (exponential sampling) and log(1-alpha).
  virtual double nextUniform() = 0;

  /// Next 64 uniformly distributed bits. Statistical tests operate on bits
  /// rather than doubles so that low-order behaviour is visible too.
  virtual uint64_t nextBits64() = 0;

  /// Fills \p Out[0..Count) with the next \p Count uniforms — the bulk
  /// shape realization routines should prefer for vectorizable draws: one
  /// virtual dispatch per batch instead of one per number. The default
  /// loops nextUniform(); generators with a faster kernel (Lcg128's
  /// unrolled recurrence) override it. Overrides must produce exactly the
  /// sequence \p Count nextUniform() calls would (bit-equal, same final
  /// generator state), so batching never changes simulated results.
  virtual void fillUniforms(double *Out, size_t Count) {
    for (size_t Index = 0; Index < Count; ++Index)
      Out[Index] = nextUniform();
  }

  /// Stable identifier for reports and benches, e.g. "lcg128".
  virtual const char *name() const = 0;
};

/// Maps 64 random bits onto the open unit interval: the top 52 bits select
/// one of 2^52 equal cells and the result is that cell's midpoint, so the
/// value is uniform and never exactly 0 or 1.
inline double bitsToUnitOpen(uint64_t Bits) {
  return (double(Bits >> 12) + 0.5) * 0x1p-52;
}

} // namespace parmonc

#endif // PARMONC_RNG_RANDOMSOURCE_H
