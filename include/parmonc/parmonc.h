//===- parmonc/parmonc.h - Umbrella header ---------------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: pulls in the whole public API. Fine for
/// applications and examples; library code should include the specific
/// headers it uses (LLVM "include as little as possible").
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_PARMONC_H
#define PARMONC_PARMONC_H

#include "parmonc/ckpt/BackgroundWriter.h"
#include "parmonc/ckpt/CheckpointStore.h"
#include "parmonc/ckpt/Manifest.h"
#include "parmonc/core/CApi.h"
#include "parmonc/core/CheckpointBridge.h"
#include "parmonc/core/ResultsStore.h"
#include "parmonc/core/RunConfig.h"
#include "parmonc/core/Runner.h"
#include "parmonc/int128/UInt128.h"
#include "parmonc/mpsim/Collectives.h"
#include "parmonc/mpsim/Communicator.h"
#include "parmonc/mpsim/Engine.h"
#include "parmonc/mpsim/Serialize.h"
#include "parmonc/mpsim/SocketTransport.h"
#include "parmonc/mpsim/Transport.h"
#include "parmonc/mpsim/VirtualCluster.h"
#include "parmonc/mpsim/Wire.h"
#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Stopwatch.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/RandomSource.h"
#include "parmonc/rng/StdAdapter.h"
#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/sde/Distributions.h"
#include "parmonc/sde/EulerMaruyama.h"
#include "parmonc/spectral/BigInt.h"
#include "parmonc/spectral/SpectralTest.h"
#include "parmonc/statest/SpecialFunctions.h"
#include "parmonc/statest/Tests.h"
#include "parmonc/stats/Confidence.h"
#include "parmonc/stats/EstimatorMatrix.h"
#include "parmonc/stats/RunningStat.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"
#include "parmonc/support/Text.h"
#include "parmonc/vr/VarianceReduction.h"

#endif // PARMONC_PARMONC_H
