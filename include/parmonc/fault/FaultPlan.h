//===- parmonc/fault/FaultPlan.h - Deterministic fault injection ----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection harness behind the recovery guarantees of §3.2/§3.4:
/// a FaultPlan is a deterministic, seed-driven schedule of worker crashes,
/// collector crash-at-save, message drop/duplicate/delay, bounded send
/// failures and file truncation/bit-flip corruption. A FaultInjector
/// evaluates the plan behind hooks in the communicator fabric, the run
/// engine and the results store — all off by default and zero-cost when no
/// plan is installed.
///
/// Every decision is a pure function of (Seed, Source, per-source send
/// index), never of wall time or thread interleaving, so a faulted run
/// replays identically — the property the byte-exact recovery tests in
/// tests/fault rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PARMONC_FAULT_FAULTPLAN_H
#define PARMONC_FAULT_FAULTPLAN_H

#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Status.h"

// mclint: allow-file(R3): the injector sits behind hooks called
// concurrently from every rank (sends, file writes); its per-source send
// indices and corruption counters are the reviewed synchronization seam.
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace parmonc {
namespace fault {

/// What happens to one message send attempt.
enum class MessageAction {
  Deliver,   ///< normal delivery
  Drop,      ///< silently lost in transit (sender believes it succeeded)
  Duplicate, ///< delivered twice
  Delay,     ///< delivered after DelayNanos of injected-clock time
  FailSend,  ///< visible send failure (the sender may retry)
};

/// The injector's verdict for one send attempt.
struct MessageDecision {
  MessageAction Action = MessageAction::Deliver;
  int64_t DelayNanos = 0; ///< only meaningful for MessageAction::Delay
};

/// Kills worker \p Rank once it has completed \p AfterRealizations
/// realizations: the rank persists its subtotal first (unless
/// \p PersistBeforeCrash is false, modeling a crash before the perpass
/// write) and then exits without sending its final snapshot.
struct WorkerCrashSpec {
  int Rank = 1;
  int64_t AfterRealizations = 1;
  bool PersistBeforeCrash = true;
  /// Process transport only (enforced by RunConfig::validate): instead of
  /// silently returning from the rank body, the worker raises SIGKILL on
  /// itself — no goodbye, no flush, no destructors. The supervisor sees
  /// EOF-without-GOODBYE and reports the terminating signal, the harshest
  /// crash the suite can stage.
  bool RaiseKillSignal = false;
};

/// Kills the collector at a save-point, before anything is written: the
/// previous checkpoint generation stays on disk and every rank stops as if
/// the job had been killed by the scheduler.
struct CollectorCrashSpec {
  int AtSavePoint = 0;    ///< 1-based save-point index; 0 = disabled
  bool AtFinalSave = false; ///< crash at the closing (post-collection) save
};

/// Corrupts the \p WriteIndex-th snapshot write whose path contains
/// \p PathSubstring, after sealing — exactly what a torn write or bit rot
/// would leave behind for the CRC layer to catch.
struct FileCorruptionSpec {
  enum class Mode {
    Truncate, ///< keep only KeepFraction of the sealed bytes
    BitFlip,  ///< flip one bit at FlipByteOffset of the sealed bytes
  };
  std::string PathSubstring;
  int WriteIndex = 0;
  Mode Action = Mode::Truncate;
  double KeepFraction = 0.5;
  size_t FlipByteOffset = 64;
};

/// A complete, deterministic fault schedule. Default-constructed plans are
/// inert (enabled() is false) and installing one costs nothing.
struct FaultPlan {
  /// Seed of the per-source decision hash (deterministic replay).
  uint64_t Seed = 1;

  /// Per-message probabilities; they partition [0, 1), so their sum must
  /// not exceed 1. Applied per (source, send index); self-sends and exempt
  /// tags are never faulted.
  double DropProbability = 0.0;
  double DuplicateProbability = 0.0;
  double DelayProbability = 0.0;
  double SendFailProbability = 0.0;

  /// Injected-clock delay for MessageAction::Delay verdicts.
  int64_t DelayNanos = 1'000'000;

  /// Message tags never faulted (e.g. the collector protocol's final tag,
  /// to model networks that lose data but not connection teardown).
  std::vector<int> ExemptTags;

  /// Scheduled worker deaths (rank >= 1; rank 0 dies via CollectorCrash).
  std::vector<WorkerCrashSpec> WorkerCrashes;

  /// Scheduled collector death.
  CollectorCrashSpec CollectorCrash;

  /// Scheduled file corruptions.
  std::vector<FileCorruptionSpec> FileCorruptions;

  /// True if any fault is configured.
  bool enabled() const;

  /// Checks ranges and cross-field constraints.
  [[nodiscard]] Status validate() const;
};

/// Evaluates a FaultPlan behind engine hooks. Thread-safe: the message and
/// file hooks are called concurrently from every rank.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan Plan);

  /// Attaches observability sinks: injected faults become fault.* counters
  /// and trace instants (lane = source rank). Timing needs \p TimeSource.
  void attachObservers(obs::MetricsRegistry *Metrics,
                       obs::TraceWriter *Trace, const Clock *TimeSource);

  const FaultPlan &plan() const { return Plan; }

  /// Verdict for one send attempt. Deterministic in (Seed, Source, the
  /// per-source attempt index); a retried attempt draws a fresh verdict.
  /// Self-sends (Source == Destination bypass the network physically) and
  /// exempt tags always deliver.
  MessageDecision onSendAttempt(int Source, int Destination, int Tag);

  /// The crash schedule for \p Rank, or null if the rank never crashes.
  const WorkerCrashSpec *workerCrash(int Rank) const;

  /// True exactly once: when the collector reaches the scheduled
  /// save-point (\p SavePointIndex is 1-based, the index the save would
  /// have) or the closing save with \p IsFinalSave set.
  bool takeCollectorCrash(int SavePointIndex, bool IsFinalSave);

  /// File-write hook: returns the corrupted contents if this write (path
  /// matched by substring, counted per spec) is scheduled to be damaged,
  /// empty otherwise.
  std::optional<std::string> corruptWrite(const std::string &Path,
                                          std::string_view Contents);

  /// Bookkeeping calls from the engine when it acts on a verdict.
  void noteWorkerCrashed(int Rank);
  void noteCollectorCrashed();

private:
  double drawUnit(int Source);
  void instant(const char *Name, int Lane);

  FaultPlan Plan;
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceWriter *Trace = nullptr;
  const Clock *Time = nullptr;

  mutable std::mutex Mutex;
  std::map<int, uint64_t> SendIndexBySource;
  std::vector<int> CorruptionWriteCounts;
  bool CollectorCrashFired = false;
};

} // namespace fault
} // namespace parmonc

#endif // PARMONC_FAULT_FAULTPLAN_H
