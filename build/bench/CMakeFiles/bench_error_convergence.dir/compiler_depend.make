# Empty compiler generated dependencies file for bench_error_convergence.
# This may be replaced when dependencies are built.
