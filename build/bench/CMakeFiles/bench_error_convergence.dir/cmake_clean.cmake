file(REMOVE_RECURSE
  "CMakeFiles/bench_error_convergence.dir/bench_error_convergence.cpp.o"
  "CMakeFiles/bench_error_convergence.dir/bench_error_convergence.cpp.o.d"
  "bench_error_convergence"
  "bench_error_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
