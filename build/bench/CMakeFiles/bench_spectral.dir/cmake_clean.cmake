file(REMOVE_RECURSE
  "CMakeFiles/bench_spectral.dir/bench_spectral.cpp.o"
  "CMakeFiles/bench_spectral.dir/bench_spectral.cpp.o.d"
  "bench_spectral"
  "bench_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
