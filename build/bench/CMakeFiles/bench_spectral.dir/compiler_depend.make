# Empty compiler generated dependencies file for bench_spectral.
# This may be replaced when dependencies are built.
