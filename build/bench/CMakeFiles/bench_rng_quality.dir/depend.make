# Empty dependencies file for bench_rng_quality.
# This may be replaced when dependencies are built.
