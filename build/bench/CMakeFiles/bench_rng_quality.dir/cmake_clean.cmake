file(REMOVE_RECURSE
  "CMakeFiles/bench_rng_quality.dir/bench_rng_quality.cpp.o"
  "CMakeFiles/bench_rng_quality.dir/bench_rng_quality.cpp.o.d"
  "bench_rng_quality"
  "bench_rng_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rng_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
