file(REMOVE_RECURSE
  "CMakeFiles/bench_rng_throughput.dir/bench_rng_throughput.cpp.o"
  "CMakeFiles/bench_rng_throughput.dir/bench_rng_throughput.cpp.o.d"
  "bench_rng_throughput"
  "bench_rng_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rng_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
