# Empty compiler generated dependencies file for bench_leap_setup.
# This may be replaced when dependencies are built.
