file(REMOVE_RECURSE
  "CMakeFiles/bench_leap_setup.dir/bench_leap_setup.cpp.o"
  "CMakeFiles/bench_leap_setup.dir/bench_leap_setup.cpp.o.d"
  "bench_leap_setup"
  "bench_leap_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leap_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
