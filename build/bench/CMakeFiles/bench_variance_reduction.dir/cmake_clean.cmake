file(REMOVE_RECURSE
  "CMakeFiles/bench_variance_reduction.dir/bench_variance_reduction.cpp.o"
  "CMakeFiles/bench_variance_reduction.dir/bench_variance_reduction.cpp.o.d"
  "bench_variance_reduction"
  "bench_variance_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variance_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
