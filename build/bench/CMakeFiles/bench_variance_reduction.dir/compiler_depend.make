# Empty compiler generated dependencies file for bench_variance_reduction.
# This may be replaced when dependencies are built.
