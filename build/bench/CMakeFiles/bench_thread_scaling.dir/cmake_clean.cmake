file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_scaling.dir/bench_thread_scaling.cpp.o"
  "CMakeFiles/bench_thread_scaling.dir/bench_thread_scaling.cpp.o.d"
  "bench_thread_scaling"
  "bench_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
