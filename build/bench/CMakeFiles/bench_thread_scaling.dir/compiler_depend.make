# Empty compiler generated dependencies file for bench_thread_scaling.
# This may be replaced when dependencies are built.
