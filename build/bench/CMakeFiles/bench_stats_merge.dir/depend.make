# Empty dependencies file for bench_stats_merge.
# This may be replaced when dependencies are built.
