file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_merge.dir/bench_stats_merge.cpp.o"
  "CMakeFiles/bench_stats_merge.dir/bench_stats_merge.cpp.o.d"
  "bench_stats_merge"
  "bench_stats_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
