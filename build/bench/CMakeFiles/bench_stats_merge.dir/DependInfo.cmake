
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_stats_merge.cpp" "bench/CMakeFiles/bench_stats_merge.dir/bench_stats_merge.cpp.o" "gcc" "bench/CMakeFiles/bench_stats_merge.dir/bench_stats_merge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/parmonc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parmonc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/parmonc_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sde/CMakeFiles/parmonc_sde.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/parmonc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/int128/CMakeFiles/parmonc_int128.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmonc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
