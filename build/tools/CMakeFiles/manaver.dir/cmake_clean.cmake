file(REMOVE_RECURSE
  "CMakeFiles/manaver.dir/manaver.cpp.o"
  "CMakeFiles/manaver.dir/manaver.cpp.o.d"
  "manaver"
  "manaver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manaver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
