# Empty compiler generated dependencies file for manaver.
# This may be replaced when dependencies are built.
