# Empty dependencies file for manaver.
# This may be replaced when dependencies are built.
