# Empty compiler generated dependencies file for genparam.
# This may be replaced when dependencies are built.
