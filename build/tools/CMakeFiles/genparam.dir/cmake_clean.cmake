file(REMOVE_RECURSE
  "CMakeFiles/genparam.dir/genparam.cpp.o"
  "CMakeFiles/genparam.dir/genparam.cpp.o.d"
  "genparam"
  "genparam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genparam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
