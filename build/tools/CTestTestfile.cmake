# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(genparam_cli_writes_file "/root/repo/build/tools/genparam" "60" "40" "20")
set_tests_properties(genparam_cli_writes_file PROPERTIES  WORKING_DIRECTORY "/root/repo/build/tools/smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(genparam_cli_rejects_bad_exponents "/root/repo/build/tools/genparam" "10" "40" "20")
set_tests_properties(genparam_cli_rejects_bad_exponents PROPERTIES  WILL_FAIL "TRUE" WORKING_DIRECTORY "/root/repo/build/tools/smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(genparam_cli_usage "/root/repo/build/tools/genparam")
set_tests_properties(genparam_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(manaver_cli_fails_without_data "/root/repo/build/tools/manaver" "/root/repo/build/tools/smoke")
set_tests_properties(manaver_cli_fails_without_data PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
