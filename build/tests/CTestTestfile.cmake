# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/int128_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sde_test[1]_include.cmake")
include("/root/repo/build/tests/statest_test[1]_include.cmake")
include("/root/repo/build/tests/mpsim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/vr_test[1]_include.cmake")
include("/root/repo/build/tests/spectral_test[1]_include.cmake")
