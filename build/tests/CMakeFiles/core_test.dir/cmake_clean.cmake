file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/CApiTest.cpp.o"
  "CMakeFiles/core_test.dir/core/CApiTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/FailureInjectionTest.cpp.o"
  "CMakeFiles/core_test.dir/core/FailureInjectionTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ResultsStoreTest.cpp.o"
  "CMakeFiles/core_test.dir/core/ResultsStoreTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/RunnerHistogramTest.cpp.o"
  "CMakeFiles/core_test.dir/core/RunnerHistogramTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/RunnerTest.cpp.o"
  "CMakeFiles/core_test.dir/core/RunnerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/UmbrellaHeaderTest.cpp.o"
  "CMakeFiles/core_test.dir/core/UmbrellaHeaderTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
