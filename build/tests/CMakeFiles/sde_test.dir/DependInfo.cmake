
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sde/DistributionsTest.cpp" "tests/CMakeFiles/sde_test.dir/sde/DistributionsTest.cpp.o" "gcc" "tests/CMakeFiles/sde_test.dir/sde/DistributionsTest.cpp.o.d"
  "/root/repo/tests/sde/EulerMaruyamaTest.cpp" "tests/CMakeFiles/sde_test.dir/sde/EulerMaruyamaTest.cpp.o" "gcc" "tests/CMakeFiles/sde_test.dir/sde/EulerMaruyamaTest.cpp.o.d"
  "/root/repo/tests/sde/ExtendedDistributionsTest.cpp" "tests/CMakeFiles/sde_test.dir/sde/ExtendedDistributionsTest.cpp.o" "gcc" "tests/CMakeFiles/sde_test.dir/sde/ExtendedDistributionsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sde/CMakeFiles/parmonc_sde.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/parmonc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/parmonc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/int128/CMakeFiles/parmonc_int128.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmonc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
