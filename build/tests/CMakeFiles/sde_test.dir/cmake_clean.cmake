file(REMOVE_RECURSE
  "CMakeFiles/sde_test.dir/sde/DistributionsTest.cpp.o"
  "CMakeFiles/sde_test.dir/sde/DistributionsTest.cpp.o.d"
  "CMakeFiles/sde_test.dir/sde/EulerMaruyamaTest.cpp.o"
  "CMakeFiles/sde_test.dir/sde/EulerMaruyamaTest.cpp.o.d"
  "CMakeFiles/sde_test.dir/sde/ExtendedDistributionsTest.cpp.o"
  "CMakeFiles/sde_test.dir/sde/ExtendedDistributionsTest.cpp.o.d"
  "sde_test"
  "sde_test.pdb"
  "sde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
