# Empty dependencies file for sde_test.
# This may be replaced when dependencies are built.
