file(REMOVE_RECURSE
  "CMakeFiles/mpsim_test.dir/mpsim/CollectivesTest.cpp.o"
  "CMakeFiles/mpsim_test.dir/mpsim/CollectivesTest.cpp.o.d"
  "CMakeFiles/mpsim_test.dir/mpsim/CommunicatorTest.cpp.o"
  "CMakeFiles/mpsim_test.dir/mpsim/CommunicatorTest.cpp.o.d"
  "CMakeFiles/mpsim_test.dir/mpsim/SerializeTest.cpp.o"
  "CMakeFiles/mpsim_test.dir/mpsim/SerializeTest.cpp.o.d"
  "CMakeFiles/mpsim_test.dir/mpsim/VirtualClusterTest.cpp.o"
  "CMakeFiles/mpsim_test.dir/mpsim/VirtualClusterTest.cpp.o.d"
  "mpsim_test"
  "mpsim_test.pdb"
  "mpsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
