# Empty compiler generated dependencies file for mpsim_test.
# This may be replaced when dependencies are built.
