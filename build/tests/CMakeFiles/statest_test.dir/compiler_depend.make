# Empty compiler generated dependencies file for statest_test.
# This may be replaced when dependencies are built.
