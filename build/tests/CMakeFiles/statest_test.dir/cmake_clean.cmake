file(REMOVE_RECURSE
  "CMakeFiles/statest_test.dir/statest/BatteryTest.cpp.o"
  "CMakeFiles/statest_test.dir/statest/BatteryTest.cpp.o.d"
  "CMakeFiles/statest_test.dir/statest/SpecialFunctionsTest.cpp.o"
  "CMakeFiles/statest_test.dir/statest/SpecialFunctionsTest.cpp.o.d"
  "statest_test"
  "statest_test.pdb"
  "statest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
