file(REMOVE_RECURSE
  "CMakeFiles/vr_test.dir/vr/VarianceReductionTest.cpp.o"
  "CMakeFiles/vr_test.dir/vr/VarianceReductionTest.cpp.o.d"
  "vr_test"
  "vr_test.pdb"
  "vr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
