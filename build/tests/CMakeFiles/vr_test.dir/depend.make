# Empty dependencies file for vr_test.
# This may be replaced when dependencies are built.
