file(REMOVE_RECURSE
  "CMakeFiles/int128_test.dir/int128/UInt128Test.cpp.o"
  "CMakeFiles/int128_test.dir/int128/UInt128Test.cpp.o.d"
  "int128_test"
  "int128_test.pdb"
  "int128_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
