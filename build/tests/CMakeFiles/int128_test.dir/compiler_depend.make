# Empty compiler generated dependencies file for int128_test.
# This may be replaced when dependencies are built.
