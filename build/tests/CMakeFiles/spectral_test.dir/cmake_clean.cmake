file(REMOVE_RECURSE
  "CMakeFiles/spectral_test.dir/spectral/BigIntTest.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/BigIntTest.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/SpectralTestTest.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/SpectralTestTest.cpp.o.d"
  "spectral_test"
  "spectral_test.pdb"
  "spectral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
