# Empty dependencies file for spectral_test.
# This may be replaced when dependencies are built.
