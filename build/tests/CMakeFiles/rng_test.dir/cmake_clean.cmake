file(REMOVE_RECURSE
  "CMakeFiles/rng_test.dir/rng/BaselinesTest.cpp.o"
  "CMakeFiles/rng_test.dir/rng/BaselinesTest.cpp.o.d"
  "CMakeFiles/rng_test.dir/rng/Lcg128Test.cpp.o"
  "CMakeFiles/rng_test.dir/rng/Lcg128Test.cpp.o.d"
  "CMakeFiles/rng_test.dir/rng/LcgPow2SweepTest.cpp.o"
  "CMakeFiles/rng_test.dir/rng/LcgPow2SweepTest.cpp.o.d"
  "CMakeFiles/rng_test.dir/rng/StdAdapterTest.cpp.o"
  "CMakeFiles/rng_test.dir/rng/StdAdapterTest.cpp.o.d"
  "CMakeFiles/rng_test.dir/rng/StreamHierarchyTest.cpp.o"
  "CMakeFiles/rng_test.dir/rng/StreamHierarchyTest.cpp.o.d"
  "rng_test"
  "rng_test.pdb"
  "rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
