
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rng/BaselinesTest.cpp" "tests/CMakeFiles/rng_test.dir/rng/BaselinesTest.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng/BaselinesTest.cpp.o.d"
  "/root/repo/tests/rng/Lcg128Test.cpp" "tests/CMakeFiles/rng_test.dir/rng/Lcg128Test.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng/Lcg128Test.cpp.o.d"
  "/root/repo/tests/rng/LcgPow2SweepTest.cpp" "tests/CMakeFiles/rng_test.dir/rng/LcgPow2SweepTest.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng/LcgPow2SweepTest.cpp.o.d"
  "/root/repo/tests/rng/StdAdapterTest.cpp" "tests/CMakeFiles/rng_test.dir/rng/StdAdapterTest.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng/StdAdapterTest.cpp.o.d"
  "/root/repo/tests/rng/StreamHierarchyTest.cpp" "tests/CMakeFiles/rng_test.dir/rng/StreamHierarchyTest.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng/StreamHierarchyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/parmonc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/int128/CMakeFiles/parmonc_int128.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parmonc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
