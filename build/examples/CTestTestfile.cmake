# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "2")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_quickstart" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;23;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diffusion_sde "/root/repo/build/examples/diffusion_sde" "2" "40")
set_tests_properties(example_diffusion_sde PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_diffusion_sde" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;24;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mm1_queue "/root/repo/build/examples/mm1_queue" "2" "200")
set_tests_properties(example_mm1_queue PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_mm1_queue" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;25;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_population "/root/repo/build/examples/population" "2" "1000")
set_tests_properties(example_population PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_population" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;26;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ising "/root/repo/build/examples/ising" "2" "100")
set_tests_properties(example_ising PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_ising" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;27;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_integration "/root/repo/build/examples/integration" "2" "20000")
set_tests_properties(example_integration PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_integration" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;28;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transport "/root/repo/build/examples/transport" "50000")
set_tests_properties(example_transport PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples/smoke_transport" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;29;parmonc_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
