file(REMOVE_RECURSE
  "CMakeFiles/transport.dir/transport.cpp.o"
  "CMakeFiles/transport.dir/transport.cpp.o.d"
  "transport"
  "transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
