# Empty dependencies file for transport.
# This may be replaced when dependencies are built.
