file(REMOVE_RECURSE
  "CMakeFiles/integration.dir/integration.cpp.o"
  "CMakeFiles/integration.dir/integration.cpp.o.d"
  "integration"
  "integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
