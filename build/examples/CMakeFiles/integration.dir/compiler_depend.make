# Empty compiler generated dependencies file for integration.
# This may be replaced when dependencies are built.
