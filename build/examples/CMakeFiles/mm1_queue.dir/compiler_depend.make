# Empty compiler generated dependencies file for mm1_queue.
# This may be replaced when dependencies are built.
