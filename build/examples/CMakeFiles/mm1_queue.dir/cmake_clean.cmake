file(REMOVE_RECURSE
  "CMakeFiles/mm1_queue.dir/mm1_queue.cpp.o"
  "CMakeFiles/mm1_queue.dir/mm1_queue.cpp.o.d"
  "mm1_queue"
  "mm1_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm1_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
