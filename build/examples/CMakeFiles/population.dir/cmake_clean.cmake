file(REMOVE_RECURSE
  "CMakeFiles/population.dir/population.cpp.o"
  "CMakeFiles/population.dir/population.cpp.o.d"
  "population"
  "population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
