# Empty dependencies file for population.
# This may be replaced when dependencies are built.
