# Empty compiler generated dependencies file for diffusion_sde.
# This may be replaced when dependencies are built.
