file(REMOVE_RECURSE
  "CMakeFiles/diffusion_sde.dir/diffusion_sde.cpp.o"
  "CMakeFiles/diffusion_sde.dir/diffusion_sde.cpp.o.d"
  "diffusion_sde"
  "diffusion_sde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_sde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
