# Empty compiler generated dependencies file for ising.
# This may be replaced when dependencies are built.
