file(REMOVE_RECURSE
  "CMakeFiles/ising.dir/ising.cpp.o"
  "CMakeFiles/ising.dir/ising.cpp.o.d"
  "ising"
  "ising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
