file(REMOVE_RECURSE
  "CMakeFiles/parmonc_spectral.dir/BigInt.cpp.o"
  "CMakeFiles/parmonc_spectral.dir/BigInt.cpp.o.d"
  "CMakeFiles/parmonc_spectral.dir/SpectralTest.cpp.o"
  "CMakeFiles/parmonc_spectral.dir/SpectralTest.cpp.o.d"
  "libparmonc_spectral.a"
  "libparmonc_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
