file(REMOVE_RECURSE
  "libparmonc_spectral.a"
)
