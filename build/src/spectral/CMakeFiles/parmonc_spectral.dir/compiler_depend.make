# Empty compiler generated dependencies file for parmonc_spectral.
# This may be replaced when dependencies are built.
