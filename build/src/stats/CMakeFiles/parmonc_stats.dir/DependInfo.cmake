
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/Confidence.cpp" "src/stats/CMakeFiles/parmonc_stats.dir/Confidence.cpp.o" "gcc" "src/stats/CMakeFiles/parmonc_stats.dir/Confidence.cpp.o.d"
  "/root/repo/src/stats/EstimatorMatrix.cpp" "src/stats/CMakeFiles/parmonc_stats.dir/EstimatorMatrix.cpp.o" "gcc" "src/stats/CMakeFiles/parmonc_stats.dir/EstimatorMatrix.cpp.o.d"
  "/root/repo/src/stats/HistogramEstimator.cpp" "src/stats/CMakeFiles/parmonc_stats.dir/HistogramEstimator.cpp.o" "gcc" "src/stats/CMakeFiles/parmonc_stats.dir/HistogramEstimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parmonc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
