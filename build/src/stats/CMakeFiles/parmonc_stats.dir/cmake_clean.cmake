file(REMOVE_RECURSE
  "CMakeFiles/parmonc_stats.dir/Confidence.cpp.o"
  "CMakeFiles/parmonc_stats.dir/Confidence.cpp.o.d"
  "CMakeFiles/parmonc_stats.dir/EstimatorMatrix.cpp.o"
  "CMakeFiles/parmonc_stats.dir/EstimatorMatrix.cpp.o.d"
  "CMakeFiles/parmonc_stats.dir/HistogramEstimator.cpp.o"
  "CMakeFiles/parmonc_stats.dir/HistogramEstimator.cpp.o.d"
  "libparmonc_stats.a"
  "libparmonc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
