# Empty compiler generated dependencies file for parmonc_stats.
# This may be replaced when dependencies are built.
