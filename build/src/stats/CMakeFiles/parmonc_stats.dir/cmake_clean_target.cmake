file(REMOVE_RECURSE
  "libparmonc_stats.a"
)
