file(REMOVE_RECURSE
  "libparmonc_mpsim.a"
)
