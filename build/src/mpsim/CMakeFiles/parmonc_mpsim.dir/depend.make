# Empty dependencies file for parmonc_mpsim.
# This may be replaced when dependencies are built.
