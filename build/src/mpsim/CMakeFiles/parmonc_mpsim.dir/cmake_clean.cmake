file(REMOVE_RECURSE
  "CMakeFiles/parmonc_mpsim.dir/Collectives.cpp.o"
  "CMakeFiles/parmonc_mpsim.dir/Collectives.cpp.o.d"
  "CMakeFiles/parmonc_mpsim.dir/Communicator.cpp.o"
  "CMakeFiles/parmonc_mpsim.dir/Communicator.cpp.o.d"
  "CMakeFiles/parmonc_mpsim.dir/VirtualCluster.cpp.o"
  "CMakeFiles/parmonc_mpsim.dir/VirtualCluster.cpp.o.d"
  "libparmonc_mpsim.a"
  "libparmonc_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
