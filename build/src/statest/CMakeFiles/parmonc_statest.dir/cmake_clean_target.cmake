file(REMOVE_RECURSE
  "libparmonc_statest.a"
)
