file(REMOVE_RECURSE
  "CMakeFiles/parmonc_statest.dir/SpecialFunctions.cpp.o"
  "CMakeFiles/parmonc_statest.dir/SpecialFunctions.cpp.o.d"
  "CMakeFiles/parmonc_statest.dir/Tests.cpp.o"
  "CMakeFiles/parmonc_statest.dir/Tests.cpp.o.d"
  "libparmonc_statest.a"
  "libparmonc_statest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_statest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
