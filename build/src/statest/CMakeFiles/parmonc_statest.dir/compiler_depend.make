# Empty compiler generated dependencies file for parmonc_statest.
# This may be replaced when dependencies are built.
