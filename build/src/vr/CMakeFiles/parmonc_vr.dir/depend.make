# Empty dependencies file for parmonc_vr.
# This may be replaced when dependencies are built.
