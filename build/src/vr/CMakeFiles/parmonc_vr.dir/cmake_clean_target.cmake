file(REMOVE_RECURSE
  "libparmonc_vr.a"
)
