file(REMOVE_RECURSE
  "CMakeFiles/parmonc_vr.dir/VarianceReduction.cpp.o"
  "CMakeFiles/parmonc_vr.dir/VarianceReduction.cpp.o.d"
  "libparmonc_vr.a"
  "libparmonc_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
