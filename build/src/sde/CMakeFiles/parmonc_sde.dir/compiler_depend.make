# Empty compiler generated dependencies file for parmonc_sde.
# This may be replaced when dependencies are built.
