file(REMOVE_RECURSE
  "CMakeFiles/parmonc_sde.dir/Distributions.cpp.o"
  "CMakeFiles/parmonc_sde.dir/Distributions.cpp.o.d"
  "CMakeFiles/parmonc_sde.dir/EulerMaruyama.cpp.o"
  "CMakeFiles/parmonc_sde.dir/EulerMaruyama.cpp.o.d"
  "libparmonc_sde.a"
  "libparmonc_sde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_sde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
