file(REMOVE_RECURSE
  "libparmonc_sde.a"
)
