# Empty dependencies file for parmonc_support.
# This may be replaced when dependencies are built.
