file(REMOVE_RECURSE
  "CMakeFiles/parmonc_support.dir/Status.cpp.o"
  "CMakeFiles/parmonc_support.dir/Status.cpp.o.d"
  "CMakeFiles/parmonc_support.dir/Text.cpp.o"
  "CMakeFiles/parmonc_support.dir/Text.cpp.o.d"
  "libparmonc_support.a"
  "libparmonc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
