file(REMOVE_RECURSE
  "libparmonc_support.a"
)
