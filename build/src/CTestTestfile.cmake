# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("int128")
subdirs("rng")
subdirs("stats")
subdirs("statest")
subdirs("mpsim")
subdirs("sde")
subdirs("vr")
subdirs("spectral")
subdirs("core")
