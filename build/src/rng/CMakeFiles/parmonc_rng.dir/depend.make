# Empty dependencies file for parmonc_rng.
# This may be replaced when dependencies are built.
