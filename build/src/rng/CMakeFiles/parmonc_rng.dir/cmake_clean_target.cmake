file(REMOVE_RECURSE
  "libparmonc_rng.a"
)
