file(REMOVE_RECURSE
  "CMakeFiles/parmonc_rng.dir/Baselines.cpp.o"
  "CMakeFiles/parmonc_rng.dir/Baselines.cpp.o.d"
  "CMakeFiles/parmonc_rng.dir/Lcg128.cpp.o"
  "CMakeFiles/parmonc_rng.dir/Lcg128.cpp.o.d"
  "CMakeFiles/parmonc_rng.dir/StreamHierarchy.cpp.o"
  "CMakeFiles/parmonc_rng.dir/StreamHierarchy.cpp.o.d"
  "libparmonc_rng.a"
  "libparmonc_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
