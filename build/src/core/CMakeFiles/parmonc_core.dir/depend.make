# Empty dependencies file for parmonc_core.
# This may be replaced when dependencies are built.
