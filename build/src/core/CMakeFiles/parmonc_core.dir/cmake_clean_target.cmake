file(REMOVE_RECURSE
  "libparmonc_core.a"
)
