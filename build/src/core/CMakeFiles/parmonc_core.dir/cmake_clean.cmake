file(REMOVE_RECURSE
  "CMakeFiles/parmonc_core.dir/CApi.cpp.o"
  "CMakeFiles/parmonc_core.dir/CApi.cpp.o.d"
  "CMakeFiles/parmonc_core.dir/ResultsStore.cpp.o"
  "CMakeFiles/parmonc_core.dir/ResultsStore.cpp.o.d"
  "CMakeFiles/parmonc_core.dir/Runner.cpp.o"
  "CMakeFiles/parmonc_core.dir/Runner.cpp.o.d"
  "libparmonc_core.a"
  "libparmonc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
