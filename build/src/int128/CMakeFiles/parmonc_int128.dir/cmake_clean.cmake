file(REMOVE_RECURSE
  "CMakeFiles/parmonc_int128.dir/UInt128.cpp.o"
  "CMakeFiles/parmonc_int128.dir/UInt128.cpp.o.d"
  "libparmonc_int128.a"
  "libparmonc_int128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmonc_int128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
