# Empty compiler generated dependencies file for parmonc_int128.
# This may be replaced when dependencies are built.
