file(REMOVE_RECURSE
  "libparmonc_int128.a"
)
