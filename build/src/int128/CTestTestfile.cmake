# CMake generated Testfile for 
# Source directory: /root/repo/src/int128
# Build directory: /root/repo/build/src/int128
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
