//===- tools/mclint.cpp - Project invariant linter ------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//
//   $ mclint [--werror] [--rule=R1[,R2...]] [--list-rules] <path>...
//
// Scans the given files/directories for violations of the project's
// enforced invariants R1–R5 (see DESIGN.md, "Enforced invariants").
// Without --werror, findings are warnings and the exit code is 0; with
// --werror they are errors and any finding exits 1 — that is the CI gate:
//
//   $ mclint --werror src include tools examples
//
// Exit codes: 0 clean (or warnings only), 1 findings under --werror,
// 2 usage or environmental error.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/support/Text.h"

#include <cstdio>
#include <cstring>

using namespace parmonc;

static int printUsage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s [--werror] [--rule=IDS] [--list-rules] <path>...\n"
               "  --werror      findings are errors: any finding exits 1\n"
               "  --rule=IDS    run only the named rules, e.g. "
               "--rule=R1,R3\n"
               "  --list-rules  print the rule table and exit\n",
               Program);
  return 2;
}

static int listRules() {
  for (const auto &RulePtr : lint::makeAllRules())
    std::printf("%s  %-20s  %s\n", std::string(RulePtr->id()).c_str(),
                std::string(RulePtr->name()).c_str(),
                std::string(RulePtr->summary()).c_str());
  return 0;
}

int main(int Argc, char **Argv) {
  lint::AnalyzerOptions Options;
  bool Werror = false;
  for (int Index = 1; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    if (std::strcmp(Arg, "--werror") == 0) {
      Werror = true;
    } else if (std::strcmp(Arg, "--list-rules") == 0) {
      return listRules();
    } else if (std::strncmp(Arg, "--rule=", 7) == 0) {
      for (std::string_view Id : splitChar(Arg + 7, ','))
        if (!trim(Id).empty())
          Options.RuleIds.emplace_back(trim(Id));
    } else if (Arg[0] == '-') {
      return printUsage(Argv[0]);
    } else {
      Options.Paths.emplace_back(Arg);
    }
  }
  if (Options.Paths.empty())
    return printUsage(Argv[0]);

  Result<lint::LintReport> Report = lint::runAnalyzer(Options);
  if (!Report) {
    std::fprintf(stderr, "mclint: %s\n", Report.status().toString().c_str());
    return 2;
  }

  for (const lint::Diagnostic &Diag : Report.value().Diagnostics)
    std::printf("%s\n", lint::formatDiagnostic(Diag, Werror).c_str());

  const size_t Count = Report.value().Diagnostics.size();
  if (Count == 0) {
    std::fprintf(stderr, "mclint: %zu file(s) clean\n",
                 Report.value().FileCount);
    return 0;
  }
  std::fprintf(stderr, "mclint: %zu finding(s) in %zu file(s)%s\n", Count,
               Report.value().FileCount,
               Werror ? " (--werror: failing)" : "");
  return Werror ? 1 : 0;
}
