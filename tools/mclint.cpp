//===- tools/mclint.cpp - Project invariant linter ------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//
//   $ mclint [options] <path>...
//
// Scans the given files/directories for violations of the project's
// enforced invariants R1–R16 (see docs/LINT_RULES.md). Without --werror,
// findings are warnings and the exit code is 0; with --werror they are
// errors and any finding exits 1 — that is the CI gate:
//
//   $ mclint --werror src include tools tests examples
//
// Exit codes: 0 clean (or warnings only), 1 findings under --werror,
// 2 usage or environmental error.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"
#include "parmonc/lint/Baseline.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/Sarif.h"
#include "parmonc/support/Text.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace parmonc;

static int printUsage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [options] <path>...\n"
      "  --werror               findings are errors: any finding exits 1\n"
      "  --rule=IDS             run only the named rules, e.g. --rule=R1,R3\n"
      "  --format=text|sarif    output format (default: text)\n"
      "  --baseline=FILE        suppress findings recorded in FILE\n"
      "  --write-baseline=FILE  record current findings to FILE and exit\n"
      "  --fix                  apply safe autofixes (R4, R10) in place\n"
      "  --cache=FILE           incremental analysis cache\n"
      "  --jobs=N               analyze files on N worker threads\n"
      "  --list-rules           print the rule table and exit\n"
      "  --explain RULE         print a rule's rationale and example\n",
      Program);
  return 2;
}

static int listRules() {
  for (const auto &RulePtr : lint::makeAllRules())
    std::printf("%s  %-20s  %s\n", std::string(RulePtr->id()).c_str(),
                std::string(RulePtr->name()).c_str(),
                std::string(RulePtr->summary()).c_str());
  return 0;
}

static int explainRule(const char *Id) {
  for (const auto &RulePtr : lint::makeAllRules()) {
    if (RulePtr->id() != Id && RulePtr->name() != Id)
      continue;
    std::printf("%s: %s\n  %s\n\nWhy:\n  %s\n\nExample:\n%s\n",
                std::string(RulePtr->id()).c_str(),
                std::string(RulePtr->name()).c_str(),
                std::string(RulePtr->summary()).c_str(),
                std::string(RulePtr->rationale()).c_str(),
                std::string(RulePtr->example()).c_str());
    std::printf("\nWaive with: // mclint: allow(%s): <reason>  (or "
                "allow-file)\nDocs: docs/LINT_RULES.md\n",
                std::string(RulePtr->id()).c_str());
    return 0;
  }
  std::fprintf(stderr, "mclint: unknown rule '%s' (try --list-rules)\n", Id);
  return 2;
}

int main(int Argc, char **Argv) {
  lint::AnalyzerOptions Options;
  bool Werror = false;
  bool Fix = false;
  bool Sarif = false;
  std::string WriteBaselinePath;
  for (int Index = 1; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    if (std::strcmp(Arg, "--werror") == 0) {
      Werror = true;
    } else if (std::strcmp(Arg, "--fix") == 0) {
      Fix = true;
    } else if (std::strcmp(Arg, "--list-rules") == 0) {
      return listRules();
    } else if (std::strcmp(Arg, "--explain") == 0) {
      if (Index + 1 >= Argc)
        return printUsage(Argv[0]);
      return explainRule(Argv[Index + 1]);
    } else if (std::strncmp(Arg, "--explain=", 10) == 0) {
      return explainRule(Arg + 10);
    } else if (std::strncmp(Arg, "--rule=", 7) == 0) {
      for (std::string_view Id : splitChar(Arg + 7, ','))
        if (!trim(Id).empty())
          Options.RuleIds.emplace_back(trim(Id));
    } else if (std::strncmp(Arg, "--format=", 9) == 0) {
      const std::string_view Format = Arg + 9;
      if (Format == "sarif")
        Sarif = true;
      else if (Format != "text")
        return printUsage(Argv[0]);
    } else if (std::strncmp(Arg, "--baseline=", 11) == 0) {
      Options.BaselinePath = Arg + 11;
    } else if (std::strncmp(Arg, "--write-baseline=", 17) == 0) {
      WriteBaselinePath = Arg + 17;
    } else if (std::strncmp(Arg, "--cache=", 8) == 0) {
      Options.CachePath = Arg + 8;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      char *End = nullptr;
      const unsigned long Jobs = std::strtoul(Arg + 7, &End, 10);
      if (End == Arg + 7 || *End != '\0' || Jobs > 256)
        return printUsage(Argv[0]);
      Options.Jobs = static_cast<unsigned>(Jobs);
    } else if (Arg[0] == '-') {
      return printUsage(Argv[0]);
    } else {
      Options.Paths.emplace_back(Arg);
    }
  }
  if (Options.Paths.empty())
    return printUsage(Argv[0]);
  Options.ComputeFixes = Fix;

  Result<lint::LintReport> Report = lint::runAnalyzer(Options);
  if (!Report) {
    std::fprintf(stderr, "mclint: %s\n", Report.status().toString().c_str());
    return 2;
  }
  const lint::LintReport &R = Report.value();

  const auto LineTextOf =
      [&](const lint::Diagnostic &Diag) -> std::string_view {
    for (size_t I = 0; I < R.Diagnostics.size(); ++I)
      if (&R.Diagnostics[I] == &Diag)
        return R.DiagnosticLineText[I];
    return {};
  };

  if (!WriteBaselinePath.empty()) {
    const std::string Contents =
        lint::formatBaseline(R.Diagnostics, LineTextOf);
    if (Status Wrote = writeFileAtomic(WriteBaselinePath, Contents);
        !Wrote) {
      std::fprintf(stderr, "mclint: %s\n", Wrote.toString().c_str());
      return 2;
    }
    std::fprintf(stderr, "mclint: wrote %zu baseline entr%s to %s\n",
                 R.Diagnostics.size(),
                 R.Diagnostics.size() == 1 ? "y" : "ies",
                 WriteBaselinePath.c_str());
    return 0;
  }

  if (Fix) {
    Result<size_t> Fixed = lint::applyFixes(R.Diagnostics);
    if (!Fixed) {
      std::fprintf(stderr, "mclint: %s\n", Fixed.status().toString().c_str());
      return 2;
    }
    std::fprintf(stderr, "mclint: rewrote %zu file(s)\n", Fixed.value());
  }

  if (Sarif) {
    std::vector<const lint::Rule *> RulePointers;
    const auto AllRules = lint::makeAllRules();
    for (const auto &RulePtr : AllRules)
      RulePointers.push_back(RulePtr.get());
    std::fputs(
        lint::formatSarif(R.Diagnostics, RulePointers, Werror, LineTextOf)
            .c_str(),
        stdout);
  } else {
    for (const lint::Diagnostic &Diag : R.Diagnostics)
      std::printf("%s\n", lint::formatDiagnostic(Diag, Werror).c_str());
  }

  const size_t Count = R.Diagnostics.size();
  if (Count == 0) {
    std::fprintf(stderr, "mclint: %zu file(s) clean\n", R.FileCount);
    return 0;
  }
  std::fprintf(stderr, "mclint: %zu finding(s) in %zu file(s)%s\n", Count,
               R.FileCount, Werror ? " (--werror: failing)" : "");
  return Werror ? 1 : 0;
}
