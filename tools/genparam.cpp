//===- tools/genparam.cpp - Compute leap multipliers (§3.5) ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage, exactly as in the paper:
//
//   $ genparam ne np nr
//
// where ne, np, nr are the exponents of two of the experiment, processor
// and realization leap lengths (ne > np > nr). Writes the multipliers
// A(2^ne), A(2^np), A(2^nr) to parmonc_genparam.dat in the current
// directory; subsequent PARMONC runs in this directory use them instead of
// the defaults.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/support/Text.h"

#include <cstdio>
#include <cstdlib>

using namespace parmonc;

static int printUsage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s ne np nr\n"
               "  ne, np, nr: leap exponents of two with "
               "125 > ne > np > nr >= 1\n"
               "  (defaults used when no parmonc_genparam.dat exists: "
               "ne=115 np=98 nr=43)\n",
               Program);
  return 2;
}

int main(int Argc, char **Argv) {
  if (Argc != 4)
    return printUsage(Argv[0]);

  LeapConfig Config;
  unsigned *Slots[3] = {&Config.ExperimentLog2, &Config.ProcessorLog2,
                        &Config.RealizationLog2};
  for (int Index = 0; Index < 3; ++Index) {
    Result<uint64_t> Parsed = parseUInt64(Argv[Index + 1]);
    if (!Parsed || Parsed.value() >= 128) {
      std::fprintf(stderr, "genparam: bad exponent '%s'\n", Argv[Index + 1]);
      return printUsage(Argv[0]);
    }
    *Slots[Index] = unsigned(Parsed.value());
  }

  if (Status Valid = Config.validate(); !Valid) {
    std::fprintf(stderr, "genparam: %s\n", Valid.toString().c_str());
    return 1;
  }

  const LeapTable Table(Lcg128::defaultMultiplier(), Config);
  const std::string Path = "parmonc_genparam.dat";
  if (Status Written = writeFileAtomic(Path, Table.toFileContents());
      !Written) {
    std::fprintf(stderr, "genparam: %s\n", Written.toString().c_str());
    return 1;
  }

  std::printf("wrote %s\n", Path.c_str());
  std::printf("  base A        = %s\n",
              Table.baseMultiplier().toHexString().c_str());
  std::printf("  A(2^%-3u)      = %s\n", Config.ExperimentLog2,
              Table.experimentLeap().toHexString().c_str());
  std::printf("  A(2^%-3u)      = %s\n", Config.ProcessorLog2,
              Table.processorLeap().toHexString().c_str());
  std::printf("  A(2^%-3u)      = %s\n", Config.RealizationLog2,
              Table.realizationLeap().toHexString().c_str());
  std::printf("  capacity: 2^%u experiments x 2^%u processors x 2^%u "
              "realizations\n",
              Config.maxExperimentsLog2(), Config.maxProcessorsLog2(),
              Config.maxRealizationsLog2());
  return 0;
}
