//===- tools/mcbench.cpp - Performance benchmark harness ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//
//   $ mcbench [--smoke] [--out DIR] [--rng-only] [--runner-only]
//             [--ckpt-only] [--transport threads|processes]
//
// Measures the performance layer end to end and records the numbers as
// machine-readable JSON:
//
//   DIR/BENCH_rng.json     ns per 128-bit multiply (native vs portable),
//                          ns per draw for scalar nextUniform(), the
//                          four-lane fillBatch() kernel, fillBatchBits64()
//                          and the block-leap kernel, plus the derived
//                          speedup ratios.
//   DIR/BENCH_runner.json  realizations/sec of the run engine at 1, 2 and
//                          4 worker threads per rank, with speedup and
//                          parallel efficiency relative to the serial
//                          engine, for a latency-bound and a CPU-bound
//                          workload. With --transport processes the sweep
//                          scales forked worker PROCESSES over the socket
//                          transport instead of threads, measuring the
//                          wire's overhead against the in-process fabric.
//   DIR/BENCH_ckpt.json    save-point stall (the collector time spent
//                          inside its checkpoint save) for the sharded
//                          synchronous commit path versus the background
//                          writer, at an aggressive save-every-poll
//                          cadence — plus the coalescing count and a
//                          bit-equality check of the final means, since
//                          the writer may drop generations but must never
//                          change results.
//
// --smoke shrinks every size so the whole harness finishes in well under a
// second — that is what the bench-smoke CI job and the ctest smoke test
// run. Interpretation guidance lives in docs/PERFORMANCE.md.
//
// The engine runs write their parmonc_data/ tree under DIR/mcbench_work.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/int128/UInt128.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LeapWindow.h"
#include "parmonc/rng/Philox.h"
#include "parmonc/rng/SimdKernels.h"
#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/support/Clock.h"
#include "parmonc/support/Text.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

using namespace parmonc;

// mclint: allow-file(R6): the benchmark drives the raw generator on
// purpose — that is the kernel under measurement.
namespace {

/// All timing goes through the library's own clock abstraction.
WallClock Timer;

/// Folded into every benchmark result so the optimizer cannot delete the
/// measured loops; reported in the JSON for reproducibility spot-checks.
uint64_t Checksum = 0;

struct Options {
  bool Smoke = false;
  bool RngOnly = false;
  bool RunnerOnly = false;
  bool CkptOnly = false;
  std::string OutDir = ".";
  TransportKind Transport = TransportKind::Threads;
};

double nsPerOp(int64_t Nanos, uint64_t Ops) {
  return Ops > 0 ? double(Nanos) / double(Ops) : 0.0;
}

std::string formatDouble(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof Buffer, "%.4f", Value);
  return Buffer;
}

// --- RNG suite -------------------------------------------------------------

struct RngNumbers {
  double FastMulNs = 0.0;
  double PortableMulNs = 0.0;
  double ScalarNs = 0.0;
  double BatchNs = 0.0;
  double FourLaneNs = 0.0;
  double BatchBitsNs = 0.0;
  double BlockLeapNs = 0.0;
  double PhiloxScalarNs = 0.0;
  double PhiloxBatchNs = 0.0;
  double LeapWindowNs = 0.0;
  double LeapSquareMultiplyNs = 0.0;
  bool SimdBitEqual = false;
  uint64_t Draws = 0;
};

RngNumbers runRngSuite(uint64_t Draws) {
  RngNumbers Numbers;
  Numbers.Draws = Draws;
  const UInt128 Multiplier = Lcg128::defaultMultiplier();

  // The generator recurrence is one dependent 128-bit multiply per draw, so
  // "ns per multiply on a serial dependency chain" IS the generator's
  // scalar speed limit. The same chain through the portable reference
  // (mul128Portable) gives the honest cross-platform baseline — on this
  // build the fast path is what operator* itself compiles to.
  {
    UInt128 State(1);
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Step = 0; Step < Draws; ++Step)
      State = State * Multiplier;
    Numbers.FastMulNs = nsPerOp(Timer.nowNanos() - Start, Draws);
    Checksum ^= State.high() ^ State.low();
  }
  {
    UInt128 State(1);
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Step = 0; Step < Draws; ++Step)
      State = mul128Portable(State, Multiplier);
    Numbers.PortableMulNs = nsPerOp(Timer.nowNanos() - Start, Draws);
    Checksum ^= State.high() ^ State.low();
  }

  // Scalar virtual-call-free draw loop: what a realization routine pays
  // when it calls nextUniform() directly on a concrete Lcg128.
  {
    Lcg128 Generator;
    double Sink = 0.0;
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Step = 0; Step < Draws; ++Step)
      Sink += Generator.nextUniform();
    Numbers.ScalarNs = nsPerOp(Timer.nowNanos() - Start, Draws);
    Checksum ^= uint64_t(Sink) ^ Generator.state().high();
  }

  // Four-lane batch kernel, 4096 draws per refill.
  {
    Lcg128 Generator;
    std::vector<double> Buffer(4096);
    double Sink = 0.0;
    const uint64_t Calls = Draws / Buffer.size();
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Call = 0; Call < Calls; ++Call) {
      Generator.fillBatch(Buffer.data(), Buffer.size());
      Sink += Buffer.front() + Buffer.back();
    }
    Numbers.BatchNs =
        nsPerOp(Timer.nowNanos() - Start, Calls * Buffer.size());
    Checksum ^= uint64_t(Sink * 4096.0) ^ Generator.state().high();
  }
  // The four-lane differential oracle on the same shape, so the JSON shows
  // what the wide SIMD dispatch buys over the portable interleave.
  {
    Lcg128 Generator;
    std::vector<double> Buffer(4096);
    double Sink = 0.0;
    const uint64_t Calls = Draws / Buffer.size();
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Call = 0; Call < Calls; ++Call) {
      Generator.fillBatchFourLane(Buffer.data(), Buffer.size());
      Sink += Buffer.front() + Buffer.back();
    }
    Numbers.FourLaneNs =
        nsPerOp(Timer.nowNanos() - Start, Calls * Buffer.size());
    Checksum ^= uint64_t(Sink * 4096.0) ^ Generator.state().high();
  }

  // In-bench bit-equality oracle: the dispatched batch path must emit the
  // four-lane kernel's exact bytes and final state at an awkward length.
  // Reported as "simd_bit_equal" so a checked-in BENCH_rng.json certifies
  // the speedup was measured on a correct kernel.
  {
    constexpr size_t Count = 4096 + 17;
    Lcg128 Dispatched;
    Lcg128 Oracle;
    std::vector<double> Got(Count), Want(Count);
    Dispatched.fillBatch(Got.data(), Count);
    Oracle.fillBatchFourLane(Want.data(), Count);
    Numbers.SimdBitEqual =
        std::memcmp(Got.data(), Want.data(), Count * sizeof(double)) == 0 &&
        Dispatched.state() == Oracle.state();
  }

  {
    Lcg128 Generator;
    std::vector<uint64_t> Buffer(4096);
    uint64_t Sink = 0;
    const uint64_t Calls = Draws / Buffer.size();
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Call = 0; Call < Calls; ++Call) {
      Generator.fillBatchBits64(Buffer.data(), Buffer.size());
      Sink ^= Buffer.front() ^ Buffer.back();
    }
    Numbers.BatchBitsNs =
        nsPerOp(Timer.nowNanos() - Start, Calls * Buffer.size());
    Checksum ^= Sink;
  }

  // Block-leap kernel: 64 realization-subsequence prefixes of 256 draws
  // per call, block starts advanced by the §2.4 auxiliary generator.
  {
    const UInt128 Leap = LeapTable().realizationLeap();
    Lcg128 Generator;
    const size_t BlockCount = 64, DrawsPerBlock = 256;
    std::vector<double> Buffer(BlockCount * DrawsPerBlock);
    double Sink = 0.0;
    const uint64_t Calls = Draws / Buffer.size();
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Call = 0; Call < Calls; ++Call) {
      Generator.fillBlockLeap(Buffer.data(), BlockCount, DrawsPerBlock, Leap);
      Sink += Buffer.front() + Buffer.back();
    }
    Numbers.BlockLeapNs =
        nsPerOp(Timer.nowNanos() - Start, Calls * Buffer.size());
    Checksum ^= uint64_t(Sink * 4096.0) ^ Generator.state().high();
  }

  // The counter-based Philox backend, scalar and batched, on the same
  // shapes as the LCG loops above so the columns are directly comparable.
  {
    Philox Generator;
    double Sink = 0.0;
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Step = 0; Step < Draws; ++Step)
      Sink += Generator.nextUniform();
    Numbers.PhiloxScalarNs = nsPerOp(Timer.nowNanos() - Start, Draws);
    Checksum ^= uint64_t(Sink) ^ Generator.position().low();
  }
  {
    Philox Generator;
    std::vector<double> Buffer(4096);
    double Sink = 0.0;
    const uint64_t Calls = Draws / Buffer.size();
    const int64_t Start = Timer.nowNanos();
    for (uint64_t Call = 0; Call < Calls; ++Call) {
      Generator.fillUniforms(Buffer.data(), Buffer.size());
      Sink += Buffer.front() + Buffer.back();
    }
    Numbers.PhiloxBatchNs =
        nsPerOp(Timer.nowNanos() - Start, Calls * Buffer.size());
    Checksum ^= uint64_t(Sink * 4096.0) ^ Generator.position().low();
  }

  // Leap-ahead: the windowed power table against square-and-multiply, over
  // a spread of hierarchy-scale exponents. Stream creation and cursor
  // striding pay exactly this cost per leap.
  {
    const uint64_t Leaps = Draws / 1024 > 0 ? Draws / 1024 : 1;
    const PowerWindow Window(Multiplier);
    Lcg128 Entropy;
    std::vector<UInt128> Exponents(256);
    for (UInt128 &Exponent : Exponents)
      Exponent = UInt128(Entropy.nextBits64(), Entropy.nextBits64());
    UInt128 Sink(0);
    int64_t Start = Timer.nowNanos();
    for (uint64_t Leap = 0; Leap < Leaps; ++Leap)
      Sink += Window.pow(Exponents[Leap % Exponents.size()]);
    Numbers.LeapWindowNs = nsPerOp(Timer.nowNanos() - Start, Leaps);
    Checksum ^= Sink.low();
    Sink = UInt128(0);
    Start = Timer.nowNanos();
    for (uint64_t Leap = 0; Leap < Leaps; ++Leap)
      Sink += UInt128::powModPow2(Multiplier,
                                  Exponents[Leap % Exponents.size()], 128);
    Numbers.LeapSquareMultiplyNs = nsPerOp(Timer.nowNanos() - Start, Leaps);
    Checksum ^= Sink.low();
  }
  return Numbers;
}

std::string rngJson(const RngNumbers &Numbers, bool Smoke) {
  std::string Json = "{\n";
  Json += "  \"suite\": \"rng\",\n";
  Json += std::string("  \"smoke\": ") + (Smoke ? "true" : "false") + ",\n";
  Json += std::string("  \"native_int128\": ") +
          (UInt128::hasNativeMultiply() ? "true" : "false") + ",\n";
  Json += std::string("  \"simd_backend\": \"") +
          rngsimd::backendName(rngsimd::CompiledBackend) + "\",\n";
  Json += std::string("  \"batch_kernel\": \"") + Lcg128::batchKernelName() +
          "\",\n";
  Json += std::string("  \"simd_bit_equal\": ") +
          (Numbers.SimdBitEqual ? "true" : "false") + ",\n";
  Json += "  \"draws\": " + std::to_string(Numbers.Draws) + ",\n";
  Json += "  \"results\": {\n";
  Json += "    \"mul128_fast_ns_per_op\": " +
          formatDouble(Numbers.FastMulNs) + ",\n";
  Json += "    \"mul128_portable_ns_per_op\": " +
          formatDouble(Numbers.PortableMulNs) + ",\n";
  Json += "    \"next_uniform_ns_per_draw\": " +
          formatDouble(Numbers.ScalarNs) + ",\n";
  Json += "    \"fill_batch_ns_per_draw\": " +
          formatDouble(Numbers.BatchNs) + ",\n";
  Json += "    \"fill_batch_four_lane_ns_per_draw\": " +
          formatDouble(Numbers.FourLaneNs) + ",\n";
  Json += "    \"fill_batch_bits64_ns_per_draw\": " +
          formatDouble(Numbers.BatchBitsNs) + ",\n";
  Json += "    \"fill_block_leap_ns_per_draw\": " +
          formatDouble(Numbers.BlockLeapNs) + ",\n";
  Json += "    \"philox_next_uniform_ns_per_draw\": " +
          formatDouble(Numbers.PhiloxScalarNs) + ",\n";
  Json += "    \"philox_fill_ns_per_draw\": " +
          formatDouble(Numbers.PhiloxBatchNs) + ",\n";
  Json += "    \"leap_window_ns_per_leap\": " +
          formatDouble(Numbers.LeapWindowNs) + ",\n";
  Json += "    \"leap_square_multiply_ns_per_leap\": " +
          formatDouble(Numbers.LeapSquareMultiplyNs) + "\n";
  Json += "  },\n";
  Json += "  \"speedups\": {\n";
  Json += "    \"fast_vs_portable_multiply\": " +
          formatDouble(Numbers.FastMulNs > 0.0
                           ? Numbers.PortableMulNs / Numbers.FastMulNs
                           : 0.0) +
          ",\n";
  Json += "    \"batch_vs_scalar_uniform\": " +
          formatDouble(Numbers.BatchNs > 0.0
                           ? Numbers.ScalarNs / Numbers.BatchNs
                           : 0.0) +
          ",\n";
  Json += "    \"wide_vs_four_lane_batch\": " +
          formatDouble(Numbers.BatchNs > 0.0
                           ? Numbers.FourLaneNs / Numbers.BatchNs
                           : 0.0) +
          ",\n";
  Json += "    \"philox_batch_vs_scalar\": " +
          formatDouble(Numbers.PhiloxBatchNs > 0.0
                           ? Numbers.PhiloxScalarNs / Numbers.PhiloxBatchNs
                           : 0.0) +
          ",\n";
  Json += "    \"window_vs_square_multiply_leap\": " +
          formatDouble(Numbers.LeapWindowNs > 0.0
                           ? Numbers.LeapSquareMultiplyNs /
                                 Numbers.LeapWindowNs
                           : 0.0) +
          "\n";
  Json += "  },\n";
  char Hex[32];
  std::snprintf(Hex, sizeof Hex, "0x%016" PRIx64, Checksum);
  Json += std::string("  \"checksum\": \"") + Hex + "\"\n";
  Json += "}\n";
  return Json;
}

// --- Runner suite ----------------------------------------------------------

struct SeriesPoint {
  int Threads = 1;
  double Seconds = 0.0;
  double RealizationsPerSec = 0.0;
  double Mean = 0.0;
  int64_t Volume = 0;
};

/// One engine run at \p Threads parallel lanes: worker threads on one
/// simulated processor under the thread transport, or that many forked
/// rank processes over the socket transport.
SeriesPoint runEngineOnce(const RealizationFn &Realization,
                          int64_t Realizations, int Threads,
                          TransportKind Transport,
                          const std::string &WorkDir) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = Realizations;
  Config.Transport = Transport;
  if (Transport == TransportKind::Processes) {
    Config.ProcessorCount = Threads;
    Config.WorkerThreadsPerRank = 1;
  } else {
    Config.ProcessorCount = 1;
    Config.WorkerThreadsPerRank = Threads;
  }
  Config.DeterministicSchedule = true;
  Config.PassPeriodNanos = 50'000'000;
  Config.AveragePeriodNanos = 200'000'000;
  Config.WorkDir = WorkDir;

  Result<RunReport> Outcome = runSimulation(Realization, Config);
  if (!Outcome) {
    std::fprintf(stderr, "mcbench: engine run failed: %s\n",
                 Outcome.status().toString().c_str());
    std::exit(1);
  }
  SeriesPoint Point;
  Point.Threads = Threads;
  Point.Seconds = Outcome.value().ElapsedSeconds;
  Point.Volume = Outcome.value().NewSampleVolume;
  Point.RealizationsPerSec =
      Point.Seconds > 0.0 ? double(Point.Volume) / Point.Seconds : 0.0;
  ResultsStore Store(WorkDir);
  if (Result<std::vector<double>> Means = Store.readMeans(1, 1))
    Point.Mean = Means.value()[0];
  return Point;
}

std::string seriesJson(const std::vector<SeriesPoint> &Series) {
  const double SerialSeconds = Series.empty() ? 0.0 : Series.front().Seconds;
  std::string Json = "[\n";
  for (size_t Index = 0; Index < Series.size(); ++Index) {
    const SeriesPoint &Point = Series[Index];
    const double Speedup =
        Point.Seconds > 0.0 ? SerialSeconds / Point.Seconds : 0.0;
    Json += "      {\"threads\": " + std::to_string(Point.Threads) +
            ", \"seconds\": " + formatDouble(Point.Seconds) +
            ", \"realizations_per_sec\": " +
            formatDouble(Point.RealizationsPerSec) +
            ", \"speedup\": " + formatDouble(Speedup) +
            ", \"efficiency\": " +
            formatDouble(Speedup / double(Point.Threads)) +
            ", \"volume\": " + std::to_string(Point.Volume) +
            ", \"mean\": " + formatDouble(Point.Mean) + "}";
    Json += Index + 1 < Series.size() ? ",\n" : "\n";
  }
  Json += "    ]";
  return Json;
}

std::string runRunnerSuite(bool Smoke, const std::string &OutDir,
                           TransportKind Transport) {
  const std::string WorkDir = OutDir + "/mcbench_work";
  if (Status Created = createDirectories(WorkDir); !Created) {
    std::fprintf(stderr, "mcbench: cannot create %s: %s\n", WorkDir.c_str(),
                 Created.toString().c_str());
    std::exit(1);
  }
  const std::vector<int> ThreadCounts = {1, 2, 4};

  // Latency-bound workload: each realization is dominated by waiting (the
  // shape of simulations bound by I/O, device latency or a co-model), so
  // threads overlap wall-clock even on a single core. The observable is an
  // integer-valued indicator, which keeps the moment sums exactly summable
  // — so the per-thread-count means must agree exactly.
  const int64_t SleepNanos = Smoke ? 50'000 : 200'000;
  const int64_t LatencyRealizations = Smoke ? 64 : 2000;
  RealizationFn LatencyBound = [SleepNanos](RandomSource &Source,
                                            double *Out) {
    const double Draw = Source.nextUniform();
    Timer.sleepNanos(SleepNanos);
    Out[0] = Draw < 0.5 ? 1.0 : 0.0;
  };
  std::vector<SeriesPoint> Latency;
  for (int Threads : ThreadCounts)
    Latency.push_back(runEngineOnce(LatencyBound, LatencyRealizations,
                                    Threads, Transport, WorkDir));

  // CPU-bound workload: pure arithmetic through the batched RNG kernel.
  // On a single-core host this series cannot scale (documented in
  // docs/PERFORMANCE.md); on a multi-core host it shows the compute
  // speedup directly.
  const size_t DrawsPerRealization = Smoke ? 256 : 2048;
  const int64_t CpuRealizations = Smoke ? 128 : 20000;
  RealizationFn CpuBound = [DrawsPerRealization](RandomSource &Source,
                                                 double *Out) {
    std::vector<double> Buffer(DrawsPerRealization);
    Source.fillUniforms(Buffer.data(), Buffer.size());
    double Below = 0.0;
    for (double Draw : Buffer)
      Below += Draw < 0.5 ? 1.0 : 0.0;
    Out[0] = Below;
  };
  std::vector<SeriesPoint> Cpu;
  for (int Threads : ThreadCounts)
    Cpu.push_back(
        runEngineOnce(CpuBound, CpuRealizations, Threads, Transport, WorkDir));

  std::string Json = "{\n";
  Json += "  \"suite\": \"runner\",\n";
  Json += std::string("  \"transport\": \"") + transportName(Transport) +
          "\",\n";
  Json += std::string("  \"smoke\": ") + (Smoke ? "true" : "false") + ",\n";
  Json += "  \"host_cpus\": " +
          std::to_string(sysconf(_SC_NPROCESSORS_ONLN)) + ",\n";
  Json += "  \"latency_bound\": {\n";
  Json += "    \"realizations\": " + std::to_string(LatencyRealizations) +
          ",\n";
  Json += "    \"sleep_us_per_realization\": " +
          std::to_string(SleepNanos / 1000) + ",\n";
  Json += "    \"series\": " + seriesJson(Latency) + "\n";
  Json += "  },\n";
  Json += "  \"cpu_bound\": {\n";
  Json += "    \"realizations\": " + std::to_string(CpuRealizations) + ",\n";
  Json += "    \"draws_per_realization\": " +
          std::to_string(DrawsPerRealization) + ",\n";
  Json += "    \"series\": " + seriesJson(Cpu) + "\n";
  Json += "  }\n";
  Json += "}\n";
  return Json;
}

// --- Checkpoint suite ------------------------------------------------------

struct CkptPoint {
  double Seconds = 0.0;
  int64_t SavePoints = 0;
  int64_t Commits = 0;
  int64_t Coalesced = 0;
  double StallMeanUs = 0.0;
  double StallP90Us = 0.0;
  double StallMaxUs = 0.0;
  double Mean = 0.0;
};

/// One sharded-checkpoint engine run on the real clock, saving at every
/// collector poll — the cadence that makes save-point stall dominate, so
/// the synchronous commit and the background writer separate cleanly.
CkptPoint runCkptOnce(bool Async, int64_t Realizations,
                      const std::string &WorkDir) {
  RunConfig Config;
  Config.Rows = 1;
  Config.Columns = 1;
  Config.MaxSampleVolume = Realizations;
  Config.ProcessorCount = 2;
  Config.DeterministicSchedule = true;
  Config.AveragePeriodNanos = 0; // a save point at every collector poll
  Config.WorkDir = WorkDir;
  Config.CheckpointShards = true;
  Config.CheckpointAsync = Async;
  Config.CheckpointQueueDepth = 4;
  RealizationFn Indicator = [](RandomSource &Source, double *Out) {
    Out[0] = Source.nextUniform() < 0.5 ? 1.0 : 0.0;
  };
  Result<RunReport> Outcome = runSimulation(Indicator, Config);
  if (!Outcome) {
    std::fprintf(stderr, "mcbench: ckpt run failed: %s\n",
                 Outcome.status().toString().c_str());
    std::exit(1);
  }
  const RunReport &Report = Outcome.value();
  CkptPoint Point;
  Point.Seconds = Report.ElapsedSeconds;
  Point.SavePoints = Report.SavePointCount;
  Point.Coalesced = Report.CoalescedCheckpoints;
  if (const int64_t *Commits = Report.Metrics.counterValue("ckpt.commits"))
    Point.Commits = *Commits;
  if (const obs::LatencySummary *Stall =
          Report.Metrics.latencySummary("ckpt.save_stall")) {
    Point.StallMeanUs = Stall->meanNanos() / 1000.0;
    Point.StallP90Us = double(Stall->quantileUpperNanos(0.9)) / 1000.0;
    Point.StallMaxUs = double(Stall->MaxNanos) / 1000.0;
  }
  ResultsStore Store(WorkDir);
  if (Result<std::vector<double>> Means = Store.readMeans(1, 1))
    Point.Mean = Means.value()[0];
  Checksum ^= uint64_t(Point.SavePoints) ^ uint64_t(Point.Commits);
  return Point;
}

std::string ckptPointJson(const CkptPoint &Point) {
  std::string Json = "{\n";
  Json += "    \"seconds\": " + formatDouble(Point.Seconds) + ",\n";
  Json += "    \"save_points\": " + std::to_string(Point.SavePoints) + ",\n";
  Json += "    \"committed_generations\": " + std::to_string(Point.Commits) +
          ",\n";
  Json += "    \"coalesced_saves\": " + std::to_string(Point.Coalesced) +
          ",\n";
  Json += "    \"save_stall_mean_us\": " + formatDouble(Point.StallMeanUs) +
          ",\n";
  Json += "    \"save_stall_p90_us\": " + formatDouble(Point.StallP90Us) +
          ",\n";
  Json += "    \"save_stall_max_us\": " + formatDouble(Point.StallMaxUs) +
          ",\n";
  Json += "    \"mean\": " + formatDouble(Point.Mean) + "\n";
  Json += "  }";
  return Json;
}

std::string runCkptSuite(bool Smoke, const std::string &OutDir) {
  const std::string WorkRoot = OutDir + "/mcbench_work";
  const int64_t Realizations = Smoke ? 128 : 1024;
  const CkptPoint Sync =
      runCkptOnce(/*Async=*/false, Realizations, WorkRoot + "/ckpt_sync");
  const CkptPoint Async =
      runCkptOnce(/*Async=*/true, Realizations, WorkRoot + "/ckpt_async");

  std::string Json = "{\n";
  Json += "  \"suite\": \"ckpt\",\n";
  Json += std::string("  \"smoke\": ") + (Smoke ? "true" : "false") + ",\n";
  Json += "  \"ranks\": 2,\n";
  Json += "  \"realizations\": " + std::to_string(Realizations) + ",\n";
  Json += "  \"queue_depth\": 4,\n";
  Json += "  \"sync\": " + ckptPointJson(Sync) + ",\n";
  Json += "  \"async\": " + ckptPointJson(Async) + ",\n";
  Json += "  \"stall_reduction_mean\": " +
          formatDouble(Async.StallMeanUs > 0.0
                           ? Sync.StallMeanUs / Async.StallMeanUs
                           : 0.0) +
          ",\n";
  // The background writer buys latency by SKIPPING generations, never by
  // changing state: the two runs must land on bit-identical estimates.
  Json += std::string("  \"means_bit_equal\": ") +
          (Sync.Mean == Async.Mean ? "true" : "false") + "\n";
  Json += "}\n";
  return Json;
}

int usage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--out DIR] [--rng | --rng-only] "
               "[--runner-only] [--ckpt-only] "
               "[--transport threads|processes]\n",
               Program);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int Index = 1; Index < Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--smoke") == 0) {
      Opts.Smoke = true;
    } else if (std::strcmp(Argv[Index], "--rng-only") == 0 ||
               std::strcmp(Argv[Index], "--rng") == 0) {
      Opts.RngOnly = true;
    } else if (std::strcmp(Argv[Index], "--runner-only") == 0) {
      Opts.RunnerOnly = true;
    } else if (std::strcmp(Argv[Index], "--ckpt-only") == 0) {
      Opts.CkptOnly = true;
    } else if (std::strcmp(Argv[Index], "--out") == 0 && Index + 1 < Argc) {
      Opts.OutDir = Argv[++Index];
    } else if (std::strcmp(Argv[Index], "--transport") == 0 &&
               Index + 1 < Argc) {
      std::optional<TransportKind> Parsed = parseTransport(Argv[++Index]);
      if (!Parsed)
        return usage(Argv[0]);
      Opts.Transport = *Parsed;
    } else {
      return usage(Argv[0]);
    }
  }
  if (int(Opts.RngOnly) + int(Opts.RunnerOnly) + int(Opts.CkptOnly) > 1)
    return usage(Argv[0]);
  if (Status Created = createDirectories(Opts.OutDir); !Created) {
    std::fprintf(stderr, "mcbench: cannot create %s: %s\n",
                 Opts.OutDir.c_str(), Created.toString().c_str());
    return 1;
  }

  if (!Opts.RunnerOnly && !Opts.CkptOnly) {
    const uint64_t Draws = Opts.Smoke ? (uint64_t(1) << 16)
                                      : (uint64_t(1) << 24);
    const RngNumbers Numbers = runRngSuite(Draws);
    const std::string Path = Opts.OutDir + "/BENCH_rng.json";
    if (Status Written = writeFileAtomic(Path, rngJson(Numbers, Opts.Smoke));
        !Written) {
      std::fprintf(stderr, "mcbench: %s\n", Written.toString().c_str());
      return 1;
    }
    std::printf("mcbench: wrote %s (fast multiply %.2f ns, portable %.2f "
                "ns, batch %.2f ns/draw)\n",
                Path.c_str(), Numbers.FastMulNs, Numbers.PortableMulNs,
                Numbers.BatchNs);
  }
  if (!Opts.RngOnly && !Opts.CkptOnly) {
    const std::string Json =
        runRunnerSuite(Opts.Smoke, Opts.OutDir, Opts.Transport);
    const std::string Path = Opts.OutDir + "/BENCH_runner.json";
    if (Status Written = writeFileAtomic(Path, Json); !Written) {
      std::fprintf(stderr, "mcbench: %s\n", Written.toString().c_str());
      return 1;
    }
    std::printf("mcbench: wrote %s\n", Path.c_str());
  }
  if (!Opts.RngOnly && !Opts.RunnerOnly) {
    const std::string Json = runCkptSuite(Opts.Smoke, Opts.OutDir);
    const std::string Path = Opts.OutDir + "/BENCH_ckpt.json";
    if (Status Written = writeFileAtomic(Path, Json); !Written) {
      std::fprintf(stderr, "mcbench: %s\n", Written.toString().c_str());
      return 1;
    }
    std::printf("mcbench: wrote %s\n", Path.c_str());
  }
  return 0;
}
