//===- tools/mcstat.cpp - Run-metrics inspector ---------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//
//   $ mcstat [workdir] [--trace] [--json]
//
// Pretty-prints the observability metrics a finished run left under
// <workdir>/parmonc_data/results/metrics.dat: realization counters per
// rank, collector merge/save latencies, communication volume, and the
// collector-congestion gauges that back the paper's §2.2 claim that
// exchange expenses stay negligible. With --trace, additionally dumps the
// Chrome-trace JSON (results/trace.json, present when the run had a
// TraceWriter attached) to stdout — load it in a trace viewer via
// about:tracing or ui.perfetto.dev. With --json, prints the metrics as a
// JSON object instead of the table.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"
#include "parmonc/support/Text.h"

#include <cstdio>
#include <cstring>

using namespace parmonc;

int main(int Argc, char **Argv) {
  std::string WorkDir = ".";
  bool DumpTrace = false;
  bool AsJson = false;
  bool HaveWorkDir = false;
  for (int Index = 1; Index < Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--trace") == 0) {
      DumpTrace = true;
    } else if (std::strcmp(Argv[Index], "--json") == 0) {
      AsJson = true;
    } else if (!HaveWorkDir && Argv[Index][0] != '-') {
      WorkDir = Argv[Index];
      HaveWorkDir = true;
    } else {
      std::fprintf(stderr, "usage: %s [workdir] [--trace] [--json]\n",
                   Argv[0]);
      return 2;
    }
  }

  ResultsStore Store(WorkDir);
  Result<std::string> Contents = readFileToString(Store.metricsPath());
  if (!Contents) {
    std::fprintf(stderr,
                 "mcstat: no metrics at %s (%s)\n"
                 "mcstat: run a simulation in this directory first\n",
                 Store.metricsPath().c_str(),
                 Contents.status().toString().c_str());
    return 1;
  }
  Result<obs::MetricsSnapshot> Snapshot =
      obs::MetricsSnapshot::fromFileContents(Contents.value());
  if (!Snapshot) {
    std::fprintf(stderr, "mcstat: %s is corrupt: %s\n",
                 Store.metricsPath().c_str(),
                 Snapshot.status().toString().c_str());
    return 1;
  }

  if (AsJson)
    std::fputs(Snapshot.value().toJson().c_str(), stdout);
  else {
    std::printf("metrics of the run under %s\n", Store.dataDir().c_str());
    std::fputs(Snapshot.value().toPrettyText().c_str(), stdout);
  }

  if (DumpTrace) {
    Result<std::string> TraceJson = readFileToString(Store.tracePath());
    if (!TraceJson) {
      std::fprintf(stderr,
                   "mcstat: no trace at %s — the run had no TraceWriter "
                   "attached (%s)\n",
                   Store.tracePath().c_str(),
                   TraceJson.status().toString().c_str());
      return 1;
    }
    std::fputs(TraceJson.value().c_str(), stdout);
  }
  return 0;
}
