//===- tools/manaver.cpp - Manual subtotal averaging (§3.4) ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Usage:
//
//   $ manaver [workdir]
//
// Re-averages the per-processor subtotal files under
// <workdir>/parmonc_data/subtotals/ together with base.dat and rewrites
// the result files and checkpoint. Run it after a cluster job was
// terminated: the subtotal files workers wrote at their last perpass are
// usually fresher than the collector's last save-point, so manaver
// recovers sample volume that would otherwise be lost (§3.4).
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"

#include <cstdio>

using namespace parmonc;

int main(int Argc, char **Argv) {
  if (Argc > 2) {
    std::fprintf(stderr, "usage: %s [workdir]\n", Argv[0]);
    return 2;
  }
  const std::string WorkDir = Argc == 2 ? Argv[1] : ".";

  ResultsStore Store(WorkDir);
  std::vector<std::string> RecoveredPaths;
  Result<MomentSnapshot> Merged =
      runManualAverage(Store, /*ErrorMultiplier=*/3.0, &RecoveredPaths);
  if (!Merged) {
    std::fprintf(stderr, "manaver: %s\n",
                 Merged.status().toString().c_str());
    return 1;
  }
  for (const std::string &Path : RecoveredPaths)
    std::fprintf(stderr,
                 "manaver: warning: '%s' failed its integrity check; used "
                 "the previous generation ('%s')\n",
                 Path.c_str(), ResultsStore::backupPath(Path).c_str());

  const EstimatorMatrix &Moments = Merged.value().Moments;
  const ErrorBounds Bounds = Moments.errorBounds();
  std::printf("manaver: averaged %lld realizations (%zux%zu matrix)\n",
              (long long)Moments.sampleVolume(), Moments.rows(),
              Moments.columns());
  std::printf("  max absolute error  = %.6e\n", Bounds.MaxAbsoluteError);
  std::printf("  max relative error  = %.6e %%\n", Bounds.MaxRelativeError);
  std::printf("  max sample variance = %.6e\n", Bounds.MaxVariance);
  std::printf("  results written under %s\n", Store.resultsDir().c_str());
  return 0;
}
