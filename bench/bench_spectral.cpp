//===- bench/bench_spectral.cpp - Multiplier study (paper ref. [14]) ------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the methodology of Dyadkin & Hamilton, "A study of 128-bit
// multipliers for congruential pseudorandom number generators" (the
// paper's ref. [14]): the exact spectral test S_t = ν_t/(γ_t^{1/2} m^{1/t})
// for t = 2..6 over candidate multipliers 5^k mod 2^128, plus reference
// rows for classical generators. This is the theoretical justification
// for A = 5^101 — and the table shows why naive choices (tiny multiplier,
// RANDU) are catastrophic.
//
//===----------------------------------------------------------------------===//

#include "parmonc/spectral/SpectralTest.h"

#include "parmonc/rng/Lcg128.h"

#include <cstdio>
#include <vector>

using namespace parmonc;

namespace {

void printRow(const char *Label, const std::vector<SpectralResult> &Results,
              double PassThreshold) {
  std::printf("  %-22s", Label);
  bool AllPass = true;
  for (const SpectralResult &Result : Results) {
    std::printf(" %-8.4f", Result.NormalizedMerit);
    AllPass &= Result.NormalizedMerit >= PassThreshold;
  }
  std::printf("  %s\n", AllPass ? "GOOD" : "POOR");
}

} // namespace

int main() {
  constexpr int MaxDimension = 6;
  constexpr double Threshold = 0.1; // Knuth: S_t >= 0.1 is passable

  std::printf("=== spectral test: normalized merits S_t "
              "(1 = ideal lattice; >= 0.75 very good, < 0.1 reject) ===\n\n");
  std::printf("  %-22s", "generator");
  for (int Dimension = 2; Dimension <= MaxDimension; ++Dimension)
    std::printf(" S_%-6d", Dimension);
  std::printf("\n");

  // Candidate 128-bit multipliers 5^k (odd k for maximal period), the
  // Dyadkin–Hamilton family; the paper's library uses k = 101.
  for (uint64_t Exponent : {33ull, 65ull, 101ull, 127ull}) {
    const UInt128 Multiplier =
        UInt128::powModPow2(UInt128(5), UInt128(Exponent), 128);
    char Label[64];
    std::snprintf(Label, sizeof(Label), "5^%llu mod 2^128%s",
                  (unsigned long long)Exponent,
                  Exponent == 101 ? " (*)" : "");
    printRow(Label, runSpectralTestPow2(128, Multiplier, MaxDimension),
             Threshold);
  }

  std::printf("\n");
  // Classical references.
  printRow("lcg40: 5^17, 2^40",
           runSpectralTestPow2(40, UInt128::powModPow2(UInt128(5),
                                                       UInt128(17), 40),
                               MaxDimension),
           Threshold);
  printRow("randu: 65539, 2^31",
           runSpectralTestPow2(31, UInt128(65539), MaxDimension,
                               /*UseEffectiveModulus=*/false),
           Threshold);
  printRow("minstd: 16807, 2^31-1",
           runSpectralTest(BigInt((int64_t(1) << 31) - 1), BigInt(16807),
                           MaxDimension),
           Threshold);
  printRow("tiny a: 5, 2^128",
           runSpectralTestPow2(128, UInt128(5), MaxDimension), Threshold);

  std::printf("\n(*) the PARMONC multiplier. RANDU's S_3 collapse is the "
              "15-planes defect;\nthe tiny multiplier collapses already "
              "at S_2 — the spectral test is the design tool that rules "
              "such choices out before any empirical testing.\n");
  return 0;
}
