//===- bench/bench_rng_throughput.cpp - RNG speed comparison --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.4 calls the generator "fairly fast": ns per base random number for
// rnd128 (the 128-bit LCG) against the short-period LCG40, the modern
// 64-bit baselines, and std::mt19937_64. Google-benchmark binary.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/StreamHierarchy.h"

#include "benchmark/benchmark.h"

#include <random>

namespace {

using namespace parmonc;

void BM_Lcg128_Uniform(benchmark::State &State) {
  Lcg128 Generator;
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg128_Uniform);

void BM_Lcg128_Bits(benchmark::State &State) {
  Lcg128 Generator;
  uint64_t Sink = 0;
  for (auto _ : State)
    Sink ^= Generator.nextBits64();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg128_Bits);

void BM_Lcg40_Uniform(benchmark::State &State) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg40_Uniform);

void BM_SplitMix64_Uniform(benchmark::State &State) {
  SplitMix64 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SplitMix64_Uniform);

void BM_Xoshiro256_Uniform(benchmark::State &State) {
  Xoshiro256StarStar Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Xoshiro256_Uniform);

void BM_Philox4x32_Uniform(benchmark::State &State) {
  Philox4x32 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Philox4x32_Uniform);

void BM_Mcg64_Uniform(benchmark::State &State) {
  Mcg64 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Mcg64_Uniform);

void BM_StdMt19937_64_Uniform(benchmark::State &State) {
  std::mt19937_64 Generator(1);
  std::uniform_real_distribution<double> Uniform(0.0, 1.0);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Uniform(Generator);
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StdMt19937_64_Uniform);

// Stream creation cost: what the engine pays per realization boundary
// (one 128-bit multiply) — §2.4's point that leaping is effectively free.
void BM_RealizationCursor_Begin(benchmark::State &State) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Cursor(Hierarchy, {0, 0, 0});
  for (auto _ : State) {
    Lcg128 Stream = Cursor.beginRealization();
    benchmark::DoNotOptimize(Stream);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RealizationCursor_Begin);

} // namespace

BENCHMARK_MAIN();
