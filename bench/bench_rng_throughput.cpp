//===- bench/bench_rng_throughput.cpp - RNG speed comparison --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.4 calls the generator "fairly fast": ns per base random number for
// rnd128 (the 128-bit LCG) against the short-period LCG40, the modern
// 64-bit baselines, and std::mt19937_64. Google-benchmark binary.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/StreamHierarchy.h"

#include "benchmark/benchmark.h"

#include <random>
#include <vector>

namespace {

using namespace parmonc;

void BM_Lcg128_Uniform(benchmark::State &State) {
  Lcg128 Generator;
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg128_Uniform);

void BM_Lcg128_Bits(benchmark::State &State) {
  Lcg128 Generator;
  uint64_t Sink = 0;
  for (auto _ : State)
    Sink ^= Generator.nextBits64();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg128_Bits);

// The four-lane batch kernel against the scalar loop above: same
// sequence, but the multiply dependency chain is broken across lanes.
void BM_Lcg128_FillBatch(benchmark::State &State) {
  Lcg128 Generator;
  std::vector<double> Buffer(size_t(State.range(0)));
  double Sink = 0.0;
  for (auto _ : State) {
    Generator.fillBatch(Buffer.data(), Buffer.size());
    Sink += Buffer.back();
  }
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_Lcg128_FillBatch)->Arg(64)->Arg(1024)->Arg(16384);

// Portable reference multiply on the same serial recurrence: what the
// generator costs on targets without unsigned __int128.
void BM_Lcg128_PortableMultiplyChain(benchmark::State &State) {
  UInt128 Value(1);
  const UInt128 Multiplier = Lcg128::defaultMultiplier();
  for (auto _ : State)
    Value = mul128Portable(Value, Multiplier);
  benchmark::DoNotOptimize(Value);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg128_PortableMultiplyChain);

// Block-leap kernel: 64 realization prefixes per call, block starts
// advanced by the §2.4 auxiliary generator.
void BM_Lcg128_FillBlockLeap(benchmark::State &State) {
  const UInt128 Leap = LeapTable().realizationLeap();
  Lcg128 Generator;
  const size_t DrawsPerBlock = size_t(State.range(0));
  std::vector<double> Buffer(64 * DrawsPerBlock);
  double Sink = 0.0;
  for (auto _ : State) {
    Generator.fillBlockLeap(Buffer.data(), 64, DrawsPerBlock, Leap);
    Sink += Buffer.back();
  }
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations() * int64_t(Buffer.size()));
}
BENCHMARK(BM_Lcg128_FillBlockLeap)->Arg(64)->Arg(256);

void BM_Lcg40_Uniform(benchmark::State &State) {
  LcgPow2 Generator = LcgPow2::makeClassic40();
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Lcg40_Uniform);

void BM_SplitMix64_Uniform(benchmark::State &State) {
  SplitMix64 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SplitMix64_Uniform);

void BM_Xoshiro256_Uniform(benchmark::State &State) {
  Xoshiro256StarStar Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Xoshiro256_Uniform);

void BM_Philox4x32_Uniform(benchmark::State &State) {
  Philox4x32 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Philox4x32_Uniform);

void BM_Mcg64_Uniform(benchmark::State &State) {
  Mcg64 Generator(1);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Generator.nextUniform();
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Mcg64_Uniform);

void BM_StdMt19937_64_Uniform(benchmark::State &State) {
  std::mt19937_64 Generator(1);
  std::uniform_real_distribution<double> Uniform(0.0, 1.0);
  double Sink = 0.0;
  for (auto _ : State)
    Sink += Uniform(Generator);
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StdMt19937_64_Uniform);

// Stream creation cost: what the engine pays per realization boundary
// (one 128-bit multiply) — §2.4's point that leaping is effectively free.
void BM_RealizationCursor_Begin(benchmark::State &State) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Cursor(Hierarchy, {0, 0, 0});
  for (auto _ : State) {
    Lcg128 Stream = Cursor.beginRealization();
    benchmark::DoNotOptimize(Stream);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RealizationCursor_Begin);

} // namespace

BENCHMARK_MAIN();
