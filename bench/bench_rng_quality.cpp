//===- bench/bench_rng_quality.cpp - Statistical quality table ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.4 claims the generator was "verified ... using rigorous statistical
// testing". This bench regenerates that evidence as a table: battery
// p-values for rnd128 (from the sequence head and from a deep hierarchy
// stream) against the modern baselines and the two negative controls
// (RANDU and the low bits of the r=40 LCG). PASS at alpha = 1e-4.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Baselines.h"
#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/statest/Tests.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

using namespace parmonc;

namespace {

/// The historical misuse baseline: low 16 bits of the r=40 LCG.
class LowBitsOfLcg40 final : public RandomSource {
public:
  double nextUniform() override {
    return (double(Generator.nextRaw().low() & 0xffffu) + 0.5) / 65536.0;
  }
  uint64_t nextBits64() override { return Generator.nextRaw().low() << 48; }
  const char *name() const override { return "lcg40-lowbits"; }

private:
  LcgPow2 Generator = LcgPow2::makeClassic40();
};

std::unique_ptr<RandomSource> makeDeepLcg128() {
  StreamHierarchy Hierarchy{LeapTable()};
  return std::make_unique<Lcg128>(Hierarchy.makeStream({9, 77777, 123456}));
}

} // namespace

int main() {
  constexpr int64_t Sample = 1 << 20;
  constexpr double Alpha = 1e-4;

  struct Row {
    const char *Label;
    std::function<std::unique_ptr<RandomSource>()> Make;
  };
  const std::vector<Row> Generators = {
      {"lcg128 (rnd128)", [] { return std::make_unique<Lcg128>(); }},
      {"lcg128 deep stream", [] { return makeDeepLcg128(); }},
      {"lcg40 top bits",
       [] {
         return std::make_unique<LcgPow2>(LcgPow2::makeClassic40());
       }},
      {"splitmix64", [] { return std::make_unique<SplitMix64>(7); }},
      {"xoshiro256**",
       [] { return std::make_unique<Xoshiro256StarStar>(7); }},
      {"philox4x32-10", [] { return std::make_unique<Philox4x32>(7); }},
      {"mcg64", [] { return std::make_unique<Mcg64>(7); }},
      {"randu (control)", [] { return std::make_unique<Randu>(1); }},
      {"lcg40 low bits (control)",
       [] { return std::make_unique<LowBitsOfLcg40>(); }},
  };

  std::printf("=== RNG statistical quality: battery p-values "
              "(n = 2^20 per test, PASS at alpha = %g) ===\n\n",
              Alpha);

  bool PrintedHeader = false;
  for (const Row &Generator : Generators) {
    std::unique_ptr<RandomSource> Source = Generator.Make();
    std::vector<TestResult> Results = runBattery(*Source, Sample);

    if (!PrintedHeader) {
      std::printf("%-26s", "generator");
      for (const TestResult &Result : Results)
        std::printf(" %-10.10s", Result.Name.c_str());
      std::printf(" %s\n", "verdict");
      PrintedHeader = true;
    }

    std::printf("%-26s", Generator.Label);
    for (const TestResult &Result : Results)
      std::printf(" %-10.2g", Result.PValue);
    std::printf(" %s\n", allPass(Results, Alpha) ? "PASS" : "FAIL");
  }

  std::printf("\n(rnd128 and the modern baselines must PASS; the two "
              "controls must FAIL — RANDU on the multidimensional tests, "
              "the LCG low bits on nearly everything)\n");
  return 0;
}
