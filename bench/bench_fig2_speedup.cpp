//===- bench/bench_fig2_speedup.cpp - Reproduce Fig. 2 (panels a-d) -------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's only evaluation figure: Tcomp(L) for
// M ∈ {1, 8, 16, 32, 64, 128, 256, 512} processors on the §4 diffusion
// problem, under the paper's "strictest conditions" — every processor
// sends its ~120 KB subtotal to processor 0 after *every* realization
// (τ ≈ 7.7 s per realization). Runs on the discrete-event virtual cluster
// (DESIGN.md §2 substitution for the SSCC machines), so the series are in
// virtual seconds calibrated to the paper's τ.
//
// Expected shape (the paper's claim): every series is linear in L, and
// for all L the speedup is in direct proportion to M.
//
//===----------------------------------------------------------------------===//

#include "parmonc/mpsim/VirtualCluster.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace parmonc;

namespace {

struct Panel {
  const char *Name;
  std::vector<int> ProcessorCounts;
  std::vector<int64_t> Volumes;
};

std::vector<double> seriesFor(int Processors,
                              const std::vector<int64_t> &Volumes) {
  VirtualClusterConfig Config; // paper calibration: tau=7.7s, 120KB, ...
  Config.ProcessorCount = Processors;
  Result<VirtualClusterResult> Outcome = runVirtualCluster(Config, Volumes);
  if (!Outcome) {
    std::fprintf(stderr, "virtual cluster failed: %s\n",
                 Outcome.status().toString().c_str());
    std::exit(1);
  }
  return Outcome.value().CompletionSeconds;
}

} // namespace

int main() {
  // The four panels of Fig. 2 with the paper's axis ranges.
  const std::vector<Panel> Panels = {
      {"a", {1, 8}, {200, 400, 600, 800, 1000}},
      {"b", {8, 16, 32}, {1500, 3000, 4500, 6000, 7500}},
      {"c", {32, 64, 128}, {5000, 10000, 15000, 20000, 25000}},
      {"d", {128, 256, 512}, {15000, 30000, 45000, 60000, 75000}},
  };

  std::printf("=== Fig. 2: Tcomp(L) in virtual seconds, tau = 7.7 s, "
              "send-per-realization, 120 KB messages ===\n");

  // Cache series that appear in several places (e.g. the speedup summary).
  std::map<std::pair<int, int64_t>, double> TimeAt;

  for (const Panel &ThisPanel : Panels) {
    std::printf("\n--- panel %s ---\n%-8s", ThisPanel.Name, "L");
    for (int Processors : ThisPanel.ProcessorCounts)
      std::printf(" M=%-9d", Processors);
    std::printf("\n");

    std::vector<std::vector<double>> Columns;
    for (int Processors : ThisPanel.ProcessorCounts) {
      Columns.push_back(seriesFor(Processors, ThisPanel.Volumes));
      for (size_t Index = 0; Index < ThisPanel.Volumes.size(); ++Index)
        TimeAt[{Processors, ThisPanel.Volumes[Index]}] =
            Columns.back()[Index];
    }

    for (size_t Row = 0; Row < ThisPanel.Volumes.size(); ++Row) {
      std::printf("%-8lld", (long long)ThisPanel.Volumes[Row]);
      for (const std::vector<double> &Column : Columns)
        std::printf(" %-11.1f", Column[Row]);
      std::printf("\n");
    }
  }

  // §2.2 claim: speedup ∝ M for all L. Compare every M against M=1 at a
  // common volume (L = 1000, interpolating nothing: rerun each M).
  std::printf("\n=== speedup summary at L = 1000 (vs M = 1) ===\n");
  std::printf("%-6s %-12s %-10s %-12s\n", "M", "Tcomp(s)", "speedup",
              "efficiency");
  const std::vector<int64_t> CommonVolume{1000};
  const double Baseline = seriesFor(1, CommonVolume)[0];
  for (int Processors : {1, 8, 16, 32, 64, 128, 256, 512}) {
    const double Time = seriesFor(Processors, CommonVolume)[0];
    const double Speedup = Baseline / Time;
    std::printf("%-6d %-12.1f %-10.2f %-12.3f\n", Processors, Time, Speedup,
                Speedup / Processors);
  }

  // Ablation: the paper's strictest conditions (send after every
  // realization) vs batched sends. If the strict mode cost anything, the
  // paper's design argument would need the batching escape hatch — it
  // does not.
  std::printf("\n=== perpass ablation at M = 128, L = 20000 ===\n");
  std::printf("%-22s %-12s %-12s %-14s\n", "realizations/send",
              "Tcomp(s)", "messages", "collector busy");
  for (int64_t PerSend : {int64_t(1), int64_t(10), int64_t(100)}) {
    VirtualClusterConfig Config;
    Config.ProcessorCount = 128;
    Config.RealizationsPerSend = PerSend;
    Result<VirtualClusterResult> Outcome =
        runVirtualCluster(Config, {20000});
    if (!Outcome) {
      std::fprintf(stderr, "ablation failed: %s\n",
                   Outcome.status().toString().c_str());
      return 1;
    }
    std::printf("%-22lld %-12.1f %-12lld %-14.3f\n",
                (long long)PerSend,
                Outcome.value().CompletionSeconds[0],
                (long long)Outcome.value().MessagesProcessed,
                Outcome.value().CollectorBusyFraction);
  }

  // Ablation: heterogeneous processors (§2.2's "different performances")
  // absorb into proportional volumes with no load balancing.
  std::printf("\n=== heterogeneity ablation at L = 6000 ===\n");
  {
    VirtualClusterConfig Mixed;
    Mixed.ProcessorCount = 8;
    Mixed.RealizationJitter = 0.0;
    Mixed.SpeedFactors = {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0};
    Result<VirtualClusterResult> Outcome =
        runVirtualCluster(Mixed, {6000});
    if (Outcome) {
      std::printf("4 fast + 4 half-speed processors: Tcomp = %.1f s "
                  "(equals %.2f fast-processor equivalents)\n",
                  Outcome.value().CompletionSeconds[0],
                  6000.0 * 7.7 / Outcome.value().CompletionSeconds[0]);
      std::printf("per-worker volumes:");
      for (int64_t Volume : Outcome.value().PerWorkerVolumes)
        std::printf(" %lld", (long long)Volume);
      std::printf("\n");
    }
  }

  // Paper cross-check: the M=1 series must land near L * 7.7 s.
  std::printf("\n=== calibration check ===\n");
  std::printf("M=1, L=1000: Tcomp = %.1f s (paper: ~7700 s, tau*L = %.1f)\n",
              TimeAt[{1, 1000}], 7.7 * 1000);
  std::printf("M=8, L=1000: Tcomp = %.1f s (paper panel a: ~960 s)\n",
              TimeAt[{8, 1000}]);
  std::printf("M=128, L=75000: Tcomp = %.1f s (paper panel d: ~4500 s)\n",
              TimeAt[{128, 75000}]);
  return 0;
}
