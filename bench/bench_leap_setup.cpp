//===- bench/bench_leap_setup.cpp - Leap / stream setup cost --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.4/§3.5 ablation: the stream hierarchy is practical only because
// computing A(n) = A^n (mod 2^128) is O(log n) 128-bit multiplies and
// per-realization leaping is a single multiply. This bench measures
// A(2^k) computation across the exponent range, full LeapTable and
// hierarchy initialization, and initialNumber() for deep coordinates.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/StreamHierarchy.h"

#include "benchmark/benchmark.h"

namespace {

using namespace parmonc;

void BM_PowMod_LeapMultiplier(benchmark::State &State) {
  const unsigned Exponent = unsigned(State.range(0));
  const UInt128 Base = Lcg128::defaultMultiplier();
  for (auto _ : State) {
    UInt128 Leap =
        UInt128::powModPow2(Base, UInt128::powerOfTwo(Exponent), 128);
    benchmark::DoNotOptimize(Leap);
  }
}
BENCHMARK(BM_PowMod_LeapMultiplier)
    ->Arg(10)
    ->Arg(43)
    ->Arg(64)
    ->Arg(98)
    ->Arg(115);

void BM_LeapTable_Construct(benchmark::State &State) {
  for (auto _ : State) {
    LeapTable Table;
    benchmark::DoNotOptimize(Table);
  }
}
BENCHMARK(BM_LeapTable_Construct);

void BM_Hierarchy_InitialNumber(benchmark::State &State) {
  StreamHierarchy Hierarchy{LeapTable()};
  StreamCoordinates Where{900, 130000, (uint64_t(1) << 54)};
  for (auto _ : State) {
    UInt128 Initial = Hierarchy.initialNumber(Where);
    benchmark::DoNotOptimize(Initial);
  }
}
BENCHMARK(BM_Hierarchy_InitialNumber);

void BM_Cursor_BeginRealization(benchmark::State &State) {
  StreamHierarchy Hierarchy{LeapTable()};
  RealizationCursor Cursor(Hierarchy, {0, 0, 0});
  for (auto _ : State) {
    Lcg128 Stream = Cursor.beginRealization();
    benchmark::DoNotOptimize(Stream);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Cursor_BeginRealization);

// The naive alternative the leap replaces: stepping the generator. Even
// 2^20 sequential steps dwarf one powmod; 2^43 would take hours.
void BM_SequentialStepping(benchmark::State &State) {
  const int64_t Steps = State.range(0);
  Lcg128 Generator;
  for (auto _ : State) {
    for (int64_t Step = 0; Step < Steps; ++Step)
      benchmark::DoNotOptimize(Generator.nextRaw());
  }
  State.SetItemsProcessed(State.iterations() * Steps);
}
BENCHMARK(BM_SequentialStepping)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

} // namespace

BENCHMARK_MAIN();
