//===- bench/bench_thread_scaling.cpp - Physical strong scaling -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The laptop-scale physical validation of Fig. 2's shape: the real engine
// (ThreadEngine, real threads, real wall clock) runs the §4 diffusion
// workload with a mesh scaled so one realization costs milliseconds, for
// M ∈ {1, 2, 4, 8} — send-per-realization, exactly like the paper's test.
// The speedup must stay near-linear while M does not exceed the physical
// cores; this validates that the engine itself (not just the virtual
// model) has negligible exchange overhead.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"
#include "parmonc/sde/EulerMaruyama.h"

#include <cstdio>
#include <filesystem>
#include <thread>

using namespace parmonc;

namespace {

constexpr double Mesh = 0.02;      // ~5000 Euler steps per realization
constexpr int64_t Volume = 192;    // divisible by 1, 2, 4, 8

void diffusionRealization(RandomSource &Source, double *Out) {
  PaperDiffusionProblem::simulateRealization(Source, Mesh, Out);
}

} // namespace

int main() {
  const std::string WorkDir =
      (std::filesystem::temp_directory_path() / "parmonc_thread_scaling")
          .string();
  std::filesystem::remove_all(WorkDir);
  std::filesystem::create_directories(WorkDir);

  const unsigned Cores = std::thread::hardware_concurrency();
  std::printf("=== physical strong scaling: %lld diffusion realizations "
              "(mesh h=%g), send-per-realization ===\n",
              (long long)Volume, Mesh);
  std::printf("hardware threads available: %u\n\n", Cores);
  std::printf("%-6s %-12s %-12s %-10s %-12s %-14s\n", "M", "Tcomp(s)",
              "tau(s)", "speedup", "efficiency", "volumes l_m");

  double Baseline = 0.0;
  for (int Processors : {1, 2, 4, 8}) {
    RunConfig Config;
    Config.Rows = PaperDiffusionProblem::OutputCount;
    Config.Columns = PaperDiffusionProblem::Dimension;
    Config.MaxSampleVolume = Volume;
    Config.ProcessorCount = Processors;
    Config.WorkDir = WorkDir;
    Config.PassPeriodNanos = 0;             // paper's strictest conditions
    Config.AveragePeriodNanos = 250'000'000;

    Result<RunReport> Outcome =
        runSimulation(diffusionRealization, Config);
    if (!Outcome) {
      std::fprintf(stderr, "run failed: %s\n",
                   Outcome.status().toString().c_str());
      return 1;
    }
    const RunReport &Report = Outcome.value();
    if (Processors == 1)
      Baseline = Report.ElapsedSeconds;
    const double Speedup = Baseline / Report.ElapsedSeconds;

    std::printf("%-6d %-12.3f %-12.4f %-10.2f %-12.3f", Processors,
                Report.ElapsedSeconds, Report.MeanRealizationSeconds,
                Speedup, Speedup / Processors);
    for (int64_t PerRank : Report.PerProcessorVolumes)
      std::printf(" %lld", (long long)PerRank);
    std::printf("\n");
  }

  std::printf("\n(expect near-linear speedup up to the physical core "
              "count; beyond it, threads share cores and efficiency "
              "drops — that is the hardware, not the algorithm)\n");
  std::filesystem::remove_all(WorkDir);
  return 0;
}
