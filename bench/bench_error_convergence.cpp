//===- bench/bench_error_convergence.cpp - ε ~ 3σ L^-1/2 (§2.1) -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.1 ablation: the reported absolute error must track the theoretical
// 3 σ L^-1/2 law, and the λ = 0.997 interval must actually cover the true
// expectation ~99.7 % of the time. Demonstrated on two problems with
// known answers: the U(0,1) mean and the π dart estimator.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/stats/EstimatorMatrix.h"

#include <cmath>
#include <cstdio>

using namespace parmonc;

namespace {

void sweepProblem(const char *Label, double TrueMean, double TrueSigma,
                  double (*Draw)(RandomSource &)) {
  std::printf("\n--- %s (E = %.6f, sigma = %.4f) ---\n", Label, TrueMean,
              TrueSigma);
  std::printf("%-10s %-14s %-14s %-12s %-10s\n", "L", "measured eps",
              "theory 3s/rtL", "ratio", "|bias|/eps");

  StreamHierarchy Hierarchy{LeapTable()};
  for (int64_t Volume : {1000, 4000, 16000, 64000, 256000, 1024000}) {
    Lcg128 Stream = Hierarchy.makeStream({3, 0, 0});
    EstimatorMatrix Estimate(1, 1);
    for (int64_t Draw_ = 0; Draw_ < Volume; ++Draw_) {
      const double Value = Draw(Stream);
      Estimate.accumulate(&Value);
    }
    const EntryStatistics Stats = Estimate.entryStatistics(0, 0);
    const double Theory = 3.0 * TrueSigma / std::sqrt(double(Volume));
    std::printf("%-10lld %-14.6f %-14.6f %-12.3f %-10.3f\n",
                (long long)Volume, Stats.AbsoluteError, Theory,
                Stats.AbsoluteError / Theory,
                std::fabs(Stats.Mean - TrueMean) / Stats.AbsoluteError);
  }
}

double drawUniform(RandomSource &Source) { return Source.nextUniform(); }

double drawPi(RandomSource &Source) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  return X * X + Y * Y <= 1.0 ? 4.0 : 0.0;
}

} // namespace

int main() {
  std::printf("=== error-estimator convergence: reported eps vs the "
              "3 sigma L^-1/2 law ===\n");

  sweepProblem("U(0,1) mean", 0.5, std::sqrt(1.0 / 12.0), drawUniform);
  // Var(pi dart) = 16 p (1-p) with p = pi/4.
  const double PiProbability = M_PI / 4.0;
  sweepProblem("pi dart estimator", M_PI,
               std::sqrt(16.0 * PiProbability * (1.0 - PiProbability)),
               drawPi);

  // Coverage: over many disjoint streams, the 3-sigma interval must
  // contain the truth in ~99.7% of experiments.
  std::printf("\n--- interval coverage at lambda = 0.997 ---\n");
  StreamHierarchy Hierarchy{LeapTable()};
  const int Experiments = 500;
  int Covered = 0;
  for (int Experiment = 0; Experiment < Experiments; ++Experiment) {
    Lcg128 Stream = Hierarchy.makeStream({4, uint64_t(Experiment), 0});
    EstimatorMatrix Estimate(1, 1);
    for (int Draw_ = 0; Draw_ < 4000; ++Draw_) {
      const double Value = drawPi(Stream);
      Estimate.accumulate(&Value);
    }
    const EntryStatistics Stats = Estimate.entryStatistics(0, 0);
    Covered += std::fabs(Stats.Mean - M_PI) <= Stats.AbsoluteError;
  }
  std::printf("covered %d / %d experiments = %.1f%% (theory 99.7%%)\n",
              Covered, Experiments, 100.0 * Covered / Experiments);
  return 0;
}
