//===- bench/bench_stats_merge.cpp - Collector averaging cost -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.2 ablation: the parallelization is optimal because the collector's
// eq. (5) averaging is negligible against τ ≈ seconds. This bench pins
// the numbers: merge cost vs matrix size (the paper's problem is 2000
// entries ≈ the 120 KB message), accumulate cost per realization, full
// snapshot encode/decode, and derived-matrix computation.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/ResultsStore.h"
#include "parmonc/stats/EstimatorMatrix.h"

#include "benchmark/benchmark.h"

#include <vector>

namespace {

using namespace parmonc;

EstimatorMatrix makeFilled(size_t Entries) {
  EstimatorMatrix Matrix(Entries, 1);
  std::vector<double> Realization(Entries);
  for (size_t Index = 0; Index < Entries; ++Index)
    Realization[Index] = double(Index) * 0.001;
  Matrix.accumulate(Realization);
  return Matrix;
}

void BM_Merge(benchmark::State &State) {
  const size_t Entries = size_t(State.range(0));
  EstimatorMatrix Target = makeFilled(Entries);
  const EstimatorMatrix Source = makeFilled(Entries);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Target.merge(Source));
  }
  State.SetBytesProcessed(State.iterations() * int64_t(Entries) * 16);
}
// 100 .. 1e6 entries; the paper's 1000x2 problem is the 2000 case.
BENCHMARK(BM_Merge)->Arg(100)->Arg(2000)->Arg(100000)->Arg(1000000);

void BM_Accumulate(benchmark::State &State) {
  const size_t Entries = size_t(State.range(0));
  EstimatorMatrix Matrix(Entries, 1);
  std::vector<double> Realization(Entries, 1.5);
  for (auto _ : State)
    Matrix.accumulate(Realization.data());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Accumulate)->Arg(1)->Arg(2000)->Arg(100000);

void BM_Snapshot_Encode(benchmark::State &State) {
  MomentSnapshot Snapshot;
  Snapshot.Moments = makeFilled(size_t(State.range(0)));
  for (auto _ : State) {
    std::vector<uint8_t> Bytes = Snapshot.toBytes();
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_Snapshot_Encode)->Arg(2000)->Arg(100000);

void BM_Snapshot_Decode(benchmark::State &State) {
  MomentSnapshot Snapshot;
  Snapshot.Moments = makeFilled(size_t(State.range(0)));
  const std::vector<uint8_t> Bytes = Snapshot.toBytes();
  for (auto _ : State) {
    Result<MomentSnapshot> Decoded = MomentSnapshot::fromBytes(Bytes);
    benchmark::DoNotOptimize(Decoded);
  }
}
BENCHMARK(BM_Snapshot_Decode)->Arg(2000)->Arg(100000);

void BM_DerivedMatrices(benchmark::State &State) {
  const size_t Entries = size_t(State.range(0));
  EstimatorMatrix Matrix = makeFilled(Entries);
  std::vector<double> Means, Abs, Rel, Var;
  for (auto _ : State) {
    Matrix.computeMatrices(&Means, &Abs, &Rel, &Var);
    benchmark::DoNotOptimize(Means);
  }
}
BENCHMARK(BM_DerivedMatrices)->Arg(2000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
