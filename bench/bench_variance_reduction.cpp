//===- bench/bench_variance_reduction.cpp - VR ablation (§2.2) ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// §2.2: computational cost is C(ζ) = τ_ζ · Var ζ, and the required sample
// volume is proportional to Var ζ. Parallelism attacks τ; this bench
// quantifies the orthogonal lever — variance reduction — on problems with
// known answers, reporting the per-sample variance and the implied sample
// volume needed for a fixed ±1e-3 absolute error at 3 sigma.
//
//===----------------------------------------------------------------------===//

#include "parmonc/vr/VarianceReduction.h"

#include "parmonc/rng/Lcg128.h"
#include "parmonc/stats/RunningStat.h"

#include <cmath>
#include <cstdio>

using namespace parmonc;

namespace {

double expRealization(RandomSource &Source) {
  return std::exp(Source.nextUniform());
}

double piRealization(RandomSource &Source) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  return X * X + Y * Y <= 1.0 ? 4.0 : 0.0;
}

ValueWithControl expWithControl(RandomSource &Source) {
  const double U = Source.nextUniform();
  return {std::exp(U), U};
}

ValueWithControl piWithControl(RandomSource &Source) {
  const double X = Source.nextUniform();
  const double Y = Source.nextUniform();
  // Control: X² + Y² with E = 2/3, strongly correlated with the indicator.
  return {X * X + Y * Y <= 1.0 ? 4.0 : 0.0, X * X + Y * Y};
}

void printRow(const char *Method, const VrEstimate &Estimate,
              double Exact, double PerSampleVariance) {
  // Sample volume for eps = 3 sigma/sqrt(L) = 1e-3.
  const double NeededVolume =
      9.0 * PerSampleVariance / (1e-3 * 1e-3);
  std::printf("  %-18s %-12.6f %-10.2e %-12.3e %-12.3g\n", Method,
              Estimate.Mean, std::fabs(Estimate.Mean - Exact),
              PerSampleVariance, NeededVolume);
}

} // namespace

int main() {
  std::printf("=== variance reduction ablation: per-sample variance and "
              "the L needed for eps = 1e-3 (3 sigma) ===\n");

  {
    std::printf("\n--- E[e^U] = e - 1 = 1.718282 ---\n");
    std::printf("  %-18s %-12s %-10s %-12s %-12s\n", "method", "estimate",
                "|bias|", "var/sample", "L for 1e-3");
    const double Exact = std::exp(1.0) - 1.0;
    Lcg128 S1, S2, S3, S4;
    VrEstimate Plain = estimatePlain(expRealization, S1, 40000);
    printRow("plain", Plain, Exact, Plain.Variance * 2.0);
    VrEstimate Anti = estimateAntithetic(expRealization, S2, 40000);
    printRow("antithetic", Anti, Exact, Anti.Variance * 2.0);
    VrEstimate Control =
        estimateWithControlVariate(expWithControl, S3, 80000, 0.5);
    printRow("control variate", Control, Exact, Control.Variance);
    VrEstimate Stratified = estimateStratified(expRealization, S4, 64, 1250);
    printRow("stratified (64)", Stratified, Exact, Stratified.Variance);
  }

  {
    std::printf("\n--- pi via darts = 3.141593 ---\n");
    std::printf("  %-18s %-12s %-10s %-12s %-12s\n", "method", "estimate",
                "|bias|", "var/sample", "L for 1e-3");
    Lcg128 S1, S2, S3;
    VrEstimate Plain = estimatePlain(piRealization, S1, 100000);
    printRow("plain", Plain, M_PI, Plain.Variance * 2.0);
    VrEstimate Anti = estimateAntithetic(piRealization, S2, 100000);
    printRow("antithetic", Anti, M_PI, Anti.Variance * 2.0);
    VrEstimate Control =
        estimateWithControlVariate(piWithControl, S3, 200000, 2.0 / 3.0);
    printRow("control variate", Control, M_PI, Control.Variance);
  }

  {
    std::printf("\n--- rare event P(U > 0.999) = 1e-3, importance "
                "sampling ---\n");
    std::printf("  %-18s %-12s %-12s %-12s\n", "method", "estimate",
                "var/sample", "L for 10%% rel");
    Lcg128 S1, S2;
    // Plain indicator.
    {
      RunningStat Stats;
      for (int Draw = 0; Draw < 2000000; ++Draw)
        Stats.add(S1.nextUniform() > 0.999 ? 1.0 : 0.0);
      const double Needed =
          9.0 * Stats.variance() / (1e-4 * 1e-4 * 100.0);
      std::printf("  %-18s %-12.6f %-12.3e %-12.3g\n", "plain",
                  Stats.mean(), Stats.variance(), Needed);
    }
    // Tilted toward 1 with theta = 7.
    {
      TiltedUniform Tilt(7.0);
      RunningStat Stats;
      for (int Draw = 0; Draw < 2000000; ++Draw) {
        double Ratio = 0.0;
        const double X = Tilt.sample(S2, &Ratio);
        Stats.add(X > 0.999 ? Ratio : 0.0);
      }
      const double Needed =
          9.0 * Stats.variance() / (1e-4 * 1e-4 * 100.0);
      std::printf("  %-18s %-12.6f %-12.3e %-12.3g\n",
                  "tilted theta=7", Stats.mean(), Stats.variance(),
                  Needed);
    }
  }

  std::printf("\n(read: variance reduction multiplies the effective "
              "processor count of §2.2 — a 60x variance cut equals 60 "
              "more processors)\n");
  return 0;
}
