//===- bench/bench_obs.cpp - Observability hot-path micro-costs -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The instrumentation budget: every per-realization metric update must be
// a handful of relaxed atomics so permanently-on metrics keep the engine's
// exchange overhead negligible (§2.2). These micro-benchmarks pin down the
// cost of each primitive — counter add, latency record, trace span — and
// of a full registry snapshot, so a regression in any of them shows up
// before it shows up in bench_thread_scaling.
//
//===----------------------------------------------------------------------===//

#include "parmonc/obs/Metrics.h"
#include "parmonc/obs/Stopwatch.h"
#include "parmonc/obs/Trace.h"
#include "parmonc/support/Clock.h"

#include <benchmark/benchmark.h>

using namespace parmonc;

static void BM_CounterAdd(benchmark::State &State) {
  obs::MetricsRegistry Registry;
  obs::Counter &Events = Registry.counter("bench.events");
  for (auto _ : State)
    Events.add();
  benchmark::DoNotOptimize(Events.value());
}
BENCHMARK(BM_CounterAdd);

static void BM_GaugeSet(benchmark::State &State) {
  obs::MetricsRegistry Registry;
  obs::Gauge &Level = Registry.gauge("bench.level");
  double Value = 0.0;
  for (auto _ : State)
    Level.set(Value += 1.0);
  benchmark::DoNotOptimize(Level.value());
}
BENCHMARK(BM_GaugeSet);

static void BM_LatencyRecord(benchmark::State &State) {
  obs::MetricsRegistry Registry;
  obs::LatencyHistogram &Latency = Registry.latency("bench.latency");
  int64_t Nanos = 1;
  for (auto _ : State) {
    Latency.recordNanos(Nanos);
    Nanos = (Nanos * 2) & 0xffffff; // walk the buckets
  }
  benchmark::DoNotOptimize(Latency.count());
}
BENCHMARK(BM_LatencyRecord);

static void BM_TraceCompleteSpan(benchmark::State &State) {
  ManualClock Frozen;
  obs::TraceWriter Trace(&Frozen);
  int64_t Ts = 0;
  for (auto _ : State) {
    Trace.completeSpan("bench.span", 0, Ts, Ts + 100);
    Ts += 100;
  }
  benchmark::DoNotOptimize(Trace.eventCount());
}
BENCHMARK(BM_TraceCompleteSpan);

static void BM_ScopedSpanDisabled(benchmark::State &State) {
  // The engine's common case: no trace sink attached. Must be ~free.
  WallClock Time;
  for (auto _ : State) {
    obs::ScopedSpan Span(Time, "bench.noop", 0, /*Trace=*/nullptr);
    benchmark::DoNotOptimize(&Span);
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

static void BM_RegistrySnapshot(benchmark::State &State) {
  obs::MetricsRegistry Registry;
  for (int Index = 0; Index < 32; ++Index) {
    Registry.counter("bench.counter" + std::to_string(Index)).add(Index);
    Registry.latency("bench.latency" + std::to_string(Index))
        .recordNanos(Index * 1000);
  }
  for (auto _ : State) {
    obs::MetricsSnapshot Snapshot = Registry.snapshot();
    benchmark::DoNotOptimize(Snapshot.Counters.size());
  }
}
BENCHMARK(BM_RegistrySnapshot);

BENCHMARK_MAIN();
