//===- support/Contract.cpp - Contract violation reporting ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Contract.h"

#include <cstdio>
#include <cstdlib>

namespace parmonc {
namespace detail {

void contractFailure(const char *File, int Line, const char *Condition,
                     const char *Message) {
  std::fprintf(stderr, "%s:%d: contract violated: %s (%s)\n", File, Line,
               Condition, Message);
  std::fflush(stderr);
  std::abort();
}

} // namespace detail
} // namespace parmonc
