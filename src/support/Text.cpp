//===- support/Text.cpp - Small text/formatting helpers ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Text.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <unistd.h>

namespace parmonc {

std::string formatScientific(double Value, int Precision) {
  assert(Precision >= 1 && Precision <= 17 && "unsupported precision");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*e", Precision, Value);
  return Buffer;
}

std::string formatFixed(double Value, int Decimals) {
  assert(Decimals >= 0 && Decimals <= 17 && "unsupported decimal count");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

Result<double> parseDouble(std::string_view Text) {
  std::string Copy(trim(Text));
  if (Copy.empty())
    return parseError("empty number");
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Copy.c_str(), &End);
  if (End != Copy.c_str() + Copy.size())
    return parseError("trailing characters in number '" + Copy + "'");
  if (errno == ERANGE && (Value == HUGE_VAL || Value == -HUGE_VAL))
    return parseError("number out of double range '" + Copy + "'");
  return Value;
}

Result<int64_t> parseInt64(std::string_view Text) {
  std::string Copy(trim(Text));
  if (Copy.empty())
    return parseError("empty integer");
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Copy.c_str(), &End, 10);
  if (End != Copy.c_str() + Copy.size())
    return parseError("trailing characters in integer '" + Copy + "'");
  if (errno == ERANGE)
    return parseError("integer out of int64 range '" + Copy + "'");
  return int64_t(Value);
}

Result<uint64_t> parseUInt64(std::string_view Text) {
  std::string Copy(trim(Text));
  if (Copy.empty())
    return parseError("empty integer");
  if (Copy[0] == '-')
    return parseError("negative value for unsigned integer '" + Copy + "'");
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Copy.c_str(), &End, 10);
  if (End != Copy.c_str() + Copy.size())
    return parseError("trailing characters in integer '" + Copy + "'");
  if (errno == ERANGE)
    return parseError("integer out of uint64 range '" + Copy + "'");
  return uint64_t(Value);
}

std::string_view trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string_view> splitWhitespace(std::string_view Text) {
  std::vector<std::string_view> Fields;
  size_t Index = 0;
  while (Index < Text.size()) {
    while (Index < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Index])))
      ++Index;
    size_t Begin = Index;
    while (Index < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[Index])))
      ++Index;
    if (Index > Begin)
      Fields.push_back(Text.substr(Begin, Index - Begin));
  }
  return Fields;
}

std::vector<std::string_view> splitChar(std::string_view Text, char Separator) {
  std::vector<std::string_view> Fields;
  size_t Begin = 0;
  for (size_t Index = 0; Index <= Text.size(); ++Index) {
    if (Index == Text.size() || Text[Index] == Separator) {
      Fields.push_back(Text.substr(Begin, Index - Begin));
      Begin = Index + 1;
    }
  }
  return Fields;
}

bool startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

Result<std::string> readFileToString(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return ioError("cannot open '" + Path + "' for reading");
  std::ostringstream Contents;
  Contents << Stream.rdbuf();
  if (Stream.bad())
    return ioError("read failure on '" + Path + "'");
  return Contents.str();
}

Status writeFileAtomic(const std::string &Path, std::string_view Contents) {
  // Crash-safe sequence: write a sibling temp file, fsync it, rename over
  // the destination, then fsync the directory so the rename itself is
  // durable. A crash at any point leaves either the old file or the new
  // one — never a torn mixture (checkpoint resumption depends on this).
  const std::string TempPath = Path + ".tmp";
  const int FileDescriptor =
      ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FileDescriptor < 0)
    return ioError("cannot open '" + TempPath +
                   "' for writing: " + std::strerror(errno));
  size_t Written = 0;
  while (Written < Contents.size()) {
    const ssize_t Count = ::write(FileDescriptor, Contents.data() + Written,
                                  Contents.size() - Written);
    if (Count < 0) {
      if (errno == EINTR)
        continue;
      const std::string Reason = std::strerror(errno);
      ::close(FileDescriptor);
      return ioError("write failure on '" + TempPath + "': " + Reason);
    }
    Written += size_t(Count);
  }
  if (::fsync(FileDescriptor) != 0) {
    const std::string Reason = std::strerror(errno);
    ::close(FileDescriptor);
    return ioError("fsync failure on '" + TempPath + "': " + Reason);
  }
  if (::close(FileDescriptor) != 0)
    return ioError("close failure on '" + TempPath +
                   "': " + std::strerror(errno));
  std::error_code Error;
  std::filesystem::rename(TempPath, Path, Error);
  if (Error)
    return ioError("cannot rename '" + TempPath + "' to '" + Path +
                   "': " + Error.message());
  // Directory fsync: best effort (some filesystems reject O_RDONLY dirs);
  // the rename above is already atomic with respect to readers.
  const std::string Parent =
      std::filesystem::path(Path).parent_path().string();
  (void)fsyncDirectory(Parent.empty() ? "." : Parent);
  return Status::ok();
}

Status fsyncFile(const std::string &Path) {
#if defined(_WIN32)
  // No POSIX fsync; rely on the OS write-back. The checkpoint commit
  // protocol stays correct (rename ordering), only power-loss durability
  // weakens — documented in DESIGN.md.
  (void)Path;
  return Status::ok();
#else
  const int FileDescriptor = ::open(Path.c_str(), O_RDONLY);
  if (FileDescriptor < 0)
    return ioError("cannot open '" + Path +
                   "' for fsync: " + std::strerror(errno));
  Status Synced = Status::ok();
  if (::fsync(FileDescriptor) != 0)
    Synced = ioError("fsync failure on '" + Path +
                     "': " + std::strerror(errno));
  (void)::close(FileDescriptor);
  return Synced;
#endif
}

Status fsyncDirectory(const std::string &Path) {
#if defined(_WIN32)
  (void)Path;
  return Status::ok();
#else
  const int DirDescriptor = ::open(Path.c_str(), O_RDONLY);
  if (DirDescriptor < 0)
    return ioError("cannot open directory '" + Path +
                   "' for fsync: " + std::strerror(errno));
  // Some filesystems reject fsync on directory descriptors; the open
  // succeeding is the signal the directory exists, so treat that fsync
  // failure as best-effort rather than a caller-visible error.
  (void)::fsync(DirDescriptor);
  (void)::close(DirDescriptor);
  return Status::ok();
#endif
}

Status appendLineDurable(const std::string &Path, std::string_view Line) {
  const bool Existed = fileExists(Path);
  const int FileDescriptor =
      ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (FileDescriptor < 0)
    return ioError("cannot open '" + Path +
                   "' for append: " + std::strerror(errno));
  size_t Written = 0;
  while (Written < Line.size()) {
    const ssize_t Count = ::write(FileDescriptor, Line.data() + Written,
                                  Line.size() - Written);
    if (Count < 0) {
      if (errno == EINTR)
        continue;
      const std::string Reason = std::strerror(errno);
      (void)::close(FileDescriptor);
      return ioError("append failure on '" + Path + "': " + Reason);
    }
    Written += size_t(Count);
  }
#if !defined(_WIN32)
  if (::fsync(FileDescriptor) != 0) {
    const std::string Reason = std::strerror(errno);
    (void)::close(FileDescriptor);
    return ioError("fsync failure on '" + Path + "': " + Reason);
  }
#endif
  if (::close(FileDescriptor) != 0)
    return ioError("close failure on '" + Path +
                   "': " + std::strerror(errno));
  if (!Existed) {
    const std::string Parent =
        std::filesystem::path(Path).parent_path().string();
    (void)fsyncDirectory(Parent.empty() ? "." : Parent);
  }
  return Status::ok();
}

Status createDirectories(const std::string &Path) {
  std::error_code Error;
  std::filesystem::create_directories(Path, Error);
  if (Error)
    return ioError("cannot create directory '" + Path +
                   "': " + Error.message());
  return Status::ok();
}

bool fileExists(const std::string &Path) {
  std::error_code Error;
  return std::filesystem::is_regular_file(Path, Error);
}

} // namespace parmonc
