//===- support/Checksum.cpp - CRC32 file seals ---------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Checksum.h"

#include "parmonc/support/Text.h"

#include <array>
#include <cstdio>

namespace parmonc {

namespace {

constexpr std::string_view SealPrefix = "#%parmonc-seal v1 crc32 ";

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t Index = 0; Index < 256; ++Index) {
    uint32_t Value = Index;
    for (int Bit = 0; Bit < 8; ++Bit)
      Value = (Value >> 1) ^ ((Value & 1u) ? 0xEDB88320u : 0u);
    Table[Index] = Value;
  }
  return Table;
}

} // namespace

uint32_t crc32(std::string_view Bytes) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t Value = 0xFFFFFFFFu;
  for (char Byte : Bytes)
    Value = (Value >> 8) ^ Table[(Value ^ uint8_t(Byte)) & 0xFFu];
  return Value ^ 0xFFFFFFFFu;
}

std::string sealFileContents(std::string_view Body) {
  char Header[64];
  std::snprintf(Header, sizeof(Header),
                "#%%parmonc-seal v1 crc32 %08x bytes %zu\n", crc32(Body),
                Body.size());
  return std::string(Header) + std::string(Body);
}

bool hasFileSeal(std::string_view Contents) {
  return startsWith(Contents, SealPrefix);
}

Result<std::string> unsealFileContents(const std::string &Path,
                                       std::string_view Contents) {
  if (!hasFileSeal(Contents))
    return parseError("'" + Path + "' has no PARMONC seal line");
  const size_t LineEnd = Contents.find('\n');
  if (LineEnd == std::string_view::npos)
    return ioError("'" + Path + "' is truncated inside its seal line");
  const std::string_view SealLine = Contents.substr(0, LineEnd);
  const std::string_view Rest = SealLine.substr(SealPrefix.size());
  // Rest is "<hex8> bytes <n>".
  const auto Fields = splitWhitespace(Rest);
  if (Fields.size() != 3 || Fields[1] != "bytes" || Fields[0].size() != 8)
    return parseError("'" + Path + "' has a malformed seal line");
  uint32_t DeclaredCrc = 0;
  for (char Digit : Fields[0]) {
    uint32_t Nibble = 0;
    if (Digit >= '0' && Digit <= '9')
      Nibble = uint32_t(Digit - '0');
    else if (Digit >= 'a' && Digit <= 'f')
      Nibble = uint32_t(Digit - 'a' + 10);
    else
      return parseError("'" + Path + "' has a malformed seal checksum");
    DeclaredCrc = (DeclaredCrc << 4) | Nibble;
  }
  Result<uint64_t> DeclaredBytes = parseUInt64(Fields[2]);
  if (!DeclaredBytes)
    return parseError("'" + Path + "' has a malformed seal byte count");

  const std::string_view Body = Contents.substr(LineEnd + 1);
  if (Body.size() != DeclaredBytes.value())
    return ioError("'" + Path + "' is a short read: seal declares " +
                   std::to_string(DeclaredBytes.value()) +
                   " body bytes, found " + std::to_string(Body.size()));
  if (crc32(Body) != DeclaredCrc)
    return ioError("'" + Path +
                   "' failed its CRC32 check: the file is corrupted");
  return std::string(Body);
}

} // namespace parmonc
