//===- support/Status.cpp - Error handling without exceptions ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/support/Status.h"

namespace parmonc {

const char *statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid-argument";
  case StatusCode::NotFound:
    return "not-found";
  case StatusCode::IoError:
    return "io-error";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::FailedPrecondition:
    return "failed-precondition";
  case StatusCode::OutOfRange:
    return "out-of-range";
  case StatusCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::string Status::toString() const {
  if (isOk())
    return "ok";
  std::string Text = statusCodeName(Code);
  if (!Message.empty()) {
    Text += ": ";
    Text += Message;
  }
  return Text;
}

Status invalidArgument(std::string Message) {
  return Status(StatusCode::InvalidArgument, std::move(Message));
}
Status notFound(std::string Message) {
  return Status(StatusCode::NotFound, std::move(Message));
}
Status ioError(std::string Message) {
  return Status(StatusCode::IoError, std::move(Message));
}
Status parseError(std::string Message) {
  return Status(StatusCode::ParseError, std::move(Message));
}
Status failedPrecondition(std::string Message) {
  return Status(StatusCode::FailedPrecondition, std::move(Message));
}
Status outOfRange(std::string Message) {
  return Status(StatusCode::OutOfRange, std::move(Message));
}
Status internalError(std::string Message) {
  return Status(StatusCode::Internal, std::move(Message));
}

} // namespace parmonc
