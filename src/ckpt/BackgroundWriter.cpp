//===- ckpt/BackgroundWriter.cpp - Non-blocking commit queue --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/BackgroundWriter.h"

#include "parmonc/mpsim/Serialize.h"
#include "parmonc/support/Contract.h"

namespace parmonc {
namespace ckpt {

namespace {

/// Tags of the owner<->writer protocol.
enum WriterTag : int {
  TagCommit = 1,     ///< owner -> writer: one serialized CommitRequest
  TagStop = 2,       ///< owner -> writer: finish queued work and exit
  TagBarrier = 3,    ///< owner -> writer: echo the token when reached
  TagResult = 4,     ///< writer -> owner: one commit's outcome
  TagBarrierAck = 5, ///< writer -> owner: barrier echo
};

std::vector<uint8_t> encodeRequest(
    const CheckpointStore::CommitRequest &Request) {
  ByteWriter Writer;
  Writer.writeI64(Request.Generation);
  Writer.writeU64(Request.SequenceNumber);
  Writer.writeI64(Request.RankCount);
  Writer.writeI64(Request.KeepShards);
  Writer.writeI64(Request.BaseVolume);
  Writer.writeString(Request.BaseBody);
  Writer.writeU64(Request.Shards.size());
  for (const ShardEntry &Entry : Request.Shards) {
    Writer.writeI64(Entry.Rank);
    Writer.writeString(Entry.File);
    Writer.writeU32(Entry.Crc);
    Writer.writeU64(Entry.Bytes);
    Writer.writeI64(Entry.Volume);
  }
  return Writer.takeBytes();
}

Result<CheckpointStore::CommitRequest> decodeRequest(
    const std::vector<uint8_t> &Payload) {
  ByteReader Reader(Payload);
  CheckpointStore::CommitRequest Request;
  Result<int64_t> Generation = Reader.readI64();
  Result<uint64_t> SequenceNumber = Reader.readU64();
  Result<int64_t> RankCount = Reader.readI64();
  Result<int64_t> KeepShards = Reader.readI64();
  Result<int64_t> BaseVolume = Reader.readI64();
  if (!Generation || !SequenceNumber || !RankCount || !KeepShards ||
      !BaseVolume)
    return parseError("truncated commit-request header");
  Request.Generation = Generation.value();
  Request.SequenceNumber = SequenceNumber.value();
  Request.RankCount = int(RankCount.value());
  Request.KeepShards = int(KeepShards.value());
  Request.BaseVolume = BaseVolume.value();
  Result<std::string> BaseBody = Reader.readString();
  if (!BaseBody)
    return BaseBody.status();
  Request.BaseBody = std::move(BaseBody).value();
  Result<uint64_t> ShardCount = Reader.readU64();
  if (!ShardCount)
    return ShardCount.status();
  for (uint64_t Index = 0; Index < ShardCount.value(); ++Index) {
    ShardEntry Entry;
    Result<int64_t> Rank = Reader.readI64();
    if (!Rank)
      return Rank.status();
    Entry.Rank = int(Rank.value());
    Result<std::string> File = Reader.readString();
    if (!File)
      return File.status();
    Entry.File = std::move(File).value();
    Result<uint32_t> Crc = Reader.readU32();
    Result<uint64_t> Bytes = Reader.readU64();
    Result<int64_t> Volume = Reader.readI64();
    if (!Crc || !Bytes || !Volume)
      return parseError("truncated commit-request shard entry");
    Entry.Crc = Crc.value();
    Entry.Bytes = Bytes.value();
    Entry.Volume = Volume.value();
    Request.Shards.push_back(std::move(Entry));
  }
  if (!Reader.atEnd())
    return parseError("trailing bytes in commit request");
  return Request;
}

std::vector<uint8_t> encodeResult(int64_t Generation,
                                  const Status &Outcome) {
  ByteWriter Writer;
  Writer.writeI64(Generation);
  Writer.writeU64(uint64_t(Outcome.code()));
  Writer.writeString(Outcome.isOk() ? std::string() : Outcome.message());
  return Writer.takeBytes();
}

} // namespace

BackgroundWriter::BackgroundWriter(const CheckpointStore &Store,
                                   int QueueDepth,
                                   obs::MetricsRegistry *Registry)
    : Store(Store), QueueDepth(QueueDepth < 1 ? 1 : QueueDepth),
      Metrics(Registry) {
  Writer = std::make_unique<WorkerGroup>(1, [this](int) { writerLoop(); });
}

BackgroundWriter::~BackgroundWriter() { (void)stop(); }

void BackgroundWriter::writerLoop() {
  for (;;) {
    std::optional<Message> Item = Work.popWait(-1, /*TimeoutNanos=*/
                                               100'000'000);
    if (!Item) {
      if (Work.isClosed())
        break;
      continue;
    }
    // abandon() closes the work mailbox with requests still queued: a
    // simulated process death. Discard them — exactly the state a killed
    // collector leaves behind.
    if (Work.isClosed())
      break;
    if (Item->Tag == TagStop)
      break;
    if (Item->Tag == TagBarrier) {
      Done.push(Message{0, TagBarrierAck, Item->Payload});
      continue;
    }
    Result<CheckpointStore::CommitRequest> Request =
        decodeRequest(Item->Payload);
    // Same-process round trip: a decode failure here is a bug, not an IO
    // hazard.
    PARMONC_ASSERT(Request.isOk(), "commit-request decode failed");
    const Status Outcome = Store.commit(Request.value());
    if (Metrics) {
      if (Outcome)
        Metrics->counter("ckpt.async_commits").add();
      else
        Metrics->counter("ckpt.async_commit_failures").add();
    }
    Done.push(
        Message{0, TagResult, encodeResult(Request.value().Generation,
                                           Outcome)});
  }
  // Wake any drain() blocked on the result mailbox after this exit.
  Done.close();
}

void BackgroundWriter::recordResult(const Message &Response) {
  ByteReader Reader(Response.Payload);
  Result<int64_t> Generation = Reader.readI64();
  Result<uint64_t> Code = Reader.readU64();
  Result<std::string> Text = Reader.readString();
  PARMONC_ASSERT(Generation.isOk() && Code.isOk() && Text.isOk(),
                 "commit-result decode failed");
  if (StatusCode(Code.value()) == StatusCode::Ok) {
    ++Committed;
    return;
  }
  if (FirstError.isOk())
    FirstError = Status(StatusCode(Code.value()),
                        "background checkpoint commit (generation " +
                            std::to_string(Generation.value()) +
                            "): " + Text.value());
}

void BackgroundWriter::drainResponses() {
  while (std::optional<Message> Response = Done.tryPop(TagResult))
    recordResult(*Response);
}

bool BackgroundWriter::enqueue(CheckpointStore::CommitRequest Request) {
  PARMONC_ASSERT(!Stopped, "enqueue on a stopped background writer");
  drainResponses();
  bool DidCoalesce = false;
  while (Work.pendingCount() >= size_t(QueueDepth)) {
    // Newest wins: retire the oldest still-pending request. Cumulative
    // snapshots make this lossless for correctness, lossy for history.
    if (!Work.tryPop(TagCommit))
      break; // only control messages pending
    DidCoalesce = true;
    ++Coalesced;
    if (Metrics)
      Metrics->counter("ckpt.coalesced_saves").add();
  }
  Work.push(Message{0, TagCommit, encodeRequest(Request)});
  if (Metrics)
    Metrics->gauge("ckpt.queue_depth").set(double(Work.pendingCount()));
  return !DidCoalesce;
}

Status BackgroundWriter::drain() {
  if (Stopped) {
    drainResponses();
    return FirstError;
  }
  ++BarrierToken;
  ByteWriter Token;
  Token.writeU64(BarrierToken);
  Work.push(Message{0, TagBarrier, Token.takeBytes()});
  for (;;) {
    std::optional<Message> Response =
        Done.popWait(-1, /*TimeoutNanos=*/250'000'000);
    if (!Response) {
      if (Done.isClosed())
        break; // writer exited underneath us (stop raced a drain)
      continue;
    }
    if (Response->Tag == TagResult) {
      recordResult(*Response);
      continue;
    }
    ByteReader Reader(Response->Payload);
    Result<uint64_t> Echoed = Reader.readU64();
    if (Echoed && Echoed.value() == BarrierToken)
      break;
  }
  return FirstError;
}

Status BackgroundWriter::stop() {
  if (Stopped)
    return FirstError;
  Work.push(Message{0, TagStop, {}});
  Writer->join();
  Stopped = true;
  drainResponses();
  return FirstError;
}

void BackgroundWriter::abandon() {
  if (Stopped)
    return;
  Work.close();
  Writer->join();
  Stopped = true;
  // Results of commits that finished before the close are deliberately
  // not folded into FirstError: the simulated death discards them.
}

} // namespace ckpt
} // namespace parmonc
