//===- ckpt/CheckpointStore.cpp - Sharded checkpoint store ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/CheckpointStore.h"

#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

namespace parmonc {
namespace ckpt {

CheckpointStore::CheckpointStore(std::string RootDir)
    : Root(std::move(RootDir)) {}

std::string CheckpointStore::stagingDir() const { return Root + "/staging"; }
std::string CheckpointStore::shardsDir() const { return Root + "/shards"; }
std::string CheckpointStore::manifestPath() const {
  return Root + "/manifest.dat";
}
std::string CheckpointStore::prevManifestPath() const {
  return manifestPath() + ".prev";
}

std::string CheckpointStore::shardFileName(int Rank,
                                           uint64_t SequenceNumber,
                                           int64_t WriteIndex) {
  return "rank" + std::to_string(Rank) + "_s" +
         std::to_string(SequenceNumber) + "_k" +
         std::to_string(WriteIndex) + ".dat";
}

std::string CheckpointStore::baseFileName(uint64_t SequenceNumber,
                                          int64_t Generation) {
  return "base_s" + std::to_string(SequenceNumber) + "_g" +
         std::to_string(Generation) + ".dat";
}

void CheckpointStore::setWriteInterceptor(WriteInterceptor Hook) {
  Interceptor = std::move(Hook);
}

void CheckpointStore::attachMetrics(obs::MetricsRegistry *Registry) {
  Metrics = Registry;
}

Status CheckpointStore::prepareDirectories() const {
  if (Status Created = createDirectories(stagingDir()); !Created)
    return Created;
  return createDirectories(shardsDir());
}

Result<ShardEntry>
CheckpointStore::publishSealed(const std::string &FileName,
                               std::string_view Body, int Rank,
                               int64_t Volume) const {
  std::string Sealed = sealFileContents(Body);
  const std::string FinalPath = shardsDir() + "/" + FileName;

  ShardEntry Entry;
  Entry.Rank = Rank;
  Entry.File = FileName;
  // CRC and size of the *intended* bytes: the interceptor below models a
  // disk damaging them afterwards, which the restore must then detect by
  // exactly this mismatch.
  Entry.Crc = crc32(Sealed);
  Entry.Bytes = Sealed.size();
  Entry.Volume = Volume;

  if (Interceptor)
    if (std::optional<std::string> Damaged = Interceptor(FinalPath, Sealed))
      Sealed = std::move(*Damaged);

  // Stage, fsync, publish. The staged file lives in its own directory so
  // a reader enumerating shards/ never sees a partially written file even
  // on filesystems where rename-over is the only atomic primitive.
  const std::string StagedPath = stagingDir() + "/" + FileName;
  if (Status Written = writeFileAtomic(StagedPath, Sealed); !Written)
    return Written;
  std::error_code Error;
  std::filesystem::rename(StagedPath, FinalPath, Error);
  if (Error)
    return ioError("cannot publish shard '" + StagedPath + "' to '" +
                   FinalPath + "': " + Error.message());
  if (Metrics) {
    Metrics->counter("ckpt.shards_written").add();
    Metrics->counter("ckpt.shard_bytes").add(int64_t(Entry.Bytes));
  }
  return Entry;
}

Result<ShardEntry> CheckpointStore::writeShard(int Rank,
                                               uint64_t SequenceNumber,
                                               int64_t WriteIndex,
                                               std::string_view Body,
                                               int64_t Volume) const {
  if (Rank < 0)
    return invalidArgument("shard rank must be non-negative");
  return publishSealed(shardFileName(Rank, SequenceNumber, WriteIndex),
                       Body, Rank, Volume);
}

Status CheckpointStore::commit(const CommitRequest &Request) const {
  if (Request.RankCount < 1)
    return invalidArgument("commit needs a positive rank count");
  if (Request.KeepShards < 1)
    return invalidArgument("commit keep-shards must be >= 1");
  for (const ShardEntry &Entry : Request.Shards)
    if (Entry.Rank < 0 || Entry.Rank >= Request.RankCount)
      return invalidArgument("commit shard rank outside [0, ranks)");

  if (Status Prepared = prepareDirectories(); !Prepared)
    return Prepared;

  // Phase 1: the generation's own base shard joins the rank-published
  // shards, then one directory fsync makes every publish rename durable —
  // including renames done by forked rank processes; fsync of a directory
  // covers all its entries regardless of which process created them.
  Result<ShardEntry> Base = publishSealed(
      baseFileName(Request.SequenceNumber, Request.Generation),
      Request.BaseBody, /*Rank=*/-1, Request.BaseVolume);
  if (!Base) {
    if (Metrics)
      Metrics->counter("ckpt.commit_failures").add();
    return Base.status();
  }
  if (Status Synced = fsyncDirectory(shardsDir()); !Synced) {
    if (Metrics)
      Metrics->counter("ckpt.commit_failures").add();
    return Synced;
  }

  Manifest Record;
  Record.Generation = Request.Generation;
  Record.SequenceNumber = Request.SequenceNumber;
  Record.RankCount = Request.RankCount;
  Record.Base = Base.value();
  Record.Shards = Request.Shards;

  // Phase 2: rotate the previous commit record aside, then rename the new
  // sealed manifest into place. A crash between the two renames leaves
  // only .prev — which restoreWithFallback() reads — and a crash during
  // the manifest write leaves .prev plus a rejected (torn) primary.
  if (fileExists(manifestPath())) {
    std::error_code RotateError;
    std::filesystem::rename(manifestPath(), prevManifestPath(),
                            RotateError);
    if (RotateError) {
      if (Metrics)
        Metrics->counter("ckpt.commit_failures").add();
      return ioError("cannot rotate '" + manifestPath() +
                     "': " + RotateError.message());
    }
    // Make the rotation durable before the new manifest can land: power
    // loss must never leave a new manifest without its fallback.
    (void)fsyncDirectory(Root);
  }
  std::string Sealed = sealFileContents(Record.toFileContents());
  if (Interceptor)
    if (std::optional<std::string> Damaged =
            Interceptor(manifestPath(), Sealed))
      Sealed = std::move(*Damaged);
  if (Status Written = writeFileAtomic(manifestPath(), Sealed); !Written) {
    if (Metrics)
      Metrics->counter("ckpt.commit_failures").add();
    return Written;
  }

  if (Metrics)
    Metrics->counter("ckpt.commits").add();
  pruneCommitted(Record, Request.KeepShards);
  return Status::ok();
}

Result<Manifest>
CheckpointStore::readManifest(const std::string &Path) const {
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Contents.status();
  Result<std::string> Body = unsealFileContents(Path, Contents.value());
  if (!Body)
    return Body.status();
  return Manifest::fromFileContents(Path, Body.value());
}

/// Reads one referenced shard, enforcing the manifest's byte count and
/// CRC against the on-disk bytes before unsealing.
static Result<std::string> loadShardBody(const std::string &ShardsDir,
                                         const ShardEntry &Entry) {
  const std::string Path = ShardsDir + "/" + Entry.File;
  if (!fileExists(Path))
    return notFound("checkpoint shard '" + Path + "' is missing");
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Contents.status();
  if (Contents.value().size() != Entry.Bytes)
    return ioError("checkpoint shard '" + Path + "' holds " +
                   std::to_string(Contents.value().size()) +
                   " bytes, manifest recorded " +
                   std::to_string(Entry.Bytes));
  if (crc32(Contents.value()) != Entry.Crc)
    return ioError("checkpoint shard '" + Path +
                   "' fails its manifest CRC");
  return unsealFileContents(Path, Contents.value());
}

Result<CheckpointStore::RestoredGeneration>
CheckpointStore::restoreGeneration(const std::string &ManifestPath) const {
  Result<Manifest> Parsed = readManifest(ManifestPath);
  if (!Parsed)
    return Parsed.status();

  RestoredGeneration Restored;
  Restored.Source = std::move(Parsed).value();
  Result<std::string> Base =
      loadShardBody(shardsDir(), Restored.Source.Base);
  if (!Base)
    return Base.status();
  Restored.BaseBody = std::move(Base).value();
  for (const ShardEntry &Entry : Restored.Source.Shards) {
    Result<std::string> Body = loadShardBody(shardsDir(), Entry);
    if (!Body)
      return Body.status();
    RestoredShard Shard;
    Shard.Rank = Entry.Rank;
    Shard.Body = std::move(Body).value();
    Shard.Volume = Entry.Volume;
    Restored.Shards.push_back(std::move(Shard));
  }
  return Restored;
}

Result<CheckpointStore::RestoredGeneration>
CheckpointStore::restoreWithFallback() const {
  Result<RestoredGeneration> Primary = restoreGeneration(manifestPath());
  if (Primary) {
    if (Metrics)
      Metrics->counter("ckpt.restores").add();
    return Primary;
  }
  if (fileExists(prevManifestPath())) {
    Result<RestoredGeneration> Previous =
        restoreGeneration(prevManifestPath());
    if (Previous) {
      RestoredGeneration Restored = std::move(Previous).value();
      Restored.FromBackup = true;
      Restored.PrimaryError = Primary.status().toString();
      if (Metrics) {
        Metrics->counter("ckpt.restores").add();
        Metrics->counter("ckpt.restore_fallbacks").add();
      }
      return Restored;
    }
  }
  // Both generations unreadable: the primary's error is the useful one.
  return Primary.status();
}

bool CheckpointStore::hasAnyManifest() const {
  return fileExists(manifestPath()) || fileExists(prevManifestPath());
}

Status CheckpointStore::removeAll() const {
  std::error_code Error;
  std::filesystem::remove_all(Root, Error);
  if (Error)
    return ioError("cannot remove checkpoint tree '" + Root +
                   "': " + Error.message());
  return Status::ok();
}

/// "rank<r>_s<seq>_k<K>.dat" / "base_s<seq>_g<G>.dat" → (key, index).
/// The key identifies the rotation group (one per rank+sequence, one per
/// base+sequence); the index orders files within the group.
static bool parseShardName(const std::string &Name, std::string &Key,
                           int64_t &Index) {
  if (Name.size() < 5 || Name.substr(Name.size() - 4) != ".dat")
    return false;
  const std::string Stem = Name.substr(0, Name.size() - 4);
  const size_t Split = Stem.rfind(startsWith(Stem, "base_") ? "_g" : "_k");
  if (Split == std::string::npos)
    return false;
  Result<int64_t> Parsed = parseInt64(Stem.substr(Split + 2));
  if (!Parsed || Parsed.value() < 0)
    return false;
  Key = Stem.substr(0, Split);
  Index = Parsed.value();
  return true;
}

void CheckpointStore::pruneCommitted(const Manifest &Current,
                                     int KeepShards) const {
  // Files referenced by either live manifest are immortal; beyond those,
  // each rotation group keeps its KeepShards newest write indices. The
  // .prev manifest's references are read best-effort — an unreadable
  // .prev simply protects nothing extra.
  std::set<std::string> Referenced;
  Referenced.insert(Current.Base.File);
  for (const ShardEntry &Entry : Current.Shards)
    Referenced.insert(Entry.File);
  if (fileExists(prevManifestPath()))
    if (Result<Manifest> Previous = readManifest(prevManifestPath())) {
      Referenced.insert(Previous.value().Base.File);
      for (const ShardEntry &Entry : Previous.value().Shards)
        Referenced.insert(Entry.File);
    }

  struct GroupFile {
    int64_t Index;
    std::string Name;
  };
  std::map<std::string, std::vector<GroupFile>> Groups;
  std::error_code Error;
  std::filesystem::directory_iterator Directory(shardsDir(), Error);
  if (Error)
    return;
  for (const auto &DirEntry : Directory) {
    const std::string Name = DirEntry.path().filename().string();
    std::string Key;
    int64_t Index = 0;
    if (!parseShardName(Name, Key, Index))
      continue;
    Groups[Key].push_back(GroupFile{Index, Name});
  }

  int64_t Pruned = 0;
  for (auto &[Key, Files] : Groups) {
    std::sort(Files.begin(), Files.end(),
              [](const GroupFile &A, const GroupFile &B) {
                return A.Index > B.Index;
              });
    for (size_t Position = 0; Position < Files.size(); ++Position) {
      if (Position < size_t(KeepShards))
        continue;
      if (Referenced.count(Files[Position].Name))
        continue;
      std::error_code RemoveError;
      if (std::filesystem::remove(shardsDir() + "/" + Files[Position].Name,
                                  RemoveError))
        ++Pruned;
    }
  }
  if (Metrics && Pruned > 0)
    Metrics->counter("ckpt.pruned_files").add(Pruned);
}

} // namespace ckpt
} // namespace parmonc
