//===- ckpt/Manifest.cpp - Checkpoint generation manifest -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/ckpt/Manifest.h"

#include "parmonc/support/Text.h"

#include <algorithm>

namespace parmonc {
namespace ckpt {

/// Lower-case hex, fixed 8 digits — the same spelling the seal line uses,
/// so the two CRC encodings in a checkpoint tree read identically.
static std::string formatCrcHex(uint32_t Crc) {
  static const char Digits[] = "0123456789abcdef";
  std::string Text(8, '0');
  for (int Nibble = 0; Nibble < 8; ++Nibble)
    Text[size_t(7 - Nibble)] = Digits[(Crc >> (4 * Nibble)) & 0xF];
  return Text;
}

static Result<uint32_t> parseCrcHex(std::string_view Text) {
  if (Text.size() != 8)
    return parseError("manifest crc must be 8 hex digits");
  uint32_t Value = 0;
  for (char Digit : Text) {
    uint32_t Nibble;
    if (Digit >= '0' && Digit <= '9')
      Nibble = uint32_t(Digit - '0');
    else if (Digit >= 'a' && Digit <= 'f')
      Nibble = uint32_t(Digit - 'a' + 10);
    else
      return parseError("manifest crc holds a non-hex digit");
    Value = (Value << 4) | Nibble;
  }
  return Value;
}

/// A shard filename must be a bare name inside the shards directory;
/// anything resembling a path component escape is rejected outright.
static bool isSafeShardFileName(std::string_view Name) {
  if (Name.empty() || Name == "." || Name == "..")
    return false;
  return Name.find('/') == std::string_view::npos &&
         Name.find('\\') == std::string_view::npos;
}

static std::string formatEntryFields(const ShardEntry &Entry) {
  return Entry.File + " crc " + formatCrcHex(Entry.Crc) + " bytes " +
         std::to_string(Entry.Bytes) + " volume " +
         std::to_string(Entry.Volume);
}

/// Parses "<file> crc <hex8> bytes <n> volume <v>" (fields [Start..end)).
static Result<ShardEntry>
parseEntryFields(const std::vector<std::string_view> &Fields, size_t Start) {
  if (Fields.size() != Start + 7 || Fields[Start + 1] != "crc" ||
      Fields[Start + 3] != "bytes" || Fields[Start + 5] != "volume")
    return parseError("malformed manifest shard entry");
  ShardEntry Entry;
  if (!isSafeShardFileName(Fields[Start]))
    return parseError("manifest shard filename is not a bare file name");
  Entry.File = std::string(Fields[Start]);
  Result<uint32_t> Crc = parseCrcHex(Fields[Start + 2]);
  if (!Crc)
    return Crc.status();
  Entry.Crc = Crc.value();
  Result<uint64_t> Bytes = parseUInt64(Fields[Start + 4]);
  if (!Bytes)
    return Bytes.status();
  Entry.Bytes = Bytes.value();
  Result<int64_t> Volume = parseInt64(Fields[Start + 6]);
  if (!Volume)
    return Volume.status();
  if (Volume.value() < 0)
    return parseError("manifest shard volume must be non-negative");
  Entry.Volume = Volume.value();
  return Entry;
}

std::string Manifest::toFileContents() const {
  std::vector<const ShardEntry *> Ordered;
  Ordered.reserve(Shards.size());
  for (const ShardEntry &Entry : Shards)
    Ordered.push_back(&Entry);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const ShardEntry *A, const ShardEntry *B) {
              return A->Rank < B->Rank;
            });

  std::string Text;
  Text += "# PARMONC checkpoint manifest: one sealed shard per rank\n";
  Text += "version 1\n";
  Text += "generation " + std::to_string(Generation) + "\n";
  Text += "seqnum " + std::to_string(SequenceNumber) + "\n";
  Text += "ranks " + std::to_string(RankCount) + "\n";
  Text += "shards " + std::to_string(Ordered.size()) + "\n";
  Text += "base " + formatEntryFields(Base) + "\n";
  for (const ShardEntry *Entry : Ordered)
    Text += "shard " + std::to_string(Entry->Rank) + " " +
            formatEntryFields(*Entry) + "\n";
  Text += "end\n";
  return Text;
}

Result<Manifest> Manifest::fromFileContents(const std::string &Path,
                                            std::string_view Contents) {
  Manifest Parsed;
  uint64_t DeclaredShards = 0;
  bool HaveVersion = false, HaveGeneration = false, HaveSeqnum = false,
       HaveRanks = false, HaveShardCount = false, HaveBase = false,
       HaveEnd = false;

  auto fail = [&](const std::string &Message) {
    return parseError("'" + Path + "': " + Message);
  };

  for (std::string_view Line : splitChar(Contents, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    if (HaveEnd)
      return fail("content after the end marker");
    auto Fields = splitWhitespace(Stripped);
    const std::string_view Key = Fields[0];
    if (Key == "version" && Fields.size() == 2) {
      if (HaveVersion)
        return fail("duplicate version directive");
      if (Fields[1] != "1")
        return fail("unsupported manifest version '" +
                    std::string(Fields[1]) + "'");
      HaveVersion = true;
    } else if (Key == "generation" && Fields.size() == 2) {
      if (HaveGeneration)
        return fail("duplicate generation directive");
      Result<int64_t> Value = parseInt64(Fields[1]);
      if (!Value || Value.value() < 0)
        return fail("bad generation number");
      Parsed.Generation = Value.value();
      HaveGeneration = true;
    } else if (Key == "seqnum" && Fields.size() == 2) {
      if (HaveSeqnum)
        return fail("duplicate seqnum directive");
      Result<uint64_t> Value = parseUInt64(Fields[1]);
      if (!Value)
        return fail("bad sequence number");
      Parsed.SequenceNumber = Value.value();
      HaveSeqnum = true;
    } else if (Key == "ranks" && Fields.size() == 2) {
      if (HaveRanks)
        return fail("duplicate ranks directive");
      Result<int64_t> Value = parseInt64(Fields[1]);
      if (!Value || Value.value() < 1 || Value.value() > (int64_t(1) << 30))
        return fail("bad rank count");
      Parsed.RankCount = int(Value.value());
      HaveRanks = true;
    } else if (Key == "shards" && Fields.size() == 2) {
      if (HaveShardCount)
        return fail("duplicate shards directive");
      Result<uint64_t> Value = parseUInt64(Fields[1]);
      if (!Value)
        return fail("bad shard count");
      DeclaredShards = Value.value();
      HaveShardCount = true;
    } else if (Key == "base") {
      if (HaveBase)
        return fail("duplicate base entry");
      Result<ShardEntry> Entry = parseEntryFields(Fields, 1);
      if (!Entry)
        return fail(Entry.status().message());
      Parsed.Base = std::move(Entry).value();
      Parsed.Base.Rank = -1;
      HaveBase = true;
    } else if (Key == "shard") {
      if (Fields.size() < 2)
        return fail("shard entry without a rank");
      if (!HaveRanks)
        return fail("shard entry before the ranks directive");
      Result<int64_t> Rank = parseInt64(Fields[1]);
      if (!Rank || Rank.value() < 0 || Rank.value() >= Parsed.RankCount)
        return fail("shard rank outside [0, ranks)");
      Result<ShardEntry> Entry = parseEntryFields(Fields, 2);
      if (!Entry)
        return fail(Entry.status().message());
      ShardEntry Shard = std::move(Entry).value();
      Shard.Rank = int(Rank.value());
      for (const ShardEntry &Existing : Parsed.Shards)
        if (Existing.Rank == Shard.Rank)
          return fail("duplicate shard entry for rank " +
                      std::to_string(Shard.Rank));
      Parsed.Shards.push_back(std::move(Shard));
    } else if (Key == "end" && Fields.size() == 1) {
      HaveEnd = true;
    } else {
      return fail("unknown manifest directive '" + std::string(Key) + "'");
    }
  }

  if (!HaveVersion || !HaveGeneration || !HaveSeqnum || !HaveRanks ||
      !HaveShardCount || !HaveBase)
    return fail("manifest is missing required directives");
  if (!HaveEnd)
    return fail("manifest is missing its end marker (torn write)");
  if (Parsed.Shards.size() != DeclaredShards)
    return fail("manifest lists " + std::to_string(Parsed.Shards.size()) +
                " shards but declares " + std::to_string(DeclaredShards));
  std::sort(Parsed.Shards.begin(), Parsed.Shards.end(),
            [](const ShardEntry &A, const ShardEntry &B) {
              return A.Rank < B.Rank;
            });
  return Parsed;
}

} // namespace ckpt
} // namespace parmonc
