//===- stats/HistogramEstimator.cpp - Density estimation -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/HistogramEstimator.h"

#include "parmonc/support/Text.h"

#include <cassert>
#include <cmath>

namespace parmonc {

HistogramEstimator::HistogramEstimator(double Low, double High,
                                       size_t BinCount)
    : Low(Low), High(High), Counts(BinCount, 0) {
  assert(Low < High && "empty histogram range");
  assert(BinCount >= 1 && "histogram needs at least one bin");
}

void HistogramEstimator::add(double Value) {
  ++Total;
  if (Value < Low) {
    ++Underflow;
    return;
  }
  if (Value >= High) {
    ++Overflow;
    return;
  }
  size_t Index =
      size_t((Value - Low) / (High - Low) * double(Counts.size()));
  if (Index >= Counts.size()) // floating-point edge
    Index = Counts.size() - 1;
  ++Counts[Index];
}

int64_t HistogramEstimator::countOf(size_t Index) const {
  assert(Index < Counts.size() && "bin index out of range");
  return Counts[Index];
}

double HistogramEstimator::binLeftEdge(size_t Index) const {
  assert(Index < Counts.size() && "bin index out of range");
  return Low + binWidth() * double(Index);
}

double HistogramEstimator::massOf(size_t Index) const {
  assert(Total > 0 && "mass of an empty histogram");
  return double(countOf(Index)) / double(Total);
}

double HistogramEstimator::densityOf(size_t Index) const {
  return massOf(Index) / binWidth();
}

double HistogramEstimator::massErrorOf(size_t Index,
                                       double ErrorMultiplier) const {
  assert(Total > 0 && "error of an empty histogram");
  const double Mass = massOf(Index);
  return ErrorMultiplier *
         std::sqrt(Mass * (1.0 - Mass) / double(Total));
}

Status HistogramEstimator::merge(const HistogramEstimator &Other) {
  if (Other.Low != Low || Other.High != High ||
      Other.Counts.size() != Counts.size())
    return invalidArgument(
        "cannot merge histograms with different geometry");
  for (size_t Index = 0; Index < Counts.size(); ++Index)
    Counts[Index] += Other.Counts[Index];
  Underflow += Other.Underflow;
  Overflow += Other.Overflow;
  Total += Other.Total;
  return Status::ok();
}

std::string HistogramEstimator::toFileContents() const {
  std::string Text;
  Text += "# PARMONC histogram\n";
  Text += "range " + formatScientific(Low) + " " + formatScientific(High) +
          "\n";
  Text += "bins " + std::to_string(Counts.size()) + "\n";
  Text += "underflow " + std::to_string(Underflow) + "\n";
  Text += "overflow " + std::to_string(Overflow) + "\n";
  Text += "counts";
  for (int64_t Count : Counts)
    Text += " " + std::to_string(Count);
  Text += "\n";
  return Text;
}

Result<HistogramEstimator> HistogramEstimator::fromFileContents(
    std::string_view Contents) {
  double Low = 0.0, High = 0.0;
  size_t BinCount = 0;
  int64_t Underflow = 0, Overflow = 0;
  std::vector<int64_t> Counts;
  bool HaveRange = false, HaveBins = false, HaveCounts = false;

  for (std::string_view Line : splitChar(Contents, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    auto Fields = splitWhitespace(Stripped);
    const std::string_view Key = Fields[0];
    if (Key == "range" && Fields.size() == 3) {
      Result<double> LowValue = parseDouble(Fields[1]);
      Result<double> HighValue = parseDouble(Fields[2]);
      if (!LowValue || !HighValue)
        return parseError("bad range line in histogram");
      Low = LowValue.value();
      High = HighValue.value();
      HaveRange = true;
    } else if (Key == "bins" && Fields.size() == 2) {
      Result<uint64_t> Value = parseUInt64(Fields[1]);
      if (!Value)
        return Value.status();
      BinCount = Value.value();
      HaveBins = true;
    } else if (Key == "underflow" && Fields.size() == 2) {
      Result<int64_t> Value = parseInt64(Fields[1]);
      if (!Value)
        return Value.status();
      Underflow = Value.value();
    } else if (Key == "overflow" && Fields.size() == 2) {
      Result<int64_t> Value = parseInt64(Fields[1]);
      if (!Value)
        return Value.status();
      Overflow = Value.value();
    } else if (Key == "counts") {
      for (size_t Index = 1; Index < Fields.size(); ++Index) {
        Result<int64_t> Value = parseInt64(Fields[Index]);
        if (!Value)
          return Value.status();
        if (Value.value() < 0)
          return parseError("negative histogram count");
        Counts.push_back(Value.value());
      }
      HaveCounts = true;
    } else {
      return parseError("unknown histogram directive '" + std::string(Key) +
                        "'");
    }
  }

  if (!HaveRange || !HaveBins || !HaveCounts)
    return parseError("histogram file is missing required entries");
  if (Low >= High)
    return parseError("histogram range is empty");
  if (Counts.size() != BinCount || BinCount == 0)
    return parseError("histogram count list does not match bin count");
  if (Underflow < 0 || Overflow < 0)
    return parseError("negative histogram side counts");

  HistogramEstimator Histogram(Low, High, BinCount);
  Histogram.Counts = std::move(Counts);
  Histogram.Underflow = Underflow;
  Histogram.Overflow = Overflow;
  Histogram.Total = Underflow + Overflow;
  for (int64_t Count : Histogram.Counts)
    Histogram.Total += Count;
  return Histogram;
}

double HistogramEstimator::cdfAt(double Value) const {
  assert(Total > 0 && "cdf of an empty histogram");
  if (Value < Low)
    return 0.0; // side mass below is indistinguishable; conservative 0
  int64_t Below = Underflow;
  for (size_t Index = 0; Index < Counts.size(); ++Index) {
    const double RightEdge = binLeftEdge(Index) + binWidth();
    if (Value >= RightEdge)
      Below += Counts[Index];
    else
      break;
  }
  if (Value >= High)
    Below += Overflow;
  return double(Below) / double(Total);
}

void HistogramEstimator::reset() {
  std::fill(Counts.begin(), Counts.end(), 0);
  Underflow = Overflow = Total = 0;
}

} // namespace parmonc
