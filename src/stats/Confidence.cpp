//===- stats/Confidence.cpp - Normal quantiles & intervals ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/Confidence.h"

#include <cassert>
#include <cmath>

namespace parmonc {

double normalCdf(double X) {
  // Φ(x) = erfc(-x/√2)/2; std::erfc is accurate in both tails.
  return 0.5 * std::erfc(-X / std::sqrt(2.0));
}

double normalQuantile(double Probability) {
  assert(Probability > 0.0 && Probability < 1.0 &&
         "quantile requires probability strictly inside (0,1)");

  // Acklam's rational approximation, three regions.
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double LowBreak = 0.02425;

  double Quantile;
  if (Probability < LowBreak) {
    double Q = std::sqrt(-2.0 * std::log(Probability));
    Quantile = (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
                C[5]) /
               ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  } else if (Probability <= 1.0 - LowBreak) {
    double Q = Probability - 0.5;
    double R = Q * Q;
    Quantile = (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
                A[5]) *
               Q /
               (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R +
                1.0);
  } else {
    double Q = std::sqrt(-2.0 * std::log(1.0 - Probability));
    Quantile = -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
                 C[5]) /
               ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }

  // One Halley refinement against the accurate CDF pushes the error from
  // ~1e-9 to ~1e-15 over the central region.
  double Error = normalCdf(Quantile) - Probability;
  double Density =
      std::exp(-0.5 * Quantile * Quantile) / std::sqrt(2.0 * M_PI);
  double Update = Error / Density;
  Quantile -= Update / (1.0 + Quantile * Update / 2.0);
  return Quantile;
}

double confidenceMultiplier(double Level) {
  assert(Level > 0.0 && Level < 1.0 && "confidence level must be in (0,1)");
  return normalQuantile(0.5 * (1.0 + Level));
}

ConfidenceInterval makeMeanInterval(double Mean, double StdDev,
                                    double SampleVolume, double Level) {
  assert(SampleVolume > 0.0 && "interval requires a positive sample volume");
  assert(StdDev >= 0.0 && "negative standard deviation");
  return {Mean, confidenceMultiplier(Level) * StdDev / std::sqrt(SampleVolume)};
}

} // namespace parmonc
