//===- stats/EstimatorMatrix.cpp - Matrix moment accumulation ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/stats/EstimatorMatrix.h"

#include "parmonc/support/Contract.h"

#include <cmath>
#include <limits>

namespace parmonc {

EstimatorMatrix::EstimatorMatrix(size_t Rows, size_t Columns)
    : Rows(Rows), Columns(Columns), SumValues(Rows * Columns, 0.0),
      SumSquares(Rows * Columns, 0.0) {
  PARMONC_ASSERT(Rows >= 1 && Columns >= 1,
                 "estimator matrix must be non-empty");
}

void EstimatorMatrix::accumulate(const double *Realization) {
  PARMONC_DCHECK(Realization, "null realization");
  const size_t Count = entryCount();
  for (size_t Index = 0; Index < Count; ++Index) {
    const double Value = Realization[Index];
    SumValues[Index] += Value;
    SumSquares[Index] += Value * Value;
  }
  ++Volume;
}

Status EstimatorMatrix::merge(const EstimatorMatrix &Other) {
  if (Other.Rows != Rows || Other.Columns != Columns)
    return invalidArgument(
        "cannot merge estimator matrices of different shapes (" +
        std::to_string(Rows) + "x" + std::to_string(Columns) + " vs " +
        std::to_string(Other.Rows) + "x" + std::to_string(Other.Columns) +
        ")");
  const size_t Count = entryCount();
  for (size_t Index = 0; Index < Count; ++Index) {
    SumValues[Index] += Other.SumValues[Index];
    SumSquares[Index] += Other.SumSquares[Index];
  }
  // Eq. (5) adds subtotals; a negative contribution means a snapshot was
  // corrupted upstream, and the merged average could silently go backwards.
  PARMONC_ASSERT(Other.Volume >= 0,
                 "merge contribution has negative sample volume");
  PARMONC_ASSERT(Volume + Other.Volume >= Volume,
                 "sample volume must stay monotone under the eq. (5) merge");
  Volume += Other.Volume;
  return Status::ok();
}

Result<EstimatorMatrix> EstimatorMatrix::fromRawSums(
    size_t Rows, size_t Columns, std::vector<double> ValueSums,
    std::vector<double> SquareSums, int64_t Volume) {
  if (Rows < 1 || Columns < 1)
    return invalidArgument("estimator matrix must be non-empty");
  if (ValueSums.size() != Rows * Columns ||
      SquareSums.size() != Rows * Columns)
    return invalidArgument("raw sum vectors do not match the matrix shape");
  if (Volume < 0)
    return invalidArgument("negative sample volume");
  for (size_t Index = 0; Index < SquareSums.size(); ++Index) {
    if (SquareSums[Index] < 0.0)
      return invalidArgument("negative square sum at entry " +
                             std::to_string(Index));
  }
  EstimatorMatrix Matrix(Rows, Columns);
  Matrix.SumValues = std::move(ValueSums);
  Matrix.SumSquares = std::move(SquareSums);
  Matrix.Volume = Volume;
  return Matrix;
}

EntryStatistics EstimatorMatrix::entryStatistics(
    size_t Row, size_t Column, double ErrorMultiplier) const {
  PARMONC_ASSERT(Row < Rows && Column < Columns,
                 "entry index out of range");
  PARMONC_ASSERT(Volume > 0,
                 "statistics require at least one realization");

  const size_t Index = Row * Columns + Column;
  const double VolumeAsDouble = double(Volume);

  EntryStatistics Stats;
  Stats.Mean = SumValues[Index] / VolumeAsDouble;
  // σ² = ξ̄ - ζ̄² (the paper's biased sample variance); clamp tiny negative
  // values produced by cancellation.
  const double SecondMoment = SumSquares[Index] / VolumeAsDouble;
  Stats.Variance = std::max(0.0, SecondMoment - Stats.Mean * Stats.Mean);
  Stats.AbsoluteError =
      ErrorMultiplier * std::sqrt(Stats.Variance / VolumeAsDouble);
  Stats.RelativeError =
      Stats.Mean != 0.0
          ? Stats.AbsoluteError / std::fabs(Stats.Mean) * 100.0
          : std::numeric_limits<double>::infinity();
  return Stats;
}

void EstimatorMatrix::computeMatrices(std::vector<double> *Means,
                                      std::vector<double> *AbsoluteErrors,
                                      std::vector<double> *RelativeErrors,
                                      std::vector<double> *Variances,
                                      double ErrorMultiplier) const {
  const size_t Count = entryCount();
  if (Means)
    Means->resize(Count);
  if (AbsoluteErrors)
    AbsoluteErrors->resize(Count);
  if (RelativeErrors)
    RelativeErrors->resize(Count);
  if (Variances)
    Variances->resize(Count);

  for (size_t Row = 0; Row < Rows; ++Row) {
    for (size_t Column = 0; Column < Columns; ++Column) {
      const size_t Index = Row * Columns + Column;
      const EntryStatistics Stats =
          entryStatistics(Row, Column, ErrorMultiplier);
      if (Means)
        (*Means)[Index] = Stats.Mean;
      if (AbsoluteErrors)
        (*AbsoluteErrors)[Index] = Stats.AbsoluteError;
      if (RelativeErrors)
        (*RelativeErrors)[Index] = Stats.RelativeError;
      if (Variances)
        (*Variances)[Index] = Stats.Variance;
    }
  }
}

ErrorBounds EstimatorMatrix::errorBounds(double ErrorMultiplier) const {
  ErrorBounds Bounds;
  for (size_t Row = 0; Row < Rows; ++Row) {
    for (size_t Column = 0; Column < Columns; ++Column) {
      const EntryStatistics Stats =
          entryStatistics(Row, Column, ErrorMultiplier);
      Bounds.MaxAbsoluteError =
          std::max(Bounds.MaxAbsoluteError, Stats.AbsoluteError);
      if (std::isfinite(Stats.RelativeError))
        Bounds.MaxRelativeError =
            std::max(Bounds.MaxRelativeError, Stats.RelativeError);
      Bounds.MaxVariance = std::max(Bounds.MaxVariance, Stats.Variance);
    }
  }
  return Bounds;
}

void EstimatorMatrix::reset() {
  Volume = 0;
  std::fill(SumValues.begin(), SumValues.end(), 0.0);
  std::fill(SumSquares.begin(), SumSquares.end(), 0.0);
}

} // namespace parmonc
