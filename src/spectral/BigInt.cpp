//===- spectral/BigInt.cpp - Arbitrary-precision signed integers ---------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/spectral/BigInt.h"

#include <algorithm>

namespace parmonc {

BigInt::BigInt(int64_t Value) {
  if (Value == 0)
    return;
  Negative = Value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  const uint64_t Magnitude =
      Negative ? ~uint64_t(Value) + 1 : uint64_t(Value);
  Limbs.push_back(Magnitude);
}

BigInt BigInt::fromUInt128(UInt128 Value) {
  BigInt Result;
  if (Value.low() != 0 || Value.high() != 0) {
    Result.Limbs.push_back(Value.low());
    if (Value.high() != 0)
      Result.Limbs.push_back(Value.high());
  }
  return Result;
}

void BigInt::trim() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Negative = false;
}

unsigned BigInt::bitWidth() const {
  if (Limbs.empty())
    return 0;
  uint64_t Top = Limbs.back();
  unsigned TopBits = 0;
  while (Top != 0) {
    ++TopBits;
    Top >>= 1;
  }
  return unsigned(Limbs.size() - 1) * 64 + TopBits;
}

BigInt BigInt::operator-() const {
  BigInt Result = *this;
  if (!Result.isZero())
    Result.Negative = !Result.Negative;
  return Result;
}

BigInt BigInt::abs() const {
  BigInt Result = *this;
  Result.Negative = false;
  return Result;
}

int BigInt::compareMagnitude(const BigInt &A, const BigInt &B) {
  if (A.Limbs.size() != B.Limbs.size())
    return A.Limbs.size() < B.Limbs.size() ? -1 : 1;
  for (size_t Index = A.Limbs.size(); Index-- > 0;) {
    if (A.Limbs[Index] != B.Limbs[Index])
      return A.Limbs[Index] < B.Limbs[Index] ? -1 : 1;
  }
  return 0;
}

int BigInt::compare(const BigInt &A, const BigInt &B) {
  if (A.Negative != B.Negative)
    return A.Negative ? -1 : 1;
  const int Magnitude = compareMagnitude(A, B);
  return A.Negative ? -Magnitude : Magnitude;
}

std::vector<uint64_t> BigInt::addMagnitude(const std::vector<uint64_t> &A,
                                           const std::vector<uint64_t> &B) {
  std::vector<uint64_t> Sum;
  Sum.reserve(std::max(A.size(), B.size()) + 1);
  uint64_t Carry = 0;
  for (size_t Index = 0; Index < std::max(A.size(), B.size()); ++Index) {
    const uint64_t LimbA = Index < A.size() ? A[Index] : 0;
    const uint64_t LimbB = Index < B.size() ? B[Index] : 0;
    uint64_t Partial = LimbA + LimbB;
    const uint64_t CarryOut1 = Partial < LimbA ? 1 : 0;
    uint64_t Total = Partial + Carry;
    const uint64_t CarryOut2 = Total < Partial ? 1 : 0;
    Sum.push_back(Total);
    Carry = CarryOut1 | CarryOut2;
  }
  if (Carry)
    Sum.push_back(Carry);
  return Sum;
}

std::vector<uint64_t> BigInt::subMagnitude(const std::vector<uint64_t> &A,
                                           const std::vector<uint64_t> &B) {
  // Precondition: |A| >= |B|.
  std::vector<uint64_t> Difference;
  Difference.reserve(A.size());
  uint64_t Borrow = 0;
  for (size_t Index = 0; Index < A.size(); ++Index) {
    const uint64_t LimbA = A[Index];
    const uint64_t LimbB = Index < B.size() ? B[Index] : 0;
    const uint64_t Partial = LimbA - LimbB;
    const uint64_t BorrowOut1 = LimbA < LimbB ? 1 : 0;
    const uint64_t Total = Partial - Borrow;
    const uint64_t BorrowOut2 = Partial < Borrow ? 1 : 0;
    Difference.push_back(Total);
    Borrow = BorrowOut1 | BorrowOut2;
  }
  assert(Borrow == 0 && "subMagnitude underflow");
  return Difference;
}

BigInt operator+(const BigInt &A, const BigInt &B) {
  BigInt Result;
  if (A.Negative == B.Negative) {
    Result.Negative = A.Negative;
    Result.Limbs = BigInt::addMagnitude(A.Limbs, B.Limbs);
  } else {
    const int Magnitude = BigInt::compareMagnitude(A, B);
    if (Magnitude == 0)
      return BigInt();
    if (Magnitude > 0) {
      Result.Negative = A.Negative;
      Result.Limbs = BigInt::subMagnitude(A.Limbs, B.Limbs);
    } else {
      Result.Negative = B.Negative;
      Result.Limbs = BigInt::subMagnitude(B.Limbs, A.Limbs);
    }
  }
  Result.trim();
  return Result;
}

BigInt operator-(const BigInt &A, const BigInt &B) { return A + (-B); }

BigInt operator*(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  BigInt Result;
  Result.Negative = A.Negative != B.Negative;
  Result.Limbs.assign(A.Limbs.size() + B.Limbs.size(), 0);
  for (size_t IndexA = 0; IndexA < A.Limbs.size(); ++IndexA) {
    uint64_t Carry = 0;
    for (size_t IndexB = 0; IndexB < B.Limbs.size(); ++IndexB) {
      // 64x64 -> 128 partial product plus running column and carry.
      UInt128 Product = mulWide64(A.Limbs[IndexA], B.Limbs[IndexB]);
      UInt128 Column = Product + UInt128(Result.Limbs[IndexA + IndexB]) +
                       UInt128(Carry);
      Result.Limbs[IndexA + IndexB] = Column.low();
      Carry = Column.high();
    }
    size_t Overflow = IndexA + B.Limbs.size();
    while (Carry != 0) {
      UInt128 Column = UInt128(Result.Limbs[Overflow]) + UInt128(Carry);
      Result.Limbs[Overflow] = Column.low();
      Carry = Column.high();
      ++Overflow;
    }
  }
  Result.trim();
  return Result;
}

BigInt BigInt::shiftLeft(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  BigInt Result;
  Result.Negative = Negative;
  const unsigned LimbShift = Bits / 64;
  const unsigned BitShift = Bits % 64;
  Result.Limbs.assign(LimbShift, 0);
  uint64_t Carry = 0;
  for (uint64_t Limb : Limbs) {
    if (BitShift == 0) {
      Result.Limbs.push_back(Limb);
    } else {
      Result.Limbs.push_back((Limb << BitShift) | Carry);
      Carry = Limb >> (64 - BitShift);
    }
  }
  if (Carry)
    Result.Limbs.push_back(Carry);
  Result.trim();
  return Result;
}

BigInt::DivModResult BigInt::divMod(const BigInt &Dividend,
                                    const BigInt &Divisor) {
  assert(!Divisor.isZero() && "division by zero");
  // Magnitude long division, bit by bit from the top. O(bits²) worst case,
  // acceptable at spectral-test scales.
  const int Magnitude = compareMagnitude(Dividend, Divisor);
  if (Magnitude < 0)
    return {BigInt(), Dividend};

  BigInt AbsDividend = Dividend.abs();
  BigInt AbsDivisor = Divisor.abs();
  const unsigned Shift = AbsDividend.bitWidth() - AbsDivisor.bitWidth();
  BigInt Denominator = AbsDivisor.shiftLeft(Shift);

  BigInt Quotient;
  Quotient.Limbs.assign(Shift / 64 + 1, 0);
  BigInt Remainder = AbsDividend;
  for (unsigned Step = 0; Step <= Shift; ++Step) {
    const unsigned BitIndex = Shift - Step;
    if (compareMagnitude(Remainder, Denominator) >= 0) {
      Remainder.Limbs =
          subMagnitude(Remainder.Limbs, Denominator.Limbs);
      Remainder.trim();
      Quotient.Limbs[BitIndex / 64] |= uint64_t(1) << (BitIndex % 64);
    }
    // Shift denominator right by one bit.
    uint64_t Carry = 0;
    for (size_t Index = Denominator.Limbs.size(); Index-- > 0;) {
      const uint64_t Limb = Denominator.Limbs[Index];
      Denominator.Limbs[Index] = (Limb >> 1) | (Carry << 63);
      Carry = Limb & 1;
    }
    Denominator.trim();
  }
  Quotient.trim();

  Quotient.Negative = !Quotient.isZero() &&
                      (Dividend.Negative != Divisor.Negative);
  Remainder.Negative = !Remainder.isZero() && Dividend.Negative;
  return {Quotient, Remainder};
}

BigInt operator/(const BigInt &A, const BigInt &B) {
  return BigInt::divMod(A, B).Quotient;
}

BigInt operator%(const BigInt &A, const BigInt &B) {
  return BigInt::divMod(A, B).Remainder;
}

BigInt BigInt::divRound(const BigInt &Dividend, const BigInt &Divisor) {
  DivModResult Split = divMod(Dividend, Divisor);
  if (Split.Remainder.isZero())
    return Split.Quotient;
  // Round to nearest, ties away from zero: |2r| >= |d| bumps the
  // magnitude by one in the quotient's direction.
  BigInt TwiceRemainder = Split.Remainder.abs() + Split.Remainder.abs();
  if (compare(TwiceRemainder, Divisor.abs()) >= 0) {
    const bool ResultNegative = Dividend.Negative != Divisor.Negative;
    Split.Quotient += ResultNegative ? BigInt(-1) : BigInt(1);
  }
  return Split.Quotient;
}

double BigInt::toDouble() const {
  double Value = 0.0;
  for (size_t Index = Limbs.size(); Index-- > 0;)
    Value = Value * 18446744073709551616.0 + double(Limbs[Index]);
  return Negative ? -Value : Value;
}

bool BigInt::fitsInt64() const {
  if (Limbs.size() > 1)
    return false;
  if (Limbs.empty())
    return true;
  if (Negative)
    return Limbs[0] <= uint64_t(1) << 63;
  return Limbs[0] < uint64_t(1) << 63;
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "value does not fit in int64");
  if (Limbs.empty())
    return 0;
  return Negative ? -int64_t(Limbs[0] - 1) - 1 : int64_t(Limbs[0]);
}

std::string BigInt::toDecimalString() const {
  if (isZero())
    return "0";
  std::string Digits;
  BigInt Value = abs();
  const BigInt Ten(10);
  while (!Value.isZero()) {
    DivModResult Split = divMod(Value, Ten);
    Digits.push_back(char('0' + Split.Remainder.toInt64()));
    Value = Split.Quotient;
  }
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

} // namespace parmonc
