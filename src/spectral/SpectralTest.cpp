//===- spectral/SpectralTest.cpp - Knuth spectral test --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// LLL here is the exact integral variant (Cohen, "A Course in
// Computational Algebraic Number Theory", Algorithm 2.6.3): the
// Gram–Schmidt data is carried as integers d_i and λ_{i,j} = d_j μ_{i,j},
// so no rounding ever occurs during reduction. The shortest vector is
// then found by Fincke–Pohst enumeration that prunes with floating-point
// bounds (inflated by a slack factor) but accepts candidates only on
// exact integer norms — the result is exact.
//
//===----------------------------------------------------------------------===//

#include "parmonc/spectral/SpectralTest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parmonc {

LatticeBasis makeDualLatticeBasis(const BigInt &M, const BigInt &A,
                                  int Dimension) {
  assert(Dimension >= 2 && "spectral test starts at dimension 2");
  LatticeBasis Basis(static_cast<size_t>(Dimension),
                     std::vector<BigInt>(static_cast<size_t>(Dimension)));
  // Row 0: (m, 0, ..., 0). Row i>0: (-a^i mod m reduced to -a^i, e_i).
  // Using the unreduced -a^i would explode; reduce mod m (same lattice).
  Basis[0][0] = M;
  BigInt PowerOfA(1);
  for (int Row = 1; Row < Dimension; ++Row) {
    PowerOfA = (PowerOfA * A) % M;
    Basis[size_t(Row)][0] = -PowerOfA;
    Basis[size_t(Row)][size_t(Row)] = BigInt(1);
  }
  return Basis;
}

BigInt squaredNorm(const std::vector<BigInt> &Vector) {
  BigInt Sum;
  for (const BigInt &Entry : Vector)
    Sum += Entry * Entry;
  return Sum;
}

static BigInt dotProduct(const std::vector<BigInt> &A,
                         const std::vector<BigInt> &B) {
  assert(A.size() == B.size());
  BigInt Sum;
  for (size_t Index = 0; Index < A.size(); ++Index)
    Sum += A[Index] * B[Index];
  return Sum;
}

/// Exact division helper: asserts divisibility (guaranteed by the
/// integral-LLL invariants).
static BigInt exactDiv(const BigInt &Dividend, const BigInt &Divisor) {
  BigInt::DivModResult Split = BigInt::divMod(Dividend, Divisor);
  assert(Split.Remainder.isZero() && "integral LLL invariant violated");
  return Split.Quotient;
}

namespace {

/// Integral-LLL working state (Cohen 2.6.3), 0-indexed.
class IntegralLll {
public:
  explicit IntegralLll(LatticeBasis &Basis)
      : Basis(Basis), Count(int(Basis.size())) {
    D.assign(size_t(Count) + 1, BigInt());
    D[0] = BigInt(1);
    Lambda.assign(size_t(Count), std::vector<BigInt>(size_t(Count)));
  }

  void run() {
    incrementalGramSchmidt(0);
    int K = 1;
    int KMax = 0;
    while (K < Count) {
      if (K > KMax) {
        KMax = K;
        incrementalGramSchmidt(K);
      }
      sizeReduce(K, K - 1);
      // Lovász (δ = 3/4) in integer form:
      // 4 d_{k+1} d_{k-1} < 3 d_k² - 4 λ_{k,k-1}².
      const BigInt Lhs = BigInt(4) * D[size_t(K) + 1] * D[size_t(K) - 1];
      const BigInt Rhs = BigInt(3) * D[size_t(K)] * D[size_t(K)] -
                         BigInt(4) * Lambda[size_t(K)][size_t(K) - 1] *
                             Lambda[size_t(K)][size_t(K) - 1];
      if (Lhs < Rhs) {
        swapRows(K, KMax);
        K = std::max(1, K - 1);
      } else {
        for (int L = K - 2; L >= 0; --L)
          sizeReduce(K, L);
        ++K;
      }
    }
  }

private:
  /// Computes λ_{k,j} for j < k and d_{k+1} from the current basis.
  void incrementalGramSchmidt(int K) {
    for (int J = 0; J <= K; ++J) {
      BigInt U = dotProduct(Basis[size_t(K)], Basis[size_t(J)]);
      for (int I = 0; I < J; ++I)
        U = exactDiv(D[size_t(I) + 1] * U -
                         Lambda[size_t(K)][size_t(I)] *
                             Lambda[size_t(J)][size_t(I)],
                     D[size_t(I)]);
      if (J < K)
        Lambda[size_t(K)][size_t(J)] = U;
      else
        D[size_t(K) + 1] = U;
    }
    assert(!D[size_t(K) + 1].isZero() && "basis vectors are dependent");
  }

  /// RED(k, l): makes |μ_{k,l}| <= 1/2.
  void sizeReduce(int K, int L) {
    const BigInt &Scale = D[size_t(L) + 1];
    BigInt TwiceLambda =
        Lambda[size_t(K)][size_t(L)] + Lambda[size_t(K)][size_t(L)];
    if (BigInt::compare(TwiceLambda.abs(), Scale.abs()) <= 0)
      return;
    const BigInt Q = BigInt::divRound(Lambda[size_t(K)][size_t(L)], Scale);
    for (size_t Column = 0; Column < Basis[size_t(K)].size(); ++Column)
      Basis[size_t(K)][Column] -= Q * Basis[size_t(L)][Column];
    Lambda[size_t(K)][size_t(L)] -= Q * Scale;
    for (int I = 0; I < L; ++I)
      Lambda[size_t(K)][size_t(I)] -= Q * Lambda[size_t(L)][size_t(I)];
  }

  /// SWAP(k): exchanges rows k and k-1 and fixes the GS data.
  void swapRows(int K, int KMax) {
    std::swap(Basis[size_t(K)], Basis[size_t(K) - 1]);
    for (int J = 0; J <= K - 2; ++J)
      std::swap(Lambda[size_t(K)][size_t(J)],
                Lambda[size_t(K) - 1][size_t(J)]);
    const BigInt Lam = Lambda[size_t(K)][size_t(K) - 1];
    const BigInt NewD = exactDiv(
        D[size_t(K) - 1] * D[size_t(K) + 1] + Lam * Lam, D[size_t(K)]);
    for (int I = K + 1; I <= KMax; ++I) {
      const BigInt T = Lambda[size_t(I)][size_t(K)];
      Lambda[size_t(I)][size_t(K)] =
          exactDiv(D[size_t(K) + 1] * Lambda[size_t(I)][size_t(K) - 1] -
                       Lam * T,
                   D[size_t(K)]);
      Lambda[size_t(I)][size_t(K) - 1] =
          exactDiv(NewD * T + Lam * Lambda[size_t(I)][size_t(K)],
                   D[size_t(K) + 1]);
    }
    D[size_t(K)] = NewD;
  }

  LatticeBasis &Basis;
  int Count;
  std::vector<BigInt> D;                   // d_0..d_n, d_0 = 1
  std::vector<std::vector<BigInt>> Lambda; // λ_{i,j}, j < i
};

/// Fincke–Pohst shortest-vector enumeration over an LLL-reduced basis.
class ShortestVectorSearch {
public:
  explicit ShortestVectorSearch(const LatticeBasis &Basis)
      : Basis(Basis), Count(int(Basis.size())) {
    buildFloatingGramSchmidt();
    // Initial bound: the shortest basis vector (exact).
    Best.SquaredLength = squaredNorm(Basis[0]);
    Best.Vector = Basis[0];
    for (int Row = 1; Row < Count; ++Row) {
      BigInt RowNorm = squaredNorm(Basis[size_t(Row)]);
      if (RowNorm < Best.SquaredLength) {
        Best.SquaredLength = RowNorm;
        Best.Vector = Basis[size_t(Row)];
      }
    }
    Coefficients.assign(static_cast<size_t>(Count), 0);
  }

  ShortestVectorResult run() {
    enumerate(Count - 1, 0.0);
    return Best;
  }

private:
  void buildFloatingGramSchmidt() {
    Mu.assign(size_t(Count), std::vector<double>(size_t(Count), 0.0));
    StarNorms.assign(size_t(Count), 0.0);
    std::vector<std::vector<double>> Star(
        static_cast<size_t>(Count),
        std::vector<double>(static_cast<size_t>(Count)));
    for (int Row = 0; Row < Count; ++Row) {
      for (int Column = 0; Column < Count; ++Column)
        Star[size_t(Row)][size_t(Column)] =
            Basis[size_t(Row)][size_t(Column)].toDouble();
      for (int Previous = 0; Previous < Row; ++Previous) {
        double Projection = 0.0;
        for (int Column = 0; Column < Count; ++Column)
          Projection += Basis[size_t(Row)][size_t(Column)].toDouble() *
                        Star[size_t(Previous)][size_t(Column)];
        Projection /= StarNorms[size_t(Previous)];
        Mu[size_t(Row)][size_t(Previous)] = Projection;
        for (int Column = 0; Column < Count; ++Column)
          Star[size_t(Row)][size_t(Column)] -=
              Projection * Star[size_t(Previous)][size_t(Column)];
      }
      double Norm = 0.0;
      for (int Column = 0; Column < Count; ++Column)
        Norm += Star[size_t(Row)][size_t(Column)] *
                Star[size_t(Row)][size_t(Column)];
      StarNorms[size_t(Row)] = Norm;
    }
  }

  /// Depth-first over coefficient levels from Count-1 down to 0;
  /// \p PartialNorm is the squared norm contributed by levels above.
  void enumerate(int Level, double PartialNorm) {
    const double Bound = Best.SquaredLength.toDouble() * (1.0 + 1e-9);
    if (Level < 0) {
      evaluateCandidate();
      return;
    }
    // Center of the admissible interval at this level.
    double Center = 0.0;
    for (int Upper = Level + 1; Upper < Count; ++Upper)
      Center -= double(Coefficients[size_t(Upper)]) *
                Mu[size_t(Upper)][size_t(Level)];
    const double Radius =
        std::sqrt(std::max(0.0, (Bound - PartialNorm) /
                                    StarNorms[size_t(Level)]));
    const int64_t Low = int64_t(std::ceil(Center - Radius - 1e-9));
    const int64_t High = int64_t(std::floor(Center + Radius + 1e-9));
    for (int64_t Coefficient = Low; Coefficient <= High; ++Coefficient) {
      Coefficients[size_t(Level)] = Coefficient;
      const double Offset = double(Coefficient) - Center;
      const double NewPartial =
          PartialNorm + Offset * Offset * StarNorms[size_t(Level)];
      if (NewPartial <= Bound)
        enumerate(Level - 1, NewPartial);
    }
    Coefficients[size_t(Level)] = 0;
  }

  void evaluateCandidate() {
    bool AllZero = true;
    for (int64_t Coefficient : Coefficients)
      AllZero &= Coefficient == 0;
    if (AllZero)
      return;
    std::vector<BigInt> Candidate(static_cast<size_t>(Count));
    for (int Row = 0; Row < Count; ++Row) {
      if (Coefficients[size_t(Row)] == 0)
        continue;
      const BigInt Scale(Coefficients[size_t(Row)]);
      for (int Column = 0; Column < Count; ++Column)
        Candidate[size_t(Column)] +=
            Scale * Basis[size_t(Row)][size_t(Column)];
    }
    BigInt Norm = squaredNorm(Candidate);
    if (!Norm.isZero() && Norm < Best.SquaredLength) {
      Best.SquaredLength = Norm;
      Best.Vector = std::move(Candidate);
    }
  }

  const LatticeBasis &Basis;
  int Count;
  std::vector<std::vector<double>> Mu;
  std::vector<double> StarNorms;
  std::vector<int64_t> Coefficients;
  ShortestVectorResult Best;
};

} // namespace

void reduceLll(LatticeBasis &Basis) {
  assert(Basis.size() >= 2 && "nothing to reduce");
  IntegralLll Reducer(Basis);
  Reducer.run();
}

ShortestVectorResult findShortestVector(const LatticeBasis &Basis) {
  LatticeBasis Reduced = Basis;
  reduceLll(Reduced);
  ShortestVectorSearch Search(Reduced);
  return Search.run();
}

double hermiteConstant(int Dimension) {
  assert(Dimension >= 1 && Dimension <= 8 &&
         "Hermite constants tabulated up to dimension 8");
  switch (Dimension) {
  case 1:
    return 1.0;
  case 2:
    return 2.0 / std::sqrt(3.0);
  case 3:
    return std::pow(2.0, 1.0 / 3.0);
  case 4:
    return std::sqrt(2.0);
  case 5:
    return std::pow(8.0, 1.0 / 5.0);
  case 6:
    return std::pow(64.0 / 3.0, 1.0 / 6.0);
  case 7:
    return std::pow(64.0, 1.0 / 7.0);
  case 8:
    return 2.0;
  }
  return 0.0;
}

std::vector<SpectralResult> runSpectralTest(const BigInt &M, const BigInt &A,
                                            int MaxDimension) {
  assert(MaxDimension >= 2 && MaxDimension <= 8 &&
         "supported dimensions: 2..8");
  std::vector<SpectralResult> Results;
  const double ModulusAsDouble = M.toDouble();
  for (int Dimension = 2; Dimension <= MaxDimension; ++Dimension) {
    LatticeBasis Basis = makeDualLatticeBasis(M, A, Dimension);
    ShortestVectorResult Shortest = findShortestVector(Basis);

    SpectralResult Result;
    Result.Dimension = Dimension;
    Result.SquaredNu = Shortest.SquaredLength;
    Result.Nu = std::sqrt(Shortest.SquaredLength.toDouble());
    const double Gamma = hermiteConstant(Dimension);
    Result.NormalizedMerit =
        Result.Nu /
        (std::sqrt(Gamma) * std::pow(ModulusAsDouble, 1.0 / Dimension));
    Results.push_back(std::move(Result));
  }
  return Results;
}

std::vector<SpectralResult> runSpectralTestPow2(unsigned ModulusBits,
                                                UInt128 Multiplier,
                                                int MaxDimension,
                                                bool UseEffectiveModulus) {
  assert(ModulusBits >= 4 && ModulusBits <= 128);
  const unsigned EffectiveBits =
      UseEffectiveModulus ? ModulusBits - 2 : ModulusBits;
  BigInt M = BigInt(1).shiftLeft(EffectiveBits);
  return runSpectralTest(M, BigInt::fromUInt128(Multiplier), MaxDimension);
}

} // namespace parmonc
