//===- lint/Lexer.cpp - C++-aware tokenizer for mclint --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Lexer.h"

#include <algorithm>
#include <cstddef>

namespace parmonc {
namespace lint {

bool isIdentifierChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

namespace {

bool isIdentifierStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}

bool isDigit(char C) { return C >= '0' && C <= '9'; }

/// Length of a line splice (backslash immediately followed by a newline)
/// starting at \p I, or 0 if there is none.
size_t spliceLengthAt(std::string_view S, size_t I) {
  if (I >= S.size() || S[I] != '\\')
    return 0;
  if (I + 1 < S.size() && S[I + 1] == '\n')
    return 2;
  if (I + 2 < S.size() && S[I + 1] == '\r' && S[I + 2] == '\n')
    return 3;
  return 0;
}

/// The logical view of a file: contents with line splices removed, plus a
/// map from each logical byte back to its physical offset.
struct LogicalBuffer {
  std::string Text;
  std::vector<uint32_t> PhysOffset;
};

LogicalBuffer buildLogicalBuffer(std::string_view Contents) {
  LogicalBuffer Buf;
  Buf.Text.reserve(Contents.size());
  Buf.PhysOffset.reserve(Contents.size());
  size_t I = 0;
  while (I < Contents.size()) {
    if (size_t Len = spliceLengthAt(Contents, I)) {
      I += Len;
      continue;
    }
    Buf.Text.push_back(Contents[I]);
    Buf.PhysOffset.push_back(static_cast<uint32_t>(I));
    ++I;
  }
  return Buf;
}

std::vector<uint32_t> computeLineStarts(std::string_view Contents) {
  std::vector<uint32_t> Starts;
  Starts.push_back(0);
  for (size_t I = 0; I < Contents.size(); ++I)
    if (Contents[I] == '\n')
      Starts.push_back(static_cast<uint32_t>(I + 1));
  return Starts;
}

uint32_t lineOfOffset(const std::vector<uint32_t> &LineStarts,
                      uint32_t Offset) {
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
  return static_cast<uint32_t>(It - LineStarts.begin()) - 1;
}

/// True when the identifier \p Prefix is a valid encoding prefix for a
/// string or character literal (u8, u, U, L) with an optional trailing R
/// for raw strings.
bool isRawStringPrefix(std::string_view Prefix) {
  return Prefix == "R" || Prefix == "u8R" || Prefix == "uR" || Prefix == "UR" ||
         Prefix == "LR";
}

bool isEncodingPrefix(std::string_view Prefix) {
  return Prefix == "u8" || Prefix == "u" || Prefix == "U" || Prefix == "L";
}

class Lexer {
public:
  Lexer(const LogicalBuffer &Buf, const std::vector<uint32_t> &LineStarts)
      : Text(Buf.Text), Phys(Buf.PhysOffset), LineStarts(LineStarts) {}

  std::vector<Token> run() {
    while (Pos < Text.size())
      lexOne();
    return std::move(Tokens);
  }

private:
  std::string_view Text;
  const std::vector<uint32_t> &Phys;
  const std::vector<uint32_t> &LineStarts;
  size_t Pos = 0;
  std::vector<Token> Tokens;

  char at(size_t I) const { return I < Text.size() ? Text[I] : '\0'; }

  void emit(TokenKind Kind, size_t Begin, size_t End) {
    Token T;
    T.Kind = Kind;
    T.Begin = Phys[Begin];
    // End is exclusive in logical space; the physical end is one past the
    // physical offset of the last logical byte.
    T.End = Phys[End - 1] + 1;
    T.Line = lineOfOffset(LineStarts, T.Begin);
    T.EndLine = lineOfOffset(LineStarts, Phys[End - 1]);
    T.Column = T.Begin - LineStarts[T.Line];
    T.Text.assign(Text.substr(Begin, End - Begin));
    Tokens.push_back(std::move(T));
  }

  void lexOne() {
    char C = Text[Pos];
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\f' ||
        C == '\v') {
      ++Pos;
      return;
    }
    if (C == '/' && at(Pos + 1) == '/') {
      lexLineComment();
      return;
    }
    if (C == '/' && at(Pos + 1) == '*') {
      lexBlockComment();
      return;
    }
    if (C == '"') {
      lexString(Pos);
      return;
    }
    if (C == '\'') {
      lexCharLiteral(Pos);
      return;
    }
    if (isDigit(C) || (C == '.' && isDigit(at(Pos + 1)))) {
      lexNumber();
      return;
    }
    if (isIdentifierStart(C)) {
      lexIdentifierOrLiteralPrefix();
      return;
    }
    emit(TokenKind::Punct, Pos, Pos + 1);
    ++Pos;
  }

  void lexLineComment() {
    size_t Begin = Pos;
    while (Pos < Text.size() && Text[Pos] != '\n')
      ++Pos;
    emit(TokenKind::Comment, Begin, Pos);
  }

  void lexBlockComment() {
    size_t Begin = Pos;
    Pos += 2;
    while (Pos < Text.size() &&
           !(Text[Pos] == '*' && at(Pos + 1) == '/'))
      ++Pos;
    if (Pos < Text.size())
      Pos += 2;
    emit(TokenKind::Comment, Begin, Pos);
  }

  /// Lexes a quoted literal body starting at the opening quote; \p Begin is
  /// the token start (possibly an encoding prefix before the quote).
  void lexQuoted(TokenKind Kind, size_t Begin, char Quote) {
    ++Pos; // opening quote
    while (Pos < Text.size() && Text[Pos] != Quote && Text[Pos] != '\n') {
      if (Text[Pos] == '\\' && Pos + 1 < Text.size())
        ++Pos;
      ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == Quote)
      ++Pos;
    emit(Kind, Begin, Pos);
  }

  void lexString(size_t Begin) { lexQuoted(TokenKind::String, Begin, '"'); }

  void lexCharLiteral(size_t Begin) {
    lexQuoted(TokenKind::CharLiteral, Begin, '\'');
  }

  void lexRawString(size_t Begin) {
    // Pos is at the opening quote of R"delim( ... )delim".
    ++Pos;
    size_t DelimBegin = Pos;
    while (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != '\n' &&
           Pos - DelimBegin < 16)
      ++Pos;
    if (at(Pos) != '(') {
      // Malformed raw string; treat as an ordinary string from the quote.
      Pos = DelimBegin - 1;
      lexQuoted(TokenKind::RawString, Begin, '"');
      return;
    }
    std::string Closer = ")";
    Closer.append(Text.substr(DelimBegin, Pos - DelimBegin));
    Closer.push_back('"');
    ++Pos; // consume '('
    size_t CloseAt = Text.find(Closer, Pos);
    Pos = (CloseAt == std::string_view::npos) ? Text.size()
                                              : CloseAt + Closer.size();
    emit(TokenKind::RawString, Begin, Pos);
  }

  void lexNumber() {
    size_t Begin = Pos;
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (isIdentifierChar(C) || C == '.') {
        ++Pos;
        continue;
      }
      // Digit separator: ' between identifier characters.
      if (C == '\'' && Pos > Begin && isIdentifierChar(Text[Pos - 1]) &&
          isIdentifierChar(at(Pos + 1))) {
        Pos += 2;
        continue;
      }
      // Exponent sign: e+, e-, p+, p-.
      if ((C == '+' || C == '-') && Pos > Begin &&
          (Text[Pos - 1] == 'e' || Text[Pos - 1] == 'E' ||
           Text[Pos - 1] == 'p' || Text[Pos - 1] == 'P')) {
        ++Pos;
        continue;
      }
      break;
    }
    emit(TokenKind::Number, Begin, Pos);
  }

  void lexIdentifierOrLiteralPrefix() {
    size_t Begin = Pos;
    while (Pos < Text.size() && isIdentifierChar(Text[Pos]))
      ++Pos;
    std::string_view Ident = Text.substr(Begin, Pos - Begin);
    if (at(Pos) == '"') {
      if (isRawStringPrefix(Ident)) {
        lexRawString(Begin);
        return;
      }
      if (isEncodingPrefix(Ident)) {
        lexString(Begin);
        return;
      }
    } else if (at(Pos) == '\'' && isEncodingPrefix(Ident)) {
      lexCharLiteral(Begin);
      return;
    }
    emit(TokenKind::Identifier, Begin, Pos);
  }
};

} // namespace

LexedFile lexFile(std::string_view Contents) {
  LexedFile Result;
  Result.LineStarts = computeLineStarts(Contents);
  LogicalBuffer Buf = buildLogicalBuffer(Contents);
  Lexer Lex(Buf, Result.LineStarts);
  Result.Tokens = Lex.run();
  return Result;
}

} // namespace lint
} // namespace parmonc
