//===- lint/SourceFile.cpp - Lexed view of one source file ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/SourceFile.h"

#include "parmonc/support/Text.h"

#include <algorithm>

namespace parmonc {
namespace lint {

namespace {

/// Extracts the rule ids from one waiver directive body, e.g. "R1,R3".
std::vector<std::string> parseRuleList(std::string_view Body) {
  std::vector<std::string> Ids;
  for (std::string_view Field : splitChar(Body, ','))
    if (std::string_view Id = trim(Field); !Id.empty())
      Ids.emplace_back(Id);
  return Ids;
}

/// Length of a line splice (backslash + newline) at \p I, or 0.
size_t spliceLengthAt(std::string_view S, size_t I) {
  if (I >= S.size() || S[I] != '\\')
    return 0;
  if (I + 1 < S.size() && S[I + 1] == '\n')
    return 2;
  if (I + 2 < S.size() && S[I + 1] == '\r' && S[I + 2] == '\n')
    return 3;
  return 0;
}

} // namespace

SourceFile::SourceFile(std::string Path, std::string_view Contents)
    : Path(std::move(Path)) {
  // Split into raw lines first (keeping empty trailing lines irrelevant).
  for (std::string_view Line : splitChar(Contents, '\n')) {
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    RawLines.emplace_back(Line);
  }
  if (!RawLines.empty() && RawLines.back().empty())
    RawLines.pop_back();

  LexedFile Lexed = lexFile(Contents);
  Tokens = std::move(Lexed.Tokens);
  const std::vector<uint32_t> &LineStarts = Lexed.LineStarts;

  // Scrubbed lines start as all spaces; code tokens copy their bytes back
  // at the original (line, column), literals contribute only their quote
  // characters (and any encoding prefix), comments contribute nothing.
  ScrubbedLines.reserve(RawLines.size());
  for (const std::string &Raw : RawLines)
    ScrubbedLines.emplace_back(Raw.size(), ' ');

  auto PlaceByte = [&](uint32_t Offset, char C) {
    auto It =
        std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
    size_t Line = static_cast<size_t>(It - LineStarts.begin()) - 1;
    if (Line >= ScrubbedLines.size())
      return;
    size_t Column = Offset - LineStarts[Line];
    if (Column < ScrubbedLines[Line].size())
      ScrubbedLines[Line][Column] = C;
  };

  auto CopyCodeRange = [&](uint32_t Begin, uint32_t End) {
    for (uint32_t P = Begin; P < End; ++P) {
      char C = Contents[P];
      if (C == '\n' || C == '\r')
        continue;
      if (spliceLengthAt(Contents, P))
        continue; // splice backslash
      PlaceByte(P, C);
    }
  };

  for (const Token &T : Tokens) {
    switch (T.Kind) {
    case TokenKind::Identifier:
    case TokenKind::Number:
    case TokenKind::Punct:
      CopyCodeRange(T.Begin, T.End);
      break;
    case TokenKind::String:
    case TokenKind::CharLiteral:
    case TokenKind::RawString: {
      const char Quote = T.Kind == TokenKind::CharLiteral ? '\'' : '"';
      uint32_t P = T.Begin;
      while (P < T.End && Contents[P] != Quote) {
        PlaceByte(P, Contents[P]); // encoding prefix (R, u8, L, ...)
        ++P;
      }
      if (P < T.End)
        PlaceByte(P, Quote);
      if (T.End > P + 1 && Contents[T.End - 1] == Quote)
        PlaceByte(T.End - 1, Quote);
      break;
    }
    case TokenKind::Comment:
      break;
    }
  }

  // Waiver scan over comment tokens only: directives inside string or raw
  // string literals are never honored.
  LineWaivers.assign(RawLines.size(), {});
  uint32_t DirectiveIndex = 0;
  for (const Token &T : Tokens) {
    if (T.Kind != TokenKind::Comment)
      continue;
    std::string_view Comment = T.Text;
    size_t Pos = Comment.find("mclint:");
    if (Pos == std::string_view::npos)
      continue;
    std::string_view Directive = trim(Comment.substr(Pos + 7));
    const bool FileScope = startsWith(Directive, "allow-file(");
    const bool LineScope = !FileScope && startsWith(Directive, "allow(");
    if (!FileScope && !LineScope)
      continue;
    const size_t Open = Directive.find('(');
    const size_t Close = Directive.find(')', Open);
    if (Close == std::string_view::npos)
      continue;

    // A stand-alone directive has no code on any line the comment spans;
    // it then also covers the next code line — skipping any further
    // comment-only or blank lines, so a directive may sit on top of its
    // prose explanation without losing the code it was written for.
    bool Standalone = true;
    for (uint32_t Line = T.Line;
         Line <= T.EndLine && Line < ScrubbedLines.size(); ++Line)
      if (!trim(ScrubbedLines[Line]).empty())
        Standalone = false;

    uint32_t CoverBegin = T.Line;
    uint32_t CoverEnd = T.EndLine;
    if (Standalone) {
      uint32_t Next = CoverEnd + 1;
      while (Next < RawLines.size() && trim(ScrubbedLines[Next]).empty())
        ++Next;
      if (Next < RawLines.size())
        CoverEnd = Next;
    }

    for (std::string &Id :
         parseRuleList(Directive.substr(Open + 1, Close - Open - 1))) {
      Waiver W;
      W.RuleId = Id;
      W.DirectiveIndex = DirectiveIndex;
      W.DirectiveLine = T.Line;
      W.DirectiveEndLine = T.EndLine;
      W.DirectiveColumn =
          T.Begin - LineStarts[std::min<size_t>(T.Line, LineStarts.size() - 1)];
      W.FileScope = FileScope;
      W.Standalone = Standalone;
      W.CoverBegin = CoverBegin;
      W.CoverEnd = CoverEnd;
      if (FileScope)
        FileWaivers.insert(Id);
      else
        for (uint32_t Line = CoverBegin;
             Line <= CoverEnd && Line < LineWaivers.size(); ++Line)
          LineWaivers[Line].insert(Id);
      Waivers.push_back(std::move(W));
    }
    ++DirectiveIndex;
  }
}

bool SourceFile::isHeader() const {
  return Path.size() >= 2 && (Path.rfind(".h") == Path.size() - 2 ||
                              (Path.size() >= 4 &&
                               Path.rfind(".hpp") == Path.size() - 4));
}

const std::vector<FunctionCfg> &SourceFile::functions() const {
  if (!Cfgs)
    Cfgs = std::make_unique<std::vector<FunctionCfg>>(
        buildFunctionCfgs(Tokens));
  return *Cfgs;
}

bool SourceFile::isWaived(size_t Index, std::string_view RuleId) const {
  if (FileWaivers.count(std::string(RuleId)))
    return true;
  if (Index >= LineWaivers.size())
    return false;
  return LineWaivers[Index].count(std::string(RuleId)) > 0;
}

} // namespace lint
} // namespace parmonc
