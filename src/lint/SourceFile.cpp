//===- lint/SourceFile.cpp - Lexed view of one source file ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/SourceFile.h"

#include "parmonc/support/Text.h"

namespace parmonc {
namespace lint {

namespace {

/// Lexer states for the scrubbing pass.
enum class LexState {
  Code,
  LineComment,
  BlockComment,
  String,
  Char,
  RawString,
};

bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

/// Extracts the rule ids from one waiver directive body, e.g. "R1,R3".
std::vector<std::string> parseRuleList(std::string_view Body) {
  std::vector<std::string> Ids;
  for (std::string_view Field : splitChar(Body, ','))
    if (std::string_view Id = trim(Field); !Id.empty())
      Ids.emplace_back(Id);
  return Ids;
}

} // namespace

SourceFile::SourceFile(std::string Path, std::string_view Contents)
    : Path(std::move(Path)) {
  // Split into raw lines first (keeping empty trailing lines irrelevant).
  for (std::string_view Line : splitChar(Contents, '\n')) {
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    RawLines.emplace_back(Line);
  }
  if (!RawLines.empty() && RawLines.back().empty())
    RawLines.pop_back();

  // Scrub comments and literals, collecting comment text per line so the
  // waiver scan below only looks inside comments.
  ScrubbedLines.reserve(RawLines.size());
  LineWaivers.assign(RawLines.size(), {});
  std::vector<std::string> CommentText(RawLines.size());

  LexState State = LexState::Code;
  std::string RawDelimiter; // for raw string literals: )delim"
  for (size_t LineIndex = 0; LineIndex < RawLines.size(); ++LineIndex) {
    const std::string &Raw = RawLines[LineIndex];
    std::string Scrubbed(Raw.size(), ' ');
    if (State == LexState::LineComment)
      State = LexState::Code; // line comments never span lines
    for (size_t I = 0; I < Raw.size(); ++I) {
      const char C = Raw[I];
      const char Next = I + 1 < Raw.size() ? Raw[I + 1] : '\0';
      switch (State) {
      case LexState::Code:
        if (C == '/' && Next == '/') {
          State = LexState::LineComment;
          CommentText[LineIndex].append(Raw, I + 2, std::string::npos);
          I = Raw.size(); // rest of the line is comment
        } else if (C == '/' && Next == '*') {
          State = LexState::BlockComment;
          ++I;
        } else if (C == '"') {
          // Raw string literal? Look back for R (and not an identifier
          // tail like xR"...).
          if (I >= 1 && Raw[I - 1] == 'R' &&
              (I == 1 || !isIdentChar(Raw[I - 2]))) {
            size_t ParenPos = Raw.find('(', I + 1);
            if (ParenPos != std::string::npos) {
              RawDelimiter =
                  ")" + Raw.substr(I + 1, ParenPos - I - 1) + "\"";
              State = LexState::RawString;
              Scrubbed[I] = '"';
              I = ParenPos; // leave the prefix visible up to (
              break;
            }
          }
          State = LexState::String;
          Scrubbed[I] = '"';
        } else if (C == '\'' && I >= 1 && isIdentChar(Raw[I - 1]) &&
                   I + 1 < Raw.size() && isIdentChar(Raw[I + 1])) {
          // C++14 digit separator (1'000'000): not a char literal.
          Scrubbed[I] = C;
        } else if (C == '\'') {
          State = LexState::Char;
          Scrubbed[I] = '\'';
        } else {
          Scrubbed[I] = C;
        }
        break;
      case LexState::LineComment:
        break; // unreachable: handled by the I = Raw.size() above
      case LexState::BlockComment:
        if (C == '*' && Next == '/') {
          State = LexState::Code;
          ++I;
        } else {
          CommentText[LineIndex].push_back(C);
        }
        break;
      case LexState::String:
        if (C == '\\')
          ++I;
        else if (C == '"') {
          State = LexState::Code;
          Scrubbed[I] = '"';
        }
        break;
      case LexState::Char:
        if (C == '\\')
          ++I;
        else if (C == '\'') {
          State = LexState::Code;
          Scrubbed[I] = '\'';
        }
        break;
      case LexState::RawString:
        if (Raw.compare(I, RawDelimiter.size(), RawDelimiter) == 0) {
          I += RawDelimiter.size() - 1;
          Scrubbed[I] = '"';
          State = LexState::Code;
        }
        break;
      }
    }
    ScrubbedLines.push_back(std::move(Scrubbed));
  }

  // Waiver scan over the collected comment text.
  for (size_t LineIndex = 0; LineIndex < CommentText.size(); ++LineIndex) {
    std::string_view Comment = CommentText[LineIndex];
    size_t Pos = Comment.find("mclint:");
    if (Pos == std::string_view::npos)
      continue;
    std::string_view Directive = trim(Comment.substr(Pos + 7));
    const bool FileScope = startsWith(Directive, "allow-file(");
    const bool LineScope = !FileScope && startsWith(Directive, "allow(");
    if (!FileScope && !LineScope)
      continue;
    const size_t Open = Directive.find('(');
    const size_t Close = Directive.find(')', Open);
    if (Close == std::string_view::npos)
      continue;
    for (std::string &Id :
         parseRuleList(Directive.substr(Open + 1, Close - Open - 1))) {
      if (FileScope) {
        FileWaivers.insert(std::move(Id));
        continue;
      }
      LineWaivers[LineIndex].insert(Id);
      // A stand-alone comment line waives the line that follows it.
      if (trim(ScrubbedLines[LineIndex]).empty() &&
          LineIndex + 1 < LineWaivers.size())
        LineWaivers[LineIndex + 1].insert(std::move(Id));
    }
  }
}

bool SourceFile::isHeader() const {
  return Path.size() >= 2 && (Path.rfind(".h") == Path.size() - 2 ||
                              (Path.size() >= 4 &&
                               Path.rfind(".hpp") == Path.size() - 4));
}

bool SourceFile::isWaived(size_t Index, std::string_view RuleId) const {
  if (FileWaivers.count(std::string(RuleId)))
    return true;
  if (Index >= LineWaivers.size())
    return false;
  return LineWaivers[Index].count(std::string(RuleId)) > 0;
}

} // namespace lint
} // namespace parmonc
