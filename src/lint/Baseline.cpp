//===- lint/Baseline.cpp - Accepted-findings baseline ---------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Baseline.h"

#include "parmonc/lint/Index.h"
#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <charconv>
#include <map>

namespace parmonc {
namespace lint {

namespace {

void appendHex32(std::string &Out, uint32_t Value) {
  static const char Digits[] = "0123456789abcdef";
  for (int Shift = 28; Shift >= 0; Shift -= 4)
    Out.push_back(Digits[(Value >> Shift) & 0xF]);
}

uint32_t lineCrcFor(const Diagnostic &Diag,
                    const std::function<std::string_view(const Diagnostic &)>
                        &LineTextOf) {
  return crc32(trim(LineTextOf(Diag)));
}

std::string keyOf(std::string_view RuleId, std::string_view Path,
                  uint32_t LineCrc) {
  std::string Key(RuleId);
  Key.push_back(' ');
  appendHex32(Key, LineCrc);
  Key.push_back(' ');
  Key.append(normalizedPath(Path));
  return Key;
}

} // namespace

Result<std::vector<BaselineEntry>> loadBaseline(const std::string &Path) {
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Contents.status();
  std::vector<BaselineEntry> Entries;
  size_t LineNumber = 0;
  std::string_view Rest = Contents.value();
  while (!Rest.empty()) {
    ++LineNumber;
    const size_t Break = Rest.find('\n');
    std::string_view Line = Rest.substr(0, Break);
    Rest = Break == std::string_view::npos ? std::string_view{}
                                           : Rest.substr(Break + 1);
    Line = trim(Line);
    if (Line.empty() || Line.front() == '#')
      continue;
    const auto Fields = splitWhitespace(Line);
    BaselineEntry Entry;
    uint32_t Crc = 0;
    const auto HexOk = [&](std::string_view Field) {
      const auto [Ptr, Ec] = std::from_chars(
          Field.data(), Field.data() + Field.size(), Crc, 16);
      return Ec == std::errc() && Ptr == Field.data() + Field.size();
    };
    if (Fields.size() != 3 || !HexOk(Fields[1]))
      return invalidArgument("malformed baseline entry at " + Path + ":" +
                             std::to_string(LineNumber) +
                             " (want '<ruleId> <hex8> <path>')");
    Entry.RuleId = std::string(Fields[0]);
    Entry.LineCrc = Crc;
    Entry.Path = normalizedPath(Fields[2]);
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

std::string
formatBaseline(const std::vector<Diagnostic> &Diags,
               const std::function<std::string_view(const Diagnostic &)>
                   &LineTextOf) {
  std::string Out = "# mclint baseline: accepted findings, one per line.\n"
                    "# <ruleId> <crc32-of-trimmed-line> <path>\n";
  std::vector<std::string> Lines;
  Lines.reserve(Diags.size());
  for (const Diagnostic &Diag : Diags) {
    std::string Line = Diag.RuleId;
    Line.push_back(' ');
    appendHex32(Line, lineCrcFor(Diag, LineTextOf));
    Line.push_back(' ');
    Line.append(normalizedPath(Diag.Path));
    Lines.push_back(std::move(Line));
  }
  std::sort(Lines.begin(), Lines.end());
  for (const std::string &Line : Lines) {
    Out.append(Line);
    Out.push_back('\n');
  }
  return Out;
}

size_t applyBaseline(std::vector<BaselineEntry> Entries,
                     const std::function<std::string_view(const Diagnostic &)>
                         &LineTextOf,
                     std::vector<Diagnostic> &Diags) {
  std::map<std::string, size_t> Budget; // key -> remaining matches
  for (const BaselineEntry &Entry : Entries)
    ++Budget[keyOf(Entry.RuleId, Entry.Path, Entry.LineCrc)];
  const size_t Before = Diags.size();
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diagnostic &Diag) {
                               const auto It = Budget.find(keyOf(
                                   Diag.RuleId, Diag.Path,
                                   lineCrcFor(Diag, LineTextOf)));
                               if (It == Budget.end() || It->second == 0)
                                 return false;
                               --It->second;
                               return true;
                             }),
              Diags.end());
  // Migration alias: R11 (flow-sensitive must-check) supersedes R1 inside
  // function bodies, so old baselines carry R1 entries for lines that now
  // report as R11. Any R1 budget left after the exact pass is honored for
  // R11 findings at the same line; regenerating the baseline rewrites the
  // entries under R11 and retires the alias naturally.
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diagnostic &Diag) {
                               if (Diag.RuleId != "R11")
                                 return false;
                               const auto It = Budget.find(keyOf(
                                   "R1", Diag.Path,
                                   lineCrcFor(Diag, LineTextOf)));
                               if (It == Budget.end() || It->second == 0)
                                 return false;
                               --It->second;
                               return true;
                             }),
              Diags.end());
  // Same migration story one layer up: R16 (interprocedural must-check)
  // claims bare calls R11 used to report when the callee was later found
  // fallible only through its summary. Leftover R11 budget is honored for
  // R16 findings at the same line.
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diagnostic &Diag) {
                               if (Diag.RuleId != "R16")
                                 return false;
                               const auto It = Budget.find(keyOf(
                                   "R11", Diag.Path,
                                   lineCrcFor(Diag, LineTextOf)));
                               if (It == Budget.end() || It->second == 0)
                                 return false;
                               --It->second;
                               return true;
                             }),
              Diags.end());
  return Before - Diags.size();
}

} // namespace lint
} // namespace parmonc
