//===- lint/FlowRules.cpp - Flow-sensitive rules R11-R13 ------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The flow-sensitive rules: each builds a small dataflow problem over the
// per-function CFGs (see Cfg.h / Dataflow.h) and reports findings with a
// step-by-step witness path that SARIF renders as a code flow.
//
//   R11 must-check       — a Status/Result value must be consumed on every
//                          path before scope exit; inside analyzable
//                          bodies it supersedes the token-level R1.
//   R12 stream-lifecycle — a StreamHierarchy/realization-stream handle
//                          must not be copied, escape by reference into a
//                          lambda, or be used after std::move handoff.
//   R13 wire-protocol    — frame sends follow the session state machine
//                          (no sends after Goodbye/Abort, no duplicate
//                          Hello) and FrameDecoder results are checked
//                          before their value is consumed.
//
// All three skip functions the CFG builder could not model soundly
// (goto, preprocessor directives in the body): a missed finding is
// acceptable, a finding on a path that cannot execute is not.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Dataflow.h"
#include "parmonc/lint/Rules.h"

#include <algorithm>
#include <array>
#include <deque>

namespace parmonc {
namespace lint {

namespace {

bool isPunctTok(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

/// First non-comment token index in [I, End), or End.
size_t skipCommentTokens(const std::vector<Token> &Tokens, size_t I,
                         size_t End) {
  while (I < End && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

size_t nextCodeTok(const std::vector<Token> &Tokens, size_t I, size_t End) {
  return skipCommentTokens(Tokens, I + 1, End);
}

/// The statement's index within its function's statement list. transfer()
/// receives references into FunctionCfg::Statements, so identity is
/// recoverable by address.
size_t stmtIndexOf(const FunctionCfg &Cfg, const CfgStatement &Stmt) {
  return static_cast<size_t>(&Stmt - Cfg.Statements.data());
}

bool stmtMentions(const std::vector<Token> &Tokens, const CfgStatement &Stmt,
                  std::string_view Name) {
  for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I)
    if (Tokens[I].Kind == TokenKind::Identifier && Tokens[I].Text == Name)
      return true;
  return false;
}

bool isStatementKeywordName(std::string_view Name) {
  static constexpr std::array<std::string_view, 19> Keywords = {
      "return",   "if",       "while",    "for",     "switch",
      "else",     "do",       "case",     "goto",    "co_return",
      "co_yield", "co_await", "throw",    "using",   "typedef",
      "template", "delete",   "static_assert", "new"};
  return std::find(Keywords.begin(), Keywords.end(), Name) != Keywords.end();
}

/// Parses a call chain `name ((:: | . | ->) name)*` starting at \p I and
/// stopping at the first '('. Returns the final callee name and sets
/// \p OpenParen to that '(' index; empty when the tokens are not a chain.
std::string_view parseCallChain(const std::vector<Token> &Tokens, size_t I,
                                size_t End, size_t &OpenParen) {
  std::string_view Callee;
  while (I < End) {
    if (Tokens[I].Kind != TokenKind::Identifier)
      return {};
    Callee = Tokens[I].Text;
    I = nextCodeTok(Tokens, I, End);
    if (I >= End)
      return {};
    if (isPunctTok(Tokens[I], '(')) {
      OpenParen = I;
      return Callee;
    }
    if (isPunctTok(Tokens[I], ':')) {
      const size_t Second = nextCodeTok(Tokens, I, End);
      if (Second >= End || !isPunctTok(Tokens[Second], ':'))
        return {};
      I = nextCodeTok(Tokens, Second, End);
      continue;
    }
    if (isPunctTok(Tokens[I], '.')) {
      I = nextCodeTok(Tokens, I, End);
      continue;
    }
    if (isPunctTok(Tokens[I], '-')) {
      const size_t Second = nextCodeTok(Tokens, I, End);
      if (Second >= End || !isPunctTok(Tokens[Second], '>'))
        return {};
      I = nextCodeTok(Tokens, Second, End);
      continue;
    }
    return {};
  }
  return {};
}

/// A declaration-shaped statement prefix: optional cv/storage qualifiers,
/// a (possibly qualified, possibly templated) type, then the variable
/// name. TypeName is the last identifier of the type ("Status", "Result",
/// "auto", "StreamHierarchy", ...).
struct DeclShape {
  std::string_view TypeName;
  std::string_view VarName;
  size_t AfterName = 0; ///< Token index just past the variable name.
};

bool parseDeclShape(const std::vector<Token> &Tokens, const CfgStatement &Stmt,
                    DeclShape &Out) {
  const size_t End = Stmt.TokenEnd;
  size_t I = skipCommentTokens(Tokens, Stmt.TokenBegin, End);
  // Leading qualifiers.
  while (I < End && Tokens[I].Kind == TokenKind::Identifier &&
         (Tokens[I].Text == "const" || Tokens[I].Text == "static" ||
          Tokens[I].Text == "constexpr"))
    I = nextCodeTok(Tokens, I, End);
  if (I >= End || Tokens[I].Kind != TokenKind::Identifier)
    return false;
  std::string_view TypeName = Tokens[I].Text;
  if (isStatementKeywordName(TypeName))
    return false;
  I = nextCodeTok(Tokens, I, End);
  // Qualified type: A::B::C.
  while (I < End && isPunctTok(Tokens[I], ':')) {
    const size_t Second = nextCodeTok(Tokens, I, End);
    if (Second >= End || !isPunctTok(Tokens[Second], ':'))
      return false;
    const size_t Ident = nextCodeTok(Tokens, Second, End);
    if (Ident >= End || Tokens[Ident].Kind != TokenKind::Identifier)
      return false;
    TypeName = Tokens[Ident].Text;
    I = nextCodeTok(Tokens, Ident, End);
  }
  // Template arguments: balanced < ... > ('>>' is two '>' tokens).
  if (I < End && isPunctTok(Tokens[I], '<')) {
    int Depth = 0;
    while (I < End) {
      if (isPunctTok(Tokens[I], '<'))
        ++Depth;
      else if (isPunctTok(Tokens[I], '>') && --Depth == 0) {
        I = nextCodeTok(Tokens, I, End);
        break;
      }
      ++I;
      I = skipCommentTokens(Tokens, I, End);
    }
    if (Depth != 0)
      return false;
  }
  if (I >= End || Tokens[I].Kind != TokenKind::Identifier)
    return false;
  Out.TypeName = TypeName;
  Out.VarName = Tokens[I].Text;
  Out.AfterName = nextCodeTok(Tokens, I, End);
  return true;
}

/// True when the statement's tokens contain a top-level '=' assignment
/// (outside any parens/brackets/braces, not part of ==/!=/<=/>=).
bool tokensHaveTopLevelAssignment(const std::vector<Token> &Tokens,
                                  const CfgStatement &Stmt) {
  int Depth = 0;
  for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Punct)
      continue;
    const char C = T.Text.size() == 1 ? T.Text[0] : '\0';
    if (C == '(' || C == '[' || C == '{')
      ++Depth;
    else if (C == ')' || C == ']' || C == '}')
      --Depth;
    else if (C == '=' && Depth == 0) {
      const bool PrevCmp =
          I > Stmt.TokenBegin && Tokens[I - 1].Kind == TokenKind::Punct &&
          Tokens[I - 1].Text.size() == 1 &&
          (Tokens[I - 1].Text[0] == '=' || Tokens[I - 1].Text[0] == '!' ||
           Tokens[I - 1].Text[0] == '<' || Tokens[I - 1].Text[0] == '>');
      const bool NextEq =
          I + 1 < Stmt.TokenEnd && isPunctTok(Tokens[I + 1], '=');
      if (!PrevCmp && !NextEq)
        return true;
    }
  }
  return false;
}

/// One tracked dataflow fact: a named local value with its declaration
/// site.
struct TrackedVar {
  std::string Name;
  size_t DeclStmt = 0;  ///< Statement index of the declaration.
  uint32_t Line = 0;    ///< 0-based declaration line.
  uint32_t Column = 0;  ///< 0-based declaration column.
};

/// Map from each statement to its containing block.
std::vector<uint32_t> stmtBlockMap(const FunctionCfg &Cfg) {
  std::vector<uint32_t> Map(Cfg.Statements.size(), 0);
  for (uint32_t B = 0; B < Cfg.Blocks.size(); ++B)
    for (uint32_t S : Cfg.Blocks[B].Statements)
      Map[S] = B;
  return Map;
}

/// BFS witness path From -> To where every intermediate block satisfies
/// \p Enterable; falls back to empty when none exists.
template <typename Pred>
std::vector<uint32_t> witnessPath(const FunctionCfg &Cfg, uint32_t From,
                                  uint32_t To, Pred &&Enterable) {
  std::vector<uint32_t> Parent(Cfg.Blocks.size(), uint32_t(-1));
  std::deque<uint32_t> Queue;
  Parent[From] = From;
  Queue.push_back(From);
  while (!Queue.empty()) {
    const uint32_t Block = Queue.front();
    Queue.pop_front();
    if (Block == To)
      break;
    for (uint32_t Succ : Cfg.Blocks[Block].Successors) {
      if (Parent[Succ] != uint32_t(-1))
        continue;
      if (Succ != To && !Enterable(Succ))
        continue;
      Parent[Succ] = Block;
      Queue.push_back(Succ);
    }
  }
  if (Parent[To] == uint32_t(-1))
    return {};
  std::vector<uint32_t> Path;
  for (uint32_t Block = To; Block != From; Block = Parent[Block])
    Path.push_back(Block);
  Path.push_back(From);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

/// The first statement location of a block, if it has one.
bool blockLocation(const FunctionCfg &Cfg, uint32_t Block, unsigned &Line,
                   unsigned &Column) {
  if (Cfg.Blocks[Block].Statements.empty())
    return false;
  const CfgStatement &Stmt =
      Cfg.Statements[Cfg.Blocks[Block].Statements.front()];
  Line = Stmt.Line + 1;
  Column = Stmt.Column + 1;
  return true;
}

//===----------------------------------------------------------------------===//
// R11: must-check
//===----------------------------------------------------------------------===//

/// Lattice per tracked value: 0 = not declared on this path, 2 = checked,
/// 1 = live (declared, not yet consumed). Live wins at merges, so a value
/// unchecked on ANY path to the exit stays live there.
class MustCheckClient final : public DataflowClient {
public:
  MustCheckClient(const std::vector<Token> &Tokens, const FunctionCfg &Cfg,
                  std::vector<TrackedVar> Vars)
      : Tokens(Tokens), Cfg(Cfg), Vars(std::move(Vars)) {}

  const std::vector<TrackedVar> &vars() const { return Vars; }

  size_t factCount() const override { return Vars.size(); }

  uint8_t join(uint8_t A, uint8_t B) const override {
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    return (A == 1 || B == 1) ? 1 : 2;
  }

  void transfer(const CfgStatement &Stmt,
                std::vector<uint8_t> &State) const override {
    const size_t Index = stmtIndexOf(Cfg, Stmt);
    for (size_t V = 0; V < Vars.size(); ++V) {
      if (Index == Vars[V].DeclStmt)
        State[V] = 1;
      else if (State[V] != 0 && stmtMentions(Tokens, Stmt, Vars[V].Name))
        State[V] = 2;
    }
  }

private:
  const std::vector<Token> &Tokens;
  const FunctionCfg &Cfg;
  std::vector<TrackedVar> Vars;
};

class MustCheckRule final : public Rule {
public:
  std::string_view id() const override { return "R11"; }
  std::string_view name() const override { return "must-check"; }
  std::string_view summary() const override {
    return "Status/Result values must be consumed on every path to scope "
           "exit";
  }
  std::string_view rationale() const override {
    return "R1 sees one statement at a time, so a Status that is stored "
           "and then forgotten on just one branch slips through: the happy "
           "path checks it, the early return does not, and a save-point "
           "failure on that path is absorbed exactly like a discarded "
           "call. This rule runs a forward dataflow over the function CFG "
           "— live values win at merge points — and flags any "
           "Status/Result local still unconsumed when some path reaches "
           "the end of the function. Inside bodies it can analyze, it "
           "also takes over R1's discarded-call check, so each violation "
           "is reported exactly once, with the witness path attached.";
  }
  std::string_view example() const override {
    return "  Status S = writeSnapshot(Path, State);\n"
           "  if (Verbose) log(S);       // flagged: unchecked when !Verbose\n"
           "  ...\n"
           "  Status S = writeSnapshot(Path, State);\n"
           "  if (!S.ok()) return S;     // ok: consumed on every path";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    const std::vector<Token> &Tokens = File.tokens();
    for (const FunctionCfg &Cfg : File.functions()) {
      if (!Cfg.analyzable())
        continue;
      checkDiscards(File, Cfg, Context, Out);
      std::vector<TrackedVar> Vars = collectVars(Tokens, Cfg, Context);
      if (Vars.empty())
        continue;
      MustCheckClient Client(Tokens, Cfg, std::move(Vars));
      const DataflowResult Result = runForwardDataflow(Cfg, Client);
      if (!Result.Reached[Cfg.Exit])
        continue;
      const std::vector<uint8_t> &AtExit = Result.In[Cfg.Exit];
      for (size_t V = 0; V < Client.vars().size(); ++V) {
        if (AtExit[V] != 1)
          continue;
        const TrackedVar &Var = Client.vars()[V];
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Var.Line + 1;
        Diag.Column = Var.Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message = "fallible value '" + Var.Name +
                       "' is not checked on every path to scope exit; "
                       "handle its Status on all branches";
        Diag.Flow = buildFlow(Tokens, Cfg, Var);
        Out.push_back(std::move(Diag));
      }
    }
  }

private:
  /// Locals whose value must be consumed: `Status X = ...`,
  /// `Result<...> X = ...`, and `auto X = <fallible>(...)`.
  static std::vector<TrackedVar> collectVars(const std::vector<Token> &Tokens,
                                             const FunctionCfg &Cfg,
                                             const LintContext &Context) {
    std::vector<TrackedVar> Vars;
    for (size_t S = 0; S < Cfg.Statements.size(); ++S) {
      const CfgStatement &Stmt = Cfg.Statements[S];
      if (Stmt.Kind != StmtKind::Plain)
        continue;
      DeclShape Shape;
      if (!parseDeclShape(Tokens, Stmt, Shape))
        continue;
      if (Shape.AfterName >= Stmt.TokenEnd ||
          !isPunctTok(Tokens[Shape.AfterName], '='))
        continue;
      bool Tracked = false;
      if (Shape.TypeName == "Status" || Shape.TypeName == "Result") {
        Tracked = true;
      } else if (Shape.TypeName == "auto") {
        size_t OpenParen = 0;
        const std::string_view Callee = parseCallChain(
            Tokens, nextCodeTok(Tokens, Shape.AfterName, Stmt.TokenEnd),
            Stmt.TokenEnd, OpenParen);
        Tracked = !Callee.empty() &&
                  Context.NodiscardFunctions.find(Callee) !=
                      Context.NodiscardFunctions.end();
      }
      if (!Tracked)
        continue;
      TrackedVar Var;
      Var.Name = std::string(Shape.VarName);
      Var.DeclStmt = S;
      Var.Line = Stmt.Line;
      Var.Column = Stmt.Column;
      // A redeclaration of the same name replaces the earlier fact; the
      // dataflow cannot distinguish shadowed locals by name alone.
      auto Existing =
          std::find_if(Vars.begin(), Vars.end(), [&](const TrackedVar &V) {
            return V.Name == Var.Name;
          });
      if (Existing != Vars.end())
        *Existing = std::move(Var);
      else
        Vars.push_back(std::move(Var));
    }
    return Vars;
  }

  /// The R1-superseding half: a bare fallible call whose result vanishes.
  /// Same heuristic as R1, but over statement tokens, so it is reported
  /// under this rule inside bodies where R1 has stood down.
  void checkDiscards(const SourceFile &File, const FunctionCfg &Cfg,
                     const LintContext &Context,
                     std::vector<Diagnostic> &Out) const {
    const std::vector<Token> &Tokens = File.tokens();
    for (const CfgStatement &Stmt : Cfg.Statements) {
      if (Stmt.Kind != StmtKind::Plain)
        continue;
      const size_t First =
          skipCommentTokens(Tokens, Stmt.TokenBegin, Stmt.TokenEnd);
      if (First >= Stmt.TokenEnd ||
          Tokens[First].Kind != TokenKind::Identifier)
        continue; // `(void)f()` and other cast-led statements start with '('
      if (isStatementKeywordName(Tokens[First].Text))
        continue;
      if (tokensHaveTopLevelAssignment(Tokens, Stmt))
        continue;
      size_t OpenParen = 0;
      const std::string_view Callee =
          parseCallChain(Tokens, First, Stmt.TokenEnd, OpenParen);
      if (Callee.empty() || Context.NodiscardFunctions.find(Callee) ==
                                Context.NodiscardFunctions.end())
        continue;
      Diagnostic Diag;
      Diag.Path = File.path();
      Diag.Line = Stmt.Line + 1;
      Diag.Column = Stmt.Column + 1;
      Diag.RuleId = std::string(id());
      Diag.RuleName = std::string(name());
      Diag.Message = "result of fallible call '" + std::string(Callee) +
                     "' is discarded; handle the Status or spell the "
                     "discard '(void)'";
      Out.push_back(std::move(Diag));
    }
  }

  /// Witness: declaration -> blocks that avoid every consuming statement
  /// -> scope exit.
  static std::vector<FlowStep> buildFlow(const std::vector<Token> &Tokens,
                                         const FunctionCfg &Cfg,
                                         const TrackedVar &Var) {
    std::vector<FlowStep> Flow;
    Flow.push_back({Var.Line + 1, Var.Column + 1,
                    "fallible value '" + Var.Name + "' is assigned here"});
    const std::vector<uint32_t> Map = stmtBlockMap(Cfg);
    const uint32_t DeclBlock = Map[Var.DeclStmt];
    const std::vector<uint32_t> Path =
        witnessPath(Cfg, DeclBlock, Cfg.Exit, [&](uint32_t Block) {
          for (uint32_t S : Cfg.Blocks[Block].Statements)
            if (S != Var.DeclStmt &&
                stmtMentions(Tokens, Cfg.Statements[S], Var.Name))
              return false;
          return true;
        });
    size_t Steps = 0;
    for (size_t I = 1; I + 1 < Path.size() && Steps < 6; ++I) {
      unsigned Line = 0, Column = 0;
      if (blockLocation(Cfg, Path[I], Line, Column)) {
        Flow.push_back({Line, Column,
                        "control continues here without checking '" +
                            Var.Name + "'"});
        ++Steps;
      }
    }
    Flow.push_back({Cfg.BodyLastLine + 1, 1,
                    "scope exits without '" + Var.Name +
                        "' being checked on this path"});
    return Flow;
  }
};

//===----------------------------------------------------------------------===//
// R12: stream-lifecycle
//===----------------------------------------------------------------------===//

/// Lattice per handle: 0 = untracked, 1 = live, 2 = moved away. Moved
/// dominates at merges (may-analysis): if any path handed the stream off,
/// a later touch is a use-after-handoff.
class StreamLifecycleClient final : public DataflowClient {
public:
  StreamLifecycleClient(const std::vector<Token> &Tokens,
                        const FunctionCfg &Cfg, std::vector<TrackedVar> Vars)
      : Tokens(Tokens), Cfg(Cfg), Vars(std::move(Vars)) {}

  const std::vector<TrackedVar> &vars() const { return Vars; }

  size_t factCount() const override { return Vars.size(); }

  uint8_t join(uint8_t A, uint8_t B) const override {
    return std::max(A, B);
  }

  void transfer(const CfgStatement &Stmt,
                std::vector<uint8_t> &State) const override {
    const size_t Index = stmtIndexOf(Cfg, Stmt);
    for (size_t V = 0; V < Vars.size(); ++V) {
      if (Index == Vars[V].DeclStmt)
        State[V] = 1;
      else if (State[V] == 1 && stmtMovesVar(Tokens, Stmt, Vars[V].Name))
        State[V] = 2;
    }
  }

  /// True when the statement contains `move ( Name )` (with or without
  /// the std:: qualification).
  static bool stmtMovesVar(const std::vector<Token> &Tokens,
                           const CfgStatement &Stmt, std::string_view Name) {
    for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
      if (Tokens[I].Kind != TokenKind::Identifier || Tokens[I].Text != "move")
        continue;
      size_t J = nextCodeTok(Tokens, I, Stmt.TokenEnd);
      if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], '('))
        continue;
      J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
      if (J >= Stmt.TokenEnd || Tokens[J].Kind != TokenKind::Identifier ||
          Tokens[J].Text != Name)
        continue;
      J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
      if (J < Stmt.TokenEnd && isPunctTok(Tokens[J], ')'))
        return true;
    }
    return false;
  }

private:
  const std::vector<Token> &Tokens;
  const FunctionCfg &Cfg;
  std::vector<TrackedVar> Vars;
};

class StreamLifecycleRule final : public Rule {
public:
  std::string_view id() const override { return "R12"; }
  std::string_view name() const override { return "stream-lifecycle"; }
  std::string_view summary() const override {
    return "stream handles must not be copied, escape by reference, or be "
           "used after handoff";
  }
  std::string_view rationale() const override {
    return "A StreamHierarchy or realization stream is a position in the "
           "eq. (8) leap partition: copying one silently forks the "
           "recurrence so two consumers replay the same substream, and "
           "touching one after it was std::move'd into a WorkerGroup races "
           "the worker that now owns it. Both corrupt the merged estimate "
           "without any crash. This rule tracks each handle through the "
           "function CFG: construction makes it live, a std::move hands it "
           "off, and any later touch — on any path — is flagged, as are "
           "copies and by-reference lambda captures that let the handle "
           "escape its scope.";
  }
  std::string_view example() const override {
    return "  Group.adopt(std::move(Stream));\n"
           "  Stream.next();                 // flagged: used after handoff\n"
           "  ...\n"
           "  StreamHierarchy Fork = Root;   // flagged: copies the stream";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    // rng/ owns the recurrence internals; handle plumbing there is the
    // implementation itself, not a client bypassing it.
    if (pathContainsComponent(File.path(), "rng"))
      return;
    const std::vector<Token> &Tokens = File.tokens();
    for (const FunctionCfg &Cfg : File.functions()) {
      if (!Cfg.analyzable())
        continue;
      std::vector<TrackedVar> Vars = collectHandles(Tokens, Cfg);
      if (Vars.empty())
        continue;
      StreamLifecycleClient Client(Tokens, Cfg, std::move(Vars));
      const DataflowResult Result = runForwardDataflow(Cfg, Client);
      reportBlockWalk(File, Cfg, Client, Result, Out);
    }
  }

private:
  /// Handles: `StreamHierarchy X ...` declarations and
  /// `Lcg128/auto X = <cursor>.beginRealization(...)`.
  static std::vector<TrackedVar>
  collectHandles(const std::vector<Token> &Tokens, const FunctionCfg &Cfg) {
    std::vector<TrackedVar> Vars;
    for (size_t S = 0; S < Cfg.Statements.size(); ++S) {
      const CfgStatement &Stmt = Cfg.Statements[S];
      if (Stmt.Kind != StmtKind::Plain)
        continue;
      DeclShape Shape;
      if (!parseDeclShape(Tokens, Stmt, Shape))
        continue;
      bool Tracked = Shape.TypeName == "StreamHierarchy";
      if (!Tracked && (Shape.TypeName == "Lcg128" ||
                       Shape.TypeName == "auto")) {
        if (Shape.AfterName < Stmt.TokenEnd &&
            isPunctTok(Tokens[Shape.AfterName], '=')) {
          size_t OpenParen = 0;
          const std::string_view Callee = parseCallChain(
              Tokens, nextCodeTok(Tokens, Shape.AfterName, Stmt.TokenEnd),
              Stmt.TokenEnd, OpenParen);
          Tracked = Callee == "beginRealization";
        }
      }
      if (!Tracked)
        continue;
      TrackedVar Var;
      Var.Name = std::string(Shape.VarName);
      Var.DeclStmt = S;
      Var.Line = Stmt.Line;
      Var.Column = Stmt.Column;
      auto Existing =
          std::find_if(Vars.begin(), Vars.end(), [&](const TrackedVar &V) {
            return V.Name == Var.Name;
          });
      if (Existing != Vars.end())
        *Existing = std::move(Var);
      else
        Vars.push_back(std::move(Var));
    }
    return Vars;
  }

  void reportBlockWalk(const SourceFile &File, const FunctionCfg &Cfg,
                       const StreamLifecycleClient &Client,
                       const DataflowResult &Result,
                       std::vector<Diagnostic> &Out) const {
    const std::vector<Token> &Tokens = File.tokens();
    const std::vector<TrackedVar> &Vars = Client.vars();
    for (uint32_t B = 0; B < Cfg.Blocks.size(); ++B) {
      if (!Result.Reached[B])
        continue;
      std::vector<uint8_t> State = Result.In[B];
      for (uint32_t S : Cfg.Blocks[B].Statements) {
        const CfgStatement &Stmt = Cfg.Statements[S];
        for (size_t V = 0; V < Vars.size(); ++V) {
          const TrackedVar &Var = Vars[V];
          const bool Mentions = stmtMentions(Tokens, Stmt, Var.Name);
          if (!Mentions || S == Var.DeclStmt) {
            if (S == Var.DeclStmt)
              checkCopyInit(File, Tokens, Cfg, Stmt, Vars, State, Out);
            continue;
          }
          const bool Moves =
              StreamLifecycleClient::stmtMovesVar(Tokens, Stmt, Var.Name);
          if (State[V] == 2 && !Moves)
            reportUseAfterHandoff(File, Tokens, Cfg, Stmt, Var, Out);
          else if (State[V] == 1 && !Moves)
            checkLambdaEscape(File, Tokens, Stmt, Var, Out);
        }
        Client.transfer(Stmt, State);
      }
    }
  }

  /// `StreamHierarchy Y = X;` / `StreamHierarchy Y(X);` where X is a
  /// tracked handle: a copy forks the recurrence.
  void checkCopyInit(const SourceFile &File, const std::vector<Token> &Tokens,
                     const FunctionCfg &Cfg, const CfgStatement &Stmt,
                     const std::vector<TrackedVar> &Vars,
                     const std::vector<uint8_t> &State,
                     std::vector<Diagnostic> &Out) const {
    (void)Cfg;
    DeclShape Shape;
    if (!parseDeclShape(Tokens, Stmt, Shape) ||
        Shape.TypeName != "StreamHierarchy")
      return;
    size_t I = Shape.AfterName;
    if (I >= Stmt.TokenEnd)
      return;
    char Close = 0;
    if (isPunctTok(Tokens[I], '='))
      Close = ';';
    else if (isPunctTok(Tokens[I], '('))
      Close = ')';
    else if (isPunctTok(Tokens[I], '{'))
      Close = '}';
    else
      return;
    I = nextCodeTok(Tokens, I, Stmt.TokenEnd);
    if (I >= Stmt.TokenEnd || Tokens[I].Kind != TokenKind::Identifier)
      return;
    const std::string_view Source = Tokens[I].Text;
    const size_t After = nextCodeTok(Tokens, I, Stmt.TokenEnd);
    if (After >= Stmt.TokenEnd || !isPunctTok(Tokens[After], Close))
      return;
    for (size_t V = 0; V < Vars.size(); ++V) {
      if (Vars[V].Name != Source || State[V] == 0)
        continue;
      Diagnostic Diag;
      Diag.Path = File.path();
      Diag.Line = Stmt.Line + 1;
      Diag.Column = Stmt.Column + 1;
      Diag.RuleId = std::string(id());
      Diag.RuleName = std::string(name());
      Diag.Message = "'" + std::string(Shape.VarName) +
                     "' copies stream handle '" + std::string(Source) +
                     "'; a copied stream replays the same substream — "
                     "derive a child stream or move the handle";
      Diag.Flow.push_back({Vars[V].Line + 1, Vars[V].Column + 1,
                           "stream handle '" + std::string(Source) +
                               "' is created here"});
      Diag.Flow.push_back({Stmt.Line + 1, Stmt.Column + 1,
                           "copied here, forking the recurrence"});
      Out.push_back(std::move(Diag));
      return;
    }
  }

  void reportUseAfterHandoff(const SourceFile &File,
                             const std::vector<Token> &Tokens,
                             const FunctionCfg &Cfg, const CfgStatement &Stmt,
                             const TrackedVar &Var,
                             std::vector<Diagnostic> &Out) const {
    Diagnostic Diag;
    Diag.Path = File.path();
    Diag.Line = Stmt.Line + 1;
    Diag.Column = Stmt.Column + 1;
    Diag.RuleId = std::string(id());
    Diag.RuleName = std::string(name());
    Diag.Message = "stream handle '" + Var.Name +
                   "' is used after being moved; the worker that received "
                   "it owns the recurrence now";
    Diag.Flow.push_back({Var.Line + 1, Var.Column + 1,
                         "stream handle '" + Var.Name +
                             "' is created here"});
    for (const CfgStatement &Other : Cfg.Statements)
      if (StreamLifecycleClient::stmtMovesVar(Tokens, Other, Var.Name)) {
        Diag.Flow.push_back({Other.Line + 1, Other.Column + 1,
                             "handed off by std::move here"});
        break;
      }
    Diag.Flow.push_back(
        {Stmt.Line + 1, Stmt.Column + 1, "used here after the handoff"});
    Out.push_back(std::move(Diag));
  }

  /// A live handle captured by reference into a lambda within one
  /// statement: the lambda can outlive the scope that owns the stream.
  void checkLambdaEscape(const SourceFile &File,
                         const std::vector<Token> &Tokens,
                         const CfgStatement &Stmt, const TrackedVar &Var,
                         std::vector<Diagnostic> &Out) const {
    for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
      if (!isPunctTok(Tokens[I], '['))
        continue;
      const size_t Amp = nextCodeTok(Tokens, I, Stmt.TokenEnd);
      if (Amp >= Stmt.TokenEnd || !isPunctTok(Tokens[Amp], '&'))
        continue;
      // Matching ']' of the capture list.
      int Depth = 0;
      size_t CloseBracket = Stmt.TokenEnd;
      for (size_t J = I; J < Stmt.TokenEnd; ++J) {
        if (isPunctTok(Tokens[J], '['))
          ++Depth;
        else if (isPunctTok(Tokens[J], ']') && --Depth == 0) {
          CloseBracket = J;
          break;
        }
      }
      if (CloseBracket >= Stmt.TokenEnd)
        continue;
      // The lambda body: the first '{' after the capture list.
      size_t OpenBrace = Stmt.TokenEnd;
      for (size_t J = CloseBracket + 1; J < Stmt.TokenEnd; ++J)
        if (isPunctTok(Tokens[J], '{')) {
          OpenBrace = J;
          break;
        }
      if (OpenBrace >= Stmt.TokenEnd)
        continue;
      for (size_t J = OpenBrace + 1; J < Stmt.TokenEnd; ++J) {
        if (Tokens[J].Kind != TokenKind::Identifier ||
            Tokens[J].Text != Var.Name)
          continue;
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Stmt.Line + 1;
        Diag.Column = Stmt.Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message = "stream handle '" + Var.Name +
                       "' escapes by-reference into a lambda; the capture "
                       "can outlive the rank that owns the stream";
        Diag.Flow.push_back({Var.Line + 1, Var.Column + 1,
                             "stream handle '" + Var.Name +
                                 "' is created here"});
        Diag.Flow.push_back({Tokens[J].Line + 1, Tokens[J].Column + 1,
                             "captured by reference here"});
        Out.push_back(std::move(Diag));
        return;
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R13: wire-protocol
//===----------------------------------------------------------------------===//

/// Frame kinds recognized as protocol events.
enum class SendEffect : uint8_t { None, Hello, Terminator, Other };

SendEffect sendEffectOf(std::string_view Kind) {
  if (Kind == "Hello")
    return SendEffect::Hello;
  if (Kind == "Goodbye" || Kind == "Abort")
    return SendEffect::Terminator;
  if (Kind == "Data" || Kind == "BarrierArrive" || Kind == "BarrierRelease" ||
      Kind == "Dead" || Kind == "Stop")
    return SendEffect::Other;
  return SendEffect::None;
}

/// A `FrameKind::<kind>` use counts as a *send* only when it appears as a
/// call argument — the previous code token is '(' or ','. Comparisons
/// (`== FrameKind::X`; '==' lexes as two '=' tokens), case labels and
/// declarations are excluded by that test.
template <typename Callback>
void forEachSend(const std::vector<Token> &Tokens, const CfgStatement &Stmt,
                 Callback &&OnSend) {
  for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
    if (Tokens[I].Kind != TokenKind::Identifier ||
        Tokens[I].Text != "FrameKind")
      continue;
    // Previous code token.
    size_t Prev = I;
    while (Prev > Stmt.TokenBegin &&
           Tokens[Prev - 1].Kind == TokenKind::Comment)
      --Prev;
    if (Prev == Stmt.TokenBegin)
      continue;
    const Token &P = Tokens[Prev - 1];
    if (!isPunctTok(P, '(') && !isPunctTok(P, ','))
      continue;
    size_t J = nextCodeTok(Tokens, I, Stmt.TokenEnd);
    if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], ':'))
      continue;
    J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
    if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], ':'))
      continue;
    J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
    if (J >= Stmt.TokenEnd || Tokens[J].Kind != TokenKind::Identifier)
      continue;
    const SendEffect Effect = sendEffectOf(Tokens[J].Text);
    if (Effect != SendEffect::None)
      OnSend(Effect, Tokens[J]);
  }
}

/// Fact 0 is the protocol state: 0 = open, 1 = Hello sent, 2 = closed by
/// Goodbye/Abort (join = max: a close on any path poisons the merge).
/// Facts 1..N track FrameDecoder results: 0 = untracked, 2 = checked,
/// 1 = unchecked (unchecked wins at merges).
class WireProtocolClient final : public DataflowClient {
public:
  WireProtocolClient(const std::vector<Token> &Tokens, const FunctionCfg &Cfg,
                     std::vector<TrackedVar> DecodeVars)
      : Tokens(Tokens), Cfg(Cfg), DecodeVars(std::move(DecodeVars)) {}

  const std::vector<TrackedVar> &decodeVars() const { return DecodeVars; }

  size_t factCount() const override { return 1 + DecodeVars.size(); }

  uint8_t join(uint8_t A, uint8_t B) const override {
    // Used for the decode facts; the protocol fact joins through
    // joinProtocol below via the framework's elementwise call — but the
    // framework has one join for all facts, so encode both: values 0..2
    // behave identically under "live/unchecked wins" for decode facts and
    // "max" for the protocol fact only if we can tell them apart. We
    // cannot, so the protocol fact uses the shifted range 0/3/4 instead.
    if (A >= 3 || B >= 3)
      return std::max(A, B); // protocol fact: closed (4) dominates
    if (A == 0)
      return B;
    if (B == 0)
      return A;
    return (A == 1 || B == 1) ? 1 : 2;
  }

  // Protocol fact encoding.
  static constexpr uint8_t ProtoOpen = 0;
  static constexpr uint8_t ProtoHello = 3;
  static constexpr uint8_t ProtoClosed = 4;

  void transfer(const CfgStatement &Stmt,
                std::vector<uint8_t> &State) const override {
    forEachSend(Tokens, Stmt, [&](SendEffect Effect, const Token &) {
      if (Effect == SendEffect::Hello && State[0] < ProtoHello)
        State[0] = ProtoHello;
      else if (Effect == SendEffect::Terminator)
        State[0] = ProtoClosed;
    });
    const size_t Index = stmtIndexOf(Cfg, Stmt);
    for (size_t V = 0; V < DecodeVars.size(); ++V) {
      if (Index == DecodeVars[V].DeclStmt)
        State[1 + V] = 1;
      else if (State[1 + V] != 0 &&
               stmtMentions(Tokens, Stmt, DecodeVars[V].Name))
        State[1 + V] = 2;
    }
  }

private:
  const std::vector<Token> &Tokens;
  const FunctionCfg &Cfg;
  std::vector<TrackedVar> DecodeVars;
};

class WireProtocolRule final : public Rule {
public:
  std::string_view id() const override { return "R13"; }
  std::string_view name() const override { return "wire-protocol"; }
  std::string_view summary() const override {
    return "frame sends follow the session state machine and decode "
           "results are checked before use";
  }
  std::string_view rationale() const override {
    return "The mpsim wire protocol is a state machine: Hello opens a "
           "session once, Goodbye or Abort closes it, and nothing may be "
           "sent after the close — a peer that has torn down its decoder "
           "treats a late frame as corruption. Likewise FrameDecoder "
           "poisons itself permanently on a malformed frame, so consuming "
           "next()'s value without checking the Result first turns a "
           "detected protocol error into an undetected crash or, worse, a "
           "frame parsed from garbage. This rule runs the state machine "
           "along every CFG path and tracks each decode result from "
           "declaration to first use.";
  }
  std::string_view example() const override {
    return "  send(encodeFrame(FrameKind::Goodbye, {}));\n"
           "  send(encodeFrame(FrameKind::Data, P)); // flagged: after close\n"
           "  ...\n"
           "  auto F = Decoder.next();\n"
           "  use(F.value());                        // flagged: unchecked";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    const std::vector<Token> &Tokens = File.tokens();
    // Cheap file gates: no FrameKind tokens means no protocol sends, no
    // FrameDecoder token means no decode results to track.
    bool HasFrameKind = false, HasDecoder = false;
    for (const Token &T : Tokens) {
      if (T.Kind != TokenKind::Identifier)
        continue;
      HasFrameKind |= T.Text == "FrameKind";
      HasDecoder |= T.Text == "FrameDecoder";
    }
    if (!HasFrameKind && !HasDecoder)
      return;
    for (const FunctionCfg &Cfg : File.functions()) {
      if (!Cfg.analyzable())
        continue;
      std::vector<TrackedVar> DecodeVars =
          HasDecoder ? collectDecodeVars(Tokens, Cfg)
                     : std::vector<TrackedVar>();
      WireProtocolClient Client(Tokens, Cfg, std::move(DecodeVars));
      const DataflowResult Result = runForwardDataflow(Cfg, Client);
      reportBlockWalk(File, Cfg, Client, Result, HasDecoder, Out);
    }
  }

private:
  /// Decode results: `auto/Result<...> R = <decoder>.next();` where the
  /// call is the whole initializer.
  static std::vector<TrackedVar>
  collectDecodeVars(const std::vector<Token> &Tokens, const FunctionCfg &Cfg) {
    std::vector<TrackedVar> Vars;
    for (size_t S = 0; S < Cfg.Statements.size(); ++S) {
      const CfgStatement &Stmt = Cfg.Statements[S];
      if (Stmt.Kind != StmtKind::Plain)
        continue;
      DeclShape Shape;
      if (!parseDeclShape(Tokens, Stmt, Shape))
        continue;
      if (Shape.TypeName != "auto" && Shape.TypeName != "Result")
        continue;
      if (Shape.AfterName >= Stmt.TokenEnd ||
          !isPunctTok(Tokens[Shape.AfterName], '='))
        continue;
      size_t OpenParen = 0;
      const std::string_view Callee = parseCallChain(
          Tokens, nextCodeTok(Tokens, Shape.AfterName, Stmt.TokenEnd),
          Stmt.TokenEnd, OpenParen);
      if (Callee != "next")
        continue;
      // The call must be the entire initializer: `D.next().value()` is an
      // inline use reported separately, not a tracked Result.
      size_t CloseParen = Stmt.TokenEnd;
      int Depth = 0;
      for (size_t J = OpenParen; J < Stmt.TokenEnd; ++J) {
        if (isPunctTok(Tokens[J], '('))
          ++Depth;
        else if (isPunctTok(Tokens[J], ')') && --Depth == 0) {
          CloseParen = J;
          break;
        }
      }
      if (CloseParen >= Stmt.TokenEnd)
        continue;
      const size_t After = nextCodeTok(Tokens, CloseParen, Stmt.TokenEnd);
      if (After < Stmt.TokenEnd && !isPunctTok(Tokens[After], ';'))
        continue;
      TrackedVar Var;
      Var.Name = std::string(Shape.VarName);
      Var.DeclStmt = S;
      Var.Line = Stmt.Line;
      Var.Column = Stmt.Column;
      Vars.push_back(std::move(Var));
    }
    return Vars;
  }

  void reportBlockWalk(const SourceFile &File, const FunctionCfg &Cfg,
                       const WireProtocolClient &Client,
                       const DataflowResult &Result, bool HasDecoder,
                       std::vector<Diagnostic> &Out) const {
    const std::vector<Token> &Tokens = File.tokens();
    const std::vector<TrackedVar> &Vars = Client.decodeVars();
    for (uint32_t B = 0; B < Cfg.Blocks.size(); ++B) {
      if (!Result.Reached[B])
        continue;
      std::vector<uint8_t> State = Result.In[B];
      for (uint32_t S : Cfg.Blocks[B].Statements) {
        const CfgStatement &Stmt = Cfg.Statements[S];
        // Protocol-order violations at this statement, given the state on
        // entry to it. Walk the sends in source order, updating a local
        // copy so `send(Goodbye); send(Data);` in one statement — one
        // statement holds one send in practice — still sequences.
        uint8_t Proto = State[0];
        forEachSend(Tokens, Stmt, [&](SendEffect Effect, const Token &Kind) {
          if (Proto == WireProtocolClient::ProtoClosed)
            reportSendAfterClose(File, Cfg, Stmt, Kind, Out);
          else if (Effect == SendEffect::Hello &&
                   Proto == WireProtocolClient::ProtoHello)
            reportDuplicateHello(File, Cfg, Stmt, Kind, Out);
          if (Effect == SendEffect::Hello &&
              Proto < WireProtocolClient::ProtoHello)
            Proto = WireProtocolClient::ProtoHello;
          else if (Effect == SendEffect::Terminator)
            Proto = WireProtocolClient::ProtoClosed;
        });
        if (HasDecoder)
          checkDecodeUses(File, Tokens, Stmt, Vars, State, Out);
        Client.transfer(Stmt, State);
      }
    }
    if (HasDecoder)
      checkInlineDecodeUses(File, Tokens, Cfg, Out);
  }

  /// The earliest Goodbye/Abort send in the function, for witness steps.
  static bool findCloseSite(const std::vector<Token> &Tokens,
                            const FunctionCfg &Cfg, unsigned &Line,
                            unsigned &Column) {
    for (const CfgStatement &Stmt : Cfg.Statements) {
      bool Found = false;
      forEachSend(Tokens, Stmt, [&](SendEffect Effect, const Token &Kind) {
        if (!Found && Effect == SendEffect::Terminator) {
          Line = Kind.Line + 1;
          Column = Kind.Column + 1;
          Found = true;
        }
      });
      if (Found)
        return true;
    }
    return false;
  }

  void reportSendAfterClose(const SourceFile &File, const FunctionCfg &Cfg,
                            const CfgStatement &Stmt, const Token &Kind,
                            std::vector<Diagnostic> &Out) const {
    Diagnostic Diag;
    Diag.Path = File.path();
    Diag.Line = Kind.Line + 1;
    Diag.Column = Kind.Column + 1;
    Diag.RuleId = std::string(id());
    Diag.RuleName = std::string(name());
    Diag.Message = "frame '" + Kind.Text +
                   "' is sent after the session was closed by "
                   "Goodbye/Abort on this path";
    unsigned CloseLine = 0, CloseColumn = 0;
    if (findCloseSite(File.tokens(), Cfg, CloseLine, CloseColumn))
      Diag.Flow.push_back({CloseLine, CloseColumn,
                           "the session is closed here (Goodbye/Abort)"});
    Diag.Flow.push_back({Kind.Line + 1, Kind.Column + 1,
                         "'" + Kind.Text + "' frame sent after the close"});
    (void)Stmt;
    Out.push_back(std::move(Diag));
  }

  void reportDuplicateHello(const SourceFile &File, const FunctionCfg &Cfg,
                            const CfgStatement &Stmt, const Token &Kind,
                            std::vector<Diagnostic> &Out) const {
    Diagnostic Diag;
    Diag.Path = File.path();
    Diag.Line = Kind.Line + 1;
    Diag.Column = Kind.Column + 1;
    Diag.RuleId = std::string(id());
    Diag.RuleName = std::string(name());
    Diag.Message =
        "'Hello' is sent again on a path where the session is already "
        "open; Hello must open a session exactly once";
    // Witness: the first Hello send in source order other than this one.
    for (const CfgStatement &Other : Cfg.Statements) {
      bool Found = false;
      forEachSend(File.tokens(), Other,
                  [&](SendEffect Effect, const Token &K) {
                    if (!Found && Effect == SendEffect::Hello &&
                        (K.Line != Kind.Line || K.Column != Kind.Column)) {
                      Diag.Flow.push_back({K.Line + 1, K.Column + 1,
                                           "the session is opened here"});
                      Found = true;
                    }
                  });
      if (Found)
        break;
    }
    Diag.Flow.push_back(
        {Kind.Line + 1, Kind.Column + 1, "'Hello' sent again here"});
    (void)Stmt;
    Out.push_back(std::move(Diag));
  }

  /// Value-uses of unchecked decode results within one statement, in
  /// token order: `R.value(`, `R->`, `*R` flag; any other mention checks.
  void checkDecodeUses(const SourceFile &File,
                       const std::vector<Token> &Tokens,
                       const CfgStatement &Stmt,
                       const std::vector<TrackedVar> &Vars,
                       std::vector<uint8_t> &State,
                       std::vector<Diagnostic> &Out) const {
    for (size_t V = 0; V < Vars.size(); ++V) {
      if (State[1 + V] != 1)
        continue;
      const TrackedVar &Var = Vars[V];
      for (size_t I = Stmt.TokenBegin;
           I < Stmt.TokenEnd && State[1 + V] == 1; ++I) {
        if (Tokens[I].Kind != TokenKind::Identifier ||
            Tokens[I].Text != Var.Name)
          continue;
        bool ValueUse = false;
        // `*R`
        if (I > Stmt.TokenBegin && isPunctTok(Tokens[I - 1], '*'))
          ValueUse = true;
        const size_t Next = nextCodeTok(Tokens, I, Stmt.TokenEnd);
        if (!ValueUse && Next < Stmt.TokenEnd) {
          if (isPunctTok(Tokens[Next], '.')) {
            const size_t Member = nextCodeTok(Tokens, Next, Stmt.TokenEnd);
            ValueUse = Member < Stmt.TokenEnd &&
                       Tokens[Member].Kind == TokenKind::Identifier &&
                       Tokens[Member].Text == "value";
          } else if (isPunctTok(Tokens[Next], '-')) {
            const size_t Arrow = nextCodeTok(Tokens, Next, Stmt.TokenEnd);
            ValueUse =
                Arrow < Stmt.TokenEnd && isPunctTok(Tokens[Arrow], '>');
          }
        }
        if (!ValueUse) {
          State[1 + V] = 2; // any other touch counts as a check
          break;
        }
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Tokens[I].Line + 1;
        Diag.Column = Tokens[I].Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message = "decode result '" + Var.Name +
                       "' is used before being checked; FrameDecoder "
                       "poisons itself on malformed input — test the "
                       "Result first";
        Diag.Flow.push_back({Var.Line + 1, Var.Column + 1,
                             "decode result '" + Var.Name +
                                 "' is produced here"});
        Diag.Flow.push_back({Tokens[I].Line + 1, Tokens[I].Column + 1,
                             "its value is consumed here, unchecked"});
        Out.push_back(std::move(Diag));
        State[1 + V] = 2; // one finding per value per path
      }
    }
  }

  /// `decoder.next().value()` in one expression: the Result is never even
  /// named, so no path can have checked it.
  void checkInlineDecodeUses(const SourceFile &File,
                             const std::vector<Token> &Tokens,
                             const FunctionCfg &Cfg,
                             std::vector<Diagnostic> &Out) const {
    for (const CfgStatement &Stmt : Cfg.Statements) {
      for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
        if (Tokens[I].Kind != TokenKind::Identifier ||
            Tokens[I].Text != "next")
          continue;
        size_t J = nextCodeTok(Tokens, I, Stmt.TokenEnd);
        if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], '('))
          continue;
        J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
        if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], ')'))
          continue;
        J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
        if (J >= Stmt.TokenEnd || !isPunctTok(Tokens[J], '.'))
          continue;
        J = nextCodeTok(Tokens, J, Stmt.TokenEnd);
        if (J >= Stmt.TokenEnd || Tokens[J].Kind != TokenKind::Identifier ||
            Tokens[J].Text != "value")
          continue;
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Tokens[I].Line + 1;
        Diag.Column = Tokens[I].Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message =
            "'.next().value()' consumes a decode result without checking "
            "it; bind the Result and test it before taking the value";
        Diag.Flow.push_back({Tokens[I].Line + 1, Tokens[I].Column + 1,
                             "the frame is decoded here"});
        Diag.Flow.push_back({Tokens[J].Line + 1, Tokens[J].Column + 1,
                             "and its value taken immediately, unchecked"});
        Out.push_back(std::move(Diag));
      }
    }
  }
};

} // namespace

std::unique_ptr<Rule> makeMustCheckRule() {
  return std::make_unique<MustCheckRule>();
}

std::unique_ptr<Rule> makeStreamLifecycleRule() {
  return std::make_unique<StreamLifecycleRule>();
}

std::unique_ptr<Rule> makeWireProtocolRule() {
  return std::make_unique<WireProtocolRule>();
}

} // namespace lint
} // namespace parmonc
