//===- lint/Summary.cpp - Per-function evidence and summaries -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Summary.h"

#include "parmonc/lint/CallGraph.h"
#include "parmonc/lint/Index.h"
#include "parmonc/support/Checksum.h"

#include <algorithm>

namespace parmonc {
namespace lint {

std::string_view taintKindLabel(TaintKind Kind) {
  switch (Kind) {
  case TaintKind::WallClock:
    return "wall-clock read";
  case TaintKind::Entropy:
    return "ambient entropy source";
  case TaintKind::Environment:
    return "environment variable read";
  case TaintKind::UnorderedIter:
    return "unordered-container iteration order";
  case TaintKind::PointerHash:
    return "pointer hashing";
  }
  return "nondeterminism source";
}

std::string_view sinkKindLabel(SinkKind Kind) {
  switch (Kind) {
  case SinkKind::Estimator:
    return "estimator accumulation";
  case SinkKind::Snapshot:
    return "snapshot/manifest payload";
  case SinkKind::ExpLog:
    return "the parmonc_exp.dat registry";
  }
  return "determinism-critical output";
}

bool taintCallName(std::string_view Name, TaintKind &Kind) {
  if (Name == "time" || Name == "gettimeofday" || Name == "clock_gettime" ||
      Name == "localtime" || Name == "gmtime") {
    Kind = TaintKind::WallClock;
    return true;
  }
  if (Name == "rand" || Name == "srand" || Name == "random" ||
      Name == "drand48" || Name == "lrand48" || Name == "mrand48" ||
      Name == "rand_r") {
    Kind = TaintKind::Entropy;
    return true;
  }
  if (Name == "getenv" || Name == "secure_getenv") {
    Kind = TaintKind::Environment;
    return true;
  }
  return false;
}

bool sinkCallName(std::string_view Name, SinkKind &Kind) {
  if (Name == "accumulate") {
    Kind = SinkKind::Estimator;
    return true;
  }
  if (Name == "writeSnapshot" || Name == "writeResults" ||
      Name == "commit" || Name == "publishShard") {
    Kind = SinkKind::Snapshot;
    return true;
  }
  if (Name == "appendExperimentLog") {
    Kind = SinkKind::ExpLog;
    return true;
  }
  return false;
}

namespace {

bool isPunctTok(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

bool isStatementKeyword(std::string_view Name) {
  return Name == "if" || Name == "for" || Name == "while" ||
         Name == "switch" || Name == "catch" || Name == "return" ||
         Name == "sizeof" || Name == "alignof" || Name == "decltype" ||
         Name == "noexcept" || Name == "new" || Name == "delete" ||
         Name == "throw" || Name == "do" || Name == "else" ||
         Name == "case" || Name == "static_assert" || Name == "co_return";
}

bool isScopedGuardName(std::string_view Name) {
  return Name == "lock_guard" || Name == "unique_lock" ||
         Name == "scoped_lock";
}

/// Token-index helpers over a file's token stream, comments skipped.
size_t nextCode(const std::vector<Token> &Tokens, size_t I) {
  ++I;
  while (I < Tokens.size() && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

size_t prevCode(const std::vector<Token> &Tokens, size_t I) {
  while (I > 0) {
    --I;
    if (Tokens[I].Kind != TokenKind::Comment)
      return I;
  }
  return size_t(-1);
}

/// Finds the token index of \p Cfg's name token (first identifier with the
/// recorded spelling on the recorded line), or npos.
size_t nameTokenIndex(const std::vector<Token> &Tokens,
                      const FunctionCfg &Cfg) {
  for (size_t I = 0; I < Tokens.size() && Tokens[I].Line <= Cfg.NameLine;
       ++I)
    if (Tokens[I].Kind == TokenKind::Identifier &&
        Tokens[I].Line == Cfg.NameLine && Tokens[I].Text == Cfg.Name)
      return I;
  return size_t(-1);
}

/// True when the code token at \p I closes a `Result<...>` spelled before
/// it — i.e. \p I points at `>` whose matching `<` is preceded by `Result`.
bool closesResultTemplate(const std::vector<Token> &Tokens, size_t I) {
  if (!isPunctTok(Tokens[I], '>'))
    return false;
  int Depth = 1;
  size_t J = I;
  while (Depth > 0) {
    J = prevCode(Tokens, J);
    if (J == size_t(-1))
      return false;
    if (isPunctTok(Tokens[J], '>'))
      ++Depth;
    else if (isPunctTok(Tokens[J], '<'))
      --Depth;
  }
  const size_t Before = prevCode(Tokens, J);
  return Before != size_t(-1) &&
         Tokens[Before].Kind == TokenKind::Identifier &&
         Tokens[Before].Text == "Result";
}

/// Collects the parameter names of the function whose name token is at
/// \p NameTok, and whether any parameter is Status/Result-typed (those
/// names land in \p StatusParams too).
void collectParams(const std::vector<Token> &Tokens, size_t NameTok,
                   std::set<std::string> &Params,
                   std::set<std::string> &StatusParams) {
  size_t Open = nextCode(Tokens, NameTok);
  if (Open >= Tokens.size() || !isPunctTok(Tokens[Open], '('))
    return;
  int Depth = 1;
  size_t I = Open;
  while (Depth > 0) {
    I = nextCode(Tokens, I);
    if (I >= Tokens.size())
      return;
    if (isPunctTok(Tokens[I], '(')) {
      ++Depth;
      continue;
    }
    if (isPunctTok(Tokens[I], ')')) {
      --Depth;
      continue;
    }
    if (Depth != 1 || Tokens[I].Kind != TokenKind::Identifier)
      continue;
    const size_t Next = nextCode(Tokens, I);
    if (Next >= Tokens.size())
      return;
    // A parameter name is an identifier right before `,`, `)` or `=`.
    if (isPunctTok(Tokens[Next], ',') || isPunctTok(Tokens[Next], ')') ||
        isPunctTok(Tokens[Next], '=')) {
      Params.insert(Tokens[I].Text);
      // Status/Result-typed? Look left past `&`, `*` and cv-qualifiers.
      size_t Type = prevCode(Tokens, I);
      while (Type != size_t(-1) &&
             (isPunctTok(Tokens[Type], '&') || isPunctTok(Tokens[Type], '*') ||
              (Tokens[Type].Kind == TokenKind::Identifier &&
               Tokens[Type].Text == "const")))
        Type = prevCode(Tokens, Type);
      if (Type != size_t(-1) &&
          ((Tokens[Type].Kind == TokenKind::Identifier &&
            Tokens[Type].Text == "Status") ||
           closesResultTemplate(Tokens, Type)))
        StatusParams.insert(Tokens[I].Text);
    }
  }
}

/// Heuristic local-declaration scan: identifiers introduced inside the
/// body. Over-collection is fine — locals are only ever *excluded* from
/// field-write evidence, so a stray entry costs a missed finding at most.
void collectLocals(const std::vector<Token> &Tokens, size_t Begin, size_t End,
                   std::set<std::string> &Locals) {
  for (size_t I = Begin; I < End; ++I) {
    if (Tokens[I].Kind != TokenKind::Identifier ||
        isStatementKeyword(Tokens[I].Text))
      continue;
    const size_t Prev = prevCode(Tokens, I);
    if (Prev == size_t(-1))
      continue;
    const Token &P = Tokens[Prev];
    bool TypeLike = false;
    if (P.Kind == TokenKind::Identifier && !isStatementKeyword(P.Text))
      TypeLike = true;
    else if (isPunctTok(P, '&') || isPunctTok(P, '*'))
      TypeLike = true;
    else if (isPunctTok(P, '>')) {
      // Template close introduces a declarator — unless it is `->`.
      const size_t Before = prevCode(Tokens, Prev);
      TypeLike = Before == size_t(-1) || !isPunctTok(Tokens[Before], '-');
    }
    if (!TypeLike)
      continue;
    const size_t Next = nextCode(Tokens, I);
    if (Next >= End)
      continue;
    const Token &N = Tokens[Next];
    if (isPunctTok(N, '=') || isPunctTok(N, ';') || isPunctTok(N, ',') ||
        isPunctTok(N, ')') || isPunctTok(N, '{') || isPunctTok(N, '[') ||
        isPunctTok(N, ':'))
      Locals.insert(Tokens[I].Text);
  }
}

/// True when \p Name, taken as a range-for target, resolves (by a crude
/// nearby-declaration scan over the whole file) to an unordered container.
bool rangeTargetIsUnordered(const std::vector<Token> &Tokens,
                            std::string_view Name) {
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (Tokens[I].Kind != TokenKind::Identifier ||
        Tokens[I].Text.rfind("unordered_", 0) != 0)
      continue;
    size_t J = I;
    for (unsigned Step = 0; Step < 40 && J < Tokens.size(); ++Step) {
      J = nextCode(Tokens, J);
      if (J < Tokens.size() && Tokens[J].Kind == TokenKind::Identifier &&
          Tokens[J].Text == Name)
        return true;
    }
  }
  return false;
}

/// One live scoped guard: the mutex it holds and the brace depth its
/// declaration lives at (popped when that depth's `}` closes).
struct GuardEntry {
  std::string Mutex;
  int Depth = 0;
};

} // namespace

std::vector<FunctionEvidence>
extractFunctionEvidence(const SourceFile &File) {
  std::vector<FunctionEvidence> Out;
  const std::vector<Token> &Tokens = File.tokens();
  for (const FunctionCfg &Cfg : File.functions()) {
    FunctionEvidence Fn;
    Fn.Name = Cfg.Name;
    Fn.Line = Cfg.NameLine;

    const size_t NameTok = nameTokenIndex(Tokens, Cfg);
    std::set<std::string> Params, StatusParams, Locals;
    if (NameTok != size_t(-1)) {
      collectParams(Tokens, NameTok, Params, StatusParams);
      const size_t TypeTok = prevCode(Tokens, NameTok);
      if (TypeTok != size_t(-1) &&
          ((Tokens[TypeTok].Kind == TokenKind::Identifier &&
            Tokens[TypeTok].Text == "Status") ||
           closesResultTemplate(Tokens, TypeTok)))
        Fn.ReturnsFallibleType = true;
    }
    const size_t Begin = Cfg.BodyBeginToken, End = Cfg.BodyEndToken;
    collectLocals(Tokens, Begin, End, Locals);
    const auto IsLocal = [&](std::string_view Name) {
      return Locals.count(std::string(Name)) != 0 ||
             Params.count(std::string(Name)) != 0;
    };

    // Linear body walk: brace depth, live guards, raw held set, and a
    // per-token lock-depth map the statement passes below can query.
    std::vector<uint8_t> LockDepthAt(End > Begin ? End - Begin : 0, 0);
    std::vector<GuardEntry> Guards;
    std::multiset<std::string> RawHeld;
    int BraceDepth = 0;
    for (size_t I = Begin; I < End; ++I) {
      const Token &T = Tokens[I];
      if (T.Kind == TokenKind::Comment)
        continue;
      if (isPunctTok(T, '{')) {
        ++BraceDepth;
      } else if (isPunctTok(T, '}')) {
        while (!Guards.empty() && Guards.back().Depth == BraceDepth)
          Guards.pop_back();
        --BraceDepth;
      }
      LockDepthAt[I - Begin] =
          uint8_t(std::min<size_t>(Guards.size() + RawHeld.size(), 255));
      if (T.Kind != TokenKind::Identifier)
        continue;
      const bool Held = !Guards.empty() || !RawHeld.empty();

      // Scoped guard declaration: lock_guard/unique_lock/scoped_lock,
      // optional template args, a variable name, then `(mutexes...)`.
      if (isScopedGuardName(T.Text)) {
        size_t J = nextCode(Tokens, I);
        if (J < End && isPunctTok(Tokens[J], '<')) {
          int Depth = 1;
          while (Depth > 0) {
            J = nextCode(Tokens, J);
            if (J >= End)
              break;
            if (isPunctTok(Tokens[J], '<'))
              ++Depth;
            else if (isPunctTok(Tokens[J], '>'))
              --Depth;
          }
          J = nextCode(Tokens, J);
        }
        if (J < End && Tokens[J].Kind == TokenKind::Identifier) {
          size_t Open = nextCode(Tokens, J);
          if (Open < End && isPunctTok(Tokens[Open], '(')) {
            // Each depth-1 argument's last identifier names a mutex.
            // Brackets count as nesting too, so `*Mutexes[index(I)]`
            // names `Mutexes`, not the innermost index expression.
            int Depth = 1;
            std::string LastIdent;
            const auto Record = [&] {
              if (LastIdent.empty())
                return;
              Fn.LockOps.push_back(
                  {LockOpRecord::Op::Scoped, LastIdent, T.Line});
              Guards.push_back({LastIdent, BraceDepth});
              LastIdent.clear();
            };
            size_t K = Open;
            while (Depth > 0) {
              K = nextCode(Tokens, K);
              if (K >= End)
                break;
              if (isPunctTok(Tokens[K], '(') ||
                  isPunctTok(Tokens[K], '[')) {
                ++Depth;
              } else if (isPunctTok(Tokens[K], ')') ||
                         isPunctTok(Tokens[K], ']')) {
                if (--Depth == 0)
                  Record();
              } else if (Depth == 1 && isPunctTok(Tokens[K], ',')) {
                Record();
              } else if (Depth == 1 &&
                         Tokens[K].Kind == TokenKind::Identifier &&
                         Tokens[K].Text != "this") {
                LastIdent = Tokens[K].Text;
              }
            }
          }
        }
        continue;
      }

      // Raw M.lock() / M.unlock() (and the -> spellings).
      {
        size_t Dot = nextCode(Tokens, I);
        size_t Member = size_t(-1);
        if (Dot < End && isPunctTok(Tokens[Dot], '.'))
          Member = nextCode(Tokens, Dot);
        else if (Dot < End && isPunctTok(Tokens[Dot], '-')) {
          const size_t Gt = nextCode(Tokens, Dot);
          if (Gt < End && isPunctTok(Tokens[Gt], '>'))
            Member = nextCode(Tokens, Gt);
        }
        if (Member != size_t(-1) && Member < End &&
            Tokens[Member].Kind == TokenKind::Identifier) {
          const size_t Open = nextCode(Tokens, Member);
          if (Open < End && isPunctTok(Tokens[Open], '(')) {
            if (Tokens[Member].Text == "lock") {
              Fn.LockOps.push_back(
                  {LockOpRecord::Op::Acquire, T.Text, T.Line});
              RawHeld.insert(T.Text);
              continue;
            }
            if (Tokens[Member].Text == "unlock") {
              Fn.LockOps.push_back(
                  {LockOpRecord::Op::Release, T.Text, T.Line});
              const auto It = RawHeld.find(T.Text);
              if (It != RawHeld.end())
                RawHeld.erase(It);
              continue;
            }
          }
        }
      }

      // Determinism-taint sources.
      TaintKind Taint;
      const size_t Next = nextCode(Tokens, I);
      const bool IsCall = Next < End && isPunctTok(Tokens[Next], '(');
      if (IsCall && taintCallName(T.Text, Taint)) {
        Fn.TaintSources.push_back({Taint, T.Line});
      } else if (T.Text == "random_device") {
        Fn.TaintSources.push_back({TaintKind::Entropy, T.Line});
      } else if (T.Text == "system_clock" ||
                 T.Text == "high_resolution_clock") {
        size_t C1 = Next;
        if (C1 < End && isPunctTok(Tokens[C1], ':')) {
          const size_t C2 = nextCode(Tokens, C1);
          const size_t Now = C2 < End ? nextCode(Tokens, C2) : End;
          if (Now < End && Tokens[Now].Kind == TokenKind::Identifier &&
              Tokens[Now].Text == "now")
            Fn.TaintSources.push_back({TaintKind::WallClock, T.Line});
        }
      } else if (T.Text == "hash" && Next < End &&
                 isPunctTok(Tokens[Next], '<')) {
        int Depth = 1;
        size_t J = Next;
        bool SawStar = false;
        while (Depth > 0) {
          J = nextCode(Tokens, J);
          if (J >= End)
            break;
          if (isPunctTok(Tokens[J], '<'))
            ++Depth;
          else if (isPunctTok(Tokens[J], '>'))
            --Depth;
          else if (isPunctTok(Tokens[J], '*'))
            SawStar = true;
        }
        if (SawStar)
          Fn.TaintSources.push_back({TaintKind::PointerHash, T.Line});
      } else if (T.Text == "reinterpret_cast" && Next < End &&
                 isPunctTok(Tokens[Next], '<')) {
        const size_t Target = nextCode(Tokens, Next);
        if (Target < End && Tokens[Target].Kind == TokenKind::Identifier &&
            (Tokens[Target].Text == "uintptr_t" ||
             Tokens[Target].Text == "intptr_t"))
          Fn.TaintSources.push_back({TaintKind::PointerHash, T.Line});
      } else if (T.Text == "for" && IsCall) {
        // Range-for over an unordered container: iteration order is a
        // nondeterminism source even though no call is involved.
        int Depth = 1;
        size_t J = Next;
        size_t ColonAt = size_t(-1);
        while (Depth > 0) {
          J = nextCode(Tokens, J);
          if (J >= End)
            break;
          if (isPunctTok(Tokens[J], '('))
            ++Depth;
          else if (isPunctTok(Tokens[J], ')'))
            --Depth;
          else if (Depth == 1 && isPunctTok(Tokens[J], ':') &&
                   ColonAt == size_t(-1) &&
                   !isPunctTok(Tokens[prevCode(Tokens, J)], ':'))
            ColonAt = J;
        }
        if (ColonAt != size_t(-1)) {
          size_t R = nextCode(Tokens, ColonAt);
          while (R < End && (isPunctTok(Tokens[R], '*') ||
                             isPunctTok(Tokens[R], '&')))
            R = nextCode(Tokens, R);
          if (R < End && Tokens[R].Kind == TokenKind::Identifier &&
              rangeTargetIsUnordered(Tokens, Tokens[R].Text))
            Fn.TaintSources.push_back({TaintKind::UnorderedIter, T.Line});
        }
      }

      // Sinks and plain call sites. Explicit global-namespace calls
      // (`::send`, `::read`) name OS / libc entry points, not project
      // functions; recording them would merge the site into a same-named
      // project overload set and poison its summary with unrelated facts.
      bool GlobalQualified = false;
      {
        const size_t C1 = prevCode(Tokens, I);
        if (C1 != size_t(-1) && isPunctTok(Tokens[C1], ':')) {
          const size_t C2 = prevCode(Tokens, C1);
          if (C2 != size_t(-1) && isPunctTok(Tokens[C2], ':')) {
            const size_t Qual = prevCode(Tokens, C2);
            GlobalQualified =
                Qual == size_t(-1) ||
                (Tokens[Qual].Kind != TokenKind::Identifier &&
                 !isPunctTok(Tokens[Qual], '>'));
          }
        }
      }
      if (IsCall && !isStatementKeyword(T.Text) &&
          !isMacroStyleName(T.Text) && !GlobalQualified) {
        SinkKind Sink;
        if (sinkCallName(T.Text, Sink))
          Fn.Sinks.push_back({Sink, T.Line});
        CallSiteRecord Call{T.Text, T.Line, Held, {}};
        for (const GuardEntry &Guard : Guards)
          Call.HeldMutexes.push_back(Guard.Mutex);
        Call.HeldMutexes.insert(Call.HeldMutexes.end(), RawHeld.begin(),
                                RawHeld.end());
        Fn.Calls.push_back(std::move(Call));
      }
    }

    // Statement-shaped evidence: forwarded returns and field writes.
    const auto LockedAt = [&](size_t TokenIndex) {
      return TokenIndex >= Begin && TokenIndex < End &&
             LockDepthAt[TokenIndex - Begin] > 0;
    };
    for (const CfgStatement &Stmt : Cfg.Statements) {
      size_t First = Stmt.TokenBegin;
      while (First < Stmt.TokenEnd &&
             Tokens[First].Kind == TokenKind::Comment)
        ++First;
      if (First >= Stmt.TokenEnd)
        continue;
      if (Stmt.Kind == StmtKind::Return) {
        // `return callee(...);` — and nothing else in the expression.
        if (Tokens[First].Text != "return")
          continue;
        const size_t Callee = nextCode(Tokens, First);
        if (Callee >= Stmt.TokenEnd ||
            Tokens[Callee].Kind != TokenKind::Identifier ||
            isStatementKeyword(Tokens[Callee].Text) ||
            isMacroStyleName(Tokens[Callee].Text))
          continue;
        size_t Open = nextCode(Tokens, Callee);
        if (Open >= Stmt.TokenEnd || !isPunctTok(Tokens[Open], '('))
          continue;
        int Depth = 1;
        size_t J = Open;
        while (Depth > 0) {
          J = nextCode(Tokens, J);
          if (J >= Stmt.TokenEnd)
            break;
          if (isPunctTok(Tokens[J], '('))
            ++Depth;
          else if (isPunctTok(Tokens[J], ')'))
            --Depth;
        }
        const size_t Semi = nextCode(Tokens, J);
        if (Semi < Stmt.TokenEnd && isPunctTok(Tokens[Semi], ';'))
          Fn.ReturnCalls.push_back({Tokens[Callee].Text, Stmt.Line});
        continue;
      }
      if (Stmt.Kind != StmtKind::Plain)
        continue;
      const Token &Head = Tokens[First];
      if (Head.Kind != TokenKind::Identifier ||
          isStatementKeyword(Head.Text) || isMacroStyleName(Head.Text) ||
          IsLocal(Head.Text))
        continue;
      // `Field = ...` / `Field += ...` / `Field.x = ...` with the target
      // leading the statement; also `Field++` / `++Field` style bumps.
      bool Writes = false;
      size_t OpAt = size_t(-1);
      int Depth = 0;
      for (size_t J = First; J < Stmt.TokenEnd && !Writes; ++J) {
        const Token &T = Tokens[J];
        if (T.Kind == TokenKind::Comment)
          continue;
        if (isPunctTok(T, '(') || isPunctTok(T, '['))
          ++Depth;
        else if (isPunctTok(T, ')') || isPunctTok(T, ']'))
          --Depth;
        else if (Depth == 0 && isPunctTok(T, '=')) {
          const size_t After = nextCode(Tokens, J);
          const size_t Before = prevCode(Tokens, J);
          const bool Compare =
              (After < Stmt.TokenEnd && isPunctTok(Tokens[After], '=')) ||
              (Before != size_t(-1) &&
               (isPunctTok(Tokens[Before], '=') ||
                isPunctTok(Tokens[Before], '!') ||
                isPunctTok(Tokens[Before], '<') ||
                isPunctTok(Tokens[Before], '>')));
          if (!Compare) {
            Writes = true;
            // A compound op (`+=`, `-=`, `|=`...) ends the target one
            // token earlier.
            OpAt = J;
            if (Before != size_t(-1) &&
                Tokens[Before].Kind == TokenKind::Punct &&
                Tokens[Before].Text.size() == 1 &&
                std::string_view("+-*/%&|^").find(Tokens[Before].Text) !=
                    std::string_view::npos)
              OpAt = Before;
          }
        } else if (Depth == 0 && isPunctTok(T, '+') &&
                   J + 1 < Stmt.TokenEnd && isPunctTok(Tokens[J + 1], '+')) {
          Writes = true;
          OpAt = J;
        } else if (Depth == 0 && isPunctTok(T, '-') &&
                   J + 1 < Stmt.TokenEnd && isPunctTok(Tokens[J + 1], '-')) {
          Writes = true;
          OpAt = J;
        } else if (Depth == 0 && isPunctTok(T, ';')) {
          break;
        }
      }
      // Only a simple lvalue chain — identifiers joined by `.`, `->`, or
      // indexing — is a field write. Anything else leading up to the
      // operator (`const ssize_t Got = ...`, `auto It = ...`,
      // `std::tie(...) = ...`) is a declaration or too clever to claim.
      const auto SimpleLhs = [&](size_t LhsEnd) {
        bool WantIdent = true, ExpectGt = false;
        int Bracket = 0;
        for (size_t J = First; J < LhsEnd; ++J) {
          const Token &L = Tokens[J];
          if (L.Kind == TokenKind::Comment)
            continue;
          if (isPunctTok(L, '[')) {
            ++Bracket;
            continue;
          }
          if (isPunctTok(L, ']')) {
            if (--Bracket < 0)
              return false;
            continue;
          }
          if (Bracket > 0)
            continue; // index expressions are opaque
          if (ExpectGt) {
            if (!isPunctTok(L, '>'))
              return false;
            ExpectGt = false;
            WantIdent = true;
          } else if (L.Kind == TokenKind::Identifier) {
            if (!WantIdent)
              return false;
            WantIdent = false;
          } else if (isPunctTok(L, '.')) {
            if (WantIdent)
              return false;
            WantIdent = true;
          } else if (isPunctTok(L, '-')) {
            if (WantIdent)
              return false;
            ExpectGt = true;
          } else {
            return false;
          }
        }
        return !WantIdent && !ExpectGt && Bracket == 0;
      };
      if (Writes && OpAt != size_t(-1) && SimpleLhs(OpAt))
        Fn.FieldWrites.push_back({Head.Text, LockedAt(First), Head.Line});
    }

    // Status/Result parameter consumption: the body reads such a param.
    for (const std::string &Param : StatusParams) {
      for (size_t I = Begin; I < End && !Fn.ConsumesStatusParam; ++I)
        if (Tokens[I].Kind == TokenKind::Identifier &&
            Tokens[I].Text == Param)
          Fn.ConsumesStatusParam = true;
      if (Fn.ConsumesStatusParam)
        break;
    }

    Out.push_back(std::move(Fn));
  }
  return Out;
}

namespace {

void appendCrcField(std::string &Out, std::string_view Field) {
  Out.append(Field);
  Out.push_back('\x1f');
}

void appendCrcU32(std::string &Out, uint32_t Value) {
  appendCrcField(Out, std::to_string(Value));
}

/// Files whose functions are sanctioned determinism-taint carriers: the
/// obs/ trace layer timestamps deliberately, and support/Clock.h *is* the
/// approved wall-clock seam.
bool isSanctionedTaintPath(std::string_view Path) {
  return pathContainsComponent(Path, "obs") ||
         pathEndsWith(Path, "support/Clock.h") ||
         pathEndsWith(Path, "support/Clock.cpp");
}

} // namespace

uint32_t FunctionSummary::fingerprint() const {
  std::string Blob;
  appendCrcField(Blob, File);
  appendCrcU32(Blob, Line);
  appendCrcU32(Blob, ReturnsFallible ? 1 : 0);
  appendCrcField(Blob, FallibleVia);
  appendCrcU32(Blob, FallibleLine);
  appendCrcU32(Blob, TaintsDeterminism ? 1 : 0);
  appendCrcU32(Blob, uint32_t(TaintOrigin));
  appendCrcField(Blob, TaintVia);
  appendCrcU32(Blob, TaintLine);
  for (const std::string &Lock : AcquiresLocks) {
    appendCrcField(Blob, Lock);
    const auto It = LockVia.find(Lock);
    if (It != LockVia.end()) {
      appendCrcField(Blob, It->second.first);
      appendCrcU32(Blob, It->second.second);
    }
  }
  appendCrcU32(Blob, CalledUnderLock ? 1 : 0);
  appendCrcU32(Blob, ConsumesStatusParam ? 1 : 0);
  appendCrcU32(Blob, EscapesStream ? 1 : 0);
  return crc32(Blob);
}

SummaryStore computeSummaries(const ProjectIndex &Index,
                              const CallGraph &Graph) {
  SummaryStore Store;
  // Merged per-name evidence views (overload-set-conservative).
  struct Merged {
    std::vector<const FunctionEvidence *> Defs;
    bool Sanctioned = true;
  };
  std::map<std::string, Merged, std::less<>> ByName;
  for (size_t I = 0; I < Index.fileCount(); ++I) {
    const bool Sanctioned = isSanctionedTaintPath(Index.path(I));
    for (const FunctionEvidence &Fn : Index.facts(I).Functions) {
      Merged &M = ByName[Fn.Name];
      if (M.Defs.empty()) {
        FunctionSummary Seed;
        Seed.File = Index.path(I);
        Seed.Line = Fn.Line;
        Store.Map.emplace(Fn.Name, std::move(Seed));
      }
      M.Defs.push_back(&Fn);
      M.Sanctioned = M.Sanctioned && Sanctioned;
    }
  }

  // Local seeding.
  for (auto &[Name, M] : ByName) {
    FunctionSummary &S = Store.Map.find(Name)->second;
    for (const FunctionEvidence *Fn : M.Defs) {
      if (Fn->ReturnsFallibleType && !S.ReturnsFallible) {
        S.ReturnsFallible = true;
        S.FallibleVia.clear();
        S.FallibleLine = Fn->Line;
      }
      if (!M.Sanctioned && !Fn->TaintSources.empty() &&
          !S.TaintsDeterminism) {
        S.TaintsDeterminism = true;
        S.TaintOrigin = Fn->TaintSources.front().Kind;
        S.TaintVia.clear();
        S.TaintLine = Fn->TaintSources.front().Line;
      }
      for (const LockOpRecord &Op : Fn->LockOps)
        if (Op.Kind != LockOpRecord::Op::Release &&
            S.AcquiresLocks.insert(Op.Mutex).second)
          S.LockVia[Op.Mutex] = {std::string(), Op.Line};
      S.ConsumesStatusParam |= Fn->ConsumesStatusParam;
    }
  }

  // Bottom-up propagation over the SCC condensation; each component
  // iterates to a fixed point so recursion converges (every propagated
  // fact is monotone over a two-point lattice, so this terminates).
  for (const std::vector<uint32_t> &Component : Graph.sccsBottomUp()) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t Node : Component) {
        const std::string &Name = Graph.name(Node);
        const auto MIt = ByName.find(Name);
        if (MIt == ByName.end())
          continue;
        FunctionSummary &S = Store.Map.find(Name)->second;
        for (const FunctionEvidence *Fn : MIt->second.Defs) {
          for (const ReturnCallRecord &Ret : Fn->ReturnCalls) {
            const FunctionSummary *Callee = Store.find(Ret.Callee);
            if (Callee && Callee->ReturnsFallible && !S.ReturnsFallible) {
              S.ReturnsFallible = true;
              S.FallibleVia = Ret.Callee;
              S.FallibleLine = Ret.Line;
              Changed = true;
            }
          }
          auto Propagate = [&](const std::string &CalleeName,
                               uint32_t CallLine) {
            const FunctionSummary *Callee = Store.find(CalleeName);
            if (!Callee)
              return;
            if (Callee->TaintsDeterminism && !S.TaintsDeterminism &&
                !MIt->second.Sanctioned) {
              S.TaintsDeterminism = true;
              S.TaintOrigin = Callee->TaintOrigin;
              S.TaintVia = CalleeName;
              S.TaintLine = CallLine;
              Changed = true;
            }
            for (const std::string &Lock : Callee->AcquiresLocks)
              if (S.AcquiresLocks.insert(Lock).second) {
                S.LockVia[Lock] = {CalleeName, CallLine};
                Changed = true;
              }
            if (Callee->EscapesStream && !S.EscapesStream) {
              S.EscapesStream = true;
              Changed = true;
            }
          };
          for (const CallSiteRecord &Call : Fn->Calls)
            Propagate(Call.Callee, Call.Line);
          for (const ReturnCallRecord &Ret : Fn->ReturnCalls)
            Propagate(Ret.Callee, Ret.Line);
        }
      }
    }
  }

  // Called-with-lock-held closure: seed from call sites under a lock, then
  // flow through every call edge out of a seeded function (its whole body
  // may execute under the caller's lock).
  std::vector<std::string> Frontier;
  std::set<std::string, std::less<>> UnderLock;
  for (const auto &[Name, M] : ByName)
    for (const FunctionEvidence *Fn : M.Defs)
      for (const CallSiteRecord &Call : Fn->Calls)
        if (Call.UnderLock && Store.find(Call.Callee) &&
            UnderLock.insert(Call.Callee).second)
          Frontier.push_back(Call.Callee);
  while (!Frontier.empty()) {
    const std::string Name = Frontier.back();
    Frontier.pop_back();
    const auto MIt = ByName.find(Name);
    if (MIt == ByName.end())
      continue;
    for (const FunctionEvidence *Fn : MIt->second.Defs)
      for (const CallSiteRecord &Call : Fn->Calls)
        if (Store.find(Call.Callee) &&
            UnderLock.insert(Call.Callee).second)
          Frontier.push_back(Call.Callee);
  }
  for (const std::string &Name : UnderLock)
    Store.Map.find(Name)->second.CalledUnderLock = true;

  return Store;
}

std::vector<uint32_t> dependencyFingerprints(const ProjectIndex &Index,
                                             const CallGraph &Graph,
                                             const SummaryStore &Summaries) {
  std::vector<uint32_t> Out(Index.fileCount(), 0);
  for (size_t I = 0; I < Index.fileCount(); ++I) {
    std::vector<uint32_t> Roots;
    for (const FunctionEvidence &Fn : Index.facts(I).Functions) {
      for (const CallSiteRecord &Call : Fn.Calls)
        Roots.push_back(Graph.nodeFor(Call.Callee));
      for (const ReturnCallRecord &Ret : Fn.ReturnCalls)
        Roots.push_back(Graph.nodeFor(Ret.Callee));
    }
    std::string Blob;
    for (uint32_t Node : Graph.reachableFrom(Roots)) {
      const FunctionSummary *S = Summaries.find(Graph.name(Node));
      appendCrcField(Blob, Graph.name(Node));
      appendCrcU32(Blob, S ? S->fingerprint() : 0);
    }
    Out[I] = crc32(Blob);
  }
  return Out;
}

} // namespace lint
} // namespace parmonc
