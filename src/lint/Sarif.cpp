//===- lint/Sarif.cpp - SARIF 2.1.0 output --------------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Sarif.h"

#include "parmonc/lint/Index.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <cctype>

namespace parmonc {
namespace lint {

namespace {

constexpr std::string_view SchemaUri =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";

constexpr std::string_view RuleDocBase =
    "https://github.com/parmonc/parmonc/blob/main/docs/LINT_RULES.md";

void appendHex32(std::string &Out, uint32_t Value) {
  static const char Digits[] = "0123456789abcdef";
  for (int Shift = 28; Shift >= 0; Shift -= 4)
    Out.push_back(Digits[(Value >> Shift) & 0xF]);
}

/// The LINT_RULES.md anchor for a rule: "#r6-stream-discipline".
std::string ruleAnchor(const Rule &R) {
  std::string Anchor = "#";
  for (char C : R.id())
    Anchor.push_back(char(std::tolower(static_cast<unsigned char>(C))));
  Anchor.push_back('-');
  Anchor.append(R.name());
  return Anchor;
}

} // namespace

std::string jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Digits[] = "0123456789abcdef";
        Out += "\\u00";
        Out.push_back(Digits[(C >> 4) & 0xF]);
        Out.push_back(Digits[C & 0xF]);
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string
formatSarif(const std::vector<Diagnostic> &Diags,
            const std::vector<const Rule *> &Rules, bool AsError,
            const std::function<std::string_view(const Diagnostic &)>
                &LineTextOf) {
  const std::string_view Level = AsError ? "error" : "warning";
  std::string Out;
  Out += "{\n";
  Out += "  \"$schema\": \"" + std::string(SchemaUri) + "\",\n";
  Out += "  \"version\": \"2.1.0\",\n";
  Out += "  \"runs\": [\n";
  Out += "    {\n";
  Out += "      \"tool\": {\n";
  Out += "        \"driver\": {\n";
  Out += "          \"name\": \"mclint\",\n";
  Out += "          \"informationUri\": \"" + std::string(RuleDocBase) +
         "\",\n";
  Out += "          \"rules\": [\n";
  for (size_t I = 0; I < Rules.size(); ++I) {
    const Rule &R = *Rules[I];
    Out += "            {\n";
    Out += "              \"id\": \"" + std::string(R.id()) + "\",\n";
    Out += "              \"name\": \"" + jsonEscape(R.name()) + "\",\n";
    Out += "              \"shortDescription\": { \"text\": \"" +
           jsonEscape(R.summary()) + "\" },\n";
    Out += "              \"fullDescription\": { \"text\": \"" +
           jsonEscape(R.rationale()) + "\" },\n";
    Out += "              \"helpUri\": \"" + std::string(RuleDocBase) +
           ruleAnchor(R) + "\",\n";
    Out += "              \"defaultConfiguration\": { \"level\": \"" +
           std::string(Level) + "\" }\n";
    Out += I + 1 < Rules.size() ? "            },\n" : "            }\n";
  }
  Out += "          ]\n";
  Out += "        }\n";
  Out += "      },\n";
  Out += "      \"results\": [\n";
  for (size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &Diag = Diags[I];
    std::string Fingerprint = Diag.RuleId + ":";
    appendHex32(Fingerprint, crc32(trim(LineTextOf(Diag))));
    Out += "        {\n";
    Out += "          \"ruleId\": \"" + Diag.RuleId + "\",\n";
    Out += "          \"level\": \"" + std::string(Level) + "\",\n";
    Out += "          \"message\": { \"text\": \"" +
           jsonEscape(Diag.Message) + "\" },\n";
    Out += "          \"locations\": [\n";
    Out += "            {\n";
    Out += "              \"physicalLocation\": {\n";
    Out += "                \"artifactLocation\": { \"uri\": \"" +
           jsonEscape(normalizedPath(Diag.Path)) + "\" },\n";
    Out += "                \"region\": { \"startLine\": " +
           std::to_string(Diag.Line) +
           (Diag.Column > 0
                ? ", \"startColumn\": " + std::to_string(Diag.Column)
                : std::string()) +
           " }\n";
    Out += "              }\n";
    Out += "            }\n";
    Out += "          ],\n";
    // Dataflow findings (R11-R13) carry the witness path as a SARIF code
    // flow: one threadFlow whose steps walk decl -> transfer -> failure.
    // Interprocedural findings (R14-R16) set FlowStep::Path on steps in
    // other translation units, so a single code flow spans files.
    if (!Diag.Flow.empty()) {
      Out += "          \"codeFlows\": [\n";
      Out += "            {\n";
      Out += "              \"threadFlows\": [\n";
      Out += "                {\n";
      Out += "                  \"locations\": [\n";
      for (size_t Step = 0; Step < Diag.Flow.size(); ++Step) {
        const FlowStep &Flow = Diag.Flow[Step];
        const std::string &StepPath =
            Flow.Path.empty() ? Diag.Path : Flow.Path;
        Out += "                    {\n";
        Out += "                      \"location\": {\n";
        Out += "                        \"physicalLocation\": {\n";
        Out += "                          \"artifactLocation\": { \"uri\": "
               "\"" +
               jsonEscape(normalizedPath(StepPath)) + "\" },\n";
        Out += "                          \"region\": { \"startLine\": " +
               std::to_string(Flow.Line) +
               (Flow.Column > 0 ? ", \"startColumn\": " +
                                      std::to_string(Flow.Column)
                                : std::string()) +
               " }\n";
        Out += "                        },\n";
        Out += "                        \"message\": { \"text\": \"" +
               jsonEscape(Flow.Message) + "\" }\n";
        Out += "                      }\n";
        Out += Step + 1 < Diag.Flow.size() ? "                    },\n"
                                           : "                    }\n";
      }
      Out += "                  ]\n";
      Out += "                }\n";
      Out += "              ]\n";
      Out += "            }\n";
      Out += "          ],\n";
    }
    Out += "          \"partialFingerprints\": { \"mclintLine/v1\": \"" +
           Fingerprint + "\" }\n";
    Out += I + 1 < Diags.size() ? "        },\n" : "        }\n";
  }
  Out += "      ]\n";
  Out += "    }\n";
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

} // namespace lint
} // namespace parmonc
