//===- lint/Cache.cpp - Incremental analysis cache ------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Cache.h"

#include "parmonc/support/Text.h"

#include <charconv>

namespace parmonc {
namespace lint {

namespace {

constexpr std::string_view MagicLine = "mclint-cache 5";

bool parseU32(std::string_view Field, uint32_t &Out) {
  const auto [Ptr, Ec] =
      std::from_chars(Field.data(), Field.data() + Field.size(), Out);
  return Ec == std::errc() && Ptr == Field.data() + Field.size();
}

bool parseHex32(std::string_view Field, uint32_t &Out) {
  const auto [Ptr, Ec] =
      std::from_chars(Field.data(), Field.data() + Field.size(), Out, 16);
  return Ec == std::errc() && Ptr == Field.data() + Field.size();
}

void appendHex32(std::string &Out, uint32_t Value) {
  static const char Digits[] = "0123456789abcdef";
  for (int Shift = 28; Shift >= 0; Shift -= 4)
    Out.push_back(Digits[(Value >> Shift) & 0xF]);
}

/// Pulls the next line off \p Rest (consuming the newline). Returns false
/// at end of input.
bool nextLine(std::string_view &Rest, std::string_view &Line) {
  if (Rest.empty())
    return false;
  const size_t Break = Rest.find('\n');
  if (Break == std::string_view::npos) {
    Line = Rest;
    Rest = {};
  } else {
    Line = Rest.substr(0, Break);
    Rest = Rest.substr(Break + 1);
  }
  return true;
}

} // namespace

void LintCache::load(const std::string &Path,
                     std::string_view ExpectedConfig) {
  Entries.clear();
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return; // no cache yet — cold run
  std::string_view Rest = Contents.value();
  std::string_view Line;
  if (!nextLine(Rest, Line) || Line != MagicLine)
    return;
  if (!nextLine(Rest, Line) || Line != ExpectedConfig)
    return; // different engine/rule configuration — rebuild

  // Entry grammar (line-oriented):
  //   file <path>
  //   crc <hex8>
  //   facts <line-count>
  //   ...facts lines...
  //   diags none | diags <hex8-context> <hex8-deps> <count>
  //   D <line> <col> <nflow> <ruleId> <ruleName> <message>  (count times)
  //   F <line> <col> <path|-> <message>         (nflow times, after its D)
  std::map<std::string, CacheEntry, std::less<>> Parsed;
  while (nextLine(Rest, Line)) {
    if (Line.empty())
      continue;
    if (!startsWith(Line, "file "))
      return; // malformed — discard everything
    CacheEntry Entry;
    const std::string FilePath(Line.substr(5));

    if (!nextLine(Rest, Line) || !startsWith(Line, "crc ") ||
        !parseHex32(Line.substr(4), Entry.ContentCrc))
      return;

    uint32_t FactsLines = 0;
    if (!nextLine(Rest, Line) || !startsWith(Line, "facts ") ||
        !parseU32(Line.substr(6), FactsLines))
      return;
    for (uint32_t I = 0; I < FactsLines; ++I) {
      if (!nextLine(Rest, Line))
        return;
      Entry.FactsBlock.append(Line);
      Entry.FactsBlock.push_back('\n');
    }

    if (!nextLine(Rest, Line) || !startsWith(Line, "diags "))
      return;
    std::string_view DiagsSpec = Line.substr(6);
    if (DiagsSpec != "none") {
      const auto SpecFields = splitWhitespace(DiagsSpec);
      uint32_t Count = 0;
      if (SpecFields.size() != 3 ||
          !parseHex32(SpecFields[0], Entry.ContextCrc) ||
          !parseHex32(SpecFields[1], Entry.DepsCrc) ||
          !parseU32(SpecFields[2], Count))
        return;
      Entry.HasDiags = true;
      for (uint32_t I = 0; I < Count; ++I) {
        if (!nextLine(Rest, Line) || !startsWith(Line, "D "))
          return;
        auto Fields = splitWhitespace(Line);
        if (Fields.size() < 6)
          return;
        Diagnostic Diag;
        uint32_t DiagLine = 0, DiagColumn = 0, FlowCount = 0;
        if (!parseU32(Fields[1], DiagLine) ||
            !parseU32(Fields[2], DiagColumn) ||
            !parseU32(Fields[3], FlowCount))
          return;
        Diag.Path = FilePath;
        Diag.Line = DiagLine;
        Diag.Column = DiagColumn;
        Diag.RuleId = std::string(Fields[4]);
        Diag.RuleName = std::string(Fields[5]);
        // The message is everything after the sixth field.
        const size_t MessageAt =
            size_t(Fields[5].data() + Fields[5].size() - Line.data());
        if (MessageAt < Line.size())
          Diag.Message = std::string(trim(Line.substr(MessageAt)));
        for (uint32_t Step = 0; Step < FlowCount; ++Step) {
          if (!nextLine(Rest, Line) || !startsWith(Line, "F "))
            return;
          auto FlowFields = splitWhitespace(Line);
          if (FlowFields.size() < 4)
            return;
          FlowStep Flow;
          uint32_t FlowLine = 0, FlowColumn = 0;
          if (!parseU32(FlowFields[1], FlowLine) ||
              !parseU32(FlowFields[2], FlowColumn))
            return;
          Flow.Line = FlowLine;
          Flow.Column = FlowColumn;
          if (FlowFields[3] != "-")
            Flow.Path = std::string(FlowFields[3]);
          const size_t FlowMessageAt = size_t(
              FlowFields[3].data() + FlowFields[3].size() - Line.data());
          if (FlowMessageAt < Line.size())
            Flow.Message = std::string(trim(Line.substr(FlowMessageAt)));
          Diag.Flow.push_back(std::move(Flow));
        }
        Entry.Diags.push_back(std::move(Diag));
      }
    }
    Parsed.emplace(FilePath, std::move(Entry));
  }
  Entries = std::move(Parsed);
}

Status LintCache::save(const std::string &Path,
                        std::string_view Config) const {
  std::string Out;
  Out.append(MagicLine);
  Out.push_back('\n');
  Out.append(Config);
  Out.push_back('\n');
  for (const auto &[FilePath, Entry] : Entries) {
    Out.append("file ").append(FilePath).push_back('\n');
    Out.append("crc ");
    appendHex32(Out, Entry.ContentCrc);
    Out.push_back('\n');
    size_t FactsLines = 0;
    for (char C : Entry.FactsBlock)
      FactsLines += C == '\n';
    Out.append("facts ").append(std::to_string(FactsLines)).push_back('\n');
    Out.append(Entry.FactsBlock);
    if (!Entry.HasDiags) {
      Out.append("diags none\n");
      continue;
    }
    Out.append("diags ");
    appendHex32(Out, Entry.ContextCrc);
    Out.push_back(' ');
    appendHex32(Out, Entry.DepsCrc);
    Out.push_back(' ');
    Out.append(std::to_string(Entry.Diags.size()));
    Out.push_back('\n');
    for (const Diagnostic &Diag : Entry.Diags) {
      Out.append("D ").append(std::to_string(Diag.Line));
      Out.push_back(' ');
      Out.append(std::to_string(Diag.Column));
      Out.push_back(' ');
      Out.append(std::to_string(Diag.Flow.size()));
      Out.push_back(' ');
      Out.append(Diag.RuleId).push_back(' ');
      Out.append(Diag.RuleName).push_back(' ');
      Out.append(Diag.Message);
      Out.push_back('\n');
      for (const FlowStep &Step : Diag.Flow) {
        Out.append("F ").append(std::to_string(Step.Line));
        Out.push_back(' ');
        Out.append(std::to_string(Step.Column));
        Out.push_back(' ');
        Out.append(Step.Path.empty() ? "-" : Step.Path);
        Out.push_back(' ');
        Out.append(Step.Message);
        Out.push_back('\n');
      }
    }
  }
  return writeFileAtomic(Path, Out);
}

const CacheEntry *LintCache::lookup(std::string_view FilePath) const {
  const auto It = Entries.find(FilePath);
  return It == Entries.end() ? nullptr : &It->second;
}

void LintCache::update(std::string FilePath, CacheEntry Entry) {
  Entries.insert_or_assign(std::move(FilePath), std::move(Entry));
}

std::string cacheConfigStamp(const std::vector<std::string> &ActiveRuleIds) {
  std::string Stamp = "config engine=4 cfg=1 rules=";
  for (size_t I = 0; I < ActiveRuleIds.size(); ++I) {
    if (I)
      Stamp.push_back(',');
    Stamp.append(ActiveRuleIds[I]);
  }
  return Stamp;
}

} // namespace lint
} // namespace parmonc
