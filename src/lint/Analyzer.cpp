//===- lint/Analyzer.cpp - Project-wide lint driver -----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The pipeline (see Analyzer.h) runs in two cache-aware passes. Pass one
// produces FileFacts for every file — from the cache when the content hash
// matches, from a fresh lex otherwise — and from them the project index
// and the cross-file LintContext. Pass two produces raw per-file
// diagnostics — again from the cache when both the content hash and the
// context fingerprint match — then the project-wide rules, then the
// central waiver/stale-waiver/baseline filtering that turns raw findings
// into the report.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"

#include "parmonc/lint/Baseline.h"
#include "parmonc/lint/Cache.h"
#include "parmonc/lint/CallGraph.h"
#include "parmonc/lint/Index.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/SourceFile.h"
#include "parmonc/lint/Summary.h"
#include "parmonc/support/Checksum.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <atomic>   // mclint: allow(R3): the --jobs worker pool lives here
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <thread>   // mclint: allow(R3): the --jobs worker pool lives here

namespace parmonc {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool isSourceExtension(const fs::path &Path) {
  const std::string Ext = Path.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
         Ext == ".cxx";
}

/// Directories never worth walking into: build trees, VCS/tooling state,
/// and lint fixture trees (deliberate violations; linted only when named
/// as a root).
bool isSkippedDirectory(const fs::path &Path) {
  const std::string Name = Path.filename().string();
  return startsWith(Name, "build") || startsWith(Name, ".") ||
         Name == "fixtures";
}

/// Collects every source file under \p Root (or \p Root itself when it is
/// a file) into \p Files, sorted later for determinism.
Status collectFiles(const std::string &Root, std::vector<std::string> &Files) {
  std::error_code Error;
  const fs::file_status RootStatus = fs::status(Root, Error);
  if (Error)
    return ioError("cannot stat '" + Root + "': " + Error.message());
  if (fs::is_regular_file(RootStatus)) {
    Files.push_back(Root);
    return Status::ok();
  }
  if (!fs::is_directory(RootStatus))
    return invalidArgument("'" + Root + "' is neither a file nor a directory");

  fs::recursive_directory_iterator It(Root, Error), End;
  if (Error)
    return ioError("cannot open '" + Root + "': " + Error.message());
  for (; It != End; It.increment(Error)) {
    if (Error)
      return ioError("error walking '" + Root + "': " + Error.message());
    const fs::directory_entry &Entry = *It;
    if (Entry.is_directory()) {
      if (isSkippedDirectory(Entry.path()))
        It.disable_recursion_pending();
      continue;
    }
    if (Entry.is_regular_file() && isSourceExtension(Entry.path()))
      Files.push_back(Entry.path().generic_string());
  }
  return Status::ok();
}

/// Raw source lines of \p Contents, SourceFile's splitting rules: '\n'
/// separated, trailing '\r' stripped, empty trailing line dropped.
std::vector<std::string_view> splitRawLines(std::string_view Contents) {
  std::vector<std::string_view> Lines;
  for (std::string_view Line : splitChar(Contents, '\n')) {
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    Lines.push_back(Line);
  }
  if (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  return Lines;
}

/// Fingerprint of everything cross-file that per-file diagnostics depend
/// on: the configuration plus the derived context sets.
uint32_t contextFingerprint(std::string_view ConfigStamp,
                            const LintContext &Context) {
  std::string Key(ConfigStamp);
  Key += "\nN:";
  for (const std::string &Name : Context.NodiscardFunctions)
    (Key += Name) += ',';
  Key += "\nT:";
  for (const std::string &Name : Context.TaintedFunctions)
    (Key += Name) += ',';
  Key += "\nC:";
  for (const std::string &Name : Context.CleanFunctions)
    (Key += Name) += ',';
  return crc32(Key);
}

/// The per-run state for one scanned file.
struct FileState {
  std::string Path;
  std::string Contents;
  uint32_t ContentCrc = 0;
  FileFacts Facts;
  std::string FactsBlock; ///< Serialized Facts (cache currency).
  std::unique_ptr<SourceFile> Lexed; ///< Lazily constructed.
  std::vector<std::string_view> RawLines; ///< Lazily split from Contents.
  std::vector<Diagnostic> RawDiags; ///< Per-file rules, pre-filtering.
  bool DiagsFromCache = false;
  /// Parallel to Facts.Waivers: suppressed at least one finding this run.
  std::vector<bool> WaiverUsed;

  const SourceFile &source() {
    if (!Lexed)
      Lexed = std::make_unique<SourceFile>(Path, Contents);
    return *Lexed;
  }

  const std::vector<std::string_view> &rawLines() {
    if (RawLines.empty() && !Contents.empty())
      RawLines = splitRawLines(Contents);
    return RawLines;
  }

  std::string_view rawLine(size_t Index) {
    const auto &Lines = rawLines();
    return Index < Lines.size() ? Lines[Index] : std::string_view{};
  }
};

/// True when \p W suppresses a finding of \p RuleId at 1-based \p Line.
bool waiverCovers(const Waiver &W, std::string_view RuleId, unsigned Line) {
  if (W.RuleId != RuleId)
    return false;
  if (W.FileScope)
    return true;
  const uint32_t Index = Line == 0 ? 0 : Line - 1;
  return Index >= W.CoverBegin && Index <= W.CoverEnd;
}

/// Filters \p Diags through the file's waivers, marking used ones.
void filterThroughWaivers(FileState &File, std::vector<Diagnostic> &Diags) {
  if (File.Facts.Waivers.empty())
    return;
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diagnostic &Diag) {
                               bool Suppressed = false;
                               for (size_t I = 0;
                                    I < File.Facts.Waivers.size(); ++I)
                                 if (waiverCovers(File.Facts.Waivers[I],
                                                  Diag.RuleId, Diag.Line)) {
                                   File.WaiverUsed[I] = true;
                                   Suppressed = true;
                                 }
                               return Suppressed;
                             }),
              Diags.end());
}

/// The stale-waiver (R10) synthesis: one finding per waiver directive
/// whose every audited rule id suppressed nothing this run. Waivers for
/// rules outside the active set are not audited (they could not have
/// fired), and allow(R10) itself is exempt — it only filters.
void synthesizeStaleWaiverDiags(
    FileState &File, const std::set<std::string, std::less<>> &ActiveIds,
    bool ComputeFixes, std::vector<Diagnostic> &Out) {
  const std::vector<Waiver> &Waivers = File.Facts.Waivers;
  std::map<uint32_t, std::vector<size_t>> Groups; // directive -> waivers
  for (size_t I = 0; I < Waivers.size(); ++I)
    Groups[Waivers[I].DirectiveIndex].push_back(I);
  for (const auto &[Directive, Members] : Groups) {
    bool AllStale = true;
    std::string RuleList;
    for (size_t I : Members) {
      const Waiver &W = Waivers[I];
      if (W.RuleId == "R10" || !ActiveIds.count(W.RuleId) ||
          File.WaiverUsed[I]) {
        AllStale = false;
        break;
      }
      if (!RuleList.empty())
        RuleList += ",";
      RuleList += W.RuleId;
    }
    if (!AllStale || Members.empty())
      continue;
    const Waiver &First = Waivers[Members.front()];
    Diagnostic Diag;
    Diag.Path = File.Path;
    Diag.Line = First.DirectiveLine + 1;
    Diag.RuleId = "R10";
    Diag.RuleName = "stale-waiver";
    Diag.Message = "waiver 'allow" +
                   std::string(First.FileScope ? "-file" : "") + "(" +
                   RuleList +
                   ")' suppresses no finding; the covered code is "
                   "clean — remove the directive";
    if (ComputeFixes) {
      if (First.Standalone) {
        // The comment is the whole line (possibly several): delete them.
        for (uint32_t Line = First.DirectiveLine;
             Line <= First.DirectiveEndLine; ++Line)
          Diag.Fixes.push_back({Line + 1, true, ""});
      } else {
        // Trailing comment: cut it off, keeping the code.
        std::string_view Raw = File.rawLine(First.DirectiveLine);
        if (First.DirectiveColumn < Raw.size() &&
            Raw.substr(First.DirectiveColumn, 2) == "//") {
          std::string Kept(Raw.substr(0, First.DirectiveColumn));
          while (!Kept.empty() &&
                 (Kept.back() == ' ' || Kept.back() == '\t'))
            Kept.pop_back();
          Diag.Fixes.push_back({First.DirectiveLine + 1, false, Kept});
        }
      }
    }
    Out.push_back(std::move(Diag));
  }
}

} // namespace

Result<LintReport> runAnalyzer(const AnalyzerOptions &Options) {
  if (Options.Paths.empty())
    return invalidArgument("no paths to lint");

  // Resolve the rule subset.
  std::vector<std::unique_ptr<Rule>> AllRules = makeAllRules();
  std::vector<const Rule *> Active;
  if (Options.RuleIds.empty()) {
    for (const auto &RulePtr : AllRules)
      Active.push_back(RulePtr.get());
  } else {
    for (const std::string &Id : Options.RuleIds) {
      const Rule *Found = nullptr;
      for (const auto &RulePtr : AllRules)
        if (RulePtr->id() == Id || RulePtr->name() == Id)
          Found = RulePtr.get();
      if (!Found)
        return invalidArgument("unknown lint rule '" + Id + "'");
      Active.push_back(Found);
    }
  }
  std::set<std::string, std::less<>> ActiveIds;
  std::vector<std::string> ActiveIdList;
  for (const Rule *ActiveRule : Active)
    if (ActiveIds.insert(std::string(ActiveRule->id())).second)
      ActiveIdList.push_back(std::string(ActiveRule->id()));
  const std::string ConfigStamp = cacheConfigStamp(ActiveIdList);

  // Gather the file set.
  std::vector<std::string> Paths;
  for (const std::string &Root : Options.Paths)
    if (Status Collected = collectFiles(Root, Paths); !Collected)
      return Collected;
  std::sort(Paths.begin(), Paths.end());
  Paths.erase(std::unique(Paths.begin(), Paths.end()), Paths.end());

  LintCache Cache;
  if (!Options.CachePath.empty())
    Cache.load(Options.CachePath, ConfigStamp);

  // The per-file passes are embarrassingly parallel: every worker owns
  // whole FileState slots (claimed through one shared counter), the cache
  // and context are only read, and results land in the slot their file
  // index names — so merged output is byte-identical at any job count.
  std::vector<FileState> Files(Paths.size());
  const unsigned Jobs = std::max(1u, Options.Jobs);
  const auto ForEachFile = [&](auto &&Body) {
    if (Jobs <= 1 || Files.size() <= 1) {
      for (size_t I = 0; I < Files.size(); ++I)
        Body(I);
      return;
    }
    std::atomic<size_t> NextIndex{0}; // mclint: allow(R3): worker pool
    const auto Work = [&] {
      for (size_t I = NextIndex.fetch_add(1); I < Files.size();
           I = NextIndex.fetch_add(1))
        Body(I);
    };
    std::vector<std::thread> Workers; // mclint: allow(R3): worker pool
    const unsigned Spawned =
        std::min<unsigned>(Jobs, static_cast<unsigned>(Files.size())) - 1;
    for (unsigned T = 0; T < Spawned; ++T)
      Workers.emplace_back(Work);
    Work();
    for (auto &Worker : Workers)
      Worker.join();
  };

  // Pass one: contents, hashes and facts — cached facts skip the lex.
  // I/O errors are collected per file and the first (in path order) is
  // reported, matching the serial behavior.
  std::vector<Status> PassOneErrors(Paths.size(), Status::ok());
  ForEachFile([&](size_t I) {
    FileState &File = Files[I];
    File.Path = Paths[I];
    Result<std::string> Contents = readFileToString(File.Path);
    if (!Contents) {
      PassOneErrors[I] = Contents.status();
      return;
    }
    File.Contents = std::move(Contents.value());
    File.ContentCrc = crc32(File.Contents);
    const CacheEntry *Cached = Cache.lookup(File.Path);
    bool FactsFromCache = false;
    if (Cached && Cached->ContentCrc == File.ContentCrc) {
      Result<FileFacts> Parsed = parseFileFacts(Cached->FactsBlock);
      if (Parsed) {
        File.Facts = std::move(Parsed.value());
        File.FactsBlock = Cached->FactsBlock;
        FactsFromCache = true;
      }
    }
    if (!FactsFromCache) {
      File.Facts = extractFileFacts(File.source());
      File.FactsBlock = serializeFileFacts(File.Facts);
    }
    File.WaiverUsed.assign(File.Facts.Waivers.size(), false);
  });
  for (Status &Error : PassOneErrors)
    if (!Error)
      return Error;

  // The project index and the cross-file context.
  ProjectIndex Index;
  for (FileState &File : Files)
    Index.add(File.Path, File.Facts);
  LintContext Context;
  populateContextFromIndex(Index, Context);
  // R1 stands down inside bodies the dataflow stage covers — but only
  // when R11 is actually part of this run.
  Context.FlowRulesActive = ActiveIds.count("R11") != 0;
  const uint32_t ContextCrc = contextFingerprint(ConfigStamp, Context);

  // The interprocedural stage: call graph and bottom-up summaries, built
  // from the (possibly cached) per-function evidence — no lexing here.
  // The per-file dependency fingerprints key pass two's cached findings:
  // a changed summary re-analyzes exactly the files that can reach it.
  const CallGraph Graph = CallGraph::build(Index);
  const SummaryStore Summaries = computeSummaries(Index, Graph);
  Context.Summaries = &Summaries;
  Context.Graph = &Graph;
  const std::vector<uint32_t> DepsCrcs =
      dependencyFingerprints(Index, Graph, Summaries);

  // Pass two: raw per-file diagnostics, cache-aware.
  LintReport Report;
  Report.FileCount = Files.size();
  ForEachFile([&](size_t I) {
    FileState &File = Files[I];
    const CacheEntry *Cached = Cache.lookup(File.Path);
    if (!Options.ComputeFixes && Cached &&
        Cached->ContentCrc == File.ContentCrc && Cached->HasDiags &&
        Cached->ContextCrc == ContextCrc &&
        Cached->DepsCrc == DepsCrcs[I]) {
      File.RawDiags = Cached->Diags;
      File.DiagsFromCache = true;
      return;
    }
    for (const Rule *ActiveRule : Active)
      if (ActiveRule->isPerFile())
        ActiveRule->check(File.source(), Context, File.RawDiags);
  });
  for (const FileState &File : Files) {
    if (File.DiagsFromCache)
      ++Report.CacheHits;
    else
      ++Report.CacheMisses;
  }

  // Project-wide rules (R9) run over the index every time — they are
  // cheap once lexing is skipped, and their evidence spans files.
  std::vector<Diagnostic> ProjectDiags;
  for (const Rule *ActiveRule : Active)
    if (!ActiveRule->isPerFile())
      ActiveRule->checkProject(Index, Context, ProjectDiags);

  // Central waiver filtering: per-file diags against their own file,
  // project diags against the file each one names.
  std::map<std::string_view, FileState *> ByPath;
  for (FileState &File : Files)
    ByPath[File.Path] = &File;
  for (FileState &File : Files) {
    std::vector<Diagnostic> Kept = File.RawDiags;
    filterThroughWaivers(File, Kept);
    for (Diagnostic &Diag : Kept)
      Report.Diagnostics.push_back(std::move(Diag));
  }
  ProjectDiags.erase(
      std::remove_if(ProjectDiags.begin(), ProjectDiags.end(),
                     [&](const Diagnostic &Diag) {
                       const auto It = ByPath.find(Diag.Path);
                       if (It == ByPath.end())
                         return false;
                       FileState &File = *It->second;
                       bool Suppressed = false;
                       for (size_t I = 0; I < File.Facts.Waivers.size();
                            ++I)
                         if (waiverCovers(File.Facts.Waivers[I],
                                          Diag.RuleId, Diag.Line)) {
                           File.WaiverUsed[I] = true;
                           Suppressed = true;
                         }
                       return Suppressed;
                     }),
      ProjectDiags.end());
  for (Diagnostic &Diag : ProjectDiags)
    Report.Diagnostics.push_back(std::move(Diag));

  // R10: audit the waivers themselves, then filter the audit findings
  // through allow(R10) waivers.
  if (ActiveIds.count("R10")) {
    std::vector<Diagnostic> StaleDiags;
    for (FileState &File : Files)
      synthesizeStaleWaiverDiags(File, ActiveIds, Options.ComputeFixes,
                                 StaleDiags);
    StaleDiags.erase(
        std::remove_if(StaleDiags.begin(), StaleDiags.end(),
                       [&](const Diagnostic &Diag) {
                         FileState &File = *ByPath.at(Diag.Path);
                         for (const Waiver &W : File.Facts.Waivers)
                           if (waiverCovers(W, Diag.RuleId, Diag.Line))
                             return true;
                         return false;
                       }),
        StaleDiags.end());
    for (Diagnostic &Diag : StaleDiags)
      Report.Diagnostics.push_back(std::move(Diag));
  }

  // Baseline subtraction.
  const auto LineTextOf = [&](const Diagnostic &Diag) -> std::string_view {
    const auto It = ByPath.find(Diag.Path);
    if (It == ByPath.end() || Diag.Line == 0)
      return {};
    return It->second->rawLine(Diag.Line - 1);
  };
  if (!Options.BaselinePath.empty()) {
    Result<std::vector<BaselineEntry>> Entries =
        loadBaseline(Options.BaselinePath);
    if (!Entries)
      return Entries.status();
    Report.BaselineSuppressed = applyBaseline(
        std::move(Entries.value()), LineTextOf, Report.Diagnostics);
  }

  sortDiagnostics(Report.Diagnostics);
  Report.DiagnosticLineText.reserve(Report.Diagnostics.size());
  for (const Diagnostic &Diag : Report.Diagnostics)
    Report.DiagnosticLineText.emplace_back(LineTextOf(Diag));

  // Persist the cache: facts always; diagnostics only from runs that
  // computed them raw (a --fix run's diags carry fixes, which the cache
  // drops anyway, so they are stored too — minus the fix data).
  if (!Options.CachePath.empty()) {
    for (size_t I = 0; I < Files.size(); ++I) {
      FileState &File = Files[I];
      CacheEntry Entry;
      Entry.ContentCrc = File.ContentCrc;
      Entry.FactsBlock = File.FactsBlock;
      Entry.HasDiags = true;
      Entry.ContextCrc = ContextCrc;
      Entry.DepsCrc = DepsCrcs[I];
      Entry.Diags = File.RawDiags;
      for (Diagnostic &Diag : Entry.Diags)
        Diag.Fixes.clear();
      Cache.update(File.Path, std::move(Entry));
    }
    if (Status Stored = Cache.save(Options.CachePath, ConfigStamp);
        !Stored)
      return Stored;
  }
  return Report;
}

Result<size_t> applyFixes(const std::vector<Diagnostic> &Diags) {
  // Collect edits per file; later-line edits apply first so earlier line
  // numbers stay valid. One edit per line — duplicates are dropped.
  std::map<std::string, std::map<unsigned, const FixIt *>> EditsByFile;
  for (const Diagnostic &Diag : Diags)
    for (const FixIt &Fix : Diag.Fixes)
      if (Fix.Line > 0)
        EditsByFile[Diag.Path].emplace(Fix.Line, &Fix);

  size_t FilesRewritten = 0;
  for (const auto &[Path, Edits] : EditsByFile) {
    Result<std::string> Contents = readFileToString(Path);
    if (!Contents)
      return Contents.status();
    const bool HadTrailingNewline =
        !Contents.value().empty() && Contents.value().back() == '\n';
    std::vector<std::string> Lines;
    for (std::string_view Line : splitRawLines(Contents.value()))
      Lines.emplace_back(Line);
    for (auto It = Edits.rbegin(); It != Edits.rend(); ++It) {
      const auto &[LineNumber, Fix] = *It;
      if (LineNumber > Lines.size())
        continue; // the file shrank since analysis — skip, do not guess
      if (Fix->RemoveLine)
        Lines.erase(Lines.begin() + (LineNumber - 1));
      else
        Lines[LineNumber - 1] = Fix->NewText;
    }
    std::string Rewritten;
    for (size_t I = 0; I < Lines.size(); ++I) {
      Rewritten += Lines[I];
      if (I + 1 < Lines.size() || HadTrailingNewline)
        Rewritten += '\n';
    }
    if (Status Wrote = writeFileAtomic(Path, Rewritten); !Wrote)
      return Wrote;
    ++FilesRewritten;
  }
  return FilesRewritten;
}

} // namespace lint
} // namespace parmonc
