//===- lint/Analyzer.cpp - Project-wide lint driver -----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Analyzer.h"

#include "parmonc/lint/Rules.h"
#include "parmonc/lint/SourceFile.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <filesystem>
#include <set>

namespace parmonc {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool isSourceExtension(const fs::path &Path) {
  const std::string Ext = Path.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
         Ext == ".cxx";
}

/// Directories never worth linting: build trees and VCS/tooling state.
bool isSkippedDirectory(const fs::path &Path) {
  const std::string Name = Path.filename().string();
  return startsWith(Name, "build") || startsWith(Name, ".");
}

/// Collects every source file under \p Root (or \p Root itself when it is
/// a file) into \p Files, sorted later for determinism.
Status collectFiles(const std::string &Root, std::vector<std::string> &Files) {
  std::error_code Error;
  const fs::file_status RootStatus = fs::status(Root, Error);
  if (Error)
    return ioError("cannot stat '" + Root + "': " + Error.message());
  if (fs::is_regular_file(RootStatus)) {
    Files.push_back(Root);
    return Status::ok();
  }
  if (!fs::is_directory(RootStatus))
    return invalidArgument("'" + Root + "' is neither a file nor a directory");

  fs::recursive_directory_iterator It(Root, Error), End;
  if (Error)
    return ioError("cannot open '" + Root + "': " + Error.message());
  for (; It != End; It.increment(Error)) {
    if (Error)
      return ioError("error walking '" + Root + "': " + Error.message());
    const fs::directory_entry &Entry = *It;
    if (Entry.is_directory()) {
      if (isSkippedDirectory(Entry.path()))
        It.disable_recursion_pending();
      continue;
    }
    if (Entry.is_regular_file() && isSourceExtension(Entry.path()))
      Files.push_back(Entry.path().generic_string());
  }
  return Status::ok();
}

} // namespace

Result<LintReport> runAnalyzer(const AnalyzerOptions &Options) {
  if (Options.Paths.empty())
    return invalidArgument("no paths to lint");

  // Resolve the rule subset.
  std::vector<std::unique_ptr<Rule>> AllRules = makeAllRules();
  std::vector<const Rule *> Active;
  if (Options.RuleIds.empty()) {
    for (const auto &RulePtr : AllRules)
      Active.push_back(RulePtr.get());
  } else {
    for (const std::string &Id : Options.RuleIds) {
      const Rule *Found = nullptr;
      for (const auto &RulePtr : AllRules)
        if (RulePtr->id() == Id || RulePtr->name() == Id)
          Found = RulePtr.get();
      if (!Found)
        return invalidArgument("unknown lint rule '" + Id + "'");
      Active.push_back(Found);
    }
  }

  // Gather the file set.
  std::vector<std::string> Paths;
  for (const std::string &Root : Options.Paths)
    if (Status Collected = collectFiles(Root, Paths); !Collected)
      return Collected;
  std::sort(Paths.begin(), Paths.end());
  Paths.erase(std::unique(Paths.begin(), Paths.end()), Paths.end());

  // Load and lex every file once.
  std::vector<SourceFile> Files;
  Files.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    Result<std::string> Contents = readFileToString(Path);
    if (!Contents)
      return Contents.status();
    Files.emplace_back(Path, Contents.value());
  }

  // Pre-pass: the cross-file context (R1's nodiscard function set).
  LintContext Context;
  Context.NodiscardFunctions = builtinFallibleFunctions();
  for (const SourceFile &File : Files)
    harvestNodiscardFunctions(File, Context.NodiscardFunctions);

  LintReport Report;
  Report.FileCount = Files.size();
  for (const SourceFile &File : Files)
    for (const Rule *ActiveRule : Active)
      ActiveRule->check(File, Context, Report.Diagnostics);
  sortDiagnostics(Report.Diagnostics);
  return Report;
}

} // namespace lint
} // namespace parmonc
