//===- lint/Rules.cpp - The enforced project invariants -------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The rules work on the lexed view of each file — the scrubbed lines for
// line-oriented checks, the token stream for the stream-discipline and
// call-edge checks, and the project index for the cross-TU rules. They are
// deliberately heuristic — this is a project linter, not a compiler — but
// every heuristic errs toward silence on idiomatic code and each rule has
// an explicit, grep-able waiver escape hatch (see SourceFile.h), which
// rule R10 keeps honest.
//
// Rules emit unconditionally; the analyzer applies waivers centrally so it
// can also detect waivers that no longer suppress anything.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Rules.h"

#include "parmonc/support/Text.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

namespace parmonc {
namespace lint {

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// One reconstructed statement: the scrubbed text joined across lines and
/// the 0-based line its first token appeared on.
struct Statement {
  std::string Text;
  size_t FirstLine = 0;
};

/// Splits the scrubbed file into approximate statements. Boundaries are
/// `;`, `{` and `}` at parenthesis/bracket depth zero; preprocessor lines
/// are skipped entirely. Good enough to see whether a call's result is
/// consumed, which is all R1 needs.
template <typename Callback>
void forEachStatement(const SourceFile &File, Callback &&OnStatement) {
  Statement Current;
  bool HaveToken = false;
  int Depth = 0;
  for (size_t LineIndex = 0; LineIndex < File.lineCount(); ++LineIndex) {
    std::string_view Line = File.scrubbedLine(LineIndex);
    if (startsWith(trim(Line), "#"))
      continue; // preprocessor
    for (char C : Line) {
      if (C == '(' || C == '[')
        ++Depth;
      else if (C == ')' || C == ']')
        --Depth;
      if (Depth <= 0 && (C == ';' || C == '{' || C == '}')) {
        Current.Text.push_back(C);
        if (HaveToken)
          OnStatement(static_cast<const Statement &>(Current));
        Current = Statement{};
        HaveToken = false;
        Depth = 0;
        continue;
      }
      if (!HaveToken && !std::isspace(static_cast<unsigned char>(C))) {
        HaveToken = true;
        Current.FirstLine = LineIndex;
      }
      Current.Text.push_back(C);
    }
    Current.Text.push_back(' '); // line break separates tokens
  }
}

/// True if the statement contains a top-level `=` that is an assignment
/// or initialization (not ==, !=, <=, >=).
bool hasTopLevelAssignment(std::string_view Text) {
  int Depth = 0;
  for (size_t I = 0; I < Text.size(); ++I) {
    const char C = Text[I];
    if (C == '(' || C == '[')
      ++Depth;
    else if (C == ')' || C == ']')
      --Depth;
    else if (C == '=' && Depth == 0) {
      const char Prev = I > 0 ? Text[I - 1] : '\0';
      const char Next = I + 1 < Text.size() ? Text[I + 1] : '\0';
      if (Prev != '=' && Prev != '!' && Prev != '<' && Prev != '>' &&
          Next != '=')
        return true;
    }
  }
  return false;
}

/// Keywords that can begin a statement whose leading call is consumed or
/// is not a call at all.
bool startsWithStatementKeyword(std::string_view Text) {
  static constexpr std::array<std::string_view, 18> Keywords = {
      "return",   "if",       "while",    "for",     "switch",
      "else",     "do",       "case",     "goto",    "co_return",
      "co_yield", "co_await", "throw",    "using",   "typedef",
      "template", "delete",   "static_assert"};
  for (std::string_view Keyword : Keywords)
    if (startsWith(Text, Keyword) &&
        (Text.size() == Keyword.size() ||
         !isIdentChar(Text[Keyword.size()])))
      return true;
  return false;
}

/// If the statement begins with a plain call chain — `name(...)`,
/// `ns::name(...)`, `obj.name(...)`, `obj->name(...)` — returns the final
/// callee name; empty otherwise.
std::string_view leadingCalleeName(std::string_view Text) {
  size_t I = 0;
  size_t NameBegin = 0, NameEnd = 0;
  while (I < Text.size()) {
    if (!isIdentChar(Text[I]))
      return {};
    NameBegin = I;
    while (I < Text.size() && isIdentChar(Text[I]))
      ++I;
    NameEnd = I;
    if (I >= Text.size())
      return {};
    if (Text[I] == '(')
      return Text.substr(NameBegin, NameEnd - NameBegin);
    if (Text.compare(I, 2, "::") == 0 || Text.compare(I, 2, "->") == 0) {
      I += 2;
      continue;
    }
    if (Text[I] == '.') {
      I += 1;
      continue;
    }
    return {};
  }
  return {};
}

/// Token-stream helpers shared by the token-level rules.
size_t nextCodeToken(const std::vector<Token> &Tokens, size_t I) {
  ++I;
  while (I < Tokens.size() && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

size_t prevCodeToken(const std::vector<Token> &Tokens, size_t I) {
  while (I > 0) {
    --I;
    if (Tokens[I].Kind != TokenKind::Comment)
      return I;
  }
  return size_t(-1);
}

bool isPunctToken(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

//===----------------------------------------------------------------------===//
// R1: discarded-status
//===----------------------------------------------------------------------===//

class DiscardedStatusRule final : public Rule {
public:
  std::string_view id() const override { return "R1"; }
  std::string_view name() const override { return "discarded-status"; }
  std::string_view summary() const override {
    return "fallible calls must not discard their Status/Result";
  }
  std::string_view rationale() const override {
    return "Every fallible API returns Status/Result and is declared "
           "[[nodiscard]]. A discarded return is a save-point or I/O "
           "failure the run silently absorbs: the eq. (5) merged averages "
           "keep flowing with corrupted or missing subtotals and no crash "
           "ever points at the cause. The rule reconstructs expression "
           "statements and flags a leading call into the fallible-API set "
           "whose result is neither consumed nor explicitly cast away.";
  }
  std::string_view example() const override {
    return "  writeSnapshot(Path, State);            // flagged\n"
           "  Status S = writeSnapshot(Path, State); // ok: handled\n"
           "  (void)writeSnapshot(Path, State);      // ok: explicit";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    // When the flow-sensitive R11 is part of the run, it owns discarded
    // calls inside bodies it can analyze (with path witnesses attached);
    // this rule stands down there so one violation is never reported
    // twice. Bodies the CFG builder could not model, declarations and
    // file-scope statements stay R1 territory.
    std::vector<std::pair<uint32_t, uint32_t>> FlowCovered;
    if (Context.FlowRulesActive)
      for (const FunctionCfg &Cfg : File.functions())
        if (Cfg.analyzable())
          FlowCovered.emplace_back(Cfg.BodyFirstLine, Cfg.BodyLastLine);
    forEachStatement(File, [&](const Statement &Stmt) {
      for (const auto &[Begin, End] : FlowCovered)
        if (Stmt.FirstLine >= Begin && Stmt.FirstLine <= End)
          return; // R11 supersedes inside this body
      std::string_view Text = trim(Stmt.Text);
      if (Text.empty() || Text.back() != ';')
        return; // only expression statements can discard
      if (startsWith(Text, "(void)"))
        return; // explicit, reviewed discard
      if (startsWithStatementKeyword(Text))
        return;
      if (hasTopLevelAssignment(Text))
        return;
      std::string_view Callee = leadingCalleeName(Text);
      if (Callee.empty() ||
          Context.NodiscardFunctions.find(Callee) ==
              Context.NodiscardFunctions.end())
        return;
      Out.push_back({File.path(), unsigned(Stmt.FirstLine + 1),
                     std::string(id()), std::string(name()),
                     "result of fallible call '" + std::string(Callee) +
                         "' is discarded; handle the Status or spell the "
                         "discard '(void)'",
                     {}});
    });
  }
};

//===----------------------------------------------------------------------===//
// R2: nondeterminism
//===----------------------------------------------------------------------===//

class NondeterminismRule final : public Rule {
public:
  std::string_view id() const override { return "R2"; }
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view summary() const override {
    return "no entropy/wall-clock sources outside support/Clock.h";
  }
  std::string_view rationale() const override {
    return "Bit-exact reproducibility of the stream hierarchy (§2.4) is a "
           "core guarantee: a run restarted from a sealed checkpoint must "
           "produce the identical realization sequence. Any ambient "
           "entropy or wall-clock read — std::random_device, "
           "system_clock, time(), gettimeofday() — breaks that silently. "
           "All time flows through the injectable parmonc::Clock seam.";
  }
  std::string_view example() const override {
    return "  std::random_device Rd;          // flagged\n"
           "  double T0 = time(nullptr);      // flagged\n"
           "  int64_t Now = Clock.nowNanos(); // ok: injected seam";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (pathEndsWith(File.path(), "support/Clock.h"))
      return; // the one approved seam
    static constexpr std::array<std::string_view, 3> BannedTypes = {
        "std::random_device", "std::chrono::system_clock",
        "std::chrono::high_resolution_clock"};
    static constexpr std::array<std::string_view, 10> BannedCalls = {
        "rand",      "srand",        "random",       "drand48", "lrand48",
        "time",      "gettimeofday", "clock_gettime", "localtime", "gmtime"};
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : BannedTypes) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "'" + std::string(Banned) +
                           "' is a nondeterminism source; inject time "
                           "through parmonc::Clock "
                           "(support/Clock.h) instead",
                       {}});
        break;
      }
      for (std::string_view Banned : BannedCalls) {
        if (!isBannedCall(Line, Banned))
          continue;
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "call to '" + std::string(Banned) +
                           "()' injects nondeterminism; use the "
                           "parmonc::Clock seam or the stream "
                           "hierarchy instead",
                       {}});
        break;
      }
    }
  }

private:
  /// Matches `name(`, `std::name(` and global `::name(` but not member
  /// calls `.name(` / `->name(` or names qualified by a project scope.
  static bool isBannedCall(std::string_view Line, std::string_view Name) {
    size_t Pos = 0;
    while ((Pos = Line.find(Name, Pos)) != std::string_view::npos) {
      const size_t End = Pos + Name.size();
      size_t After = End;
      while (After < Line.size() && Line[After] == ' ')
        ++After;
      if (After >= Line.size() || Line[After] != '(' ||
          (End < Line.size() && isIdentChar(Line[End]))) {
        Pos = End;
        continue;
      }
      bool Flag = true;
      if (Pos > 0) {
        const char Prev = Line[Pos - 1];
        if (isIdentChar(Prev) || Prev == '.') {
          Flag = false;
        } else if (Prev == '>' && Pos >= 2 && Line[Pos - 2] == '-') {
          Flag = false;
        } else if (Prev == ':') {
          // Qualified name: only std:: and the global :: are the C/C++
          // library versions; Foo::time(...) is project code.
          Flag = false;
          if (Pos >= 2 && Line[Pos - 2] == ':') {
            std::string_view Before = Line.substr(0, Pos - 2);
            size_t Begin = Before.size();
            while (Begin > 0 && isIdentChar(Before[Begin - 1]))
              --Begin;
            std::string_view Qualifier = Before.substr(Begin);
            Flag = Qualifier.empty() || Qualifier == "std";
          }
        }
      }
      if (Flag)
        return true;
      Pos = End;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// R3: raw-concurrency
//===----------------------------------------------------------------------===//

class RawConcurrencyRule final : public Rule {
public:
  std::string_view id() const override { return "R3"; }
  std::string_view name() const override { return "raw-concurrency"; }
  std::string_view summary() const override {
    return "thread/mutex/atomic primitives only in mpsim/, obs/, core/";
  }
  std::string_view rationale() const override {
    return "Cross-rank state must flow through the idempotent collector "
           "protocol and the mpsim communicator; scattered ad-hoc threads "
           "and locks make the eq. (5) merge path unauditable. Raw std:: "
           "synchronization is therefore confined to mpsim/ and obs/ "
           "(whose whole job is concurrency) and the Clock seam. core/ is "
           "excluded here because R8 applies the stricter "
           "mailbox-discipline check there, including call-graph taint.";
  }
  std::string_view example() const override {
    return "  // in src/vr/ControlVariates.cpp:\n"
           "  std::mutex M;                 // flagged\n"
           "  #include <thread>             // flagged\n"
           "  // in src/mpsim/Mailbox.cpp: ok — the blessed layer";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (pathContainsComponent(File.path(), "mpsim") ||
        pathContainsComponent(File.path(), "obs") ||
        pathContainsComponent(File.path(), "core") ||
        pathEndsWith(File.path(), "support/Clock.h"))
      return;
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (startsWith(Raw, "#include")) {
        for (std::string_view Banned : rawConcurrencyIncludeNeedles()) {
          if (Raw.find(Banned) == std::string_view::npos)
            continue;
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "include of " + std::string(Banned) +
                             " outside mpsim/ and obs/; route "
                             "concurrency through the communicator or "
                             "the metrics registry",
                         {}});
          break;
        }
        continue;
      }
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : rawConcurrencyTypeNeedles()) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "'" + std::string(Banned) +
                           "' outside mpsim/ and obs/; cross-rank "
                           "state must flow through the collector "
                           "protocol",
                       {}});
        break;
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R4: include-hygiene
//===----------------------------------------------------------------------===//

class IncludeHygieneRule final : public Rule {
public:
  std::string_view id() const override { return "R4"; }
  std::string_view name() const override { return "include-hygiene"; }
  std::string_view summary() const override {
    return "canonical header guards and include style";
  }
  std::string_view rationale() const override {
    return "Headers are the project's stable surface: guards must have "
           "the canonical PARMONC_<PATH>_H form (so moves are caught), "
           "project headers are included with quotes and system headers "
           "with angle brackets (so the build never silently picks up a "
           "stale copy), <bits/...> internals are banned, and "
           "using-namespace in a header is banned because it leaks into "
           "every includer. Guard renames and include-style swaps are "
           "mechanically safe, so this rule carries autofixes.";
  }
  std::string_view example() const override {
    return "  #ifndef WRONG_GUARD_H          // flagged (+autofix)\n"
           "  #include <parmonc/rng/Lcg128.h> // flagged (+autofix)\n"
           "  #include \"parmonc/rng/Lcg128.h\" // ok";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    checkIncludes(File, Out);
    if (File.isHeader()) {
      checkHeaderGuard(File, Out);
      checkUsingNamespace(File, Out);
    }
  }

private:
  Diagnostic &diag(const SourceFile &File, size_t Index, std::string Message,
                   std::vector<Diagnostic> &Out) const {
    Out.push_back({File.path(), unsigned(Index + 1), std::string(id()),
                   std::string(name()), std::move(Message), {}});
    return Out.back();
  }

  void checkIncludes(const SourceFile &File,
                     std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (!startsWith(Raw, "#include"))
        continue;
      std::string_view Spec = trim(Raw.substr(8));
      if (startsWith(Spec, "\"")) {
        const size_t Close = Spec.find('"', 1);
        std::string_view Target =
            Close == std::string_view::npos ? Spec.substr(1)
                                            : Spec.substr(1, Close - 1);
        if (!startsWith(Target, "parmonc/"))
          diag(File, Index,
               "quoted include \"" + std::string(Target) +
                   "\" is not a project header; use <...> for system "
                   "headers and \"parmonc/...\" for project headers",
               Out);
      } else if (startsWith(Spec, "<")) {
        const size_t Close = Spec.find('>', 1);
        std::string_view Target =
            Close == std::string_view::npos ? Spec.substr(1)
                                            : Spec.substr(1, Close - 1);
        if (startsWith(Target, "parmonc/")) {
          Diagnostic &D = diag(File, Index,
                               "project header <" + std::string(Target) +
                                   "> must be included with quotes",
                               Out);
          // Autofix: swap the delimiters, preserving indentation.
          std::string Fixed(File.rawLine(Index));
          const size_t Open = Fixed.find('<');
          const size_t CloseAt = Fixed.find('>', Open);
          if (Open != std::string::npos && CloseAt != std::string::npos) {
            Fixed[Open] = '"';
            Fixed[CloseAt] = '"';
            D.Fixes.push_back({unsigned(Index + 1), false, Fixed});
          }
        } else if (startsWith(Target, "bits/")) {
          diag(File, Index,
               "<" + std::string(Target) +
                   "> is a libstdc++ internal header; include the "
                   "standard header instead",
               Out);
        }
      }
    }
  }

  void checkHeaderGuard(const SourceFile &File,
                        std::vector<Diagnostic> &Out) const {
    // Find the first two preprocessor directives.
    size_t IfndefLine = size_t(-1), DefineLine = size_t(-1);
    std::string IfndefMacro, DefineMacro;
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (Raw.empty() || !startsWith(Raw, "#"))
        continue;
      if (IfndefLine == size_t(-1)) {
        if (startsWith(Raw, "#pragma") &&
            Raw.find("once") != std::string_view::npos) {
          diag(File, Index,
               "use a PARMONC_* include guard instead of #pragma once",
               Out);
          return;
        }
        if (!startsWith(Raw, "#ifndef")) {
          diag(File, Index, "header must open with an #ifndef guard", Out);
          return;
        }
        IfndefLine = Index;
        auto Fields = splitWhitespace(Raw);
        if (Fields.size() >= 2)
          IfndefMacro = std::string(Fields[1]);
        continue;
      }
      if (!startsWith(Raw, "#define")) {
        diag(File, IfndefLine,
             "#ifndef guard is not followed by a matching #define", Out);
        return;
      }
      DefineLine = Index;
      auto Fields = splitWhitespace(Raw);
      if (Fields.size() >= 2)
        DefineMacro = std::string(Fields[1]);
      break;
    }
    if (IfndefLine == size_t(-1)) {
      diag(File, 0, "header has no include guard", Out);
      return;
    }
    if (IfndefMacro != DefineMacro) {
      Diagnostic &D = diag(File, IfndefLine,
                           "guard macro '" + IfndefMacro +
                               "' is not matched by the #define ('" +
                               DefineMacro + "')",
                           Out);
      if (DefineLine != size_t(-1))
        D.Fixes.push_back(
            {unsigned(DefineLine + 1), false, "#define " + IfndefMacro});
      return;
    }
    const std::string Expected = expectedGuard(File.path());
    if (!Expected.empty() && IfndefMacro != Expected) {
      Diagnostic &D = diag(File, IfndefLine,
                           "guard macro '" + IfndefMacro + "' should be '" +
                               Expected + "'",
                           Out);
      appendGuardRenameFixes(File, D, IfndefLine, DefineLine, Expected);
      return;
    }
    if (Expected.empty() &&
        (!startsWith(IfndefMacro, "PARMONC_") ||
         !pathEndsWith(IfndefMacro, "_H")))
      diag(File, IfndefLine,
           "guard macro '" + IfndefMacro +
               "' must have the form PARMONC_<PATH>_H",
           Out);
  }

  /// Fixes for a guard rename: the #ifndef, its #define and the trailing
  /// #endif comment.
  static void appendGuardRenameFixes(const SourceFile &File, Diagnostic &D,
                                     size_t IfndefLine, size_t DefineLine,
                                     const std::string &Expected) {
    D.Fixes.push_back({unsigned(IfndefLine + 1), false, "#ifndef " + Expected});
    if (DefineLine != size_t(-1))
      D.Fixes.push_back(
          {unsigned(DefineLine + 1), false, "#define " + Expected});
    for (size_t Index = File.lineCount(); Index-- > 0;) {
      if (startsWith(trim(File.rawLine(Index)), "#endif")) {
        D.Fixes.push_back(
            {unsigned(Index + 1), false, "#endif // " + Expected});
        break;
      }
    }
  }

  /// Canonical guard for headers under an include/ root:
  /// include/parmonc/rng/Lcg128.h -> PARMONC_RNG_LCG128_H. Empty when the
  /// file is not under include/ (fixtures, tests): only the PARMONC_..._H
  /// shape is enforced there.
  static std::string expectedGuard(std::string_view Path) {
    const std::string Normal = normalizedPath(Path);
    const size_t Root = Normal.rfind("include/");
    if (Root == std::string::npos)
      return {};
    std::string Guard;
    for (char C : Normal.substr(Root + 8)) {
      if (C == '/' || C == '.')
        Guard.push_back('_');
      else
        Guard.push_back(
            char(std::toupper(static_cast<unsigned char>(C))));
    }
    return Guard;
  }

  void checkUsingNamespace(const SourceFile &File,
                           std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      const size_t Pos = findWordToken(Line, "using");
      if (Pos == std::string_view::npos)
        continue;
      std::string_view Rest = trim(Line.substr(Pos + 5));
      if (startsWith(Rest, "namespace"))
        diag(File, Index,
             "using-namespace in a header leaks into every includer", Out);
    }
  }
};

//===----------------------------------------------------------------------===//
// R5: narrowing-estimator
//===----------------------------------------------------------------------===//

class NarrowingEstimatorRule final : public Rule {
public:
  std::string_view id() const override { return "R5"; }
  std::string_view name() const override { return "narrowing-estimator"; }
  std::string_view summary() const override {
    return "no float in estimator code (stats/, core/)";
  }
  std::string_view rationale() const override {
    return "The eq. (5) moment accumulation adds up to billions of "
           "realization subtotals; in single precision the running sums "
           "lose the low-order contributions long before the run ends and "
           "the reported confidence intervals become fiction. Everything "
           "on the estimator path — stats/ and core/ — therefore stays "
           "double end to end, including literals (no 'f' suffix).";
  }
  std::string_view example() const override {
    return "  // in src/stats/:\n"
           "  float Mean = 0.0f;   // flagged (type and literal)\n"
           "  double Mean = 0.0;   // ok";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (!pathContainsComponent(File.path(), "stats") &&
        !pathContainsComponent(File.path(), "core"))
      return;
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      if (findWordToken(Line, "float") != std::string_view::npos) {
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "'float' in estimator code; the eq. (5) moment "
                       "sums must stay double end to end",
                       {}});
        continue;
      }
      if (hasFloatLiteral(Line))
        Out.push_back({File.path(), unsigned(Index + 1), std::string(id()),
                       std::string(name()),
                       "float literal in estimator code; use a double "
                       "literal (no 'f' suffix)",
                       {}});
    }
  }

private:
  /// Matches literals like 1.0f / 2e3f / 7f.
  static bool hasFloatLiteral(std::string_view Line) {
    for (size_t I = 0; I + 1 < Line.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(Line[I])))
        continue;
      if (I > 0 && (isIdentChar(Line[I - 1]) || Line[I - 1] == '.'))
        continue; // part of an identifier or already inside a number
      size_t J = I;
      bool SawDigit = false;
      while (J < Line.size() &&
             (std::isdigit(static_cast<unsigned char>(Line[J])) ||
              Line[J] == '.' || Line[J] == 'e' || Line[J] == 'E' ||
              ((Line[J] == '+' || Line[J] == '-') && J > I &&
               (Line[J - 1] == 'e' || Line[J - 1] == 'E')))) {
        SawDigit |= std::isdigit(static_cast<unsigned char>(Line[J])) != 0;
        ++J;
      }
      if (SawDigit && J < Line.size() && (Line[J] == 'f' || Line[J] == 'F') &&
          (J + 1 >= Line.size() || !isIdentChar(Line[J + 1])))
        return true;
      I = J;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// R6: stream-discipline
//===----------------------------------------------------------------------===//

class StreamDisciplineRule final : public Rule {
public:
  std::string_view id() const override { return "R6"; }
  std::string_view name() const override { return "stream-discipline"; }
  std::string_view summary() const override {
    return "no Lcg128/Philox seeding or raw stepping outside rng/";
  }
  std::string_view rationale() const override {
    return "The leap partition (eq. 8) assigns each realization a disjoint "
           "subsequence of the 128-bit MCG. Constructing or copying an "
           "Lcg128/LcgPow2 outside rng/ creates a stream the partition "
           "knows nothing about — its draws silently overlap another "
           "realization's subsequence and correlate the eq. (5) averages. "
           "The counter-based Philox backend has the same discipline: its "
           "hierarchy is a partition of counter positions, so a "
           "hand-seeded or copied Philox lands inside some realization's "
           "interval just as silently. Realization code must obtain its "
           "stream from RealizationCursor::beginRealization() or "
           "Philox::streamFor() (or accept a RandomSource), and may never "
           "step the raw recurrence with nextRaw(). Static accesses like "
           "Lcg128::defaultMultiplier() stay legal: they read constants, "
           "not stream state.";
  }
  std::string_view example() const override {
    return "  Lcg128 G;                                // flagged\n"
           "  Lcg128 G(Mult, Seed);                    // flagged\n"
           "  Philox P(Key);                           // flagged\n"
           "  Philox Q = P;                            // flagged\n"
           "  Lcg128 S = Cursor.beginRealization();    // ok\n"
           "  Philox S = Philox::streamFor(Where);     // ok\n"
           "  UInt128 A = Lcg128::defaultMultiplier(); // ok";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (pathContainsComponent(File.path(), "rng"))
      return;
    const std::vector<Token> &Tokens = File.tokens();
    for (size_t I = 0; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.Kind != TokenKind::Identifier)
        continue;
      if (T.Text == "nextRaw") {
        const size_t Prev = prevCodeToken(Tokens, I);
        const size_t Next = nextCodeToken(Tokens, I);
        if (Prev != size_t(-1) && Next < Tokens.size() &&
            (isPunctToken(Tokens[Prev], '.') ||
             isPunctToken(Tokens[Prev], '>')) &&
            isPunctToken(Tokens[Next], '('))
          Out.push_back({File.path(), unsigned(T.Line + 1),
                         std::string(id()), std::string(name()),
                         "'nextRaw()' steps the raw MCG recurrence outside "
                         "rng/; draw through the RandomSource interface "
                         "so the eq. (8) leap partition is preserved",
                         {}});
        continue;
      }
      if (T.Text != "Lcg128" && T.Text != "LcgPow2" && T.Text != "Philox")
        continue;
      const size_t Next = nextCodeToken(Tokens, I);
      if (Next >= Tokens.size() ||
          Tokens[Next].Kind != TokenKind::Identifier)
        continue; // qualified access, template argument, cast, ...
      const size_t After = nextCodeToken(Tokens, Next);
      if (After >= Tokens.size())
        continue;
      if (isPunctToken(Tokens[After], ';'))
        diagSeed(File, T, "default-seeds", Out);
      else if (isPunctToken(Tokens[After], '(') ||
               isPunctToken(Tokens[After], '{'))
        diagSeed(File, T, "hand-seeds", Out);
      else if (isPunctToken(Tokens[After], '=')) {
        const size_t Rhs = nextCodeToken(Tokens, After);
        if (Rhs >= Tokens.size())
          continue;
        if (Tokens[Rhs].Kind == TokenKind::Identifier &&
            (Tokens[Rhs].Text == "Lcg128" || Tokens[Rhs].Text == "LcgPow2" ||
             Tokens[Rhs].Text == "Philox")) {
          // `Philox S = Philox::streamFor(...)` is the sanctioned form —
          // a qualified static access, not a hand-seeded temporary.
          const size_t Qual = nextCodeToken(Tokens, Rhs);
          if (Qual < Tokens.size() && isPunctToken(Tokens[Qual], ':'))
            continue;
          diagSeed(File, T, "hand-seeds", Out);
          continue;
        }
        // `Lcg128 S = Cursor.beginRealization();` is THE sanctioned form;
        // a plain `Lcg128 B = A;` copy duplicates a live stream.
        const size_t AfterRhs = nextCodeToken(Tokens, Rhs);
        if (Tokens[Rhs].Kind == TokenKind::Identifier &&
            AfterRhs < Tokens.size() &&
            (isPunctToken(Tokens[AfterRhs], ';') ||
             isPunctToken(Tokens[AfterRhs], ',')))
          Out.push_back({File.path(), unsigned(T.Line + 1),
                         std::string(id()), std::string(name()),
                         "raw stream copied outside rng/; duplicate "
                         "streams replay overlapping subsequences — "
                         "obtain a fresh stream from the cursor",
                         {}});
      }
    }
  }

private:
  void diagSeed(const SourceFile &File, const Token &T,
                std::string_view Verb, std::vector<Diagnostic> &Out) const {
    Out.push_back({File.path(), unsigned(T.Line + 1), std::string(id()),
                   std::string(name()),
                   "'" + T.Text + "' " + std::string(Verb) +
                       " a raw stream outside rng/; obtain streams from "
                       "RealizationCursor::beginRealization() so the "
                       "eq. (8) leap partition is preserved",
                   {}});
  }
};

//===----------------------------------------------------------------------===//
// R7: unchecked-snapshot
//===----------------------------------------------------------------------===//

class UncheckedSnapshotRule final : public Rule {
public:
  std::string_view id() const override { return "R7"; }
  std::string_view name() const override { return "unchecked-snapshot"; }
  std::string_view summary() const override {
    return "snapshot loads must reach the .prev fallback path";
  }
  std::string_view rationale() const override {
    return "Resumption reloads sealed checkpoint state; the crash-safe "
           "write protocol keeps the previous sealed generation as "
           "'<path>.prev' precisely so a torn or corrupt snapshot "
           "degrades to the last good one instead of aborting the run. A "
           "TU that calls readSnapshot() but never touches "
           "readSnapshotWithFallback() or the '.prev' generation has no "
           "error branch for a bad seal — the failure either crashes the "
           "resume or, worse, restarts statistics from scratch. Sharded "
           "checkpoint manifests have the same two-generation contract: "
           "readManifest() loads one generation with no ladder, so "
           "outside the ckpt/ module itself (which implements the "
           "ladder) manifest loads must show the same fallback evidence "
           "— restoreWithFallback() or an explicit '.prev' branch.";
  }
  std::string_view example() const override {
    return "  Result<Snapshot> S = readSnapshot(P);          // flagged\n"
           "  Result<Snapshot> S = readSnapshotWithFallback(P); // ok\n"
           "  auto M = Store.readManifest(P);                // flagged\n"
           "  auto G = Store.restoreWithFallback();          // ok";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    const std::vector<Token> &Tokens = File.tokens();
    // The ckpt module implements the manifest fallback ladder; its own
    // readManifest() plumbing (and its tests') is the mechanism, not a
    // violation.
    const bool InCkptModule = pathContainsComponent(File.path(), "ckpt");
    bool HasFallback = false;
    std::vector<uint32_t> CallLines;
    std::vector<uint32_t> ManifestCallLines;
    for (size_t I = 0; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.Kind == TokenKind::Identifier) {
        if (T.Text == "readSnapshotWithFallback" ||
            T.Text == "restoreWithFallback")
          HasFallback = true;
        else if (T.Text == "readSnapshot") {
          const size_t Next = nextCodeToken(Tokens, I);
          if (Next < Tokens.size() && isPunctToken(Tokens[Next], '('))
            CallLines.push_back(T.Line);
        } else if (T.Text == "readManifest" && !InCkptModule) {
          const size_t Next = nextCodeToken(Tokens, I);
          if (Next < Tokens.size() && isPunctToken(Tokens[Next], '('))
            ManifestCallLines.push_back(T.Line);
        }
      } else if ((T.Kind == TokenKind::String ||
                  T.Kind == TokenKind::RawString) &&
                 T.Text.find(".prev") != std::string::npos) {
        HasFallback = true;
      }
    }
    if (HasFallback)
      return;
    for (uint32_t Line : CallLines)
      Out.push_back({File.path(), unsigned(Line + 1), std::string(id()),
                     std::string(name()),
                     "snapshot loaded without a fallback path; use "
                     "readSnapshotWithFallback() or handle the sealed "
                     "'.prev' generation on the error branch",
                     {}});
    for (uint32_t Line : ManifestCallLines)
      Out.push_back({File.path(), unsigned(Line + 1), std::string(id()),
                     std::string(name()),
                     "checkpoint manifest loaded without a fallback path; "
                     "use restoreWithFallback() or handle the '.prev' "
                     "manifest generation on the error branch",
                     {}});
  }
};

//===----------------------------------------------------------------------===//
// R8: mailbox-discipline
//===----------------------------------------------------------------------===//

class MailboxDisciplineRule final : public Rule {
public:
  std::string_view id() const override { return "R8"; }
  std::string_view name() const override { return "mailbox-discipline"; }
  std::string_view summary() const override {
    return "core/ concurrency and all socket I/O flow through mpsim";
  }
  std::string_view rationale() const override {
    return "PR 4 widened the engine: core/ drives worker threads, but "
           "only through the mpsim::WorkerGroup / Mailbox layer, whose "
           "queues carry the idempotent collector protocol. Direct "
           "std:: synchronization in core/ — or a call from core/ into a "
           "helper that uses it internally — reintroduces the ad-hoc "
           "sharing R3 banned, now hidden behind a function boundary. "
           "This rule supersedes R3 inside core/: it applies the same "
           "needle set plus call-graph taint from the project index "
           "(functions defined in raw-synchronization TUs outside "
           "mpsim/ and obs/). PR 6 added the process transport, and with "
           "it a second discipline: raw socket calls (socketpair, "
           "sendmsg, AF_UNIX, ...) are banned everywhere outside mpsim/ — "
           "wire I/O belongs to the transport layer, where the frame "
           "codec guarantees CRC framing and the supervisor owns the "
           "file descriptors.";
  }
  std::string_view example() const override {
    return "  // in src/core/Runner.cpp:\n"
           "  std::mutex M;            // flagged (direct)\n"
           "  spinOnFlag(Done);        // flagged if spinOnFlag() is\n"
           "                           // defined in a raw-sync TU\n"
           "  socketpair(AF_UNIX, ...) // flagged: sockets only in mpsim/\n"
           "  Group.dispatch(Job);     // ok: the blessed layer";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    if (!pathContainsComponent(File.path(), "mpsim"))
      checkRawSockets(File, Out);
    if (!pathContainsComponent(File.path(), "core"))
      return;
    checkDirectSync(File, Out);
    checkTaintedCalls(File, Context, Out);
  }

private:
  void checkRawSockets(const SourceFile &File,
                       std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (startsWith(Raw, "#include")) {
        for (std::string_view Banned : rawSocketIncludeNeedles()) {
          if (Raw.find(Banned) == std::string_view::npos)
            continue;
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "include of " + std::string(Banned) +
                             " outside mpsim/; socket I/O belongs to the "
                             "transport layer",
                         {}});
          break;
        }
        continue;
      }
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : rawSocketTokenNeedles()) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "'" + std::string(Banned) +
                           "' outside mpsim/; socket I/O belongs to the "
                           "transport layer",
                       {}});
        break;
      }
    }
  }

  void checkDirectSync(const SourceFile &File,
                       std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (startsWith(Raw, "#include")) {
        for (std::string_view Banned : rawConcurrencyIncludeNeedles()) {
          if (Raw.find(Banned) == std::string_view::npos)
            continue;
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "include of " + std::string(Banned) +
                             " in core/; cross-thread state must flow "
                             "through mpsim::Mailbox/WorkerGroup",
                         {}});
          break;
        }
        continue;
      }
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : rawConcurrencyTypeNeedles()) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        Out.push_back({File.path(), unsigned(Index + 1),
                       std::string(id()), std::string(name()),
                       "'" + std::string(Banned) +
                           "' in core/; cross-thread state must flow "
                           "through mpsim::Mailbox/WorkerGroup",
                       {}});
        break;
      }
    }
  }

  void checkTaintedCalls(const SourceFile &File, const LintContext &Context,
                         std::vector<Diagnostic> &Out) const {
    if (Context.TaintedFunctions.empty())
      return;
    // A name this file defines itself is judged by the direct check above,
    // not as a call edge.
    std::set<std::string, std::less<>> OwnDefs;
    for (std::string &Name : definedFunctions(File))
      OwnDefs.insert(std::move(Name));
    const std::vector<Token> &Tokens = File.tokens();
    std::set<uint32_t> SeenLines; // one finding per call line
    for (size_t I = 0; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.Kind != TokenKind::Identifier || isMacroStyleName(T.Text))
        continue;
      if (Context.TaintedFunctions.find(T.Text) ==
              Context.TaintedFunctions.end() ||
          Context.CleanFunctions.count(T.Text) || OwnDefs.count(T.Text))
        continue;
      const size_t Next = nextCodeToken(Tokens, I);
      if (Next >= Tokens.size() || !isPunctToken(Tokens[Next], '('))
        continue;
      if (!SeenLines.insert(T.Line).second)
        continue;
      Out.push_back({File.path(), unsigned(T.Line + 1), std::string(id()),
                     std::string(name()),
                     "call to '" + T.Text +
                         "' which uses raw synchronization internally; "
                         "route core/ concurrency through "
                         "mpsim::Mailbox/WorkerGroup",
                     {}});
    }
  }
};

//===----------------------------------------------------------------------===//
// R9: include-layering
//===----------------------------------------------------------------------===//

class IncludeLayeringRule final : public Rule {
public:
  std::string_view id() const override { return "R9"; }
  std::string_view name() const override { return "include-layering"; }
  std::string_view summary() const override {
    return "no include cycles or upward layer includes";
  }
  std::string_view rationale() const override {
    return "The module graph is a DAG ordered by abstraction level — "
           "support at the bottom, rng above int128, core at the top. An "
           "upward include (rng/ pulling in core/) inverts that order and "
           "couples the stream algebra to the engine; an include cycle "
           "makes build order and ownership ambiguous. Both are detected "
           "from the project include graph, so a violation is caught even "
           "when the offending edge spans headers three hops apart.";
  }
  std::string_view example() const override {
    return "  // in include/parmonc/rng/Lcg128.h:\n"
           "  #include \"parmonc/core/Runner.h\" // flagged: upward\n"
           "  #include \"parmonc/int128/UInt128.h\" // ok: downward";
  }

  bool isPerFile() const override { return false; }

  void checkProject(const ProjectIndex &Index, const LintContext &,
                    std::vector<Diagnostic> &Out) const override {
    checkLayering(Index, Out);
    checkCycles(Index, Out);
  }

private:
  /// The allowed downward dependencies per module. A module always may
  /// include itself and support.
  static const std::map<std::string_view, std::set<std::string_view>> &
  allowedDeps() {
    static const std::map<std::string_view, std::set<std::string_view>>
        Deps = {
            {"support", {}},
            {"int128", {}},
            {"obs", {}},
            {"stats", {}},
            {"lint", {}},
            {"rng", {"int128", "obs"}},
            {"spectral", {"int128"}},
            {"fault", {"obs"}},
            {"sde", {"rng"}},
            {"statest", {"rng"}},
            {"vr", {"stats", "rng"}},
            {"mpsim", {"obs", "sde", "rng"}},
            {"ckpt", {"obs", "mpsim"}},
            {"core", {"obs", "rng", "stats", "mpsim", "ckpt", "fault"}},
        };
    return Deps;
  }

  /// The module a path belongs to, or empty when unknown.
  static std::string_view moduleOfPath(std::string_view Path) {
    std::string_view Found;
    for (const auto &[Module, Deps] : allowedDeps())
      if (pathContainsComponent(Path, Module))
        Found = Module;
    return Found;
  }

  /// The module an include spec targets: "parmonc/<module>/...".
  static std::string_view moduleOfSpec(std::string_view Spec) {
    if (!startsWith(Spec, "parmonc/"))
      return {};
    std::string_view Rest = Spec.substr(8);
    const size_t Slash = Rest.find('/');
    if (Slash == std::string_view::npos)
      return {}; // umbrella header or top-level file
    std::string_view Module = Rest.substr(0, Slash);
    return allowedDeps().count(Module) ? Module : std::string_view{};
  }

  /// Layering is enforced for library code and lint fixtures, not for the
  /// test suites (a test of core/ legitimately includes half the tree).
  static bool enforceLayeringFor(std::string_view Path) {
    return !pathContainsComponent(Path, "tests") ||
           pathContainsComponent(Path, "fixtures");
  }

  void checkLayering(const ProjectIndex &Index,
                     std::vector<Diagnostic> &Out) const {
    for (size_t I = 0; I < Index.fileCount(); ++I) {
      const std::string &Path = Index.path(I);
      if (!enforceLayeringFor(Path))
        continue;
      const std::string_view FromModule = moduleOfPath(Path);
      if (FromModule.empty())
        continue;
      for (const IncludeRecord &Include : Index.facts(I).Includes) {
        const std::string_view ToModule = moduleOfSpec(Include.Spec);
        if (ToModule.empty() || ToModule == FromModule ||
            ToModule == "support")
          continue;
        const auto &Allowed = allowedDeps().at(FromModule);
        if (Allowed.count(ToModule))
          continue;
        Out.push_back(
            {Path, unsigned(Include.Line + 1), std::string(id()),
             std::string(name()),
             "include of \"" + Include.Spec + "\" couples " +
                 std::string(FromModule) + "/ to " + std::string(ToModule) +
                 "/ against the layering order; depend downward or move "
                 "the shared piece below both",
             {}});
      }
    }
  }

  void checkCycles(const ProjectIndex &Index,
                   std::vector<Diagnostic> &Out) const {
    const size_t N = Index.fileCount();
    // Resolved edges: file -> (target file, include line).
    std::vector<std::vector<std::pair<size_t, uint32_t>>> Edges(N);
    for (size_t I = 0; I < N; ++I)
      for (const IncludeRecord &Include : Index.facts(I).Includes) {
        const size_t Target = Index.resolveInclude(Index.path(I), Include);
        if (Target != ProjectIndex::npos && Target != I)
          Edges[I].emplace_back(Target, Include.Line);
      }

    // Iterative DFS; each cycle reported once, anchored at its
    // lexicographically smallest path for determinism.
    std::vector<uint8_t> Color(N, 0); // 0 white, 1 grey, 2 black
    std::vector<size_t> Stack;
    std::set<std::string> Reported;
    for (size_t Start = 0; Start < N; ++Start)
      if (Color[Start] == 0)
        dfs(Start, Index, Edges, Color, Stack, Reported, Out);
  }

  void dfs(size_t Node, const ProjectIndex &Index,
           const std::vector<std::vector<std::pair<size_t, uint32_t>>> &Edges,
           std::vector<uint8_t> &Color, std::vector<size_t> &Stack,
           std::set<std::string> &Reported,
           std::vector<Diagnostic> &Out) const {
    Color[Node] = 1;
    Stack.push_back(Node);
    for (const auto &[Target, Line] : Edges[Node]) {
      if (Color[Target] == 0) {
        dfs(Target, Index, Edges, Color, Stack, Reported, Out);
      } else if (Color[Target] == 1) {
        reportCycle(Target, Index, Edges, Stack, Reported, Out);
      }
    }
    Stack.pop_back();
    Color[Node] = 2;
  }

  void reportCycle(
      size_t Entry, const ProjectIndex &Index,
      const std::vector<std::vector<std::pair<size_t, uint32_t>>> &Edges,
      const std::vector<size_t> &Stack, std::set<std::string> &Reported,
      std::vector<Diagnostic> &Out) const {
    // The cycle is the stack suffix starting at Entry.
    size_t Begin = Stack.size();
    while (Begin > 0 && Stack[Begin - 1] != Entry)
      --Begin;
    if (Begin == 0 && Stack[0] != Entry)
      return;
    Begin = Begin == 0 ? 0 : Begin - 1;
    std::vector<size_t> Cycle(Stack.begin() + Begin, Stack.end());
    // Rotate so the smallest path leads; dedupe on the rotated key.
    size_t MinAt = 0;
    for (size_t I = 1; I < Cycle.size(); ++I)
      if (Index.path(Cycle[I]) < Index.path(Cycle[MinAt]))
        MinAt = I;
    std::rotate(Cycle.begin(), Cycle.begin() + MinAt, Cycle.end());
    std::string Description;
    for (size_t FileAt : Cycle) {
      if (!Description.empty())
        Description += " -> ";
      Description += normalizedPath(Index.path(FileAt));
    }
    Description += " -> " + normalizedPath(Index.path(Cycle.front()));
    if (!Reported.insert(Description).second)
      return;
    // Anchor the diagnostic at the first file's include of the next one.
    const size_t First = Cycle.front();
    const size_t Second = Cycle.size() > 1 ? Cycle[1] : Cycle.front();
    uint32_t Line = 0;
    for (const auto &[Target, IncludeLine] : Edges[First])
      if (Target == Second) {
        Line = IncludeLine;
        break;
      }
    Out.push_back({Index.path(First), unsigned(Line + 1), std::string(id()),
                   std::string(name()), "include cycle: " + Description,
                   {}});
  }
};

//===----------------------------------------------------------------------===//
// R10: stale-waiver
//===----------------------------------------------------------------------===//

class StaleWaiverRule final : public Rule {
public:
  std::string_view id() const override { return "R10"; }
  std::string_view name() const override { return "stale-waiver"; }
  std::string_view summary() const override {
    return "waivers must still suppress a live finding";
  }
  std::string_view rationale() const override {
    return "Waivers are reviewed debt: each one grants a named rule a "
           "pass on specific lines. When the offending code is later "
           "fixed or moved, the waiver survives as a stale grant that "
           "would silently cover a future regression on that line. The "
           "analyzer therefore tracks which waivers suppressed at least "
           "one finding this run and flags the rest. The fix (removing "
           "the comment) is mechanically safe, so R10 supports --fix.";
  }
  std::string_view example() const override {
    return "  int X = 0; // mclint: allow(R3): legacy  <- flagged once\n"
           "             //   the line no longer uses std:: sync";
  }

  bool isPerFile() const override { return false; }

  // R10 has no scanning pass of its own: the analyzer synthesizes its
  // diagnostics from the waiver usage bookkeeping after all other rules
  // ran. See runAnalyzer().
};

} // namespace

size_t findWordToken(std::string_view Text, std::string_view Token) {
  size_t Pos = 0;
  while ((Pos = Text.find(Token, Pos)) != std::string_view::npos) {
    const bool LeftOk = Pos == 0 || !isIdentChar(Text[Pos - 1]);
    const size_t End = Pos + Token.size();
    const bool RightOk = End >= Text.size() || !isIdentChar(Text[End]);
    if (LeftOk && RightOk)
      return Pos;
    Pos += 1;
  }
  return std::string_view::npos;
}

const std::vector<std::string_view> &rawConcurrencyTypeNeedles() {
  static const std::vector<std::string_view> Needles = {
      "std::thread",         "std::jthread",
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::shared_mutex",
      "std::condition_variable", "std::atomic",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::future",         "std::promise",
      "std::async",          "std::call_once",
      "std::once_flag",      "std::counting_semaphore",
      "std::binary_semaphore", "std::latch",
      "std::memory_order"};
  return Needles;
}

const std::vector<std::string_view> &rawConcurrencyIncludeNeedles() {
  static const std::vector<std::string_view> Needles = {
      "<thread>", "<mutex>",     "<atomic>", "<condition_variable>",
      "<future>", "<shared_mutex>", "<semaphore>", "<barrier>",
      "<latch>",  "<stop_token>"};
  return Needles;
}

const std::vector<std::string_view> &rawSocketTokenNeedles() {
  // Word tokens only (findWordToken): deliberately no bare "send"/"recv",
  // which would collide with the Communicator API itself.
  static const std::vector<std::string_view> Needles = {
      "socketpair", "AF_UNIX",     "AF_INET",    "SOCK_STREAM",
      "SOCK_DGRAM", "sendmsg",     "recvmsg",    "accept4",
      "getsockopt", "setsockopt"};
  return Needles;
}

const std::vector<std::string_view> &rawSocketIncludeNeedles() {
  static const std::vector<std::string_view> Needles = {
      "<sys/socket.h>", "<sys/un.h>", "<netinet/", "<arpa/inet.h>"};
  return Needles;
}

std::vector<std::unique_ptr<Rule>> makeAllRules() {
  std::vector<std::unique_ptr<Rule>> Rules;
  Rules.push_back(std::make_unique<DiscardedStatusRule>());
  Rules.push_back(std::make_unique<NondeterminismRule>());
  Rules.push_back(std::make_unique<RawConcurrencyRule>());
  Rules.push_back(std::make_unique<IncludeHygieneRule>());
  Rules.push_back(std::make_unique<NarrowingEstimatorRule>());
  Rules.push_back(std::make_unique<StreamDisciplineRule>());
  Rules.push_back(std::make_unique<UncheckedSnapshotRule>());
  Rules.push_back(std::make_unique<MailboxDisciplineRule>());
  Rules.push_back(std::make_unique<IncludeLayeringRule>());
  Rules.push_back(std::make_unique<StaleWaiverRule>());
  Rules.push_back(makeMustCheckRule());
  Rules.push_back(makeStreamLifecycleRule());
  Rules.push_back(makeWireProtocolRule());
  Rules.push_back(makeDeterminismTaintRule());
  Rules.push_back(makeLockDisciplineRule());
  Rules.push_back(makeDeepMustCheckRule());
  return Rules;
}

std::set<std::string, std::less<>> builtinFallibleFunctions() {
  // The project's fallible APIs, so R1 works even when the headers that
  // declare them are outside the scanned roots (e.g. linting examples/
  // alone). Kept in sync by LintRulesTest.BuiltinListMatchesHeaders.
  return {
      "appendExperimentLog", "choleskyFactor",
      "clearPreviousRun",    "createDirectories",
      "fromBytes",           "fromDecimalString",
      "fromFileContents",    "fromHexString",
      "fromRawSums",         "loadOrDefault",
      "merge",               "mergeFrom",
      "parseDouble",         "parseInt64",
      "parseUInt64",         "prepareDirectories",
      "readDouble",          "readDoubleVector",
      "readExperimentLog",   "readFileToString",
      "readI64",             "readManifest",
      "readMeans",           "readSnapshot",
      "readSnapshotWithFallback", "readString",
      "readU32",             "readU64",
      "restoreGeneration",   "restoreWithFallback",
      "runManualAverage",    "runSimulation",
      "runVirtualCluster",   "sendReliable",
      "unsealFileContents",  "validate",
      "writeFileAtomic",     "writeResults",
      "writeShard",          "writeSnapshot",
  };
}

void harvestNodiscardFunctions(const SourceFile &File,
                               std::set<std::string, std::less<>> &Names) {
  for (size_t Index = 0; Index < File.lineCount(); ++Index) {
    std::string_view Line = File.scrubbedLine(Index);
    size_t Pos = Line.find("[[nodiscard]]");
    if (Pos == std::string_view::npos)
      continue;
    // Join the declaration across a few lines and take the identifier
    // immediately preceding the first '(' — stopping at ';' or '{' so a
    // class-level [[nodiscard]] never harvests a later function.
    std::string Decl(Line.substr(Pos + 13));
    for (size_t Extra = 1;
         Extra <= 3 && Index + Extra < File.lineCount() &&
         Decl.find('(') == std::string::npos &&
         Decl.find(';') == std::string::npos &&
         Decl.find('{') == std::string::npos;
         ++Extra) {
      Decl.push_back(' ');
      Decl.append(File.scrubbedLine(Index + Extra));
    }
    const size_t Stop = Decl.find_first_of(";{");
    const size_t Paren = Decl.find('(');
    if (Paren == std::string::npos || (Stop != std::string::npos &&
                                       Stop < Paren))
      continue;
    size_t End = Paren;
    while (End > 0 && Decl[End - 1] == ' ')
      --End;
    size_t Begin = End;
    while (Begin > 0 && isIdentChar(Decl[Begin - 1]))
      --Begin;
    if (Begin < End)
      Names.insert(Decl.substr(Begin, End - Begin));
  }
}

} // namespace lint
} // namespace parmonc
