//===- lint/Rules.cpp - The enforced project invariants -------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The rules work on the scrubbed lexical view of each file (comments and
// literals blanked), with a light statement reconstruction for R1. They are
// deliberately heuristic — this is a project linter, not a compiler — but
// every heuristic errs toward silence on idiomatic code and each rule has
// an explicit, grep-able waiver escape hatch (see SourceFile.h).
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Rules.h"

#include "parmonc/support/Text.h"

#include <array>
#include <cctype>

namespace parmonc {
namespace lint {

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// True when \p Text contains \p Token bounded by non-identifier chars.
/// Returns the offset of the first such occurrence, or npos.
size_t findWordToken(std::string_view Text, std::string_view Token) {
  size_t Pos = 0;
  while ((Pos = Text.find(Token, Pos)) != std::string_view::npos) {
    const bool LeftOk = Pos == 0 || !isIdentChar(Text[Pos - 1]);
    const size_t End = Pos + Token.size();
    const bool RightOk = End >= Text.size() || !isIdentChar(Text[End]);
    if (LeftOk && RightOk)
      return Pos;
    Pos += 1;
  }
  return std::string_view::npos;
}

/// Normalizes a path to forward slashes for suffix/substring matching.
std::string normalizedPath(std::string_view Path) {
  std::string Normal(Path);
  for (char &C : Normal)
    if (C == '\\')
      C = '/';
  return Normal;
}

bool pathContainsComponent(std::string_view Path, std::string_view Dir) {
  const std::string Normal = normalizedPath(Path);
  const std::string Needle = "/" + std::string(Dir) + "/";
  return Normal.find(Needle) != std::string::npos ||
         startsWith(Normal, std::string(Dir) + "/");
}

bool pathEndsWith(std::string_view Path, std::string_view Suffix) {
  const std::string Normal = normalizedPath(Path);
  return Normal.size() >= Suffix.size() &&
         Normal.compare(Normal.size() - Suffix.size(), Suffix.size(),
                        Suffix) == 0;
}

/// One reconstructed statement: the scrubbed text joined across lines and
/// the 0-based line its first token appeared on.
struct Statement {
  std::string Text;
  size_t FirstLine = 0;
};

/// Splits the scrubbed file into approximate statements. Boundaries are
/// `;`, `{` and `}` at parenthesis/bracket depth zero; preprocessor lines
/// are skipped entirely. Good enough to see whether a call's result is
/// consumed, which is all R1 needs.
template <typename Callback>
void forEachStatement(const SourceFile &File, Callback &&OnStatement) {
  Statement Current;
  bool HaveToken = false;
  int Depth = 0;
  for (size_t LineIndex = 0; LineIndex < File.lineCount(); ++LineIndex) {
    std::string_view Line = File.scrubbedLine(LineIndex);
    if (startsWith(trim(Line), "#"))
      continue; // preprocessor
    for (char C : Line) {
      if (C == '(' || C == '[')
        ++Depth;
      else if (C == ')' || C == ']')
        --Depth;
      if (Depth <= 0 && (C == ';' || C == '{' || C == '}')) {
        Current.Text.push_back(C);
        if (HaveToken)
          OnStatement(static_cast<const Statement &>(Current));
        Current = Statement{};
        HaveToken = false;
        Depth = 0;
        continue;
      }
      if (!HaveToken && !std::isspace(static_cast<unsigned char>(C))) {
        HaveToken = true;
        Current.FirstLine = LineIndex;
      }
      Current.Text.push_back(C);
    }
    Current.Text.push_back(' '); // line break separates tokens
  }
}

/// True if the statement contains a top-level `=` that is an assignment
/// or initialization (not ==, !=, <=, >=).
bool hasTopLevelAssignment(std::string_view Text) {
  int Depth = 0;
  for (size_t I = 0; I < Text.size(); ++I) {
    const char C = Text[I];
    if (C == '(' || C == '[')
      ++Depth;
    else if (C == ')' || C == ']')
      --Depth;
    else if (C == '=' && Depth == 0) {
      const char Prev = I > 0 ? Text[I - 1] : '\0';
      const char Next = I + 1 < Text.size() ? Text[I + 1] : '\0';
      if (Prev != '=' && Prev != '!' && Prev != '<' && Prev != '>' &&
          Next != '=')
        return true;
    }
  }
  return false;
}

/// Keywords that can begin a statement whose leading call is consumed or
/// is not a call at all.
bool startsWithStatementKeyword(std::string_view Text) {
  static constexpr std::array<std::string_view, 18> Keywords = {
      "return",   "if",       "while",    "for",     "switch",
      "else",     "do",       "case",     "goto",    "co_return",
      "co_yield", "co_await", "throw",    "using",   "typedef",
      "template", "delete",   "static_assert"};
  for (std::string_view Keyword : Keywords)
    if (startsWith(Text, Keyword) &&
        (Text.size() == Keyword.size() ||
         !isIdentChar(Text[Keyword.size()])))
      return true;
  return false;
}

/// If the statement begins with a plain call chain — `name(...)`,
/// `ns::name(...)`, `obj.name(...)`, `obj->name(...)` — returns the final
/// callee name; empty otherwise.
std::string_view leadingCalleeName(std::string_view Text) {
  size_t I = 0;
  size_t NameBegin = 0, NameEnd = 0;
  while (I < Text.size()) {
    if (!isIdentChar(Text[I]))
      return {};
    NameBegin = I;
    while (I < Text.size() && isIdentChar(Text[I]))
      ++I;
    NameEnd = I;
    if (I >= Text.size())
      return {};
    if (Text[I] == '(')
      return Text.substr(NameBegin, NameEnd - NameBegin);
    if (Text.compare(I, 2, "::") == 0 || Text.compare(I, 2, "->") == 0) {
      I += 2;
      continue;
    }
    if (Text[I] == '.') {
      I += 1;
      continue;
    }
    return {};
  }
  return {};
}

//===----------------------------------------------------------------------===//
// R1: discarded-status
//===----------------------------------------------------------------------===//

class DiscardedStatusRule final : public Rule {
public:
  std::string_view id() const override { return "R1"; }
  std::string_view name() const override { return "discarded-status"; }
  std::string_view summary() const override {
    return "fallible calls must not discard their Status/Result";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    forEachStatement(File, [&](const Statement &Stmt) {
      std::string_view Text = trim(Stmt.Text);
      if (Text.empty() || Text.back() != ';')
        return; // only expression statements can discard
      if (startsWith(Text, "(void)"))
        return; // explicit, reviewed discard
      if (startsWithStatementKeyword(Text))
        return;
      if (hasTopLevelAssignment(Text))
        return;
      std::string_view Callee = leadingCalleeName(Text);
      if (Callee.empty() ||
          Context.NodiscardFunctions.find(Callee) ==
              Context.NodiscardFunctions.end())
        return;
      if (File.isWaived(Stmt.FirstLine, id()))
        return;
      Out.push_back({File.path(), unsigned(Stmt.FirstLine + 1),
                     std::string(id()), std::string(name()),
                     "result of fallible call '" + std::string(Callee) +
                         "' is discarded; handle the Status or spell the "
                         "discard '(void)'"});
    });
  }
};

//===----------------------------------------------------------------------===//
// R2: nondeterminism
//===----------------------------------------------------------------------===//

class NondeterminismRule final : public Rule {
public:
  std::string_view id() const override { return "R2"; }
  std::string_view name() const override { return "nondeterminism"; }
  std::string_view summary() const override {
    return "no entropy/wall-clock sources outside support/Clock.h";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (pathEndsWith(File.path(), "support/Clock.h"))
      return; // the one approved seam
    static constexpr std::array<std::string_view, 3> BannedTypes = {
        "std::random_device", "std::chrono::system_clock",
        "std::chrono::high_resolution_clock"};
    static constexpr std::array<std::string_view, 10> BannedCalls = {
        "rand",      "srand",        "random",       "drand48", "lrand48",
        "time",      "gettimeofday", "clock_gettime", "localtime", "gmtime"};
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : BannedTypes) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        if (!File.isWaived(Index, id()))
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "'" + std::string(Banned) +
                             "' is a nondeterminism source; inject time "
                             "through parmonc::Clock "
                             "(support/Clock.h) instead"});
        break;
      }
      for (std::string_view Banned : BannedCalls) {
        if (!isBannedCall(Line, Banned))
          continue;
        if (!File.isWaived(Index, id()))
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "call to '" + std::string(Banned) +
                             "()' injects nondeterminism; use the "
                             "parmonc::Clock seam or the stream "
                             "hierarchy instead"});
        break;
      }
    }
  }

private:
  /// Matches `name(`, `std::name(` and global `::name(` but not member
  /// calls `.name(` / `->name(` or names qualified by a project scope.
  static bool isBannedCall(std::string_view Line, std::string_view Name) {
    size_t Pos = 0;
    while ((Pos = Line.find(Name, Pos)) != std::string_view::npos) {
      const size_t End = Pos + Name.size();
      size_t After = End;
      while (After < Line.size() && Line[After] == ' ')
        ++After;
      if (After >= Line.size() || Line[After] != '(' ||
          (End < Line.size() && isIdentChar(Line[End]))) {
        Pos = End;
        continue;
      }
      bool Flag = true;
      if (Pos > 0) {
        const char Prev = Line[Pos - 1];
        if (isIdentChar(Prev) || Prev == '.') {
          Flag = false;
        } else if (Prev == '>' && Pos >= 2 && Line[Pos - 2] == '-') {
          Flag = false;
        } else if (Prev == ':') {
          // Qualified name: only std:: and the global :: are the C/C++
          // library versions; Foo::time(...) is project code.
          Flag = false;
          if (Pos >= 2 && Line[Pos - 2] == ':') {
            std::string_view Before = Line.substr(0, Pos - 2);
            size_t Begin = Before.size();
            while (Begin > 0 && isIdentChar(Before[Begin - 1]))
              --Begin;
            std::string_view Qualifier = Before.substr(Begin);
            Flag = Qualifier.empty() || Qualifier == "std";
          }
        }
      }
      if (Flag)
        return true;
      Pos = End;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// R3: raw-concurrency
//===----------------------------------------------------------------------===//

class RawConcurrencyRule final : public Rule {
public:
  std::string_view id() const override { return "R3"; }
  std::string_view name() const override { return "raw-concurrency"; }
  std::string_view summary() const override {
    return "thread/mutex/atomic primitives only in mpsim/ and obs/";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (pathContainsComponent(File.path(), "mpsim") ||
        pathContainsComponent(File.path(), "obs") ||
        pathEndsWith(File.path(), "support/Clock.h"))
      return;
    static constexpr std::array<std::string_view, 21> BannedTypes = {
        "std::thread",         "std::jthread",
        "std::mutex",          "std::timed_mutex",
        "std::recursive_mutex", "std::shared_mutex",
        "std::condition_variable", "std::atomic",
        "std::lock_guard",     "std::unique_lock",
        "std::scoped_lock",    "std::shared_lock",
        "std::future",         "std::promise",
        "std::async",          "std::call_once",
        "std::once_flag",      "std::counting_semaphore",
        "std::binary_semaphore", "std::latch",
        "std::memory_order"};
    static constexpr std::array<std::string_view, 10> BannedIncludes = {
        "<thread>", "<mutex>",     "<atomic>", "<condition_variable>",
        "<future>", "<shared_mutex>", "<semaphore>", "<barrier>",
        "<latch>",  "<stop_token>"};
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (startsWith(Raw, "#include")) {
        for (std::string_view Banned : BannedIncludes) {
          if (Raw.find(Banned) == std::string_view::npos)
            continue;
          if (!File.isWaived(Index, id()))
            Out.push_back({File.path(), unsigned(Index + 1),
                           std::string(id()), std::string(name()),
                           "include of " + std::string(Banned) +
                               " outside mpsim/ and obs/; route "
                               "concurrency through the communicator or "
                               "the metrics registry"});
          break;
        }
        continue;
      }
      std::string_view Line = File.scrubbedLine(Index);
      for (std::string_view Banned : BannedTypes) {
        if (findWordToken(Line, Banned) == std::string_view::npos)
          continue;
        if (!File.isWaived(Index, id()))
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "'" + std::string(Banned) +
                             "' outside mpsim/ and obs/; cross-rank "
                             "state must flow through the collector "
                             "protocol"});
        break;
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R4: include-hygiene
//===----------------------------------------------------------------------===//

class IncludeHygieneRule final : public Rule {
public:
  std::string_view id() const override { return "R4"; }
  std::string_view name() const override { return "include-hygiene"; }
  std::string_view summary() const override {
    return "canonical header guards and include style";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    checkIncludes(File, Out);
    if (File.isHeader()) {
      checkHeaderGuard(File, Out);
      checkUsingNamespace(File, Out);
    }
  }

private:
  void diag(const SourceFile &File, size_t Index, std::string Message,
            std::vector<Diagnostic> &Out) const {
    if (File.isWaived(Index, id()))
      return;
    Out.push_back({File.path(), unsigned(Index + 1), std::string(id()),
                   std::string(name()), std::move(Message)});
  }

  void checkIncludes(const SourceFile &File,
                     std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (!startsWith(Raw, "#include"))
        continue;
      std::string_view Spec = trim(Raw.substr(8));
      if (startsWith(Spec, "\"")) {
        const size_t Close = Spec.find('"', 1);
        std::string_view Target =
            Close == std::string_view::npos ? Spec.substr(1)
                                            : Spec.substr(1, Close - 1);
        if (!startsWith(Target, "parmonc/"))
          diag(File, Index,
               "quoted include \"" + std::string(Target) +
                   "\" is not a project header; use <...> for system "
                   "headers and \"parmonc/...\" for project headers",
               Out);
      } else if (startsWith(Spec, "<")) {
        const size_t Close = Spec.find('>', 1);
        std::string_view Target =
            Close == std::string_view::npos ? Spec.substr(1)
                                            : Spec.substr(1, Close - 1);
        if (startsWith(Target, "parmonc/"))
          diag(File, Index,
               "project header <" + std::string(Target) +
                   "> must be included with quotes",
               Out);
        else if (startsWith(Target, "bits/"))
          diag(File, Index,
               "<" + std::string(Target) +
                   "> is a libstdc++ internal header; include the "
                   "standard header instead",
               Out);
      }
    }
  }

  void checkHeaderGuard(const SourceFile &File,
                        std::vector<Diagnostic> &Out) const {
    // Find the first two preprocessor directives.
    size_t IfndefLine = size_t(-1);
    std::string IfndefMacro, DefineMacro;
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Raw = trim(File.rawLine(Index));
      if (Raw.empty() || !startsWith(Raw, "#"))
        continue;
      if (IfndefLine == size_t(-1)) {
        if (startsWith(Raw, "#pragma") &&
            Raw.find("once") != std::string_view::npos) {
          diag(File, Index,
               "use a PARMONC_* include guard instead of #pragma once",
               Out);
          return;
        }
        if (!startsWith(Raw, "#ifndef")) {
          diag(File, Index, "header must open with an #ifndef guard", Out);
          return;
        }
        IfndefLine = Index;
        auto Fields = splitWhitespace(Raw);
        if (Fields.size() >= 2)
          IfndefMacro = std::string(Fields[1]);
        continue;
      }
      if (!startsWith(Raw, "#define")) {
        diag(File, IfndefLine,
             "#ifndef guard is not followed by a matching #define", Out);
        return;
      }
      auto Fields = splitWhitespace(Raw);
      if (Fields.size() >= 2)
        DefineMacro = std::string(Fields[1]);
      break;
    }
    if (IfndefLine == size_t(-1)) {
      diag(File, 0, "header has no include guard", Out);
      return;
    }
    if (IfndefMacro != DefineMacro) {
      diag(File, IfndefLine,
           "guard macro '" + IfndefMacro +
               "' is not matched by the #define ('" + DefineMacro + "')",
           Out);
      return;
    }
    const std::string Expected = expectedGuard(File.path());
    if (!Expected.empty() && IfndefMacro != Expected) {
      diag(File, IfndefLine,
           "guard macro '" + IfndefMacro + "' should be '" + Expected + "'",
           Out);
      return;
    }
    if (Expected.empty() &&
        (!startsWith(IfndefMacro, "PARMONC_") ||
         !pathEndsWith(IfndefMacro, "_H")))
      diag(File, IfndefLine,
           "guard macro '" + IfndefMacro +
               "' must have the form PARMONC_<PATH>_H",
           Out);
  }

  /// Canonical guard for headers under an include/ root:
  /// include/parmonc/rng/Lcg128.h -> PARMONC_RNG_LCG128_H. Empty when the
  /// file is not under include/ (fixtures, tests): only the PARMONC_..._H
  /// shape is enforced there.
  static std::string expectedGuard(std::string_view Path) {
    const std::string Normal = normalizedPath(Path);
    const size_t Root = Normal.rfind("include/");
    if (Root == std::string::npos)
      return {};
    std::string Guard;
    for (char C : Normal.substr(Root + 8)) {
      if (C == '/' || C == '.')
        Guard.push_back('_');
      else
        Guard.push_back(
            char(std::toupper(static_cast<unsigned char>(C))));
    }
    return Guard;
  }

  void checkUsingNamespace(const SourceFile &File,
                           std::vector<Diagnostic> &Out) const {
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      const size_t Pos = findWordToken(Line, "using");
      if (Pos == std::string_view::npos)
        continue;
      std::string_view Rest = trim(Line.substr(Pos + 5));
      if (startsWith(Rest, "namespace"))
        diag(File, Index,
             "using-namespace in a header leaks into every includer", Out);
    }
  }
};

//===----------------------------------------------------------------------===//
// R5: narrowing-estimator
//===----------------------------------------------------------------------===//

class NarrowingEstimatorRule final : public Rule {
public:
  std::string_view id() const override { return "R5"; }
  std::string_view name() const override { return "narrowing-estimator"; }
  std::string_view summary() const override {
    return "no float in estimator code (stats/, core/)";
  }

  void check(const SourceFile &File, const LintContext &,
             std::vector<Diagnostic> &Out) const override {
    if (!pathContainsComponent(File.path(), "stats") &&
        !pathContainsComponent(File.path(), "core"))
      return;
    for (size_t Index = 0; Index < File.lineCount(); ++Index) {
      std::string_view Line = File.scrubbedLine(Index);
      if (findWordToken(Line, "float") != std::string_view::npos) {
        if (!File.isWaived(Index, id()))
          Out.push_back({File.path(), unsigned(Index + 1),
                         std::string(id()), std::string(name()),
                         "'float' in estimator code; the eq. (5) moment "
                         "sums must stay double end to end"});
        continue;
      }
      if (hasFloatLiteral(Line) && !File.isWaived(Index, id()))
        Out.push_back({File.path(), unsigned(Index + 1), std::string(id()),
                       std::string(name()),
                       "float literal in estimator code; use a double "
                       "literal (no 'f' suffix)"});
    }
  }

private:
  /// Matches literals like 1.0f / 2e3f / 7f.
  static bool hasFloatLiteral(std::string_view Line) {
    for (size_t I = 0; I + 1 < Line.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(Line[I])))
        continue;
      if (I > 0 && (isIdentChar(Line[I - 1]) || Line[I - 1] == '.'))
        continue; // part of an identifier or already inside a number
      size_t J = I;
      bool SawDigit = false;
      while (J < Line.size() &&
             (std::isdigit(static_cast<unsigned char>(Line[J])) ||
              Line[J] == '.' || Line[J] == 'e' || Line[J] == 'E' ||
              ((Line[J] == '+' || Line[J] == '-') && J > I &&
               (Line[J - 1] == 'e' || Line[J - 1] == 'E')))) {
        SawDigit |= std::isdigit(static_cast<unsigned char>(Line[J])) != 0;
        ++J;
      }
      if (SawDigit && J < Line.size() && (Line[J] == 'f' || Line[J] == 'F') &&
          (J + 1 >= Line.size() || !isIdentChar(Line[J + 1])))
        return true;
      I = J;
    }
    return false;
  }
};

} // namespace

std::vector<std::unique_ptr<Rule>> makeAllRules() {
  std::vector<std::unique_ptr<Rule>> Rules;
  Rules.push_back(std::make_unique<DiscardedStatusRule>());
  Rules.push_back(std::make_unique<NondeterminismRule>());
  Rules.push_back(std::make_unique<RawConcurrencyRule>());
  Rules.push_back(std::make_unique<IncludeHygieneRule>());
  Rules.push_back(std::make_unique<NarrowingEstimatorRule>());
  return Rules;
}

std::set<std::string, std::less<>> builtinFallibleFunctions() {
  // The project's fallible APIs, so R1 works even when the headers that
  // declare them are outside the scanned roots (e.g. linting examples/
  // alone). Kept in sync by LintRulesTest.BuiltinListMatchesHeaders.
  return {
      "appendExperimentLog", "choleskyFactor",
      "clearPreviousRun",    "createDirectories",
      "fromBytes",           "fromDecimalString",
      "fromFileContents",    "fromHexString",
      "fromRawSums",         "loadOrDefault",
      "merge",               "parseDouble",
      "parseInt64",          "parseUInt64",
      "prepareDirectories",  "readDouble",
      "readDoubleVector",    "readFileToString",
      "readI64",             "readMeans",
      "readSnapshot",        "readSnapshotWithFallback",
      "readString",          "readU32",
      "readU64",             "runManualAverage",
      "runSimulation",       "runVirtualCluster",
      "sendReliable",        "unsealFileContents",
      "validate",            "writeFileAtomic",
      "writeResults",        "writeSnapshot",
  };
}

void harvestNodiscardFunctions(const SourceFile &File,
                               std::set<std::string, std::less<>> &Names) {
  for (size_t Index = 0; Index < File.lineCount(); ++Index) {
    std::string_view Line = File.scrubbedLine(Index);
    size_t Pos = Line.find("[[nodiscard]]");
    if (Pos == std::string_view::npos)
      continue;
    // Join the declaration across a few lines and take the identifier
    // immediately preceding the first '(' — stopping at ';' or '{' so a
    // class-level [[nodiscard]] never harvests a later function.
    std::string Decl(Line.substr(Pos + 13));
    for (size_t Extra = 1;
         Extra <= 3 && Index + Extra < File.lineCount() &&
         Decl.find('(') == std::string::npos &&
         Decl.find(';') == std::string::npos &&
         Decl.find('{') == std::string::npos;
         ++Extra) {
      Decl.push_back(' ');
      Decl.append(File.scrubbedLine(Index + Extra));
    }
    const size_t Stop = Decl.find_first_of(";{");
    const size_t Paren = Decl.find('(');
    if (Paren == std::string::npos || (Stop != std::string::npos &&
                                       Stop < Paren))
      continue;
    size_t End = Paren;
    while (End > 0 && Decl[End - 1] == ' ')
      --End;
    size_t Begin = End;
    while (Begin > 0 && isIdentChar(Decl[Begin - 1]))
      --Begin;
    if (Begin < End)
      Names.insert(Decl.substr(Begin, End - Begin));
  }
}

} // namespace lint
} // namespace parmonc
