//===- lint/InterRules.cpp - Interprocedural rules R14-R16 ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The interprocedural rules: each consults the project-wide function
// summaries (Summary.h) propagated bottom-up over the call graph
// (CallGraph.h), so a finding anchored in one file can follow a call chain
// through other translation units. Witness steps in another TU carry
// FlowStep::Path, and SARIF renders the whole chain as one code flow
// spanning files.
//
//   R14 determinism-taint — wall-clock/entropy/environment reads,
//                           unordered iteration order and pointer hashing
//                           must not flow into estimator accumulation,
//                           snapshot payloads or the parmonc_exp.dat
//                           registry through any call chain.
//   R15 lock-discipline   — a field written under a lock somewhere must be
//                           locked everywhere (helpers called with the
//                           lock held count as locked); double-acquires
//                           through a callee and raw locks leaked on early
//                           return are flagged.
//   R16 deep-must-check   — a Status/Result forwarded up a call chain
//                           must be consumed by some frame; catches the
//                           `auto` wrapper R1/R11 cannot see through.
//
// All three stand down when the summary stage did not run (Summaries is
// null), and all three are precision-first: a missed finding is
// acceptable, a false positive on the self-hosted tree is not.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/CallGraph.h"
#include "parmonc/lint/Rules.h"
#include "parmonc/lint/Summary.h"

#include <algorithm>
#include <array>

namespace parmonc {
namespace lint {

namespace {

bool isPunctTok(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

size_t skipCommentTokens(const std::vector<Token> &Tokens, size_t I,
                         size_t End) {
  while (I < End && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

size_t nextCodeTok(const std::vector<Token> &Tokens, size_t I, size_t End) {
  return skipCommentTokens(Tokens, I + 1, End);
}

bool isStatementKeywordName(std::string_view Name) {
  static constexpr std::array<std::string_view, 19> Keywords = {
      "return",   "if",       "while",    "for",     "switch",
      "else",     "do",       "case",     "goto",    "co_return",
      "co_yield", "co_await", "throw",    "using",   "typedef",
      "template", "delete",   "static_assert", "new"};
  return std::find(Keywords.begin(), Keywords.end(), Name) != Keywords.end();
}

/// Parses a call chain `name ((:: | . | ->) name)*` stopping at the first
/// '('. Returns the final callee name, or empty. (Same shape as the
/// FlowRules parser; kept local so the two stages stay independent.)
std::string_view parseCallChain(const std::vector<Token> &Tokens, size_t I,
                                size_t End, size_t &OpenParen) {
  std::string_view Callee;
  while (I < End) {
    if (Tokens[I].Kind != TokenKind::Identifier)
      return {};
    Callee = Tokens[I].Text;
    I = nextCodeTok(Tokens, I, End);
    if (I >= End)
      return {};
    if (isPunctTok(Tokens[I], '(')) {
      OpenParen = I;
      return Callee;
    }
    if (isPunctTok(Tokens[I], ':')) {
      const size_t Second = nextCodeTok(Tokens, I, End);
      if (Second >= End || !isPunctTok(Tokens[Second], ':'))
        return {};
      I = nextCodeTok(Tokens, Second, End);
      continue;
    }
    if (isPunctTok(Tokens[I], '.')) {
      I = nextCodeTok(Tokens, I, End);
      continue;
    }
    if (isPunctTok(Tokens[I], '-')) {
      const size_t Second = nextCodeTok(Tokens, I, End);
      if (Second >= End || !isPunctTok(Tokens[Second], '>'))
        return {};
      I = nextCodeTok(Tokens, Second, End);
      continue;
    }
    return {};
  }
  return {};
}

bool tokensHaveTopLevelAssignment(const std::vector<Token> &Tokens,
                                  const CfgStatement &Stmt) {
  int Depth = 0;
  for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Punct)
      continue;
    const char C = T.Text.size() == 1 ? T.Text[0] : '\0';
    if (C == '(' || C == '[' || C == '{')
      ++Depth;
    else if (C == ')' || C == ']' || C == '}')
      --Depth;
    else if (C == '=' && Depth == 0) {
      const bool PrevCmp =
          I > Stmt.TokenBegin && Tokens[I - 1].Kind == TokenKind::Punct &&
          Tokens[I - 1].Text.size() == 1 &&
          (Tokens[I - 1].Text[0] == '=' || Tokens[I - 1].Text[0] == '!' ||
           Tokens[I - 1].Text[0] == '<' || Tokens[I - 1].Text[0] == '>');
      const bool NextEq =
          I + 1 < Stmt.TokenEnd && isPunctTok(Tokens[I + 1], '=');
      if (!PrevCmp && !NextEq)
        return true;
    }
  }
  return false;
}

/// The token index just past the matching ')' of the '(' at \p Open.
size_t matchingCloseParen(const std::vector<Token> &Tokens, size_t Open,
                          size_t End) {
  int Depth = 0;
  for (size_t I = Open; I < End; ++I) {
    if (isPunctTok(Tokens[I], '('))
      ++Depth;
    else if (isPunctTok(Tokens[I], ')') && --Depth == 0)
      return I;
  }
  return End;
}

/// Files whose functions may legitimately carry nondeterminism (mirrors
/// the summary engine's sanctioning): the obs/ trace layer timestamps
/// deliberately and support/Clock.h is the approved wall-clock seam.
bool isSanctionedTaintFile(std::string_view Path) {
  return pathContainsComponent(Path, "obs") ||
         pathEndsWith(Path, "support/Clock.h") ||
         pathEndsWith(Path, "support/Clock.cpp");
}

/// Where a tainted value entered the current body.
struct TaintHit {
  TaintKind Kind = TaintKind::WallClock;
  /// The callee the taint arrives through; empty for a direct source.
  std::string Via;
  uint32_t Line = 0;   ///< 0-based line of the local source / call.
  uint32_t Column = 0; ///< 0-based column.
};

/// Scans token range [Begin, End) for a determinism-taint source: a direct
/// source call/name, or a call to a function whose summary carries taint.
bool findTaintInRange(const std::vector<Token> &Tokens, size_t Begin,
                      size_t End, const SummaryStore &Summaries,
                      TaintHit &Out) {
  for (size_t I = Begin; I < End; ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Identifier)
      continue;
    if (T.Text == "random_device") {
      Out = {TaintKind::Entropy, std::string(), T.Line, T.Column};
      return true;
    }
    if (T.Text == "system_clock" || T.Text == "high_resolution_clock") {
      Out = {TaintKind::WallClock, std::string(), T.Line, T.Column};
      return true;
    }
    const size_t Next = nextCodeTok(Tokens, I, End);
    if (Next >= End || !isPunctTok(Tokens[Next], '('))
      continue;
    TaintKind Direct;
    if (taintCallName(T.Text, Direct)) {
      Out = {Direct, std::string(), T.Line, T.Column};
      return true;
    }
    const FunctionSummary *S = Summaries.find(T.Text);
    if (S && S->TaintsDeterminism) {
      Out = {S->TaintOrigin, T.Text, T.Line, T.Column};
      return true;
    }
  }
  return false;
}

/// Appends the cross-file taint chain behind \p Callee: one step per hop
/// through summary provenance, ending at the originating source.
void appendTaintChain(const SummaryStore &Summaries, std::string Callee,
                      TaintKind Kind, std::vector<FlowStep> &Flow) {
  std::set<std::string> Visited;
  for (unsigned Hop = 0; Hop < 10 && !Callee.empty(); ++Hop) {
    if (!Visited.insert(Callee).second)
      break;
    const FunctionSummary *S = Summaries.find(Callee);
    if (!S)
      break;
    FlowStep Step;
    Step.Line = S->TaintLine + 1;
    Step.Path = S->File;
    if (S->TaintVia.empty()) {
      Step.Message = "the " + std::string(taintKindLabel(Kind)) +
                     " originates in '" + Callee + "' here";
      Flow.push_back(std::move(Step));
      return;
    }
    Step.Message =
        "'" + Callee + "' carries it through its call to '" + S->TaintVia +
        "'";
    Flow.push_back(std::move(Step));
    Callee = S->TaintVia;
  }
}

//===----------------------------------------------------------------------===//
// R14: determinism-taint
//===----------------------------------------------------------------------===//

class DeterminismTaintRule final : public Rule {
public:
  std::string_view id() const override { return "R14"; }
  std::string_view name() const override { return "determinism-taint"; }
  std::string_view summary() const override {
    return "nondeterministic values must not flow through any call chain "
           "into determinism-critical outputs";
  }
  std::string_view rationale() const override {
    return "A PARMONC run must replay bit-identically from its stream "
           "coordinates: the eq. (5) merged moments, the sealed snapshots "
           "and the parmonc_exp.dat registry are all compared across "
           "resumes and ranks. A wall-clock read, rand() call, environment "
           "variable, unordered-container iteration order or pointer hash "
           "that leaks into any of those outputs makes two identical runs "
           "disagree — silently, because every individual value looks "
           "plausible. R2 bans the sources at the token level but cannot "
           "see a sanitized-looking helper that forwards one through two "
           "calls. This rule propagates taint bottom-up over the project "
           "call graph and flags sink calls whose arguments carry it, with "
           "the full cross-file call chain as the witness. The obs/ trace "
           "layer and support/Clock.h are sanctioned carriers: telemetry "
           "timestamps are supposed to differ between runs.";
  }
  std::string_view example() const override {
    return "  double jitter() { return double(rand()); }   // source\n"
           "  double relay() { return jitter(); }          // carrier\n"
           "  Est.accumulate(&V);  // flagged when V = relay()\n"
           "  ...\n"
           "  Obs.traceEvent(now()); // ok: obs/ is sanctioned";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    if (!Context.Summaries || isSanctionedTaintFile(File.path()))
      return;
    const std::vector<Token> &Tokens = File.tokens();
    const SummaryStore &Summaries = *Context.Summaries;
    for (const FunctionCfg &Cfg : File.functions()) {
      // Locals bound to a tainted value anywhere in this body.
      struct TaintedLocal {
        TaintHit Hit;
        uint32_t DeclLine = 0;
        uint32_t DeclColumn = 0;
      };
      std::map<std::string, TaintedLocal, std::less<>> TaintedLocals;
      for (const CfgStatement &Stmt : Cfg.Statements) {
        if (Stmt.Kind != StmtKind::Plain ||
            !tokensHaveTopLevelAssignment(Tokens, Stmt))
          continue;
        // The assigned name: the identifier right before the top-level '='.
        int Depth = 0;
        size_t EqAt = Stmt.TokenEnd;
        for (size_t I = Stmt.TokenBegin; I < Stmt.TokenEnd; ++I) {
          if (isPunctTok(Tokens[I], '(') || isPunctTok(Tokens[I], '['))
            ++Depth;
          else if (isPunctTok(Tokens[I], ')') || isPunctTok(Tokens[I], ']'))
            --Depth;
          else if (Depth == 0 && isPunctTok(Tokens[I], '=')) {
            EqAt = I;
            break;
          }
        }
        if (EqAt >= Stmt.TokenEnd)
          continue;
        size_t NameAt = EqAt;
        while (NameAt > Stmt.TokenBegin &&
               Tokens[NameAt - 1].Kind == TokenKind::Comment)
          --NameAt;
        if (NameAt == Stmt.TokenBegin ||
            Tokens[NameAt - 1].Kind != TokenKind::Identifier)
          continue;
        const Token &Name = Tokens[NameAt - 1];
        TaintHit Hit;
        if (findTaintInRange(Tokens, EqAt + 1, Stmt.TokenEnd, Summaries,
                             Hit))
          TaintedLocals[Name.Text] = {Hit, Name.Line, Name.Column};
      }

      // Sink calls: flag when an argument is a tainted local or itself a
      // tainted call.
      for (size_t I = Cfg.BodyBeginToken; I < Cfg.BodyEndToken; ++I) {
        const Token &T = Tokens[I];
        if (T.Kind != TokenKind::Identifier)
          continue;
        SinkKind Sink;
        if (!sinkCallName(T.Text, Sink))
          continue;
        const size_t Open = nextCodeTok(Tokens, I, Cfg.BodyEndToken);
        if (Open >= Cfg.BodyEndToken || !isPunctTok(Tokens[Open], '('))
          continue;
        const size_t Close =
            matchingCloseParen(Tokens, Open, Cfg.BodyEndToken);
        TaintHit Hit;
        const TaintedLocal *ViaLocal = nullptr;
        std::string LocalName;
        if (!findTaintInRange(Tokens, Open + 1, Close, Summaries, Hit)) {
          for (size_t J = Open + 1; J < Close && !ViaLocal; ++J) {
            if (Tokens[J].Kind != TokenKind::Identifier)
              continue;
            const auto It = TaintedLocals.find(Tokens[J].Text);
            if (It != TaintedLocals.end()) {
              ViaLocal = &It->second;
              LocalName = It->first;
              Hit = It->second.Hit;
            }
          }
          if (!ViaLocal)
            continue;
        }
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = T.Line + 1;
        Diag.Column = T.Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message =
            "nondeterministic value (" +
            std::string(taintKindLabel(Hit.Kind)) + ") reaches " +
            std::string(sinkKindLabel(Sink)) +
            (Hit.Via.empty()
                 ? std::string()
                 : " through the call chain behind '" + Hit.Via + "'") +
            "; identical runs will disagree on replay";
        if (ViaLocal)
          Diag.Flow.push_back(
              {ViaLocal->DeclLine + 1, ViaLocal->DeclColumn + 1,
               "tainted value '" + LocalName + "' is bound here"});
        if (!Hit.Via.empty())
          appendTaintChain(Summaries, Hit.Via, Hit.Kind, Diag.Flow);
        else
          Diag.Flow.push_back({Hit.Line + 1, Hit.Column + 1,
                               "the " +
                                   std::string(taintKindLabel(Hit.Kind)) +
                                   " happens here"});
        Diag.Flow.push_back({T.Line + 1, T.Column + 1,
                             "the tainted value reaches " +
                                 std::string(sinkKindLabel(Sink)) +
                                 " here"});
        Out.push_back(std::move(Diag));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R15: lock-discipline
//===----------------------------------------------------------------------===//

class LockDisciplineRule final : public Rule {
public:
  std::string_view id() const override { return "R15"; }
  std::string_view name() const override { return "lock-discipline"; }
  std::string_view summary() const override {
    return "fields written under a lock must be locked everywhere; no "
           "double-acquires through callees, no raw locks leaked on early "
           "return";
  }
  std::string_view rationale() const override {
    return "The mpsim/ and core/ layers share worker state across threads, "
           "and a field that is locked in nine writers and bare in the "
           "tenth is a data race that only manifests under scheduler "
           "pressure. Per-function reasoning cannot settle it: a helper "
           "with no lock of its own is fine when every caller already "
           "holds the lock, and broken otherwise. This rule decides "
           "through the call-graph summaries — a write is protected when "
           "its function locks, or when every path to the function passes "
           "a call site that holds the lock. The same summaries expose two "
           "more interprocedural hazards: calling a function that acquires "
           "a mutex the caller already holds (std::mutex is non-recursive "
           "— that is a self-deadlock, possibly three calls deep), and "
           "returning early while a raw .lock() is still held.";
  }
  std::string_view example() const override {
    return "  void bump() { ++Pending; }   // flagged: Pending is locked\n"
           "                               // in enqueue(), bump() is not\n"
           "  ...\n"
           "  std::lock_guard<std::mutex> G(M);\n"
           "  drain();  // flagged when drain() also locks M";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    if (!Context.Summaries)
      return;
    if (!pathContainsComponent(File.path(), "mpsim") &&
        !pathContainsComponent(File.path(), "core"))
      return;
    const std::vector<FunctionEvidence> Evidence =
        extractFunctionEvidence(File);
    checkFieldConsistency(File, Evidence, *Context.Summaries, Out);
    checkDoubleAcquire(File, Evidence, *Context.Summaries, Out);
    checkLeakOnReturn(File, Evidence, Out);
  }

private:
  /// The column of the first identifier spelled \p Name on 0-based \p Line,
  /// 0-based; 0 when not found.
  static uint32_t columnOf(const SourceFile &File, uint32_t Line,
                           std::string_view Name) {
    for (const Token &T : File.tokens()) {
      if (T.Line > Line)
        break;
      if (T.Line == Line && T.Kind == TokenKind::Identifier &&
          T.Text == Name)
        return T.Column;
    }
    return 0;
  }

  void checkFieldConsistency(const SourceFile &File,
                             const std::vector<FunctionEvidence> &Evidence,
                             const SummaryStore &Summaries,
                             std::vector<Diagnostic> &Out) const {
    struct WriteSite {
      const FunctionEvidence *Fn = nullptr;
      const FieldWriteRecord *Write = nullptr;
    };
    std::map<std::string, std::vector<WriteSite>, std::less<>> ByField;
    for (const FunctionEvidence &Fn : Evidence)
      for (const FieldWriteRecord &Write : Fn.FieldWrites)
        ByField[Write.Field].push_back({&Fn, &Write});
    for (const auto &[Field, Sites] : ByField) {
      const WriteSite *Locked = nullptr;
      for (const WriteSite &Site : Sites)
        if (Site.Write->UnderLock) {
          Locked = &Site;
          break;
        }
      if (!Locked)
        continue;
      for (const WriteSite &Site : Sites) {
        if (Site.Write->UnderLock)
          continue;
        // A helper only ever called with the lock held writes under the
        // caller's lock — the summaries know.
        const FunctionSummary *S = Summaries.find(Site.Fn->Name);
        if (S && S->CalledUnderLock)
          continue;
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Site.Write->Line + 1;
        Diag.Column = columnOf(File, Site.Write->Line, Field) + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message = "field '" + Field +
                       "' is written without a lock in '" + Site.Fn->Name +
                       "' but under a lock in '" + Locked->Fn->Name +
                       "'; either lock here or only call '" +
                       Site.Fn->Name + "' with the lock held";
        Diag.Flow.push_back(
            {Locked->Write->Line + 1,
             columnOf(File, Locked->Write->Line, Field) + 1,
             "'" + Field + "' is written under a lock in '" +
                 Locked->Fn->Name + "' here"});
        Diag.Flow.push_back({Site.Write->Line + 1,
                             columnOf(File, Site.Write->Line, Field) + 1,
                             "and without one here"});
        Out.push_back(std::move(Diag));
      }
    }
  }

  void checkDoubleAcquire(const SourceFile &File,
                          const std::vector<FunctionEvidence> &Evidence,
                          const SummaryStore &Summaries,
                          std::vector<Diagnostic> &Out) const {
    for (const FunctionEvidence &Fn : Evidence) {
      for (const CallSiteRecord &Call : Fn.Calls) {
        if (Call.HeldMutexes.empty())
          continue;
        const FunctionSummary *Callee = Summaries.find(Call.Callee);
        if (!Callee)
          continue;
        for (const std::string &Mutex : Call.HeldMutexes) {
          if (!Callee->AcquiresLocks.count(Mutex))
            continue;
          Diagnostic Diag;
          Diag.Path = File.path();
          Diag.Line = Call.Line + 1;
          Diag.Column = columnOf(File, Call.Line, Call.Callee) + 1;
          Diag.RuleId = std::string(id());
          Diag.RuleName = std::string(name());
          Diag.Message = "call to '" + Call.Callee + "' acquires '" +
                         Mutex +
                         "', which is already held at this call site; "
                         "std::mutex is non-recursive — this deadlocks";
          // Local acquire site: the last acquire of this mutex before the
          // call.
          uint32_t AcquireLine = Call.Line;
          for (const LockOpRecord &Op : Fn.LockOps)
            if (Op.Mutex == Mutex &&
                Op.Kind != LockOpRecord::Op::Release &&
                Op.Line <= Call.Line)
              AcquireLine = Op.Line;
          Diag.Flow.push_back({AcquireLine + 1,
                               columnOf(File, AcquireLine, Mutex) + 1,
                               "'" + Mutex + "' is acquired here"});
          Diag.Flow.push_back(
              {Call.Line + 1, columnOf(File, Call.Line, Call.Callee) + 1,
               "'" + Call.Callee + "' is called with it still held"});
          appendLockChain(Summaries, Call.Callee, Mutex, Diag.Flow);
          Out.push_back(std::move(Diag));
          break; // one finding per call site
        }
      }
    }
  }

  /// Steps from \p Callee down to the function that actually re-acquires
  /// \p Mutex, via the summaries' lock provenance.
  static void appendLockChain(const SummaryStore &Summaries,
                              std::string Callee, const std::string &Mutex,
                              std::vector<FlowStep> &Flow) {
    std::set<std::string> Visited;
    for (unsigned Hop = 0; Hop < 10 && !Callee.empty(); ++Hop) {
      if (!Visited.insert(Callee).second)
        break;
      const FunctionSummary *S = Summaries.find(Callee);
      if (!S)
        break;
      const auto It = S->LockVia.find(Mutex);
      if (It == S->LockVia.end())
        break;
      FlowStep Step;
      Step.Line = It->second.second + 1;
      Step.Path = S->File;
      if (It->second.first.empty()) {
        Step.Message =
            "'" + Callee + "' acquires '" + Mutex + "' again here";
        Flow.push_back(std::move(Step));
        return;
      }
      Step.Message = "'" + Callee + "' reaches the acquire through '" +
                     It->second.first + "'";
      Flow.push_back(std::move(Step));
      Callee = It->second.first;
    }
  }

  void checkLeakOnReturn(const SourceFile &File,
                         const std::vector<FunctionEvidence> &Evidence,
                         std::vector<Diagnostic> &Out) const {
    // File.functions() and the evidence vector are index-aligned: both are
    // produced by one walk over the same CFG list.
    const std::vector<FunctionCfg> &Cfgs = File.functions();
    for (size_t F = 0; F < Cfgs.size() && F < Evidence.size(); ++F) {
      const FunctionEvidence &Fn = Evidence[F];
      for (const LockOpRecord &Acquire : Fn.LockOps) {
        if (Acquire.Kind != LockOpRecord::Op::Acquire)
          continue;
        for (const CfgStatement &Stmt : Cfgs[F].Statements) {
          if (Stmt.Kind != StmtKind::Return || Stmt.Line < Acquire.Line)
            continue;
          bool Released = false;
          for (const LockOpRecord &Release : Fn.LockOps)
            if (Release.Kind == LockOpRecord::Op::Release &&
                Release.Mutex == Acquire.Mutex &&
                Release.Line >= Acquire.Line &&
                Release.Line <= Stmt.Line)
              Released = true;
          if (Released)
            continue;
          Diagnostic Diag;
          Diag.Path = File.path();
          Diag.Line = Stmt.Line + 1;
          Diag.Column = Stmt.Column + 1;
          Diag.RuleId = std::string(id());
          Diag.RuleName = std::string(name());
          Diag.Message = "this return leaves raw lock '" + Acquire.Mutex +
                         "' held; every later acquirer deadlocks — use a "
                         "scoped guard";
          Diag.Flow.push_back(
              {Acquire.Line + 1,
               columnOf(File, Acquire.Line, Acquire.Mutex) + 1,
               "'" + Acquire.Mutex + "' is locked raw here"});
          Diag.Flow.push_back({Stmt.Line + 1, Stmt.Column + 1,
                               "and still held at this return"});
          Out.push_back(std::move(Diag));
          break; // one finding per acquire
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// R16: deep-must-check
//===----------------------------------------------------------------------===//

class DeepMustCheckRule final : public Rule {
public:
  std::string_view id() const override { return "R16"; }
  std::string_view name() const override { return "deep-must-check"; }
  std::string_view summary() const override {
    return "a Status/Result forwarded up a call chain must be consumed by "
           "some frame";
  }
  std::string_view rationale() const override {
    return "R1 and R11 know a call is fallible from its declaration: the "
           "[[nodiscard]] set and the spelled-out Status/Result types. A "
           "wrapper that forwards a fallible callee's result — `auto "
           "relaySave() { return deepSave(); }` — carries the same "
           "obligation with none of the spelling, so a bare call to it "
           "swallows a save-point failure two frames away from the "
           "function that detected it. This rule propagates "
           "returns-fallible bottom-up over the call graph (a function is "
           "fallible when it returns one, or forwards one with `return "
           "callee(...);`) and flags expression-statement calls whose "
           "result no frame consumes. Calls R1/R11 already police are left "
           "to them, and the witness path walks the forwarding chain down "
           "to the declaration that makes it fallible.";
  }
  std::string_view example() const override {
    return "  auto relaySave() { return deepSave(); } // forwards a Status\n"
           "  relaySave();       // flagged: nobody consumes the Status\n"
           "  ...\n"
           "  Status S = relaySave();\n"
           "  if (!S.ok()) ...   // ok: this frame consumes it";
  }

  void check(const SourceFile &File, const LintContext &Context,
             std::vector<Diagnostic> &Out) const override {
    if (!Context.Summaries)
      return;
    const std::vector<Token> &Tokens = File.tokens();
    const SummaryStore &Summaries = *Context.Summaries;
    for (const FunctionCfg &Cfg : File.functions()) {
      if (!Cfg.analyzable())
        continue;
      for (const CfgStatement &Stmt : Cfg.Statements) {
        if (Stmt.Kind != StmtKind::Plain)
          continue;
        const size_t First =
            skipCommentTokens(Tokens, Stmt.TokenBegin, Stmt.TokenEnd);
        if (First >= Stmt.TokenEnd ||
            Tokens[First].Kind != TokenKind::Identifier)
          continue; // `(void)f()` statements start with '(' — a spelled
                    // discard stays a discard here too
        if (isStatementKeywordName(Tokens[First].Text) ||
            isMacroStyleName(Tokens[First].Text))
          continue;
        if (tokensHaveTopLevelAssignment(Tokens, Stmt))
          continue;
        size_t OpenParen = 0;
        const std::string_view Callee =
            parseCallChain(Tokens, First, Stmt.TokenEnd, OpenParen);
        if (Callee.empty())
          continue;
        // The call must be the whole statement: `f().ok();` consumes.
        const size_t Close =
            matchingCloseParen(Tokens, OpenParen, Stmt.TokenEnd);
        const size_t After = nextCodeTok(Tokens, Close, Stmt.TokenEnd);
        if (After < Stmt.TokenEnd && !isPunctTok(Tokens[After], ';'))
          continue;
        // R1/R11 territory: declared-fallible calls are their findings.
        if (Context.NodiscardFunctions.find(Callee) !=
            Context.NodiscardFunctions.end())
          continue;
        const FunctionSummary *S = Summaries.find(Callee);
        if (!S || !S->ReturnsFallible)
          continue;
        Diagnostic Diag;
        Diag.Path = File.path();
        Diag.Line = Stmt.Line + 1;
        Diag.Column = Stmt.Column + 1;
        Diag.RuleId = std::string(id());
        Diag.RuleName = std::string(name());
        Diag.Message =
            "'" + std::string(Callee) +
            "' returns a Status/Result " +
            (S->FallibleVia.empty()
                 ? std::string("by declaration")
                 : "forwarded from '" + S->FallibleVia + "'") +
            ", and no frame consumes it; handle it or spell the discard "
            "'(void)'";
        Diag.Flow.push_back({Stmt.Line + 1, Stmt.Column + 1,
                             "the fallible result of '" +
                                 std::string(Callee) +
                                 "' is discarded here"});
        appendFallibleChain(Summaries, std::string(Callee), Diag.Flow);
        Out.push_back(std::move(Diag));
      }
    }
  }

private:
  /// Steps from \p Callee down the forwarding chain to the declaration
  /// that makes it fallible.
  static void appendFallibleChain(const SummaryStore &Summaries,
                                  std::string Callee,
                                  std::vector<FlowStep> &Flow) {
    std::set<std::string> Visited;
    for (unsigned Hop = 0; Hop < 10 && !Callee.empty(); ++Hop) {
      if (!Visited.insert(Callee).second)
        break;
      const FunctionSummary *S = Summaries.find(Callee);
      if (!S || !S->ReturnsFallible)
        break;
      FlowStep Step;
      Step.Line = S->FallibleLine + 1;
      Step.Path = S->File;
      if (S->FallibleVia.empty()) {
        Step.Message =
            "'" + Callee + "' is declared fallible (Status/Result) here";
        Flow.push_back(std::move(Step));
        return;
      }
      Step.Message = "'" + Callee + "' forwards the result of '" +
                     S->FallibleVia + "' here";
      Flow.push_back(std::move(Step));
      Callee = S->FallibleVia;
    }
  }
};

} // namespace

std::unique_ptr<Rule> makeDeterminismTaintRule() {
  return std::make_unique<DeterminismTaintRule>();
}

std::unique_ptr<Rule> makeLockDisciplineRule() {
  return std::make_unique<LockDisciplineRule>();
}

std::unique_ptr<Rule> makeDeepMustCheckRule() {
  return std::make_unique<DeepMustCheckRule>();
}

} // namespace lint
} // namespace parmonc
