//===- lint/Cfg.cpp - Per-function control-flow graphs --------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Two passes. The definition scan finds `name ( params ) [qualifiers] {`
// shapes at any scope (free functions, member functions defined in-class,
// and ALL_CAPS macro definitions like TEST(...) — their bodies are real
// code the flow rules should see). The body parser is a recursive-descent
// statement walker that builds basic blocks; anything it cannot model sets
// a conservative flag on the function instead of producing a wrong graph.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Cfg.h"

#include "parmonc/support/Checksum.h"

#include <algorithm>
#include <deque>

namespace parmonc {
namespace lint {

namespace {

bool isPunct(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

bool isIdent(const Token &T, std::string_view Text) {
  return T.Kind == TokenKind::Identifier && T.Text == Text;
}

/// Keywords that can precede `( ... ) {` without being a definition.
bool isControlLikeKeyword(std::string_view Name) {
  return Name == "if" || Name == "for" || Name == "while" ||
         Name == "switch" || Name == "catch" || Name == "return" ||
         Name == "sizeof" || Name == "alignof" || Name == "decltype" ||
         Name == "noexcept" || Name == "new" || Name == "delete" ||
         Name == "throw" || Name == "do" || Name == "else" ||
         Name == "defined";
}

/// The next non-comment token at or after \p I, or Size when exhausted.
size_t skipComments(const std::vector<Token> &Tokens, size_t I) {
  while (I < Tokens.size() && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

size_t nextCode(const std::vector<Token> &Tokens, size_t I) {
  return skipComments(Tokens, I + 1);
}

/// Balanced skip: \p I indexes an opening delimiter; returns the index of
/// its matching closer, or Size when unbalanced. Counts only the one
/// delimiter pair, so a lambda body inside a call's parentheses is passed
/// over without bookkeeping.
size_t matchDelimiter(const std::vector<Token> &Tokens, size_t I, char Open,
                      char Close) {
  int Depth = 0;
  for (size_t J = I; J < Tokens.size(); ++J) {
    if (Tokens[J].Kind != TokenKind::Punct)
      continue;
    if (isPunct(Tokens[J], Open))
      ++Depth;
    else if (isPunct(Tokens[J], Close) && --Depth == 0)
      return J;
  }
  return Tokens.size();
}

/// Finds the body '{' of a candidate definition whose parameter list
/// closed at \p CloseParen. Accepts trailing qualifiers (const, noexcept,
/// override, final, ref-qualifiers, trailing return types) and a
/// constructor initializer list; anything else means "not a definition".
/// Returns the body-brace token index or Size.
size_t findBodyBrace(const std::vector<Token> &Tokens, size_t CloseParen) {
  size_t I = nextCode(Tokens, CloseParen);
  while (I < Tokens.size()) {
    const Token &T = Tokens[I];
    if (isPunct(T, '{'))
      return I;
    if (isPunct(T, ';') || isPunct(T, '=') || isPunct(T, '}'))
      return Tokens.size(); // declaration, `= default`, end of scope
    if (isPunct(T, ':')) {
      // Either `::` inside a trailing return type or a constructor
      // initializer list. A lone ':' starts the initializer.
      const size_t After = nextCode(Tokens, I);
      if (After < Tokens.size() && isPunct(Tokens[After], ':')) {
        I = nextCode(Tokens, After);
        continue;
      }
      // Constructor initializer: `: member(init), member{init}, ... {`.
      I = After;
      bool SawMemberName = false;
      while (I < Tokens.size()) {
        const Token &M = Tokens[I];
        if (isPunct(M, '(')) {
          const size_t End = matchDelimiter(Tokens, I, '(', ')');
          if (End >= Tokens.size())
            return Tokens.size();
          I = nextCode(Tokens, End);
          SawMemberName = false;
        } else if (isPunct(M, '{')) {
          if (!SawMemberName)
            return I; // the body
          const size_t End = matchDelimiter(Tokens, I, '{', '}');
          if (End >= Tokens.size())
            return Tokens.size();
          I = nextCode(Tokens, End);
          SawMemberName = false;
        } else if (isPunct(M, ',')) {
          I = nextCode(Tokens, I);
        } else if (M.Kind == TokenKind::Identifier ||
                   M.Kind == TokenKind::Number || isPunct(M, ':') ||
                   isPunct(M, '<') || isPunct(M, '>') || isPunct(M, '.')) {
          SawMemberName |= M.Kind == TokenKind::Identifier;
          I = nextCode(Tokens, I);
        } else {
          return Tokens.size();
        }
      }
      return Tokens.size();
    }
    if (T.Kind == TokenKind::Identifier) {
      // const / noexcept / override / final / trailing-return-type names.
      I = nextCode(Tokens, I);
      continue;
    }
    if (isPunct(T, '(')) {
      // noexcept(...) or a parenthesized trailing-return piece.
      const size_t End = matchDelimiter(Tokens, I, '(', ')');
      if (End >= Tokens.size())
        return Tokens.size();
      I = nextCode(Tokens, End);
      continue;
    }
    if (isPunct(T, '&') || isPunct(T, '*') || isPunct(T, '<') ||
        isPunct(T, '>') || isPunct(T, '-') || isPunct(T, ',') ||
        isPunct(T, '[') || isPunct(T, ']')) {
      I = nextCode(Tokens, I);
      continue;
    }
    return Tokens.size();
  }
  return Tokens.size();
}

/// Builds the block structure for one function body.
class BodyParser {
public:
  BodyParser(const std::vector<Token> &Tokens, FunctionCfg &Cfg)
      : Tokens(Tokens), Cfg(Cfg) {}

  void run() {
    Cfg.Entry = newBlock();
    Cfg.Exit = newBlock();
    Current = Cfg.Entry;
    Terminated = false;
    Pos = skipComments(Tokens, Cfg.BodyBeginToken + 1);
    const size_t BodyClose = Cfg.BodyEndToken - 1;
    parseStatementList(BodyClose);
    if (!Terminated)
      addEdge(Current, Cfg.Exit);
  }

private:
  const std::vector<Token> &Tokens;
  FunctionCfg &Cfg;
  size_t Pos = 0;
  uint32_t Current = 0;
  bool Terminated = false;
  std::vector<uint32_t> ContinueTargets; ///< Innermost-last, loops only.
  std::vector<uint32_t> BreakTargets;    ///< Loops and switches.

  uint32_t newBlock() {
    Cfg.Blocks.emplace_back();
    return static_cast<uint32_t>(Cfg.Blocks.size() - 1);
  }

  void addEdge(uint32_t From, uint32_t To) {
    std::vector<uint32_t> &Succs = Cfg.Blocks[From].Successors;
    if (std::find(Succs.begin(), Succs.end(), To) == Succs.end())
      Succs.push_back(To);
  }

  /// Starts a fresh block reached from the current one (unless the
  /// current path already terminated) and makes it current.
  uint32_t startBlockAfter(uint32_t From, bool FromLive) {
    const uint32_t Block = newBlock();
    if (FromLive)
      addEdge(From, Block);
    Current = Block;
    Terminated = false;
    return Block;
  }

  uint32_t appendStatement(StmtKind Kind, size_t Begin, size_t End) {
    CfgStatement Stmt;
    Stmt.Kind = Kind;
    Stmt.TokenBegin = static_cast<uint32_t>(Begin);
    Stmt.TokenEnd = static_cast<uint32_t>(End);
    const size_t First = skipComments(Tokens, Begin);
    if (First < End) {
      Stmt.Line = Tokens[First].Line;
      Stmt.Column = Tokens[First].Column;
    }
    Cfg.Statements.push_back(Stmt);
    const uint32_t Index = static_cast<uint32_t>(Cfg.Statements.size() - 1);
    Cfg.Blocks[Current].Statements.push_back(Index);
    return Index;
  }

  /// True when the token at \p I starts a preprocessor line: a '#' that is
  /// the first token on its physical line.
  bool isDirectiveHash(size_t I) const {
    if (I >= Tokens.size() || !isPunct(Tokens[I], '#'))
      return false;
    return I == 0 || Tokens[I - 1].EndLine < Tokens[I].Line ||
           Tokens[I - 1].Kind == TokenKind::Comment;
  }

  /// Consumes a whole preprocessor directive, splices included.
  void skipDirective() {
    Cfg.HasDirectives = true;
    uint32_t LastLine = Tokens[Pos].EndLine;
    ++Pos;
    while (Pos < Tokens.size() && Tokens[Pos].Line <= LastLine) {
      LastLine = std::max(LastLine, Tokens[Pos].EndLine);
      ++Pos;
    }
    Pos = skipComments(Tokens, Pos);
  }

  void parseStatementList(size_t Until) {
    while (Pos < Until) {
      if (Tokens[Pos].Kind == TokenKind::Comment) {
        ++Pos;
        continue;
      }
      if (isDirectiveHash(Pos)) {
        skipDirective();
        continue;
      }
      parseStatement(Until);
    }
    Pos = Until + 1; // past the closing '}'
  }

  /// Consumes tokens up to and including the ';' that ends a simple
  /// statement, balancing (), [] and {} (lambdas, init-lists). Stops
  /// before \p Until if the statement is malformed.
  size_t consumeSimpleStatement(size_t Until) {
    while (Pos < Until) {
      const Token &T = Tokens[Pos];
      if (isPunct(T, ';')) {
        ++Pos;
        return Pos;
      }
      if (isPunct(T, '(')) {
        const size_t End = matchDelimiter(Tokens, Pos, '(', ')');
        Pos = End < Until ? End + 1 : Until;
        continue;
      }
      if (isPunct(T, '[')) {
        const size_t End = matchDelimiter(Tokens, Pos, '[', ']');
        Pos = End < Until ? End + 1 : Until;
        continue;
      }
      if (isPunct(T, '{')) {
        const size_t End = matchDelimiter(Tokens, Pos, '{', '}');
        Pos = End < Until ? End + 1 : Until;
        continue;
      }
      if (isPunct(T, '}'))
        return Pos; // malformed: ran into a closing brace
      ++Pos;
    }
    return Pos;
  }

  /// Parses `kw ( ... )` starting at the keyword; returns one past the
  /// closing ')'. On malformed input returns Pos unchanged past keyword.
  size_t consumeParenHead() {
    const size_t Open = nextCode(Tokens, Pos);
    if (Open >= Tokens.size() || !isPunct(Tokens[Open], '('))
      return Open;
    const size_t Close = matchDelimiter(Tokens, Open, '(', ')');
    return Close < Tokens.size() ? Close + 1 : Tokens.size();
  }

  void parseStatement(size_t Until) {
    // Code after a return/break/continue on the same path is unreachable:
    // give it a fresh block with NO incoming edge, so its effects never
    // leak into the terminated block's out-state.
    if (Terminated)
      startBlockAfter(Current, /*FromLive=*/false);
    const Token &T = Tokens[Pos];
    if (isPunct(T, '{')) {
      // Compound statement: transparent to control flow.
      const size_t Close = matchDelimiter(Tokens, Pos, '{', '}');
      const size_t Stop = std::min(Close, Until);
      ++Pos;
      const size_t Resume = Stop + 1;
      parseStatementList(Stop);
      Pos = std::min(Resume, Until);
      return;
    }
    if (isPunct(T, ';')) {
      ++Pos;
      return;
    }
    if (T.Kind == TokenKind::Identifier) {
      if (T.Text == "if")
        return parseIf(Until);
      if (T.Text == "while")
        return parseWhile(Until);
      if (T.Text == "do")
        return parseDoWhile(Until);
      if (T.Text == "for")
        return parseFor(Until);
      if (T.Text == "switch")
        return parseSwitch(Until);
      if (T.Text == "try")
        return parseTry(Until);
      if (T.Text == "return" || T.Text == "throw") {
        // A throw leaves the function just like a return (the nearest
        // catch, if any, is modeled by the try/catch edges); a
        // fall-through edge here would fabricate paths.
        const size_t Begin = Pos;
        consumeSimpleStatement(Until);
        appendStatement(StmtKind::Return, Begin, Pos);
        addEdge(Current, Cfg.Exit);
        Terminated = true;
        return;
      }
      if (T.Text == "break") {
        const size_t Begin = Pos;
        consumeSimpleStatement(Until);
        appendStatement(StmtKind::Plain, Begin, Pos);
        if (!BreakTargets.empty())
          addEdge(Current, BreakTargets.back());
        Terminated = true;
        return;
      }
      if (T.Text == "continue") {
        const size_t Begin = Pos;
        consumeSimpleStatement(Until);
        appendStatement(StmtKind::Plain, Begin, Pos);
        if (!ContinueTargets.empty())
          addEdge(Current, ContinueTargets.back());
        Terminated = true;
        return;
      }
      if (T.Text == "goto") {
        Cfg.HasGoto = true;
        consumeSimpleStatement(Until);
        Terminated = true;
        return;
      }
    }
    const size_t Begin = Pos;
    const size_t BeforeEnd = consumeSimpleStatement(Until);
    if (BeforeEnd > Begin)
      appendStatement(StmtKind::Plain, Begin, Pos);
    else
      ++Pos; // no progress on a stray token: never loop forever
  }

  void parseIf(size_t Until) {
    const size_t Begin = Pos;
    size_t AfterHead = consumeParenHead();
    // `if constexpr ( ... )`: the head scan above stopped at `constexpr`.
    if (AfterHead < Tokens.size() &&
        isIdent(Tokens[AfterHead], "constexpr")) {
      Pos = AfterHead;
      AfterHead = consumeParenHead();
    }
    Pos = AfterHead;
    appendStatement(StmtKind::Condition, Begin, Pos);
    const uint32_t CondBlock = Current;

    startBlockAfter(CondBlock, true);
    parseStatement(Until);
    const uint32_t ThenExit = Current;
    const bool ThenLive = !Terminated;

    size_t Next = skipComments(Tokens, Pos);
    if (Next < Until && isIdent(Tokens[Next], "else")) {
      Pos = skipComments(Tokens, Next + 1);
      startBlockAfter(CondBlock, true);
      parseStatement(Until);
      const uint32_t ElseExit = Current;
      const bool ElseLive = !Terminated;
      const uint32_t Merge = newBlock();
      if (ThenLive)
        addEdge(ThenExit, Merge);
      if (ElseLive)
        addEdge(ElseExit, Merge);
      Current = Merge;
      Terminated = !ThenLive && !ElseLive;
    } else {
      const uint32_t Merge = newBlock();
      addEdge(CondBlock, Merge); // the condition was false
      if (ThenLive)
        addEdge(ThenExit, Merge);
      Current = Merge;
      Terminated = false;
    }
  }

  void parseWhile(size_t Until) {
    const uint32_t Before = Current;
    const bool BeforeLive = !Terminated;
    const uint32_t Head = newBlock();
    if (BeforeLive)
      addEdge(Before, Head);
    Current = Head;
    Terminated = false;
    const size_t Begin = Pos;
    Pos = consumeParenHead();
    appendStatement(StmtKind::Condition, Begin, Pos);

    const uint32_t After = newBlock();
    addEdge(Head, After);
    startBlockAfter(Head, true);
    ContinueTargets.push_back(Head);
    BreakTargets.push_back(After);
    parseStatement(Until);
    if (!Terminated)
      addEdge(Current, Head); // back edge
    ContinueTargets.pop_back();
    BreakTargets.pop_back();
    Current = After;
    Terminated = false;
  }

  void parseDoWhile(size_t Until) {
    const uint32_t Before = Current;
    const bool BeforeLive = !Terminated;
    const uint32_t Body = newBlock();
    const uint32_t Cond = newBlock();
    const uint32_t After = newBlock();
    if (BeforeLive)
      addEdge(Before, Body);
    Current = Body;
    Terminated = false;
    Pos = skipComments(Tokens, Pos + 1); // past `do`
    ContinueTargets.push_back(Cond);
    BreakTargets.push_back(After);
    parseStatement(Until);
    if (!Terminated)
      addEdge(Current, Cond);
    ContinueTargets.pop_back();
    BreakTargets.pop_back();

    Current = Cond;
    Terminated = false;
    size_t Next = skipComments(Tokens, Pos);
    if (Next < Until && isIdent(Tokens[Next], "while")) {
      const size_t Begin = Next;
      Pos = Next;
      Pos = consumeParenHead();
      const size_t Semi = skipComments(Tokens, Pos);
      if (Semi < Tokens.size() && isPunct(Tokens[Semi], ';'))
        Pos = Semi + 1;
      appendStatement(StmtKind::Condition, Begin, Pos);
    }
    addEdge(Cond, Body); // back edge
    addEdge(Cond, After);
    Current = After;
    Terminated = false;
  }

  void parseFor(size_t Until) {
    const uint32_t Before = Current;
    const bool BeforeLive = !Terminated;
    const uint32_t Head = newBlock();
    if (BeforeLive)
      addEdge(Before, Head);
    Current = Head;
    Terminated = false;
    const size_t Begin = Pos;
    Pos = consumeParenHead();
    appendStatement(StmtKind::LoopHeader, Begin, Pos);

    const uint32_t After = newBlock();
    addEdge(Head, After);
    startBlockAfter(Head, true);
    ContinueTargets.push_back(Head);
    BreakTargets.push_back(After);
    parseStatement(Until);
    if (!Terminated)
      addEdge(Current, Head); // back edge
    ContinueTargets.pop_back();
    BreakTargets.pop_back();
    Current = After;
    Terminated = false;
  }

  void parseSwitch(size_t Until) {
    const size_t Begin = Pos;
    Pos = consumeParenHead();
    appendStatement(StmtKind::Condition, Begin, Pos);
    const uint32_t CondBlock = Current;

    const size_t OpenBrace = skipComments(Tokens, Pos);
    if (OpenBrace >= Until || !isPunct(Tokens[OpenBrace], '{')) {
      // Malformed or a single-statement switch; treat as straight-line.
      return;
    }
    const size_t Close =
        std::min(matchDelimiter(Tokens, OpenBrace, '{', '}'), Until);
    Pos = skipComments(Tokens, OpenBrace + 1);

    const uint32_t After = newBlock();
    BreakTargets.push_back(After);
    bool HasDefault = false;
    bool InSection = false;
    Terminated = true; // no statements reachable before the first label
    while (Pos < Close) {
      const Token &T = Tokens[Pos];
      if (T.Kind == TokenKind::Comment) {
        ++Pos;
        continue;
      }
      if (isDirectiveHash(Pos)) {
        skipDirective();
        continue;
      }
      if (isIdent(T, "case") || isIdent(T, "default")) {
        HasDefault |= T.Text == "default";
        const size_t LabelBegin = Pos;
        // Consume through the ':' that ends the label, skipping '::'.
        ++Pos;
        while (Pos < Close) {
          if (isPunct(Tokens[Pos], ':')) {
            const size_t After2 = Pos + 1;
            if (After2 < Close && isPunct(Tokens[After2], ':')) {
              Pos = After2 + 1;
              continue;
            }
            ++Pos;
            break;
          }
          ++Pos;
        }
        const uint32_t FallFrom = Current;
        const bool FallLive = InSection && !Terminated;
        const uint32_t Section = newBlock();
        addEdge(CondBlock, Section);
        if (FallLive)
          addEdge(FallFrom, Section); // case fallthrough
        Current = Section;
        Terminated = false;
        InSection = true;
        appendStatement(StmtKind::CaseLabel, LabelBegin, Pos);
        continue;
      }
      if (!InSection) {
        // Code before any label is unreachable; skip it.
        parseStatement(Close);
        continue;
      }
      parseStatement(Close);
    }
    Pos = Close < Until ? Close + 1 : Until;
    if (InSection && !Terminated)
      addEdge(Current, After);
    if (!HasDefault)
      addEdge(CondBlock, After);
    BreakTargets.pop_back();
    Current = After;
    Terminated = false;
  }

  void parseTry(size_t Until) {
    const uint32_t Before = Current;
    const bool BeforeLive = !Terminated;
    const uint32_t TryEntry = newBlock();
    if (BeforeLive)
      addEdge(Before, TryEntry);
    Current = TryEntry;
    Terminated = false;
    Pos = skipComments(Tokens, Pos + 1); // past `try`
    parseStatement(Until);               // the try compound
    const uint32_t TryExit = Current;
    const bool TryLive = !Terminated;

    std::vector<std::pair<uint32_t, bool>> CatchExits;
    size_t Next = skipComments(Tokens, Pos);
    while (Next < Until && isIdent(Tokens[Next], "catch")) {
      Pos = Next;
      Pos = consumeParenHead();
      // An exception may leave the try block at any point; edging from the
      // try entry is the conservative approximation.
      startBlockAfter(TryEntry, true);
      parseStatement(Until);
      CatchExits.emplace_back(Current, !Terminated);
      Next = skipComments(Tokens, Pos);
    }
    const uint32_t Merge = newBlock();
    bool AnyLive = false;
    if (TryLive) {
      addEdge(TryExit, Merge);
      AnyLive = true;
    }
    for (const auto &[Exit, Live] : CatchExits)
      if (Live) {
        addEdge(Exit, Merge);
        AnyLive = true;
      }
    Current = Merge;
    Terminated = !AnyLive;
  }
};

} // namespace

std::vector<FunctionCfg> buildFunctionCfgs(const std::vector<Token> &Tokens) {
  std::vector<FunctionCfg> Cfgs;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Identifier || isControlLikeKeyword(T.Text) ||
        T.Text == "operator")
      continue;
    // Never treat a preprocessor line's tokens as a definition head.
    if (I > 0) {
      bool SameLine = false;
      for (size_t J = I; J-- > 0;) {
        if (Tokens[J].EndLine < T.Line)
          break;
        if (isPunct(Tokens[J], '#')) {
          SameLine = true;
          break;
        }
      }
      if (SameLine)
        continue;
    }
    const size_t Open = nextCode(Tokens, I);
    if (Open >= Tokens.size() || !isPunct(Tokens[Open], '('))
      continue;
    const size_t CloseParen = matchDelimiter(Tokens, Open, '(', ')');
    if (CloseParen >= Tokens.size())
      break; // unbalanced to EOF
    const size_t Body = findBodyBrace(Tokens, CloseParen);
    if (Body >= Tokens.size())
      continue;
    const size_t BodyClose = matchDelimiter(Tokens, Body, '{', '}');
    if (BodyClose >= Tokens.size())
      continue;

    FunctionCfg Cfg;
    Cfg.Name = T.Text;
    Cfg.NameLine = T.Line;
    Cfg.BodyBeginToken = static_cast<uint32_t>(Body);
    Cfg.BodyEndToken = static_cast<uint32_t>(BodyClose + 1);
    Cfg.BodyFirstLine = Tokens[Body].Line;
    Cfg.BodyLastLine = Tokens[BodyClose].EndLine;
    BodyParser Parser(Tokens, Cfg);
    Parser.run();
    Cfgs.push_back(std::move(Cfg));
    I = BodyClose; // function bodies never nest
  }
  return Cfgs;
}

std::vector<uint32_t> reversePostorder(const FunctionCfg &Cfg) {
  std::vector<uint32_t> Order;
  if (Cfg.Blocks.empty())
    return Order;
  std::vector<uint8_t> Visited(Cfg.Blocks.size(), 0);
  // Iterative postorder DFS.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(Cfg.Entry, 0);
  Visited[Cfg.Entry] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Cfg.Blocks[Block].Successors.size()) {
      const uint32_t Succ = Cfg.Blocks[Block].Successors[NextSucc++];
      if (!Visited[Succ]) {
        Visited[Succ] = 1;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Order.push_back(Block);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::vector<uint32_t> shortestBlockPath(const FunctionCfg &Cfg, uint32_t From,
                                        uint32_t To) {
  if (From >= Cfg.Blocks.size() || To >= Cfg.Blocks.size())
    return {};
  std::vector<uint32_t> Parent(Cfg.Blocks.size(), uint32_t(-1));
  std::deque<uint32_t> Queue;
  Queue.push_back(From);
  Parent[From] = From;
  while (!Queue.empty()) {
    const uint32_t Block = Queue.front();
    Queue.pop_front();
    if (Block == To)
      break;
    for (uint32_t Succ : Cfg.Blocks[Block].Successors)
      if (Parent[Succ] == uint32_t(-1)) {
        Parent[Succ] = Block;
        Queue.push_back(Succ);
      }
  }
  if (Parent[To] == uint32_t(-1))
    return {};
  std::vector<uint32_t> Path;
  for (uint32_t Block = To; Block != From; Block = Parent[Block])
    Path.push_back(Block);
  Path.push_back(From);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

uint32_t cfgShapeCrc(const std::vector<FunctionCfg> &Cfgs) {
  std::string Shape;
  for (const FunctionCfg &Cfg : Cfgs) {
    Shape += Cfg.Name;
    Shape += ':';
    Shape += std::to_string(Cfg.Blocks.size());
    Shape += '/';
    Shape += std::to_string(Cfg.Statements.size());
    if (Cfg.HasGoto)
      Shape += 'g';
    if (Cfg.HasDirectives)
      Shape += 'd';
    for (const CfgBlock &Block : Cfg.Blocks) {
      Shape += ';';
      for (uint32_t Succ : Block.Successors) {
        Shape += std::to_string(Succ);
        Shape += ',';
      }
    }
    Shape += '\n';
  }
  return crc32(Shape);
}

} // namespace lint
} // namespace parmonc
