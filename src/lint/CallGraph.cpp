//===- lint/CallGraph.cpp - Project-wide call graph -----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/CallGraph.h"

#include "parmonc/lint/Index.h"
#include "parmonc/lint/Summary.h"

#include <algorithm>

namespace parmonc {
namespace lint {

namespace {

void sortUnique(std::vector<uint32_t> &Values) {
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
}

} // namespace

CallGraph CallGraph::build(const ProjectIndex &Index) {
  CallGraph Graph;
  // Nodes: every defined function name, first-seen order (the analyzer
  // indexes files in sorted path order, so node ids are deterministic).
  for (size_t I = 0; I < Index.fileCount(); ++I)
    for (const FunctionEvidence &Fn : Index.facts(I).Functions)
      if (Graph.NodeByName.emplace(Fn.Name, uint32_t(Graph.Names.size()))
              .second)
        Graph.Names.push_back(Fn.Name);

  Graph.Edges.resize(Graph.Names.size());
  Graph.ReverseEdges.resize(Graph.Names.size());
  for (size_t I = 0; I < Index.fileCount(); ++I) {
    for (const FunctionEvidence &Fn : Index.facts(I).Functions) {
      const uint32_t Caller = Graph.nodeFor(Fn.Name);
      auto AddEdge = [&](const std::string &Callee) {
        const uint32_t Target = Graph.nodeFor(Callee);
        if (Target != npos && Target != Caller)
          Graph.Edges[Caller].push_back(Target);
      };
      for (const CallSiteRecord &Call : Fn.Calls)
        AddEdge(Call.Callee);
      for (const ReturnCallRecord &Ret : Fn.ReturnCalls)
        AddEdge(Ret.Callee);
    }
  }
  for (uint32_t Node = 0; Node < Graph.Edges.size(); ++Node) {
    sortUnique(Graph.Edges[Node]);
    for (uint32_t Callee : Graph.Edges[Node])
      Graph.ReverseEdges[Callee].push_back(Node);
  }
  for (std::vector<uint32_t> &Callers : Graph.ReverseEdges)
    sortUnique(Callers);
  return Graph;
}

uint32_t CallGraph::nodeFor(std::string_view Name) const {
  auto It = NodeByName.find(Name);
  return It == NodeByName.end() ? npos : It->second;
}

std::vector<std::vector<uint32_t>> CallGraph::sccsBottomUp() const {
  // Iterative Tarjan. The natural emission order (a component is complete
  // when its root pops) is already bottom-up: every cross-component edge
  // out of a later component lands in an earlier one.
  const uint32_t N = uint32_t(Names.size());
  std::vector<std::vector<uint32_t>> Components;
  std::vector<uint32_t> Number(N, npos), LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t NextNumber = 0;

  struct Frame {
    uint32_t Node;
    size_t EdgeIndex;
  };
  std::vector<Frame> Work;

  for (uint32_t Start = 0; Start < N; ++Start) {
    if (Number[Start] != npos)
      continue;
    Work.push_back({Start, 0});
    Number[Start] = LowLink[Start] = NextNumber++;
    Stack.push_back(Start);
    OnStack[Start] = true;
    while (!Work.empty()) {
      Frame &Top = Work.back();
      const uint32_t Node = Top.Node;
      if (Top.EdgeIndex < Edges[Node].size()) {
        const uint32_t Next = Edges[Node][Top.EdgeIndex++];
        if (Number[Next] == npos) {
          Work.push_back({Next, 0});
          Number[Next] = LowLink[Next] = NextNumber++;
          Stack.push_back(Next);
          OnStack[Next] = true;
        } else if (OnStack[Next]) {
          LowLink[Node] = std::min(LowLink[Node], Number[Next]);
        }
        continue;
      }
      if (LowLink[Node] == Number[Node]) {
        std::vector<uint32_t> Component;
        for (;;) {
          const uint32_t Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          Component.push_back(Member);
          if (Member == Node)
            break;
        }
        std::sort(Component.begin(), Component.end());
        Components.push_back(std::move(Component));
      }
      Work.pop_back();
      if (!Work.empty()) {
        const uint32_t Parent = Work.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Node]);
      }
    }
  }
  return Components;
}

std::vector<uint32_t>
CallGraph::reachableFrom(const std::vector<uint32_t> &Roots) const {
  std::vector<bool> Seen(Names.size(), false);
  std::vector<uint32_t> Frontier;
  for (uint32_t Root : Roots)
    if (Root != npos && Root < Names.size() && !Seen[Root]) {
      Seen[Root] = true;
      Frontier.push_back(Root);
    }
  std::vector<uint32_t> Out = Frontier;
  while (!Frontier.empty()) {
    const uint32_t Node = Frontier.back();
    Frontier.pop_back();
    for (uint32_t Callee : Edges[Node])
      if (!Seen[Callee]) {
        Seen[Callee] = true;
        Frontier.push_back(Callee);
        Out.push_back(Callee);
      }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace lint
} // namespace parmonc
