//===- lint/Index.cpp - Cross-TU project index for mclint -----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Index.h"

#include "parmonc/lint/Rules.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <cctype>

namespace parmonc {
namespace lint {

std::string normalizedPath(std::string_view Path) {
  std::string Normal(Path);
  for (char &C : Normal)
    if (C == '\\')
      C = '/';
  return Normal;
}

bool pathContainsComponent(std::string_view Path, std::string_view Dir) {
  const std::string Normal = normalizedPath(Path);
  const std::string Needle = "/" + std::string(Dir) + "/";
  return Normal.find(Needle) != std::string::npos ||
         startsWith(Normal, std::string(Dir) + "/");
}

bool pathEndsWith(std::string_view Path, std::string_view Suffix) {
  const std::string Normal = normalizedPath(Path);
  return Normal.size() >= Suffix.size() &&
         Normal.compare(Normal.size() - Suffix.size(), Suffix.size(),
                        Suffix) == 0;
}

bool isMacroStyleName(std::string_view Name) {
  bool HasUpper = false;
  for (char C : Name) {
    if (C >= 'a' && C <= 'z')
      return false;
    if (C >= 'A' && C <= 'Z')
      HasUpper = true;
  }
  return HasUpper;
}

namespace {

/// Keywords that look like `name ( ... ) {` but are not definitions.
bool isControlKeyword(std::string_view Name) {
  return Name == "if" || Name == "for" || Name == "while" ||
         Name == "switch" || Name == "catch" || Name == "return" ||
         Name == "sizeof" || Name == "alignof" || Name == "decltype" ||
         Name == "noexcept" || Name == "new" || Name == "delete";
}

/// The next non-comment token index after \p I, or Tokens.size().
size_t nextCode(const std::vector<Token> &Tokens, size_t I) {
  ++I;
  while (I < Tokens.size() && Tokens[I].Kind == TokenKind::Comment)
    ++I;
  return I;
}

bool isPunct(const Token &T, char C) {
  return T.Kind == TokenKind::Punct && T.Text.size() == 1 && T.Text[0] == C;
}

/// Heuristic definition scan: identifier + balanced parameter list + `{`.
void collectDefinedFunctions(const std::vector<Token> &Tokens,
                             std::vector<std::string> &Out) {
  std::set<std::string> Seen;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Identifier || isControlKeyword(T.Text) ||
        isMacroStyleName(T.Text))
      continue;
    size_t Open = nextCode(Tokens, I);
    if (Open >= Tokens.size() || !isPunct(Tokens[Open], '('))
      continue;
    int Depth = 1;
    size_t J = Open;
    while (Depth > 0) {
      J = nextCode(Tokens, J);
      if (J >= Tokens.size())
        break;
      if (isPunct(Tokens[J], '('))
        ++Depth;
      else if (isPunct(Tokens[J], ')'))
        --Depth;
    }
    if (Depth != 0)
      break; // unbalanced to EOF
    size_t After = nextCode(Tokens, J);
    if (After < Tokens.size() && isPunct(Tokens[After], '{') &&
        Seen.insert(T.Text).second)
      Out.push_back(T.Text);
  }
}

/// Records stream-construction evidence: `TypeName Ident ...`.
bool constructsType(const std::vector<Token> &Tokens,
                    std::string_view TypeName) {
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (Tokens[I].Kind != TokenKind::Identifier || Tokens[I].Text != TypeName)
      continue;
    size_t Next = nextCode(Tokens, I);
    if (Next < Tokens.size() &&
        Tokens[Next].Kind == TokenKind::Identifier &&
        !isControlKeyword(Tokens[Next].Text))
      return true;
  }
  return false;
}

void appendField(std::string &Out, std::string_view Field) {
  Out.push_back(' ');
  Out.append(Field);
}

} // namespace

std::vector<std::string> definedFunctions(const SourceFile &File) {
  std::vector<std::string> Names;
  collectDefinedFunctions(File.tokens(), Names);
  return Names;
}

FileFacts extractFileFacts(const SourceFile &File) {
  FileFacts Facts;
  const std::vector<Token> &Tokens = File.tokens();

  // Includes, from the raw lines (the preprocessor view).
  for (size_t Index = 0; Index < File.lineCount(); ++Index) {
    std::string_view Raw = trim(File.rawLine(Index));
    if (!startsWith(Raw, "#include"))
      continue;
    std::string_view Spec = trim(Raw.substr(8));
    IncludeRecord Record;
    Record.Line = static_cast<uint32_t>(Index);
    if (startsWith(Spec, "\"")) {
      const size_t Close = Spec.find('"', 1);
      Record.Spec = std::string(Close == std::string_view::npos
                                    ? Spec.substr(1)
                                    : Spec.substr(1, Close - 1));
      Record.Quoted = true;
    } else if (startsWith(Spec, "<")) {
      const size_t Close = Spec.find('>', 1);
      Record.Spec = std::string(Close == std::string_view::npos
                                    ? Spec.substr(1)
                                    : Spec.substr(1, Close - 1));
      Record.Quoted = false;
    } else {
      continue; // computed include; out of scope
    }
    Facts.Includes.push_back(std::move(Record));
  }

  // Symbols.
  std::set<std::string, std::less<>> Nodiscard;
  harvestNodiscardFunctions(File, Nodiscard);
  Facts.NodiscardFunctions.assign(Nodiscard.begin(), Nodiscard.end());
  collectDefinedFunctions(Tokens, Facts.DefinedFunctions);

  // Call edges into the fallible-API set.
  const std::set<std::string, std::less<>> Fallible =
      builtinFallibleFunctions();
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.Kind != TokenKind::Identifier || Fallible.find(T.Text) == Fallible.end())
      continue;
    size_t Next = nextCode(Tokens, I);
    if (Next < Tokens.size() && isPunct(Tokens[Next], '('))
      Facts.FallibleCalls[T.Text].push_back(T.Line);
  }

  // Raw synchronization: the R3/R8 needle sets over the scrubbed view.
  for (size_t Index = 0; Index < File.lineCount() && !Facts.UsesRawSync;
       ++Index) {
    std::string_view Raw = trim(File.rawLine(Index));
    if (startsWith(Raw, "#include")) {
      for (std::string_view Banned : rawConcurrencyIncludeNeedles())
        if (Raw.find(Banned) != std::string_view::npos)
          Facts.UsesRawSync = true;
      continue;
    }
    std::string_view Line = File.scrubbedLine(Index);
    for (std::string_view Banned : rawConcurrencyTypeNeedles())
      if (findWordToken(Line, Banned) != std::string_view::npos)
        Facts.UsesRawSync = true;
  }

  // Snapshot-fallback evidence: ".prev" inside any string literal.
  for (const Token &T : Tokens)
    if ((T.Kind == TokenKind::String || T.Kind == TokenKind::RawString) &&
        T.Text.find(".prev") != std::string::npos)
      Facts.MentionsPrevGeneration = true;

  Facts.ConstructsLcg128 =
      constructsType(Tokens, "Lcg128") || constructsType(Tokens, "LcgPow2");
  Facts.ConstructsStreamHierarchy = constructsType(Tokens, "StreamHierarchy");
  Facts.ConstructsCursor = constructsType(Tokens, "RealizationCursor");

  Facts.Waivers = File.waivers();
  Facts.CfgShapeCrc = cfgShapeCrc(File.functions());
  Facts.Functions = extractFunctionEvidence(File);
  return Facts;
}

std::string serializeFileFacts(const FileFacts &Facts) {
  std::string Out;
  for (const IncludeRecord &Include : Facts.Includes) {
    Out += "I " + std::to_string(Include.Line);
    appendField(Out, Include.Quoted ? "q" : "a");
    appendField(Out, Include.Spec);
    Out.push_back('\n');
  }
  for (const std::string &Name : Facts.NodiscardFunctions)
    Out += "N " + Name + "\n";
  for (const std::string &Name : Facts.DefinedFunctions)
    Out += "F " + Name + "\n";
  for (const auto &[Name, Lines] : Facts.FallibleCalls)
    for (uint32_t Line : Lines)
      Out += "C " + Name + " " + std::to_string(Line) + "\n";
  if (Facts.UsesRawSync)
    Out += "S\n";
  if (Facts.MentionsPrevGeneration)
    Out += "P\n";
  if (Facts.ConstructsLcg128)
    Out += "G L\n";
  if (Facts.ConstructsStreamHierarchy)
    Out += "G H\n";
  if (Facts.ConstructsCursor)
    Out += "G C\n";
  for (const Waiver &W : Facts.Waivers) {
    Out += "W " + W.RuleId;
    appendField(Out, std::to_string(W.DirectiveIndex));
    appendField(Out, std::to_string(W.DirectiveLine));
    appendField(Out, std::to_string(W.DirectiveEndLine));
    appendField(Out, std::to_string(W.DirectiveColumn));
    appendField(Out, W.FileScope ? "f" : "l");
    appendField(Out, W.Standalone ? "1" : "0");
    appendField(Out, std::to_string(W.CoverBegin));
    appendField(Out, std::to_string(W.CoverEnd));
    Out.push_back('\n');
  }
  if (Facts.CfgShapeCrc != 0) {
    char Hex[9];
    for (int I = 7; I >= 0; --I)
      Hex[7 - I] = "0123456789abcdef"[(Facts.CfgShapeCrc >> (I * 4)) & 0xF];
    Hex[8] = '\0';
    Out += "X ";
    Out += Hex;
    Out.push_back('\n');
  }
  for (const FunctionEvidence &Fn : Facts.Functions) {
    Out += "U " + Fn.Name;
    appendField(Out, std::to_string(Fn.Line));
    appendField(Out, Fn.ReturnsFallibleType ? "1" : "0");
    appendField(Out, Fn.ConsumesStatusParam ? "1" : "0");
    Out.push_back('\n');
    for (const ReturnCallRecord &Ret : Fn.ReturnCalls)
      Out += "V r " + Ret.Callee + " " + std::to_string(Ret.Line) + "\n";
    for (const CallSiteRecord &Call : Fn.Calls) {
      Out += "V c " + Call.Callee + " " + std::to_string(Call.Line) + " " +
             (Call.UnderLock ? "1" : "0");
      for (const std::string &Mutex : Call.HeldMutexes)
        Out += " " + Mutex;
      Out.push_back('\n');
    }
    for (const TaintSiteRecord &Taint : Fn.TaintSources)
      Out += "V t " + std::string(1, "wevup"[unsigned(Taint.Kind)]) + " " +
             std::to_string(Taint.Line) + "\n";
    for (const SinkSiteRecord &Sink : Fn.Sinks)
      Out += "V s " + std::string(1, "anx"[unsigned(Sink.Kind)]) + " " +
             std::to_string(Sink.Line) + "\n";
    for (const LockOpRecord &Op : Fn.LockOps)
      Out += "V l " +
             std::string(1, Op.Kind == LockOpRecord::Op::Scoped    ? 's'
                            : Op.Kind == LockOpRecord::Op::Acquire ? 'a'
                                                                   : 'r') +
             " " + Op.Mutex + " " + std::to_string(Op.Line) + "\n";
    for (const FieldWriteRecord &Write : Fn.FieldWrites)
      Out += "V w " + Write.Field + " " + (Write.UnderLock ? "1" : "0") +
             " " + std::to_string(Write.Line) + "\n";
  }
  return Out;
}

Result<FileFacts> parseFileFacts(std::string_view Block) {
  FileFacts Facts;
  auto ParseU32 = [](std::string_view Field, uint32_t &Out) -> bool {
    Result<int64_t> Value = parseInt64(Field);
    if (!Value || Value.value() < 0)
      return false;
    Out = static_cast<uint32_t>(Value.value());
    return true;
  };
  for (std::string_view Line : splitChar(Block, '\n')) {
    if (trim(Line).empty())
      continue;
    std::vector<std::string_view> Fields = splitWhitespace(Line);
    const std::string_view Tag = Fields[0];
    if (Tag == "I" && Fields.size() == 4) {
      IncludeRecord Record;
      if (!ParseU32(Fields[1], Record.Line))
        return invalidArgument("bad include line in facts block");
      Record.Quoted = Fields[2] == "q";
      Record.Spec = std::string(Fields[3]);
      Facts.Includes.push_back(std::move(Record));
    } else if (Tag == "N" && Fields.size() == 2) {
      Facts.NodiscardFunctions.emplace_back(Fields[1]);
    } else if (Tag == "F" && Fields.size() == 2) {
      Facts.DefinedFunctions.emplace_back(Fields[1]);
    } else if (Tag == "C" && Fields.size() == 3) {
      uint32_t CallLine = 0;
      if (!ParseU32(Fields[2], CallLine))
        return invalidArgument("bad call line in facts block");
      Facts.FallibleCalls[std::string(Fields[1])].push_back(CallLine);
    } else if (Tag == "S") {
      Facts.UsesRawSync = true;
    } else if (Tag == "P") {
      Facts.MentionsPrevGeneration = true;
    } else if (Tag == "G" && Fields.size() == 2) {
      if (Fields[1] == "L")
        Facts.ConstructsLcg128 = true;
      else if (Fields[1] == "H")
        Facts.ConstructsStreamHierarchy = true;
      else if (Fields[1] == "C")
        Facts.ConstructsCursor = true;
    } else if (Tag == "X" && Fields.size() == 2) {
      uint32_t Crc = 0;
      for (char C : Fields[1]) {
        uint32_t Digit = 0;
        if (C >= '0' && C <= '9')
          Digit = static_cast<uint32_t>(C - '0');
        else if (C >= 'a' && C <= 'f')
          Digit = static_cast<uint32_t>(C - 'a') + 10;
        else
          return invalidArgument("bad cfg shape crc in facts block");
        Crc = (Crc << 4) | Digit;
      }
      Facts.CfgShapeCrc = Crc;
    } else if (Tag == "U" && Fields.size() == 5) {
      FunctionEvidence Fn;
      Fn.Name = std::string(Fields[1]);
      if (!ParseU32(Fields[2], Fn.Line))
        return invalidArgument("bad function record in facts block");
      Fn.ReturnsFallibleType = Fields[3] == "1";
      Fn.ConsumesStatusParam = Fields[4] == "1";
      Facts.Functions.push_back(std::move(Fn));
    } else if (Tag == "V" && Fields.size() >= 4) {
      if (Facts.Functions.empty())
        return invalidArgument("function evidence before function record");
      FunctionEvidence &Fn = Facts.Functions.back();
      const std::string_view Kind = Fields[1];
      uint32_t RecLine = 0;
      if (Kind == "r" && Fields.size() == 4) {
        if (!ParseU32(Fields[3], RecLine))
          return invalidArgument("bad return-call record in facts block");
        Fn.ReturnCalls.push_back({std::string(Fields[2]), RecLine});
      } else if (Kind == "c" && Fields.size() >= 5) {
        if (!ParseU32(Fields[3], RecLine))
          return invalidArgument("bad call record in facts block");
        CallSiteRecord Call{std::string(Fields[2]), RecLine,
                            Fields[4] == "1", {}};
        for (size_t I = 5; I < Fields.size(); ++I)
          Call.HeldMutexes.emplace_back(Fields[I]);
        Fn.Calls.push_back(std::move(Call));
      } else if (Kind == "t" && Fields.size() == 4) {
        const size_t TaintIndex = std::string_view("wevup").find(Fields[2]);
        if (TaintIndex == std::string_view::npos || Fields[2].size() != 1 ||
            !ParseU32(Fields[3], RecLine))
          return invalidArgument("bad taint record in facts block");
        Fn.TaintSources.push_back({TaintKind(TaintIndex), RecLine});
      } else if (Kind == "s" && Fields.size() == 4) {
        const size_t SinkIndex = std::string_view("anx").find(Fields[2]);
        if (SinkIndex == std::string_view::npos || Fields[2].size() != 1 ||
            !ParseU32(Fields[3], RecLine))
          return invalidArgument("bad sink record in facts block");
        Fn.Sinks.push_back({SinkKind(SinkIndex), RecLine});
      } else if (Kind == "l" && Fields.size() == 5) {
        LockOpRecord Op;
        if (Fields[2] == "s")
          Op.Kind = LockOpRecord::Op::Scoped;
        else if (Fields[2] == "a")
          Op.Kind = LockOpRecord::Op::Acquire;
        else if (Fields[2] == "r")
          Op.Kind = LockOpRecord::Op::Release;
        else
          return invalidArgument("bad lock record in facts block");
        Op.Mutex = std::string(Fields[3]);
        if (!ParseU32(Fields[4], Op.Line))
          return invalidArgument("bad lock record in facts block");
        Fn.LockOps.push_back(std::move(Op));
      } else if (Kind == "w" && Fields.size() == 5) {
        if (!ParseU32(Fields[4], RecLine))
          return invalidArgument("bad field-write record in facts block");
        Fn.FieldWrites.push_back(
            {std::string(Fields[2]), Fields[3] == "1", RecLine});
      } else {
        return invalidArgument("unrecognized evidence record");
      }
    } else if (Tag == "W" && Fields.size() == 10) {
      Waiver W;
      W.RuleId = std::string(Fields[1]);
      if (!ParseU32(Fields[2], W.DirectiveIndex) ||
          !ParseU32(Fields[3], W.DirectiveLine) ||
          !ParseU32(Fields[4], W.DirectiveEndLine) ||
          !ParseU32(Fields[5], W.DirectiveColumn) ||
          !ParseU32(Fields[8], W.CoverBegin) ||
          !ParseU32(Fields[9], W.CoverEnd))
        return invalidArgument("bad waiver record in facts block");
      W.FileScope = Fields[6] == "f";
      W.Standalone = Fields[7] == "1";
      Facts.Waivers.push_back(std::move(W));
    } else {
      return invalidArgument("unrecognized facts record");
    }
  }
  return Facts;
}

void ProjectIndex::add(std::string Path, FileFacts NewFacts) {
  ByPath.emplace(Path, Paths.size());
  Paths.push_back(std::move(Path));
  Facts.push_back(std::move(NewFacts));
}

const FileFacts *ProjectIndex::factsFor(std::string_view Path) const {
  auto It = ByPath.find(Path);
  return It == ByPath.end() ? nullptr : &Facts[It->second];
}

size_t ProjectIndex::resolveInclude(std::string_view FromPath,
                                    const IncludeRecord &Include) const {
  if (startsWith(Include.Spec, "parmonc/")) {
    const std::string Suffix = "include/" + Include.Spec;
    for (size_t I = 0; I < Paths.size(); ++I)
      if (pathEndsWith(Paths[I], Suffix))
        return I;
    return npos;
  }
  if (!Include.Quoted)
    return npos; // system header
  // Relative to the including file's directory.
  const std::string Normal = normalizedPath(FromPath);
  const size_t Slash = Normal.rfind('/');
  const std::string Candidate =
      (Slash == std::string::npos ? "" : Normal.substr(0, Slash + 1)) +
      Include.Spec;
  auto It = ByPath.find(Candidate);
  return It == ByPath.end() ? npos : It->second;
}

void populateContextFromIndex(const ProjectIndex &Index,
                              LintContext &Context) {
  Context.NodiscardFunctions = builtinFallibleFunctions();
  for (size_t I = 0; I < Index.fileCount(); ++I) {
    const FileFacts &Facts = Index.facts(I);
    for (const std::string &Name : Facts.NodiscardFunctions)
      Context.NodiscardFunctions.insert(Name);
    const std::string &Path = Index.path(I);
    // mpsim/ and obs/ are the sanctioned concurrency layers; core/ is
    // covered by R8's direct check on its own files, so its definitions
    // are not call-edge taint (a core-to-core call would double-report).
    const bool Blessed = pathContainsComponent(Path, "mpsim") ||
                         pathContainsComponent(Path, "obs") ||
                         pathContainsComponent(Path, "core") ||
                         pathEndsWith(Path, "support/Clock.h");
    for (const std::string &Name : Facts.DefinedFunctions) {
      if (!Blessed && Facts.UsesRawSync)
        Context.TaintedFunctions.insert(Name);
      else
        Context.CleanFunctions.insert(Name);
    }
  }
}

} // namespace lint
} // namespace parmonc
