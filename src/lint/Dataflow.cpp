//===- lint/Dataflow.cpp - Forward dataflow over function CFGs ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Dataflow.h"

#include <algorithm>
#include <deque>

namespace parmonc {
namespace lint {

DataflowResult runForwardDataflow(const FunctionCfg &Cfg,
                                  const DataflowClient &Client) {
  DataflowResult Result;
  const size_t NumBlocks = Cfg.Blocks.size();
  const size_t NumFacts = Client.factCount();
  Result.In.assign(NumBlocks, std::vector<uint8_t>(NumFacts, 0));
  Result.Out.assign(NumBlocks, std::vector<uint8_t>(NumFacts, 0));
  Result.Reached.assign(NumBlocks, 0);
  if (NumBlocks == 0)
    return Result;

  // Process in reverse postorder; a worklist flag per block avoids
  // duplicate queue entries. Loops converge because join is monotone over
  // a finite lattice.
  const std::vector<uint32_t> Order = reversePostorder(Cfg);
  std::vector<uint32_t> RpoIndex(NumBlocks, 0);
  for (size_t I = 0; I < Order.size(); ++I)
    RpoIndex[Order[I]] = static_cast<uint32_t>(I);

  std::deque<uint32_t> Worklist;
  std::vector<uint8_t> InWorklist(NumBlocks, 0);
  Result.Reached[Cfg.Entry] = 1;
  Worklist.push_back(Cfg.Entry);
  InWorklist[Cfg.Entry] = 1;

  std::vector<uint8_t> State;
  while (!Worklist.empty()) {
    // Pop the block earliest in RPO — close to priority order without a
    // heap; graph sizes here are tiny.
    auto Best = std::min_element(
        Worklist.begin(), Worklist.end(),
        [&](uint32_t A, uint32_t B) { return RpoIndex[A] < RpoIndex[B]; });
    const uint32_t Block = *Best;
    Worklist.erase(Best);
    InWorklist[Block] = 0;

    State = Result.In[Block];
    for (uint32_t StmtIndex : Cfg.Blocks[Block].Statements)
      Client.transfer(Cfg.Statements[StmtIndex], State);
    Result.Out[Block] = State;

    for (uint32_t Succ : Cfg.Blocks[Block].Successors) {
      bool Changed = false;
      if (!Result.Reached[Succ]) {
        Result.Reached[Succ] = 1;
        Result.In[Succ] = State;
        Changed = true;
      } else {
        std::vector<uint8_t> &Target = Result.In[Succ];
        for (size_t F = 0; F < NumFacts; ++F) {
          const uint8_t Joined = Client.join(Target[F], State[F]);
          if (Joined != Target[F]) {
            Target[F] = Joined;
            Changed = true;
          }
        }
      }
      if (Changed && !InWorklist[Succ]) {
        Worklist.push_back(Succ);
        InWorklist[Succ] = 1;
      }
    }
  }
  return Result;
}

} // namespace lint
} // namespace parmonc
