//===- lint/Diagnostic.cpp - Lint finding rendering -----------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/lint/Diagnostic.h"

#include <algorithm>
#include <tuple>

namespace parmonc {
namespace lint {

std::string formatDiagnostic(const Diagnostic &Diag, bool AsError) {
  std::string Text = Diag.Path;
  Text += ':';
  Text += std::to_string(Diag.Line);
  Text += AsError ? ": error: " : ": warning: ";
  Text += Diag.Message;
  Text += " [";
  Text += Diag.RuleId;
  Text += ':';
  Text += Diag.RuleName;
  Text += ']';
  return Text;
}

void sortDiagnostics(std::vector<Diagnostic> &Diags) {
  // A total order — column and message break (path, line, rule) ties — so
  // the output (and through it `--fix` edit application) is byte-identical
  // at any --jobs count and across rule registration order changes.
  std::stable_sort(
      Diags.begin(), Diags.end(),
      [](const Diagnostic &A, const Diagnostic &B) {
        return std::tie(A.Path, A.Line, A.RuleId, A.Column, A.Message) <
               std::tie(B.Path, B.Line, B.RuleId, B.Column, B.Message);
      });
}

} // namespace lint
} // namespace parmonc
