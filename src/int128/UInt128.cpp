//===- int128/UInt128.cpp - Portable 128-bit unsigned integer ------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/int128/UInt128.h"

#include "parmonc/support/Text.h"

#include <algorithm>
#include <array>

namespace parmonc {

static unsigned countLeadingZeros64(uint64_t Value) {
  if (Value == 0)
    return 64;
  unsigned Count = 0;
  for (unsigned Shift = 32; Shift > 0; Shift /= 2) {
    uint64_t Top = Value >> (64 - Shift);
    if (Top == 0) {
      Count += Shift;
      Value <<= Shift;
    }
  }
  return Count;
}

static unsigned countTrailingZeros64(uint64_t Value) {
  if (Value == 0)
    return 64;
  unsigned Count = 0;
  for (unsigned Shift = 32; Shift > 0; Shift /= 2) {
    uint64_t Bottom = Value << (64 - Shift);
    if (Bottom == 0) {
      Count += Shift;
      Value >>= Shift;
    }
  }
  return Count;
}

unsigned UInt128::countLeadingZeros() const {
  return Hi != 0 ? countLeadingZeros64(Hi) : 64 + countLeadingZeros64(Lo);
}

unsigned UInt128::countTrailingZeros() const {
  return Lo != 0 ? countTrailingZeros64(Lo) : 64 + countTrailingZeros64(Hi);
}

UInt128 mulWide64Portable(uint64_t A, uint64_t B) {
  // Split into 32-bit halves; accumulate the four partial products with
  // explicit carries. Standard schoolbook multiply.
  const uint64_t AL = A & 0xffffffffu;
  const uint64_t AH = A >> 32;
  const uint64_t BL = B & 0xffffffffu;
  const uint64_t BH = B >> 32;

  const uint64_t LL = AL * BL;
  const uint64_t LH = AL * BH;
  const uint64_t HL = AH * BL;
  const uint64_t HH = AH * BH;

  // Middle column: (LL >> 32) + low(LH) + low(HL); its carry feeds the top.
  const uint64_t Middle = (LL >> 32) + (LH & 0xffffffffu) + (HL & 0xffffffffu);
  const uint64_t Low = (Middle << 32) | (LL & 0xffffffffu);
  const uint64_t High = HH + (LH >> 32) + (HL >> 32) + (Middle >> 32);
  return UInt128(High, Low);
}

UInt128 mul128Portable(UInt128 A, UInt128 B) {
  // (AHi*2^64 + ALo) * (BHi*2^64 + BLo) mod 2^128:
  // only ALo*BLo contributes to both limbs; the cross terms land in the
  // high limb; AHi*BHi*2^128 vanishes.
  UInt128 Product = mulWide64Portable(A.low(), B.low());
  uint64_t HighExtra = A.low() * B.high() + A.high() * B.low();
  return UInt128(Product.high() + HighExtra, Product.low());
}

WideProduct128 mulFull128(UInt128 A, UInt128 B) {
  // Schoolbook with 64-bit limbs: A = a1*2^64 + a0, B = b1*2^64 + b0.
  UInt128 P00 = mulWide64(A.low(), B.low());   // weight 2^0
  UInt128 P01 = mulWide64(A.low(), B.high());  // weight 2^64
  UInt128 P10 = mulWide64(A.high(), B.low());  // weight 2^64
  UInt128 P11 = mulWide64(A.high(), B.high()); // weight 2^128

  // Low 128 bits: P00 + ((P01 + P10) << 64), carries promoted to High.
  UInt128 Mid = UInt128(P01.low()) + UInt128(P10.low()) + UInt128(P00.high());
  UInt128 Low(Mid.low(), P00.low());
  UInt128 High = P11 + UInt128(P01.high()) + UInt128(P10.high()) +
                 UInt128(Mid.high());
  return {High, Low};
}

DivMod128 divMod128(UInt128 Dividend, UInt128 Divisor) {
  assert(!Divisor.isZero() && "division by zero");
  if (Dividend < Divisor)
    return {UInt128(), Dividend};
  if (Divisor == UInt128(1))
    return {Dividend, UInt128()};

  // Binary long division: align the divisor under the dividend's top bit,
  // then subtract-and-shift. At most 128 iterations.
  unsigned Shift = Divisor.countLeadingZeros() - Dividend.countLeadingZeros();
  UInt128 Denominator = Divisor << Shift;
  UInt128 Quotient;
  UInt128 Remainder = Dividend;
  for (unsigned Step = 0; Step <= Shift; ++Step) {
    Quotient <<= 1;
    if (Remainder >= Denominator) {
      Remainder -= Denominator;
      Quotient |= UInt128(1);
    }
    Denominator >>= 1;
  }
  return {Quotient, Remainder};
}

UInt128 operator/(UInt128 A, UInt128 B) {
  return divMod128(A, B).Quotient;
}

UInt128 operator%(UInt128 A, UInt128 B) {
  return divMod128(A, B).Remainder;
}

UInt128 UInt128::powModPow2(UInt128 Base, UInt128 Exponent, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 128 && "modulus 2^Bits out of range");
  UInt128 Accumulator(1);
  UInt128 Square = truncateToBits(Base, Bits);
  // Square-and-multiply over every exponent bit. Wrapping multiplication is
  // already mod 2^128; narrower moduli only need a final truncation per step
  // to keep intermediates canonical.
  for (unsigned Index = 0; Index < 128; ++Index) {
    if (Exponent.bit(Index))
      Accumulator = truncateToBits(Accumulator * Square, Bits);
    // Skip the last squaring; it cannot influence the result.
    if (Index + 1 < 128)
      Square = truncateToBits(Square * Square, Bits);
  }
  return Accumulator;
}

double UInt128::toDouble() const {
  // Hi*2^64 + Lo, rounded by the double additions themselves. Good to one
  // ulp, which is all callers need (diagnostics and RNG output scaling).
  return double(Hi) * 18446744073709551616.0 + double(Lo);
}

std::string UInt128::toDecimalString() const {
  if (isZero())
    return "0";
  std::string Digits;
  UInt128 Value = *this;
  const UInt128 Ten(10);
  while (!Value.isZero()) {
    DivMod128 Split = divMod128(Value, Ten);
    Digits.push_back(char('0' + Split.Remainder.low()));
    Value = Split.Quotient;
  }
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::string UInt128::toHexString() const {
  static const char HexDigits[] = "0123456789abcdef";
  std::string Text = "0x";
  for (int Nibble = 31; Nibble >= 0; --Nibble) {
    uint64_t Limb = Nibble >= 16 ? Hi : Lo;
    unsigned Shift = unsigned(Nibble % 16) * 4;
    Text.push_back(HexDigits[(Limb >> Shift) & 0xf]);
  }
  return Text;
}

Result<UInt128> UInt128::fromDecimalString(std::string_view Text) {
  std::string_view Trimmed = trim(Text);
  if (Trimmed.empty())
    return parseError("empty 128-bit decimal");
  UInt128 Value;
  const UInt128 Ten(10);
  // Overflow check: Value * 10 + Digit must not wrap. The largest safe
  // pre-multiply value is floor((2^128 - 1) / 10).
  const UInt128 MaxBeforeMul = divMod128(~UInt128(), Ten).Quotient;
  for (char Character : Trimmed) {
    if (Character < '0' || Character > '9')
      return parseError(std::string("invalid decimal digit '") + Character +
                        "'");
    uint64_t Digit = uint64_t(Character - '0');
    if (Value > MaxBeforeMul)
      return parseError("128-bit decimal overflow");
    UInt128 Scaled = Value * Ten;
    UInt128 Next = Scaled + UInt128(Digit);
    if (Next < Scaled)
      return parseError("128-bit decimal overflow");
    Value = Next;
  }
  return Value;
}

Result<UInt128> UInt128::fromHexString(std::string_view Text) {
  std::string_view Trimmed = trim(Text);
  if (startsWith(Trimmed, "0x") || startsWith(Trimmed, "0X"))
    Trimmed.remove_prefix(2);
  if (Trimmed.empty())
    return parseError("empty 128-bit hex");
  if (Trimmed.size() > 32)
    return parseError("128-bit hex overflow");
  UInt128 Value;
  for (char Character : Trimmed) {
    uint64_t Digit;
    if (Character >= '0' && Character <= '9')
      Digit = uint64_t(Character - '0');
    else if (Character >= 'a' && Character <= 'f')
      Digit = uint64_t(Character - 'a' + 10);
    else if (Character >= 'A' && Character <= 'F')
      Digit = uint64_t(Character - 'A' + 10);
    else
      return parseError(std::string("invalid hex digit '") + Character + "'");
    Value = (Value << 4) | UInt128(Digit);
  }
  return Value;
}

} // namespace parmonc
