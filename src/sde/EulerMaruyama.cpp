//===- sde/EulerMaruyama.cpp - SDE integration (eq. 9) -------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/sde/EulerMaruyama.h"

#include <algorithm>
#include <cmath>

namespace parmonc {

SdeSystem LinearSdeSystem::toSystem() const {
  assert(!InitialState.empty() && "linear system has no state");
  assert(DriftVector.size() == dimension() && "drift dimension mismatch");
  assert(DiffusionMatrix.size() == dimension() * NoiseDimension &&
         "diffusion shape mismatch");
  SdeSystem System;
  System.Dimension = dimension();
  System.NoiseDimension = NoiseDimension;
  // Copy the coefficient vectors into the closures: the SdeSystem must not
  // dangle if the LinearSdeSystem goes out of scope.
  std::vector<double> Drift = DriftVector;
  System.Drift = [Drift](double, const double *, double *DriftOut) {
    std::copy(Drift.begin(), Drift.end(), DriftOut);
  };
  std::vector<double> Diffusion = DiffusionMatrix;
  System.Diffusion = [Diffusion](double, const double *,
                                 double *DiffusionOut) {
    std::copy(Diffusion.begin(), Diffusion.end(), DiffusionOut);
  };
  return System;
}

double LinearSdeSystem::exactMean(size_t Component, double Time) const {
  assert(Component < dimension() && "component out of range");
  return InitialState[Component] + DriftVector[Component] * Time;
}

double LinearSdeSystem::exactVariance(size_t Component, double Time) const {
  assert(Component < dimension() && "component out of range");
  double RowNormSquared = 0.0;
  for (size_t Noise = 0; Noise < NoiseDimension; ++Noise) {
    const double Entry = DiffusionMatrix[Component * NoiseDimension + Noise];
    RowNormSquared += Entry * Entry;
  }
  return RowNormSquared * Time;
}

EulerMaruyama::EulerMaruyama(SdeSystem System, double StepSize)
    : System(std::move(System)), StepSize(StepSize) {
  assert(StepSize > 0.0 && "mesh size must be positive");
  assert(this->System.Dimension >= 1 && "system has no state");
  assert(this->System.NoiseDimension >= 1 && "system has no noise");
  assert(this->System.Drift && this->System.Diffusion &&
         "system callbacks must be set");
}

void EulerMaruyama::simulateTrajectory(
    RandomSource &Source, const double *InitialState, double EndTime,
    const std::vector<double> &OutputTimes, double *Samples) const {
  assert(EndTime > 0.0 && "end time must be positive");
  assert(Samples && InitialState);

  const size_t Dimension = System.Dimension;
  const size_t NoiseDimension = System.NoiseDimension;
  const double SqrtStep = std::sqrt(StepSize);

  std::vector<double> State(InitialState, InitialState + Dimension);
  std::vector<double> Drift(Dimension);
  std::vector<double> Diffusion(Dimension * NoiseDimension);
  std::vector<double> Noise(NoiseDimension);

  size_t NextOutput = 0;
  const size_t OutputCount = OutputTimes.size();
  double Time = 0.0;
  const int64_t StepCount = int64_t(std::ceil(EndTime / StepSize - 1e-9));

  for (int64_t Step = 0; Step < StepCount && NextOutput < OutputCount;
       ++Step) {
    // Draw the noise vector pairwise to use both Box–Muller outputs.
    size_t NoiseIndex = 0;
    while (NoiseIndex + 1 < NoiseDimension) {
      NormalPair Pair = sampleStandardNormalPair(Source);
      Noise[NoiseIndex++] = Pair.First;
      Noise[NoiseIndex++] = Pair.Second;
    }
    if (NoiseIndex < NoiseDimension)
      Noise[NoiseIndex] = sampleStandardNormal(Source);

    System.Drift(Time, State.data(), Drift.data());
    System.Diffusion(Time, State.data(), Diffusion.data());
    for (size_t Component = 0; Component < Dimension; ++Component) {
      double Increment = StepSize * Drift[Component];
      const double *DiffusionRow = &Diffusion[Component * NoiseDimension];
      for (size_t NoiseComponent = 0; NoiseComponent < NoiseDimension;
           ++NoiseComponent)
        Increment += SqrtStep * DiffusionRow[NoiseComponent] *
                     Noise[NoiseComponent];
      State[Component] += Increment;
    }
    Time = double(Step + 1) * StepSize;

    // Emit every output time that this mesh point has reached.
    while (NextOutput < OutputCount &&
           Time >= OutputTimes[NextOutput] - 1e-12) {
      std::copy(State.begin(), State.end(),
                Samples + NextOutput * Dimension);
      ++NextOutput;
    }
  }

  // Requested times beyond the integration horizon get the final state.
  while (NextOutput < OutputCount) {
    std::copy(State.begin(), State.end(), Samples + NextOutput * Dimension);
    ++NextOutput;
  }
}

std::vector<double> EulerMaruyama::simulateToEnd(
    RandomSource &Source, const std::vector<double> &InitialState,
    double EndTime) const {
  assert(InitialState.size() == System.Dimension &&
         "initial state has wrong dimension");
  std::vector<double> Sample(System.Dimension);
  std::vector<double> OutputTimes{EndTime};
  simulateTrajectory(Source, InitialState.data(), EndTime, OutputTimes,
                     Sample.data());
  return Sample;
}

LinearSdeSystem PaperDiffusionProblem::makeSystem() {
  LinearSdeSystem System;
  System.InitialState = {1.0, -1.0};
  System.DriftVector = {1.0, -0.5};
  System.DiffusionMatrix = {1.0, 0.2, //
                            0.2, 1.0};
  System.NoiseDimension = 2;
  return System;
}

std::vector<double> PaperDiffusionProblem::outputTimes() {
  std::vector<double> Times(OutputCount);
  for (size_t Index = 0; Index < OutputCount; ++Index)
    Times[Index] = double(Index + 1) * 0.1;
  return Times;
}

void PaperDiffusionProblem::simulateRealization(RandomSource &Source,
                                                double StepSize,
                                                double *Out) {
  static const LinearSdeSystem Linear = makeSystem();
  static const std::vector<double> Times = outputTimes();
  const EulerMaruyama Integrator(Linear.toSystem(), StepSize);
  Integrator.simulateTrajectory(Source, Linear.InitialState.data(), EndTime,
                                Times, Out);
}

} // namespace parmonc
