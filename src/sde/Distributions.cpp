//===- sde/Distributions.cpp - Samplers over a RandomSource --------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/sde/Distributions.h"

#include <cmath>
#include <numeric>

namespace parmonc {

double sampleUniform(RandomSource &Source, double Low, double High) {
  assert(Low < High && "empty uniform range");
  return Low + (High - Low) * Source.nextUniform();
}

NormalPair sampleStandardNormalPair(RandomSource &Source) {
  // Box–Muller. Both uniforms are strictly inside (0,1), so the logarithm
  // is finite and the radius positive.
  const double U1 = Source.nextUniform();
  const double U2 = Source.nextUniform();
  const double Radius = std::sqrt(-2.0 * std::log(U1));
  const double Angle = 2.0 * M_PI * U2;
  return {Radius * std::cos(Angle), Radius * std::sin(Angle)};
}

double sampleStandardNormal(RandomSource &Source) {
  return sampleStandardNormalPair(Source).First;
}

double sampleNormal(RandomSource &Source, double Mean, double StdDev) {
  assert(StdDev >= 0.0 && "negative standard deviation");
  return Mean + StdDev * sampleStandardNormal(Source);
}

double sampleExponential(RandomSource &Source, double Rate) {
  assert(Rate > 0.0 && "exponential rate must be positive");
  return -std::log(Source.nextUniform()) / Rate;
}

bool sampleBernoulli(RandomSource &Source, double Probability) {
  assert(Probability >= 0.0 && Probability <= 1.0 &&
         "probability out of [0,1]");
  return Source.nextUniform() < Probability;
}

static int64_t samplePoissonKnuth(RandomSource &Source, double Mean) {
  // Product of uniforms against e^-Mean; O(Mean) draws.
  const double Threshold = std::exp(-Mean);
  int64_t Count = 0;
  double Product = Source.nextUniform();
  while (Product > Threshold) {
    ++Count;
    Product *= Source.nextUniform();
  }
  return Count;
}

static double logFactorial(double K) {
  return std::lgamma(K + 1.0);
}

static int64_t samplePoissonRejection(RandomSource &Source, double Mean) {
  // Atkinson's rejection from a logistic envelope (the standard method for
  // large means; expected O(1) uniforms per sample).
  const double Beta = M_PI / std::sqrt(3.0 * Mean);
  const double Alpha = Beta * Mean;
  const double K = std::log(0.767 - 3.36 / Mean) - Mean - std::log(Beta);
  for (;;) {
    const double U = Source.nextUniform();
    const double X = (Alpha - std::log((1.0 - U) / U)) / Beta;
    const double N = std::floor(X + 0.5);
    if (N < 0.0)
      continue;
    const double V = Source.nextUniform();
    const double Y = Alpha - Beta * X;
    const double Temp = 1.0 + std::exp(Y);
    const double Lhs = Y + std::log(V / (Temp * Temp));
    const double Rhs = K + N * std::log(Mean) - logFactorial(N);
    if (Lhs <= Rhs)
      return int64_t(N);
  }
}

int64_t samplePoisson(RandomSource &Source, double Mean) {
  assert(Mean > 0.0 && "Poisson mean must be positive");
  return Mean < 30.0 ? samplePoissonKnuth(Source, Mean)
                     : samplePoissonRejection(Source, Mean);
}

int64_t sampleGeometric(RandomSource &Source, double Probability) {
  assert(Probability > 0.0 && Probability <= 1.0 &&
         "geometric success probability must be in (0,1]");
  if (Probability == 1.0)
    return 0;
  // Inversion: floor(log(U)/log(1-p)).
  return int64_t(std::floor(std::log(Source.nextUniform()) /
                            std::log(1.0 - Probability)));
}

double sampleGamma(RandomSource &Source, double Shape, double Scale) {
  assert(Shape > 0.0 && Scale > 0.0 && "gamma parameters must be positive");
  if (Shape < 1.0) {
    // Boosting: G(a) = G(a+1) * U^{1/a}.
    const double Boosted = sampleGamma(Source, Shape + 1.0, 1.0);
    return Scale * Boosted *
           std::pow(Source.nextUniform(), 1.0 / Shape);
  }
  // Marsaglia & Tsang (2000): squeeze around (1 + x/sqrt(9d))³.
  const double D = Shape - 1.0 / 3.0;
  const double C = 1.0 / std::sqrt(9.0 * D);
  for (;;) {
    double X, V;
    do {
      X = sampleStandardNormal(Source);
      V = 1.0 + C * X;
    } while (V <= 0.0);
    V = V * V * V;
    const double U = Source.nextUniform();
    const double XSquared = X * X;
    if (U < 1.0 - 0.0331 * XSquared * XSquared)
      return Scale * D * V;
    if (std::log(U) < 0.5 * XSquared + D * (1.0 - V + std::log(V)))
      return Scale * D * V;
  }
}

double sampleBeta(RandomSource &Source, double Alpha, double Beta) {
  assert(Alpha > 0.0 && Beta > 0.0 && "beta parameters must be positive");
  const double X = sampleGamma(Source, Alpha, 1.0);
  const double Y = sampleGamma(Source, Beta, 1.0);
  return X / (X + Y);
}

int64_t sampleBinomial(RandomSource &Source, int64_t Trials,
                       double Probability) {
  assert(Trials >= 0 && "negative trial count");
  assert(Probability >= 0.0 && Probability <= 1.0 &&
         "probability out of [0,1]");
  if (Trials == 0 || Probability == 0.0)
    return 0;
  if (Probability == 1.0)
    return Trials;
  // Symmetry: work with p <= 1/2 so the recursion terminates fast.
  if (Probability > 0.5)
    return Trials - sampleBinomial(Source, Trials, 1.0 - Probability);

  if (Trials <= 64) {
    int64_t Successes = 0;
    for (int64_t Trial = 0; Trial < Trials; ++Trial)
      Successes += sampleBernoulli(Source, Probability);
    return Successes;
  }

  // Beta-splitting (Knuth/Devroye): the k-th order statistic of n
  // uniforms is Beta(k, n+1-k); condition on it to halve n per step.
  const int64_t Split = Trials / 2 + 1;
  const double Pivot =
      sampleBeta(Source, double(Split), double(Trials + 1 - Split));
  if (Pivot <= Probability)
    return Split +
           sampleBinomial(Source, Trials - Split,
                          (Probability - Pivot) / (1.0 - Pivot));
  return sampleBinomial(Source, Split - 1, Probability / Pivot);
}

double sampleChiSquare(RandomSource &Source, double DegreesOfFreedom) {
  assert(DegreesOfFreedom > 0.0 && "degrees of freedom must be positive");
  return sampleGamma(Source, DegreesOfFreedom / 2.0, 2.0);
}

double sampleStudentT(RandomSource &Source, double DegreesOfFreedom) {
  assert(DegreesOfFreedom > 0.0 && "degrees of freedom must be positive");
  const double Normal = sampleStandardNormal(Source);
  const double ChiSquare = sampleChiSquare(Source, DegreesOfFreedom);
  return Normal / std::sqrt(ChiSquare / DegreesOfFreedom);
}

double sampleLognormal(RandomSource &Source, double MeanLog, double SdLog) {
  return std::exp(sampleNormal(Source, MeanLog, SdLog));
}

Status choleskyFactor(std::vector<double> &Matrix, size_t Dimension) {
  if (Matrix.size() != Dimension * Dimension)
    return invalidArgument("matrix size does not match dimension");
  for (size_t Row = 0; Row < Dimension; ++Row) {
    for (size_t Column = 0; Column <= Row; ++Column) {
      double Sum = Matrix[Row * Dimension + Column];
      for (size_t Inner = 0; Inner < Column; ++Inner)
        Sum -= Matrix[Row * Dimension + Inner] *
               Matrix[Column * Dimension + Inner];
      if (Row == Column) {
        if (Sum <= 0.0)
          return invalidArgument(
              "matrix is not positive definite (pivot " +
              std::to_string(Row) + ")");
        Matrix[Row * Dimension + Column] = std::sqrt(Sum);
      } else {
        Matrix[Row * Dimension + Column] =
            Sum / Matrix[Column * Dimension + Column];
      }
    }
    // Zero the strict upper triangle for a clean factor.
    for (size_t Column = Row + 1; Column < Dimension; ++Column)
      Matrix[Row * Dimension + Column] = 0.0;
  }
  return Status::ok();
}

MultivariateNormal::MultivariateNormal(std::vector<double> Mean,
                                       std::vector<double> Covariance)
    : Mean(std::move(Mean)), Factor(std::move(Covariance)) {
  const size_t Dimension = this->Mean.size();
  Status Factored = choleskyFactor(Factor, Dimension);
  assert(Factored.isOk() && "covariance must be symmetric positive definite");
  Valid = Factored.isOk();
}

void MultivariateNormal::sample(RandomSource &Source, double *Out) const {
  assert(Valid && "sampling from an invalid MultivariateNormal");
  assert(Out && "null output");
  const size_t Dimension = Mean.size();
  // Draw Z pairwise, then Out = Mean + L Z computed in place: iterate rows
  // from the bottom so each row only reads Z values not yet overwritten.
  // Simpler: stage Z in Out, then transform downward from the last row.
  size_t Index = 0;
  while (Index + 1 < Dimension) {
    const NormalPair Pair = sampleStandardNormalPair(Source);
    Out[Index++] = Pair.First;
    Out[Index++] = Pair.Second;
  }
  if (Index < Dimension)
    Out[Index] = sampleStandardNormal(Source);

  for (size_t Row = Dimension; Row-- > 0;) {
    double Sum = Mean[Row];
    for (size_t Column = 0; Column <= Row; ++Column)
      Sum += Factor[Row * Dimension + Column] * Out[Column];
    Out[Row] = Sum;
  }
}

AliasTable::AliasTable(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "alias table needs at least one outcome");
  const size_t Count = Weights.size();
  double Total = 0.0;
  for (double Weight : Weights) {
    assert(Weight >= 0.0 && "negative weight");
    Total += Weight;
  }
  assert(Total > 0.0 && "weights must not all be zero");

  Normalized.resize(Count);
  for (size_t Index = 0; Index < Count; ++Index)
    Normalized[Index] = Weights[Index] / Total;

  // Vose's stable construction: split outcomes into small/large piles by
  // scaled probability, pair each small cell with a large donor.
  Probability.assign(Count, 0.0);
  Alias.assign(Count, 0);
  std::vector<double> Scaled(Count);
  std::vector<size_t> Small, Large;
  for (size_t Index = 0; Index < Count; ++Index) {
    Scaled[Index] = Normalized[Index] * double(Count);
    (Scaled[Index] < 1.0 ? Small : Large).push_back(Index);
  }
  while (!Small.empty() && !Large.empty()) {
    size_t Less = Small.back();
    Small.pop_back();
    size_t More = Large.back();
    Large.pop_back();
    Probability[Less] = Scaled[Less];
    Alias[Less] = More;
    Scaled[More] = (Scaled[More] + Scaled[Less]) - 1.0;
    (Scaled[More] < 1.0 ? Small : Large).push_back(More);
  }
  for (size_t Index : Large)
    Probability[Index] = 1.0;
  for (size_t Index : Small)
    Probability[Index] = 1.0; // numerical leftovers
}

size_t AliasTable::sample(RandomSource &Source) const {
  // One uniform supplies both the cell choice and the accept/alias draw.
  const double Value = Source.nextUniform() * double(Probability.size());
  size_t Cell = size_t(Value);
  if (Cell >= Probability.size()) // guard the Value == size() edge
    Cell = Probability.size() - 1;
  const double Fraction = Value - double(Cell);
  return Fraction < Probability[Cell] ? Cell : Alias[Cell];
}

double AliasTable::probabilityOf(size_t Index) const {
  assert(Index < Normalized.size() && "outcome index out of range");
  return Normalized[Index];
}

} // namespace parmonc
