//===- rng/Lcg128.cpp - The paper's 128-bit congruential RNG -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"
#include "parmonc/rng/LeapWindow.h"
#include "parmonc/rng/SimdKernels.h"

namespace parmonc {

UInt128 Lcg128::defaultMultiplier() {
  // A = 5^101 (mod 2^128). The odd exponent makes A ≡ 5 (mod 8), the
  // maximal-period class; computed once on first use.
  static const UInt128 Multiplier =
      UInt128::powModPow2(UInt128(5), UInt128(101), 128);
  return Multiplier;
}

namespace {

/// True when the wide kernel TU is executable on this CPU. Probed once;
/// when false every batch entry point runs the four-lane oracle instead.
bool wideKernelEngaged() {
  static const bool Engaged = rngsimd::runtimeSupportsCompiledBackend();
  return Engaged;
}

/// Below this batch size the wide kernel's lane setup (eleven scalar
/// 128-bit multiplies) is not worth amortizing; the four-lane path wins.
constexpr size_t WideBatchThreshold = 2 * rngsimd::LaneCount;

/// The step constants of the four-lane interleave, derived once per batch
/// (or once per block-leap call — deriving them per block was the
/// re-interleave penalty BENCH_rng.json used to show).
struct FourLaneStep {
  UInt128 Squared;
  UInt128 Fourth;
  explicit FourLaneStep(UInt128 Multiplier)
      : Squared(Multiplier * Multiplier), Fourth(Squared * Squared) {}
};

/// The shared four-lane batch kernel. Emits u_{k+1} .. u_{k+Count} through
/// \p Emit(index, state) and leaves \p State at u_{k+Count}. Lane j holds
/// u_{k+1+4t+j} and steps by A^4, so the four 128-bit multiply chains are
/// independent and overlap in the pipeline; outputs are emitted in
/// sequence order, bit-equal to the scalar recurrence.
template <typename EmitFn>
void runBatchKernel(UInt128 &State, UInt128 Multiplier,
                    const FourLaneStep &Step, size_t Count, EmitFn &&Emit) {
  size_t Index = 0;
  if (Count >= 4) {
    UInt128 Lane0 = State * Multiplier;
    UInt128 Lane1 = State * Step.Squared;
    UInt128 Lane2 = Lane0 * Step.Squared;
    UInt128 Lane3 = State * Step.Fourth;
    for (;;) {
      Emit(Index + 0, Lane0);
      Emit(Index + 1, Lane1);
      Emit(Index + 2, Lane2);
      Emit(Index + 3, Lane3);
      Index += 4;
      if (Index + 4 > Count)
        break;
      Lane0 = Lane0 * Step.Fourth;
      Lane1 = Lane1 * Step.Fourth;
      Lane2 = Lane2 * Step.Fourth;
      Lane3 = Lane3 * Step.Fourth;
    }
    State = Lane3; // u_{k+Index}: the last full-quad output
  }
  for (; Index < Count; ++Index) {
    State = State * Multiplier;
    Emit(Index, State);
  }
}

} // namespace

void Lcg128::skip(UInt128 Steps) {
  if (Multiplier == defaultMultiplier()) {
    // Shared across all default-multiplier generators; function-local
    // statics are initialized thread-safely and pow() is read-only.
    static const PowerWindow DefaultWindow(defaultMultiplier(), 128);
    State = State * DefaultWindow.pow(Steps);
    return;
  }
  State = State * UInt128::powModPow2(Multiplier, Steps, 128);
}

const char *Lcg128::batchKernelName() {
  if (!wideKernelEngaged())
    return "four-lane";
  if (rngsimd::CompiledBackend == rngsimd::Backend::Scalar)
    return "scalar-wide";
  return rngsimd::backendName(rngsimd::CompiledBackend);
}

void Lcg128::fillBatch(double *Out, size_t Count) {
  if (Count >= WideBatchThreshold && wideKernelEngaged()) {
    UInt128 Current = state();
    rngsimd::fillBatchWide(Current, multiplier(), Out, Count);
    setState(Current);
    return;
  }
  fillBatchFourLane(Out, Count);
}

void Lcg128::fillBatchBits64(uint64_t *Out, size_t Count) {
  if (Count >= WideBatchThreshold && wideKernelEngaged()) {
    UInt128 Current = state();
    rngsimd::fillBatchBits64Wide(Current, multiplier(), Out, Count);
    setState(Current);
    return;
  }
  fillBatchBits64FourLane(Out, Count);
}

void Lcg128::fillBlockLeap(double *Out, size_t BlockCount,
                           size_t DrawsPerBlock, UInt128 LeapMultiplier) {
  PARMONC_ASSERT(LeapMultiplier.bit(0),
                 "block-leap multiplier must be odd (a power of A)");
  if (BlockCount >= rngsimd::LaneCount && DrawsPerBlock > 0 &&
      wideKernelEngaged()) {
    UInt128 Current = state();
    rngsimd::fillBlockLeapWide(Current, multiplier(), Out, BlockCount,
                               DrawsPerBlock, LeapMultiplier);
    setState(Current);
    return;
  }
  fillBlockLeapFourLane(Out, BlockCount, DrawsPerBlock, LeapMultiplier);
}

void Lcg128::fillBatchFourLane(double *Out, size_t Count) {
  UInt128 Current = state();
  const FourLaneStep Step(multiplier());
  runBatchKernel(Current, multiplier(), Step, Count,
                 [Out](size_t Index, UInt128 Value) {
                   Out[Index] = bitsToUnitOpen(Value.high());
                 });
  setState(Current);
}

void Lcg128::fillBatchBits64FourLane(uint64_t *Out, size_t Count) {
  UInt128 Current = state();
  const FourLaneStep Step(multiplier());
  runBatchKernel(Current, multiplier(), Step, Count,
                 [Out](size_t Index, UInt128 Value) {
                   Out[Index] = Value.high();
                 });
  setState(Current);
}

void Lcg128::fillBlockLeapFourLane(double *Out, size_t BlockCount,
                                   size_t DrawsPerBlock,
                                   UInt128 LeapMultiplier) {
  // The auxiliary generator û_{m+1} = û_m * A(n) walks the block starts;
  // each block then runs the base recurrence from its own start, exactly
  // as a RealizationCursor + fillBatch pair would. The interleave
  // constants are hoisted out of the block loop.
  PARMONC_ASSERT(LeapMultiplier.bit(0),
                 "block-leap multiplier must be odd (a power of A)");
  UInt128 BlockStart = state();
  const FourLaneStep Step(multiplier());
  for (size_t Block = 0; Block < BlockCount; ++Block) {
    UInt128 Current = BlockStart;
    runBatchKernel(Current, multiplier(), Step, DrawsPerBlock,
                   [Out, Block, DrawsPerBlock](size_t Index, UInt128 Value) {
                     Out[Block * DrawsPerBlock + Index] =
                         bitsToUnitOpen(Value.high());
                   });
    BlockStart = BlockStart * LeapMultiplier;
  }
  setState(BlockStart);
}

LcgPow2 LcgPow2::makeClassic40() {
  return LcgPow2(40, UInt128::powModPow2(UInt128(5), UInt128(17), 40));
}

} // namespace parmonc
