//===- rng/Lcg128.cpp - The paper's 128-bit congruential RNG -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"

namespace parmonc {

UInt128 Lcg128::defaultMultiplier() {
  // A = 5^101 (mod 2^128). The odd exponent makes A ≡ 5 (mod 8), the
  // maximal-period class; computed once on first use.
  static const UInt128 Multiplier =
      UInt128::powModPow2(UInt128(5), UInt128(101), 128);
  return Multiplier;
}

namespace {

/// The shared four-lane batch kernel. Emits u_{k+1} .. u_{k+Count} through
/// \p Emit(index, state) and leaves \p State at u_{k+Count}. Lane j holds
/// u_{k+1+4t+j} and steps by A^4, so the four 128-bit multiply chains are
/// independent and overlap in the pipeline; outputs are emitted in
/// sequence order, bit-equal to the scalar recurrence.
template <typename EmitFn>
void runBatchKernel(UInt128 &State, UInt128 Multiplier, size_t Count,
                    EmitFn &&Emit) {
  size_t Index = 0;
  if (Count >= 4) {
    const UInt128 MulSquared = Multiplier * Multiplier;
    const UInt128 MulFourth = MulSquared * MulSquared;
    UInt128 Lane0 = State * Multiplier;
    UInt128 Lane1 = State * MulSquared;
    UInt128 Lane2 = Lane0 * MulSquared;
    UInt128 Lane3 = State * MulFourth;
    for (;;) {
      Emit(Index + 0, Lane0);
      Emit(Index + 1, Lane1);
      Emit(Index + 2, Lane2);
      Emit(Index + 3, Lane3);
      Index += 4;
      if (Index + 4 > Count)
        break;
      Lane0 = Lane0 * MulFourth;
      Lane1 = Lane1 * MulFourth;
      Lane2 = Lane2 * MulFourth;
      Lane3 = Lane3 * MulFourth;
    }
    State = Lane3; // u_{k+Index}: the last full-quad output
  }
  for (; Index < Count; ++Index) {
    State = State * Multiplier;
    Emit(Index, State);
  }
}

} // namespace

void Lcg128::fillBatch(double *Out, size_t Count) {
  UInt128 Current = state();
  runBatchKernel(Current, multiplier(), Count,
                 [Out](size_t Index, UInt128 Value) {
                   Out[Index] = bitsToUnitOpen(Value.high());
                 });
  setState(Current);
}

void Lcg128::fillBatchBits64(uint64_t *Out, size_t Count) {
  UInt128 Current = state();
  runBatchKernel(Current, multiplier(), Count,
                 [Out](size_t Index, UInt128 Value) {
                   Out[Index] = Value.high();
                 });
  setState(Current);
}

void Lcg128::fillBlockLeap(double *Out, size_t BlockCount,
                           size_t DrawsPerBlock, UInt128 LeapMultiplier) {
  // The auxiliary generator û_{m+1} = û_m * A(n) walks the block starts;
  // each block then runs the base recurrence from its own start, exactly
  // as a RealizationCursor + fillBatch pair would, without reloading the
  // multiplier or re-entering per block.
  PARMONC_ASSERT(LeapMultiplier.bit(0),
                 "block-leap multiplier must be odd (a power of A)");
  UInt128 BlockStart = state();
  for (size_t Block = 0; Block < BlockCount; ++Block) {
    UInt128 Current = BlockStart;
    runBatchKernel(Current, multiplier(), DrawsPerBlock,
                   [Out, Block, DrawsPerBlock](size_t Index, UInt128 Value) {
                     Out[Block * DrawsPerBlock + Index] =
                         bitsToUnitOpen(Value.high());
                   });
    BlockStart = BlockStart * LeapMultiplier;
  }
  setState(BlockStart);
}

LcgPow2 LcgPow2::makeClassic40() {
  return LcgPow2(40, UInt128::powModPow2(UInt128(5), UInt128(17), 40));
}

} // namespace parmonc
