//===- rng/Lcg128.cpp - The paper's 128-bit congruential RNG -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Lcg128.h"
#include "parmonc/rng/LcgPow2.h"

namespace parmonc {

UInt128 Lcg128::defaultMultiplier() {
  // A = 5^101 (mod 2^128). The odd exponent makes A ≡ 5 (mod 8), the
  // maximal-period class; computed once on first use.
  static const UInt128 Multiplier =
      UInt128::powModPow2(UInt128(5), UInt128(101), 128);
  return Multiplier;
}

LcgPow2 LcgPow2::makeClassic40() {
  return LcgPow2(40, UInt128::powModPow2(UInt128(5), UInt128(17), 40));
}

} // namespace parmonc
