//===- rng/LeapWindow.cpp - Windowed leap-ahead power table ---------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/LeapWindow.h"

#include "parmonc/support/Contract.h"

namespace parmonc {

PowerWindow::PowerWindow(UInt128 Base, unsigned ModulusBits)
    : BaseValue(Base), Bits(ModulusBits) {
  PARMONC_ASSERT(ModulusBits >= 1 && ModulusBits <= 128,
                 "power-window modulus must be 2^1 .. 2^128");
  // Row k is the geometric progression of Radix = Base^(16^k); the last
  // entry times Radix rolls the radix forward to the next row.
  UInt128 Radix = UInt128::truncateToBits(Base, Bits);
  for (unsigned Row = 0; Row < DigitCount; ++Row) {
    Table[Row][0] = UInt128(1);
    for (unsigned Digit = 1; Digit < DigitRange; ++Digit)
      Table[Row][Digit] =
          UInt128::truncateToBits(Table[Row][Digit - 1] * Radix, Bits);
    Radix = UInt128::truncateToBits(Table[Row][DigitRange - 1] * Radix, Bits);
  }
}

UInt128 PowerWindow::pow(UInt128 Exponent) const {
  UInt128 Result(1);
  for (unsigned Row = 0; Row < DigitCount; ++Row) {
    const unsigned Digit =
        unsigned((Exponent >> (Row * WindowBits)).low()) & (DigitRange - 1);
    if (Digit != 0)
      Result = UInt128::truncateToBits(Result * Table[Row][Digit], Bits);
  }
  return Result;
}

} // namespace parmonc
