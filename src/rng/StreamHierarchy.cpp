//===- rng/StreamHierarchy.cpp - Leap-ahead stream partition -------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/StreamHierarchy.h"

#include "parmonc/support/Contract.h"
#include "parmonc/support/Text.h"

#include <algorithm>
#include <utility>

namespace parmonc {

Status LeapConfig::validate() const {
  if (ExperimentLog2 >= Lcg128::UsableLog2)
    return invalidArgument(
        "experiment leap 2^" + std::to_string(ExperimentLog2) +
        " must be smaller than the usable period half 2^" +
        std::to_string(Lcg128::UsableLog2));
  if (ProcessorLog2 >= ExperimentLog2)
    return invalidArgument("processor leap 2^" +
                           std::to_string(ProcessorLog2) +
                           " must be smaller than experiment leap 2^" +
                           std::to_string(ExperimentLog2));
  if (RealizationLog2 >= ProcessorLog2)
    return invalidArgument("realization leap 2^" +
                           std::to_string(RealizationLog2) +
                           " must be smaller than processor leap 2^" +
                           std::to_string(ProcessorLog2));
  if (RealizationLog2 == 0)
    return invalidArgument("realization leap must be at least 2^1");
  return Status::ok();
}

LeapTable::LeapTable(UInt128 Multiplier, const LeapConfig &Config)
    : Config(Config), BaseMultiplier(Multiplier),
      BaseWindow(std::make_shared<const PowerWindow>(Multiplier, 128)) {
  PARMONC_ASSERT(Config.validate().isOk(), "invalid leap configuration");
  PARMONC_ASSERT(Multiplier.low() % 8 == 5,
                 "base multiplier must be congruent to 5 mod 8");
  // A power-of-two exponent has one nonzero radix-16 digit, so each leap
  // multiplier is a single table lookup once the window exists.
  ExperimentLeap =
      BaseWindow->pow(UInt128::powerOfTwo(Config.ExperimentLog2));
  ProcessorLeap = BaseWindow->pow(UInt128::powerOfTwo(Config.ProcessorLog2));
  RealizationLeap =
      BaseWindow->pow(UInt128::powerOfTwo(Config.RealizationLog2));
  // Leap composition (eq. 6–8): A(n) = A^n implies the processor leap is
  // the realization leap raised to 2^(np-nr), and likewise one level up.
  // If this ever fails, the three levels no longer nest and "disjoint"
  // subsequences overlap.
  PARMONC_DCHECK(
      ProcessorLeap ==
          UInt128::powModPow2(
              RealizationLeap,
              UInt128::powerOfTwo(Config.ProcessorLog2 -
                                  Config.RealizationLog2),
              128),
      "leap composition broken: A(n_p) != A(n_r)^(n_p/n_r)");
  PARMONC_DCHECK(
      ExperimentLeap ==
          UInt128::powModPow2(
              ProcessorLeap,
              UInt128::powerOfTwo(Config.ExperimentLog2 -
                                  Config.ProcessorLog2),
              128),
      "leap composition broken: A(n_e) != A(n_p)^(n_e/n_p)");
}

std::string LeapTable::toFileContents() const {
  // Keep the format line-oriented and self-describing; hex for multipliers
  // because that round-trips trivially and matches how Dyadkin & Hamilton
  // publish them.
  std::string Text;
  Text += "# PARMONC leap multipliers A(n) = A^n (mod 2^128)\n";
  Text += "base " + BaseMultiplier.toHexString() + "\n";
  Text += "ne " + std::to_string(Config.ExperimentLog2) + " " +
          ExperimentLeap.toHexString() + "\n";
  Text += "np " + std::to_string(Config.ProcessorLog2) + " " +
          ProcessorLeap.toHexString() + "\n";
  Text += "nr " + std::to_string(Config.RealizationLog2) + " " +
          RealizationLeap.toHexString() + "\n";
  return Text;
}

Result<LeapTable> LeapTable::fromFileContents(std::string_view Contents) {
  UInt128 Base;
  bool HaveBase = false;
  LeapConfig Config;
  bool HaveNe = false, HaveNp = false, HaveNr = false;

  for (std::string_view Line : splitChar(Contents, '\n')) {
    std::string_view Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    auto Fields = splitWhitespace(Stripped);
    if (Fields[0] == "base") {
      if (Fields.size() != 2)
        return parseError("malformed 'base' line in genparam file");
      Result<UInt128> Parsed = UInt128::fromHexString(Fields[1]);
      if (!Parsed)
        return Parsed.status();
      Base = Parsed.value();
      HaveBase = true;
      continue;
    }
    if (Fields[0] == "ne" || Fields[0] == "np" || Fields[0] == "nr") {
      if (Fields.size() != 3)
        return parseError("malformed '" + std::string(Fields[0]) +
                          "' line in genparam file");
      Result<uint64_t> Exponent = parseUInt64(Fields[1]);
      if (!Exponent)
        return Exponent.status();
      if (Exponent.value() >= 128)
        return parseError("leap exponent out of range in genparam file");
      // The multiplier column is informative; it is revalidated below.
      if (Fields[0] == "ne") {
        Config.ExperimentLog2 = unsigned(Exponent.value());
        HaveNe = true;
      } else if (Fields[0] == "np") {
        Config.ProcessorLog2 = unsigned(Exponent.value());
        HaveNp = true;
      } else {
        Config.RealizationLog2 = unsigned(Exponent.value());
        HaveNr = true;
      }
      continue;
    }
    return parseError("unknown genparam directive '" + std::string(Fields[0]) +
                      "'");
  }

  if (!HaveBase || !HaveNe || !HaveNp || !HaveNr)
    return parseError("genparam file is missing base/ne/np/nr entries");
  if (Status Valid = Config.validate(); !Valid)
    return Valid;
  if (Base.low() % 8 != 5)
    return parseError("genparam base multiplier is not 5 mod 8");

  // Recompute the leaps from (base, exponents): a corrupted multiplier
  // column can then never produce overlapping streams.
  return LeapTable(Base, Config);
}

Result<LeapTable> LeapTable::loadOrDefault(const std::string &Path) {
  if (!fileExists(Path))
    return LeapTable();
  Result<std::string> Contents = readFileToString(Path);
  if (!Contents)
    return Contents.status();
  return fromFileContents(Contents.value());
}

UInt128 StreamHierarchy::initialNumber(const StreamCoordinates &Where) const {
  const LeapConfig &Config = Table.config();
  // Out-of-capacity indices wrap into a *different* subsequence of the
  // general sequence — results would be statistically valid-looking but
  // correlated with another stream, so these are always-on contracts.
  PARMONC_ASSERT(Where.Experiment <
                     (uint64_t(1) << std::min(Config.maxExperimentsLog2(),
                                              63u)),
                 "experiment index exceeds hierarchy capacity");
  PARMONC_ASSERT(Where.Processor <
                     (uint64_t(1) << std::min(Config.maxProcessorsLog2(),
                                              63u)),
                 "processor index exceeds hierarchy capacity");
  PARMONC_ASSERT(Where.Realization <
                     (uint64_t(1) << std::min(Config.maxRealizationsLog2(),
                                              63u)),
                 "realization index exceeds hierarchy capacity");

  // The three per-level powers collapse into one window query:
  //   A(n_e)^e · A(n_p)^p · A(n_r)^k = A^(e·2^ne + p·2^np + k·2^nr),
  // and the combined exponent is the stream's position in the general
  // sequence, which the capacity contracts above keep below 2^126 — no
  // wraparound, so the single windowed power is exactly the old triple
  // square-and-multiply product at a fraction of the multiplies.
  const UInt128 Position =
      (UInt128(Where.Experiment) << Config.ExperimentLog2) +
      (UInt128(Where.Processor) << Config.ProcessorLog2) +
      (UInt128(Where.Realization) << Config.RealizationLog2);
  return Table.powerOfBase(Position);
}

Lcg128 StreamHierarchy::makeStream(const StreamCoordinates &Where) const {
  if (StreamsIssued)
    StreamsIssued->add();
  return Lcg128(Table.baseMultiplier(), initialNumber(Where));
}

void StreamHierarchy::attachMetrics(obs::MetricsRegistry &Registry) {
  StreamsIssued = &Registry.counter("rng.streams_issued");
}

} // namespace parmonc
