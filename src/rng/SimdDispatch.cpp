//===- rng/SimdDispatch.cpp - Host probing for the SIMD kernel TU ---------===//
//
// Part of the PARMONC reproduction library.
//
// Compiled with the project's default flags, never with the PARMONC_SIMD
// target flags — everything here must be executable on any host so that
// Lcg128 can decide whether the kernels in SimdKernels.cpp are safe to
// call. CompiledBackend itself is data (constant-initialized in the
// kernel TU), so reading it here executes no kernel-TU code.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/SimdKernels.h"

namespace parmonc {
namespace rngsimd {

const char *backendName(Backend Which) {
  switch (Which) {
  case Backend::Avx512:
    return "avx512";
  case Backend::Avx2:
    return "avx2";
  case Backend::Scalar:
    return "scalar";
  }
  return "unknown";
}

bool runtimeSupportsCompiledBackend() {
  switch (CompiledBackend) {
  case Backend::Scalar:
    return true;
  case Backend::Avx2:
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  case Backend::Avx512:
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
#else
    return false;
#endif
  }
  return false;
}

} // namespace rngsimd
} // namespace parmonc
