//===- rng/Baselines.cpp - Comparison generators --------------------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Baselines.h"

namespace parmonc {

Xoshiro256StarStar::Xoshiro256StarStar(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (uint64_t &Word : State)
    Word = Seeder.nextBits64();
}

Philox4x32::Philox4x32(uint64_t KeySeed) {
  Key[0] = uint32_t(KeySeed);
  Key[1] = uint32_t(KeySeed >> 32);
}

static uint32_t mulHi32(uint32_t A, uint32_t B) {
  return uint32_t((uint64_t(A) * uint64_t(B)) >> 32);
}

void Philox4x32::generateBlock() {
  // Round constants from Salmon et al., SC'11.
  constexpr uint32_t MultiplierA = 0xD2511F53u;
  constexpr uint32_t MultiplierB = 0xCD9E8D57u;
  constexpr uint32_t KeyBumpA = 0x9E3779B9u; // golden ratio
  constexpr uint32_t KeyBumpB = 0xBB67AE85u; // sqrt(3) - 1

  uint32_t X0 = Counter[0], X1 = Counter[1], X2 = Counter[2], X3 = Counter[3];
  uint32_t K0 = Key[0], K1 = Key[1];
  for (unsigned Round = 0; Round < 10; ++Round) {
    const uint32_t HighA = mulHi32(MultiplierA, X0);
    const uint32_t LowA = MultiplierA * X0;
    const uint32_t HighB = mulHi32(MultiplierB, X2);
    const uint32_t LowB = MultiplierB * X2;
    const uint32_t Y0 = HighB ^ X1 ^ K0;
    const uint32_t Y1 = LowB;
    const uint32_t Y2 = HighA ^ X3 ^ K1;
    const uint32_t Y3 = LowA;
    X0 = Y0;
    X1 = Y1;
    X2 = Y2;
    X3 = Y3;
    K0 += KeyBumpA;
    K1 += KeyBumpB;
  }
  Block[0] = X0;
  Block[1] = X1;
  Block[2] = X2;
  Block[3] = X3;

  // 128-bit counter increment.
  for (uint32_t &Word : Counter) {
    if (++Word != 0)
      break;
  }
  NextWord = 0;
}

uint64_t Philox4x32::nextBits64() {
  if (NextWord >= 3) {
    // Fewer than two words left; discard the remainder and refill so every
    // 64-bit output comes from one block.
    generateBlock();
  }
  uint64_t Low = Block[NextWord];
  uint64_t High = Block[NextWord + 1];
  NextWord += 2;
  return (High << 32) | Low;
}

void Philox4x32::seekToBlock(uint64_t BlockIndex) {
  Counter[0] = uint32_t(BlockIndex);
  Counter[1] = uint32_t(BlockIndex >> 32);
  Counter[2] = 0;
  Counter[3] = 0;
  NextWord = 4;
}

} // namespace parmonc
