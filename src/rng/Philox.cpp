//===- rng/Philox.cpp - Counter-based production generator ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/Philox.h"

#include "parmonc/support/Contract.h"

#include <algorithm>

namespace parmonc {

namespace {

inline uint32_t mulHi32(uint32_t A, uint32_t B) {
  return uint32_t((uint64_t(A) * uint64_t(B)) >> 32);
}

} // namespace

void Philox::computeBlock(UInt128 BlockIndex) {
  // Round constants from Salmon et al., SC'11 (the Random123 reference).
  constexpr uint32_t MultiplierA = 0xD2511F53u;
  constexpr uint32_t MultiplierB = 0xCD9E8D57u;
  constexpr uint32_t KeyBumpA = 0x9E3779B9u; // golden ratio
  constexpr uint32_t KeyBumpB = 0xBB67AE85u; // sqrt(3) - 1

  uint32_t X0 = uint32_t(BlockIndex.low());
  uint32_t X1 = uint32_t(BlockIndex.low() >> 32);
  uint32_t X2 = uint32_t(BlockIndex.high());
  uint32_t X3 = uint32_t(BlockIndex.high() >> 32);
  uint32_t K0 = KeyLo, K1 = KeyHi;
  for (unsigned Round = 0; Round < 10; ++Round) {
    const uint32_t HighA = mulHi32(MultiplierA, X0);
    const uint32_t LowA = MultiplierA * X0;
    const uint32_t HighB = mulHi32(MultiplierB, X2);
    const uint32_t LowB = MultiplierB * X2;
    X0 = HighB ^ X1 ^ K0;
    X1 = LowB;
    X2 = HighA ^ X3 ^ K1;
    X3 = LowA;
    K0 += KeyBumpA;
    K1 += KeyBumpB;
  }
  Cached[0] = (uint64_t(X1) << 32) | X0;
  Cached[1] = (uint64_t(X3) << 32) | X2;
  CachedBlock = BlockIndex;
  CacheValid = true;
}

uint64_t Philox::nextBits64() {
  const UInt128 Block = Position >> 1;
  const unsigned Word = unsigned(Position.low() & 1);
  if (!CacheValid || CachedBlock != Block)
    computeBlock(Block);
  Position += UInt128(1);
  return Cached[Word];
}

void Philox::fillUniforms(double *Out, size_t Count) {
  size_t Index = 0;
  // Enter at a block boundary: at most one scalar draw.
  while (Index < Count && (Position.low() & 1) != 0)
    Out[Index++] = nextUniform();
  // Whole blocks straight into the output. The block function is the same
  // bijection the scalar path runs, so the stream is bit-identical.
  while (Index + DrawsPerBlock <= Count) {
    computeBlock(Position >> 1);
    Out[Index + 0] = bitsToUnitOpen(Cached[0]);
    Out[Index + 1] = bitsToUnitOpen(Cached[1]);
    Position += UInt128(DrawsPerBlock);
    Index += DrawsPerBlock;
  }
  while (Index < Count)
    Out[Index++] = nextUniform();
}

void Philox::seek(UInt128 DrawIndex) {
  Position = DrawIndex;
  // The cache stays valid: nextBits64 re-derives block/word from the
  // position and recomputes on mismatch.
}

Philox Philox::streamFor(const StreamCoordinates &Where,
                         const LeapConfig &Config, uint64_t Key) {
  PARMONC_ASSERT(Config.validate().isOk(), "invalid leap configuration");
  // The same always-on capacity contracts as StreamHierarchy: an index
  // past its level's capacity would land inside a sibling's counter
  // interval, silently correlating "independent" streams.
  PARMONC_ASSERT(Where.Experiment <
                     (uint64_t(1)
                      << std::min(Config.maxExperimentsLog2(), 63u)),
                 "experiment index exceeds hierarchy capacity");
  PARMONC_ASSERT(Where.Processor <
                     (uint64_t(1)
                      << std::min(Config.maxProcessorsLog2(), 63u)),
                 "processor index exceeds hierarchy capacity");
  PARMONC_ASSERT(Where.Realization <
                     (uint64_t(1)
                      << std::min(Config.maxRealizationsLog2(), 63u)),
                 "realization index exceeds hierarchy capacity");
  Philox Stream(Key);
  Stream.seek((UInt128(Where.Experiment) << Config.ExperimentLog2) +
              (UInt128(Where.Processor) << Config.ProcessorLog2) +
              (UInt128(Where.Realization) << Config.RealizationLog2));
  return Stream;
}

} // namespace parmonc
