//===- rng/SimdKernels.cpp - Wide-interleave batch kernels ----------------===//
//
// Part of the PARMONC reproduction library.
//
// This is the ONLY translation unit compiled with the instruction-set
// flags chosen by the PARMONC_SIMD CMake option. Everything callable from
// arbitrary hosts (backendName, runtimeSupportsCompiledBackend) lives in
// SimdDispatch.cpp instead; the single symbol exported from here besides
// the kernels is `CompiledBackend`, whose initializer is a constant — no
// code from this TU executes just to *read* which backend was built.
//
// All three backends share one decomposition of the recurrence step
// u <- u * M (mod 2^128) over 64-bit limbs (u = Hi·2^64 + Lo,
// M = mH·2^64 + mL):
//
//   newLo = lo64(Lo·mL)
//   newHi = hi64(Lo·mL) + lo64(Lo·mH) + lo64(Hi·mL)
//
// hi64/lo64 of a 64x64 product are in turn decomposed over 32-bit halves
// so every vector product fits the 32x32->64 multiply (vpmuludq); the
// carry discipline is the classic no-overflow mulhi schoolbook (every
// partial sum stays < 2^64). See docs/RNG.md#kernel-paths for the proof
// sketch and the bit-equality contract these kernels are tested against.
//
//===----------------------------------------------------------------------===//

#include "parmonc/rng/SimdKernels.h"

#include "parmonc/rng/RandomSource.h"

#include <array>

#if !defined(PARMONC_SIMD_FORCE_SCALAR) && defined(__AVX512F__) &&             \
    defined(__AVX512DQ__)
#define PARMONC_SIMD_BACKEND_AVX512 1
#elif !defined(PARMONC_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define PARMONC_SIMD_BACKEND_AVX2 1
#else
#define PARMONC_SIMD_BACKEND_SCALAR 1
#endif

#if defined(PARMONC_SIMD_BACKEND_AVX512) || defined(PARMONC_SIMD_BACKEND_AVX2)
#include <immintrin.h>
#endif

namespace parmonc {
namespace rngsimd {

const Backend CompiledBackend =
#if defined(PARMONC_SIMD_BACKEND_AVX512)
    Backend::Avx512;
#elif defined(PARMONC_SIMD_BACKEND_AVX2)
    Backend::Avx2;
#else
    Backend::Scalar;
#endif

namespace {

/// Lane starts for a \p Width-wide interleave — Lane[j] = State·M^(j+1) —
/// plus the per-iteration step M^Width. Scalar UInt128 setup, amortized
/// over the whole batch. \p Width may exceed the exported LaneCount: the
/// interleave width is internal to each kernel (outputs are emitted in
/// sequence order whatever the width), and the AVX-512 batch kernels run
/// extra register groups to hide vector-multiply latency.
template <size_t Width> struct LaneSetup {
  std::array<UInt128, Width> Lane;
  UInt128 Step;
};

template <size_t Width>
LaneSetup<Width> makeLaneSetup(UInt128 State, UInt128 Multiplier) {
  static_assert(Width >= 8 && (Width & (Width - 1)) == 0,
                "lane widths are powers of two");
  LaneSetup<Width> Setup;
  const UInt128 Squared = Multiplier * Multiplier;
  const UInt128 Fourth = Squared * Squared;
  // Tree-shaped lane derivation: critical path of log2(Width) serial
  // multiplies instead of Width.
  Setup.Lane[0] = State * Multiplier;
  Setup.Lane[1] = State * Squared;
  Setup.Lane[2] = Setup.Lane[0] * Squared;
  Setup.Lane[3] = State * Fourth;
  Setup.Lane[4] = Setup.Lane[0] * Fourth;
  Setup.Lane[5] = Setup.Lane[1] * Fourth;
  Setup.Lane[6] = Setup.Lane[2] * Fourth;
  Setup.Lane[7] = Setup.Lane[3] * Fourth;
  UInt128 Power = Fourth * Fourth; // M^8
  for (size_t Filled = 8; Filled < Width; Filled *= 2) {
    for (size_t J = 0; J < Filled; ++J)
      Setup.Lane[Filled + J] = Setup.Lane[J] * Power;
    Power = Power * Power;
  }
  Setup.Step = Power;
  return Setup;
}

/// Serial tail shared by every backend: runs the plain recurrence for the
/// draws past the last full lane group.
inline void serialTail(UInt128 &State, UInt128 Multiplier, double *Out,
                       size_t Index, size_t Count) {
  for (; Index < Count; ++Index) {
    State = State * Multiplier;
    Out[Index] = bitsToUnitOpen(State.high());
  }
}

inline void serialTailBits64(UInt128 &State, UInt128 Multiplier,
                             uint64_t *Out, size_t Index, size_t Count) {
  for (; Index < Count; ++Index) {
    State = State * Multiplier;
    Out[Index] = State.high();
  }
}

} // namespace

#if defined(PARMONC_SIMD_BACKEND_AVX2)

namespace {

constexpr uint64_t Mask32 = 0xffffffffu;

/// A multiplier broadcast into the four 32-bit halves vpmuludq needs.
struct VecMultiplier {
  __m256i LoLo; ///< mL & 0xffffffff in every 64-bit lane
  __m256i LoHi; ///< mL >> 32
  __m256i HiLo; ///< mH & 0xffffffff
  __m256i HiHi; ///< mH >> 32
};

inline VecMultiplier broadcastMultiplier(UInt128 M) {
  return {_mm256_set1_epi64x(static_cast<long long>(M.low() & Mask32)),
          _mm256_set1_epi64x(static_cast<long long>(M.low() >> 32)),
          _mm256_set1_epi64x(static_cast<long long>(M.high() & Mask32)),
          _mm256_set1_epi64x(static_cast<long long>(M.high() >> 32))};
}

/// One recurrence step for four lanes held as {Lo, Hi} 64-bit limb
/// vectors: {Lo, Hi} <- {Lo, Hi}·M (mod 2^128). Ten vpmuludq per call —
/// the carry chains follow the no-overflow mulhi schoolbook, so every
/// 64-bit partial sum is exact.
inline void step4(__m256i &Lo, __m256i &Hi, const VecMultiplier &M) {
  const __m256i MaskV = _mm256_set1_epi64x(static_cast<long long>(Mask32));
  const __m256i U1 = _mm256_srli_epi64(Lo, 32);
  const __m256i H1 = _mm256_srli_epi64(Hi, 32);
  // hi64/lo64 of Lo·mL.
  const __m256i T = _mm256_mul_epu32(Lo, M.LoLo);
  const __m256i T1 =
      _mm256_add_epi64(_mm256_mul_epu32(U1, M.LoLo), _mm256_srli_epi64(T, 32));
  const __m256i T2 =
      _mm256_add_epi64(_mm256_mul_epu32(Lo, M.LoHi), _mm256_and_si256(T1, MaskV));
  const __m256i HiWide = _mm256_add_epi64(
      _mm256_mul_epu32(U1, M.LoHi),
      _mm256_add_epi64(_mm256_srli_epi64(T1, 32), _mm256_srli_epi64(T2, 32)));
  const __m256i LoWide =
      _mm256_or_si256(_mm256_slli_epi64(T2, 32), _mm256_and_si256(T, MaskV));
  // Cross terms, low 64 bits only: lo64(Lo·mH) + lo64(Hi·mL).
  const __m256i Cross1 = _mm256_add_epi64(
      _mm256_mul_epu32(Lo, M.HiLo),
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_mul_epu32(Lo, M.HiHi),
                                         _mm256_mul_epu32(U1, M.HiLo)),
                        32));
  const __m256i Cross2 = _mm256_add_epi64(
      _mm256_mul_epu32(Hi, M.LoLo),
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_mul_epu32(Hi, M.LoHi),
                                         _mm256_mul_epu32(H1, M.LoLo)),
                        32));
  Hi = _mm256_add_epi64(HiWide, _mm256_add_epi64(Cross1, Cross2));
  Lo = LoWide;
}

/// bitsToUnitOpen over four lanes, bit-exact against the scalar mapping:
/// v = Hi >> 12 < 2^52 converts exactly via the 2^52 exponent-bias trick,
/// then the identical (v + 0.5)·2^-52 IEEE operations run per lane.
inline __m256d toUnitOpen4(__m256i Hi) {
  const __m256i ExpBits = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i V = _mm256_or_si256(_mm256_srli_epi64(Hi, 12), ExpBits);
  const __m256d D =
      _mm256_sub_pd(_mm256_castsi256_pd(V), _mm256_set1_pd(0x1p52));
  return _mm256_mul_pd(_mm256_add_pd(D, _mm256_set1_pd(0.5)),
                       _mm256_set1_pd(0x1p-52));
}

inline __m256i loadLow4(const UInt128 *Lanes, size_t Base) {
  return _mm256_set_epi64x(static_cast<long long>(Lanes[Base + 3].low()),
                           static_cast<long long>(Lanes[Base + 2].low()),
                           static_cast<long long>(Lanes[Base + 1].low()),
                           static_cast<long long>(Lanes[Base + 0].low()));
}

inline __m256i loadHigh4(const UInt128 *Lanes, size_t Base) {
  return _mm256_set_epi64x(static_cast<long long>(Lanes[Base + 3].high()),
                           static_cast<long long>(Lanes[Base + 2].high()),
                           static_cast<long long>(Lanes[Base + 1].high()),
                           static_cast<long long>(Lanes[Base + 0].high()));
}

} // namespace

void fillBatchWide(UInt128 &State, UInt128 Multiplier, double *Out,
                   size_t Count) {
  size_t Index = 0;
  if (Count >= LaneCount) {
    const LaneSetup<LaneCount> Setup =
        makeLaneSetup<LaneCount>(State, Multiplier);
    const VecMultiplier Step = broadcastMultiplier(Setup.Step);
    // Four independent register groups: one group's step4 depends on its
    // own previous step4, so a lone group is latency-bound; four in
    // flight keep the vector multipliers saturated.
    __m256i Lo0 = loadLow4(Setup.Lane.data(), 0), Hi0 = loadHigh4(Setup.Lane.data(), 0);
    __m256i Lo1 = loadLow4(Setup.Lane.data(), 4), Hi1 = loadHigh4(Setup.Lane.data(), 4);
    __m256i Lo2 = loadLow4(Setup.Lane.data(), 8), Hi2 = loadHigh4(Setup.Lane.data(), 8);
    __m256i Lo3 = loadLow4(Setup.Lane.data(), 12), Hi3 = loadHigh4(Setup.Lane.data(), 12);
    for (;;) {
      _mm256_storeu_pd(Out + Index, toUnitOpen4(Hi0));
      _mm256_storeu_pd(Out + Index + 4, toUnitOpen4(Hi1));
      _mm256_storeu_pd(Out + Index + 8, toUnitOpen4(Hi2));
      _mm256_storeu_pd(Out + Index + 12, toUnitOpen4(Hi3));
      Index += LaneCount;
      if (Index + LaneCount > Count)
        break;
      step4(Lo0, Hi0, Step);
      step4(Lo1, Hi1, Step);
      step4(Lo2, Hi2, Step);
      step4(Lo3, Hi3, Step);
    }
    // Lane 15's last emitted value is u_{k+Index}.
    State = UInt128(static_cast<uint64_t>(_mm256_extract_epi64(Hi3, 3)),
                    static_cast<uint64_t>(_mm256_extract_epi64(Lo3, 3)));
  }
  serialTail(State, Multiplier, Out, Index, Count);
}

void fillBatchBits64Wide(UInt128 &State, UInt128 Multiplier, uint64_t *Out,
                         size_t Count) {
  size_t Index = 0;
  if (Count >= LaneCount) {
    const LaneSetup<LaneCount> Setup =
        makeLaneSetup<LaneCount>(State, Multiplier);
    const VecMultiplier Step = broadcastMultiplier(Setup.Step);
    __m256i Lo0 = loadLow4(Setup.Lane.data(), 0), Hi0 = loadHigh4(Setup.Lane.data(), 0);
    __m256i Lo1 = loadLow4(Setup.Lane.data(), 4), Hi1 = loadHigh4(Setup.Lane.data(), 4);
    __m256i Lo2 = loadLow4(Setup.Lane.data(), 8), Hi2 = loadHigh4(Setup.Lane.data(), 8);
    __m256i Lo3 = loadLow4(Setup.Lane.data(), 12), Hi3 = loadHigh4(Setup.Lane.data(), 12);
    for (;;) {
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + Index), Hi0);
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + Index + 4), Hi1);
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + Index + 8), Hi2);
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + Index + 12), Hi3);
      Index += LaneCount;
      if (Index + LaneCount > Count)
        break;
      step4(Lo0, Hi0, Step);
      step4(Lo1, Hi1, Step);
      step4(Lo2, Hi2, Step);
      step4(Lo3, Hi3, Step);
    }
    State = UInt128(static_cast<uint64_t>(_mm256_extract_epi64(Hi3, 3)),
                    static_cast<uint64_t>(_mm256_extract_epi64(Lo3, 3)));
  }
  serialTailBits64(State, Multiplier, Out, Index, Count);
}

void fillBlockLeapWide(UInt128 &State, UInt128 Multiplier, double *Out,
                       size_t BlockCount, size_t DrawsPerBlock,
                       UInt128 LeapMultiplier) {
  const VecMultiplier Step = broadcastMultiplier(Multiplier);
  size_t Block = 0;
  if (DrawsPerBlock > 0) {
    while (Block + LaneCount <= BlockCount) {
      // Lane j runs block Block+j from its own start State·Leap^j; each
      // lane steps by the *base* multiplier, so there is no per-block
      // re-interleave — the leap walk happens once per lane group.
      std::array<UInt128, LaneCount> Start;
      UInt128 Walk = State;
      for (size_t J = 0; J < LaneCount; ++J) {
        Start[J] = Walk;
        Walk = Walk * LeapMultiplier;
      }
      State = Walk; // start of block Block+LaneCount
      __m256i Lo0 = loadLow4(Start.data(), 0), Hi0 = loadHigh4(Start.data(), 0);
      __m256i Lo1 = loadLow4(Start.data(), 4), Hi1 = loadHigh4(Start.data(), 4);
      __m256i Lo2 = loadLow4(Start.data(), 8), Hi2 = loadHigh4(Start.data(), 8);
      __m256i Lo3 = loadLow4(Start.data(), 12), Hi3 = loadHigh4(Start.data(), 12);
      double *Base = Out + Block * DrawsPerBlock;
      alignas(32) double Tmp[LaneCount];
      for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw) {
        step4(Lo0, Hi0, Step);
        step4(Lo1, Hi1, Step);
        step4(Lo2, Hi2, Step);
        step4(Lo3, Hi3, Step);
        _mm256_store_pd(Tmp, toUnitOpen4(Hi0));
        _mm256_store_pd(Tmp + 4, toUnitOpen4(Hi1));
        _mm256_store_pd(Tmp + 8, toUnitOpen4(Hi2));
        _mm256_store_pd(Tmp + 12, toUnitOpen4(Hi3));
        for (size_t J = 0; J < LaneCount; ++J)
          Base[J * DrawsPerBlock + Draw] = Tmp[J];
      }
      Block += LaneCount;
    }
  }
  // Remainder blocks (and the DrawsPerBlock == 0 degenerate case) run the
  // serial recurrence per block.
  for (; Block < BlockCount; ++Block) {
    UInt128 Current = State;
    double *Base = Out + Block * DrawsPerBlock;
    for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw) {
      Current = Current * Multiplier;
      Base[Draw] = bitsToUnitOpen(Current.high());
    }
    State = State * LeapMultiplier;
  }
}

#elif defined(PARMONC_SIMD_BACKEND_AVX512)

namespace {

constexpr uint64_t Mask32 = 0xffffffffu;

/// Multiplier broadcasts: 32-bit halves of mL for the hi64 decomposition
/// plus full 64-bit mL/mH for the vpmullq cross terms.
struct VecMultiplier {
  __m512i LoLo; ///< mL & 0xffffffff in every lane
  __m512i LoHi; ///< mL >> 32
  __m512i MLo;  ///< mL (full 64 bits, for vpmullq)
  __m512i MHi;  ///< mH (full 64 bits, for vpmullq)
};

inline VecMultiplier broadcastMultiplier(UInt128 M) {
  return {_mm512_set1_epi64(static_cast<long long>(M.low() & Mask32)),
          _mm512_set1_epi64(static_cast<long long>(M.low() >> 32)),
          _mm512_set1_epi64(static_cast<long long>(M.low())),
          _mm512_set1_epi64(static_cast<long long>(M.high()))};
}

/// One recurrence step for all eight lanes in one register pair. AVX-512DQ
/// vpmullq covers the three lo64 products; only hi64(Lo·mL) needs the
/// 32-bit schoolbook (four vpmuludq).
inline void step8(__m512i &Lo, __m512i &Hi, const VecMultiplier &M) {
  const __m512i MaskV = _mm512_set1_epi64(static_cast<long long>(Mask32));
  const __m512i U1 = _mm512_srli_epi64(Lo, 32);
  const __m512i T = _mm512_mul_epu32(Lo, M.LoLo);
  const __m512i T1 =
      _mm512_add_epi64(_mm512_mul_epu32(U1, M.LoLo), _mm512_srli_epi64(T, 32));
  const __m512i T2 = _mm512_add_epi64(_mm512_mul_epu32(Lo, M.LoHi),
                                      _mm512_and_si512(T1, MaskV));
  const __m512i HiWide = _mm512_add_epi64(
      _mm512_mul_epu32(U1, M.LoHi),
      _mm512_add_epi64(_mm512_srli_epi64(T1, 32), _mm512_srli_epi64(T2, 32)));
  const __m512i NewHi = _mm512_add_epi64(
      HiWide, _mm512_add_epi64(_mm512_mullo_epi64(Lo, M.MHi),
                               _mm512_mullo_epi64(Hi, M.MLo)));
  Lo = _mm512_mullo_epi64(Lo, M.MLo);
  Hi = NewHi;
}

/// bitsToUnitOpen over eight lanes; vcvtuqq2pd is exact below 2^53, then
/// the scalar mapping's own (v + 0.5)·2^-52 runs per lane.
inline __m512d toUnitOpen8(__m512i Hi) {
  const __m512d D = _mm512_cvtepu64_pd(_mm512_srli_epi64(Hi, 12));
  return _mm512_mul_pd(_mm512_add_pd(D, _mm512_set1_pd(0.5)),
                       _mm512_set1_pd(0x1p-52));
}

inline __m512i loadLow8(const UInt128 *Lanes, size_t Base) {
  alignas(64) long long Limbs[8];
  for (size_t J = 0; J < 8; ++J)
    Limbs[J] = static_cast<long long>(Lanes[Base + J].low());
  return _mm512_load_si512(Limbs);
}

inline __m512i loadHigh8(const UInt128 *Lanes, size_t Base) {
  alignas(64) long long Limbs[8];
  for (size_t J = 0; J < 8; ++J)
    Limbs[J] = static_cast<long long>(Lanes[Base + J].high());
  return _mm512_load_si512(Limbs);
}

/// The AVX-512 batch kernels run four register groups (32 lanes) even
/// though LaneCount is 16: vpmullq has double-digit cycle latency, and
/// with only two groups in flight the loop is still latency-bound. The
/// interleave width is invisible to callers — outputs are in sequence
/// order either way — so the batch paths widen internally while the
/// block-leap kernel keeps the 16-block granularity.
constexpr size_t BatchWidth = 32;

inline UInt128 extractLastLane(__m512i Lo, __m512i Hi) {
  alignas(64) uint64_t LoLimbs[8];
  alignas(64) uint64_t HiLimbs[8];
  _mm512_store_si512(LoLimbs, Lo);
  _mm512_store_si512(HiLimbs, Hi);
  return UInt128(HiLimbs[7], LoLimbs[7]);
}

} // namespace

void fillBatchWide(UInt128 &State, UInt128 Multiplier, double *Out,
                   size_t Count) {
  size_t Index = 0;
  if (Count >= BatchWidth) {
    const LaneSetup<BatchWidth> Setup =
        makeLaneSetup<BatchWidth>(State, Multiplier);
    const VecMultiplier Step = broadcastMultiplier(Setup.Step);
    const UInt128 *Lanes = Setup.Lane.data();
    __m512i LoA = loadLow8(Lanes, 0), HiA = loadHigh8(Lanes, 0);
    __m512i LoB = loadLow8(Lanes, 8), HiB = loadHigh8(Lanes, 8);
    __m512i LoC = loadLow8(Lanes, 16), HiC = loadHigh8(Lanes, 16);
    __m512i LoD = loadLow8(Lanes, 24), HiD = loadHigh8(Lanes, 24);
    for (;;) {
      _mm512_storeu_pd(Out + Index, toUnitOpen8(HiA));
      _mm512_storeu_pd(Out + Index + 8, toUnitOpen8(HiB));
      _mm512_storeu_pd(Out + Index + 16, toUnitOpen8(HiC));
      _mm512_storeu_pd(Out + Index + 24, toUnitOpen8(HiD));
      Index += BatchWidth;
      if (Index + BatchWidth > Count)
        break;
      step8(LoA, HiA, Step);
      step8(LoB, HiB, Step);
      step8(LoC, HiC, Step);
      step8(LoD, HiD, Step);
    }
    State = extractLastLane(LoD, HiD);
  }
  serialTail(State, Multiplier, Out, Index, Count);
}

void fillBatchBits64Wide(UInt128 &State, UInt128 Multiplier, uint64_t *Out,
                         size_t Count) {
  size_t Index = 0;
  if (Count >= BatchWidth) {
    const LaneSetup<BatchWidth> Setup =
        makeLaneSetup<BatchWidth>(State, Multiplier);
    const VecMultiplier Step = broadcastMultiplier(Setup.Step);
    const UInt128 *Lanes = Setup.Lane.data();
    __m512i LoA = loadLow8(Lanes, 0), HiA = loadHigh8(Lanes, 0);
    __m512i LoB = loadLow8(Lanes, 8), HiB = loadHigh8(Lanes, 8);
    __m512i LoC = loadLow8(Lanes, 16), HiC = loadHigh8(Lanes, 16);
    __m512i LoD = loadLow8(Lanes, 24), HiD = loadHigh8(Lanes, 24);
    for (;;) {
      _mm512_storeu_si512(Out + Index, HiA);
      _mm512_storeu_si512(Out + Index + 8, HiB);
      _mm512_storeu_si512(Out + Index + 16, HiC);
      _mm512_storeu_si512(Out + Index + 24, HiD);
      Index += BatchWidth;
      if (Index + BatchWidth > Count)
        break;
      step8(LoA, HiA, Step);
      step8(LoB, HiB, Step);
      step8(LoC, HiC, Step);
      step8(LoD, HiD, Step);
    }
    State = extractLastLane(LoD, HiD);
  }
  serialTailBits64(State, Multiplier, Out, Index, Count);
}

void fillBlockLeapWide(UInt128 &State, UInt128 Multiplier, double *Out,
                       size_t BlockCount, size_t DrawsPerBlock,
                       UInt128 LeapMultiplier) {
  const VecMultiplier Step = broadcastMultiplier(Multiplier);
  size_t Block = 0;
  if (DrawsPerBlock > 0) {
    while (Block + LaneCount <= BlockCount) {
      std::array<UInt128, LaneCount> Start;
      UInt128 Walk = State;
      for (size_t J = 0; J < LaneCount; ++J) {
        Start[J] = Walk;
        Walk = Walk * LeapMultiplier;
      }
      State = Walk;
      __m512i LoA = loadLow8(Start.data(), 0), HiA = loadHigh8(Start.data(), 0);
      __m512i LoB = loadLow8(Start.data(), 8), HiB = loadHigh8(Start.data(), 8);
      double *Base = Out + Block * DrawsPerBlock;
      alignas(64) double Tmp[LaneCount];
      for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw) {
        step8(LoA, HiA, Step);
        step8(LoB, HiB, Step);
        _mm512_store_pd(Tmp, toUnitOpen8(HiA));
        _mm512_store_pd(Tmp + 8, toUnitOpen8(HiB));
        for (size_t J = 0; J < LaneCount; ++J)
          Base[J * DrawsPerBlock + Draw] = Tmp[J];
      }
      Block += LaneCount;
    }
  }
  for (; Block < BlockCount; ++Block) {
    UInt128 Current = State;
    double *Base = Out + Block * DrawsPerBlock;
    for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw) {
      Current = Current * Multiplier;
      Base[Draw] = bitsToUnitOpen(Current.high());
    }
    State = State * LeapMultiplier;
  }
}

#else // PARMONC_SIMD_BACKEND_SCALAR

void fillBatchWide(UInt128 &State, UInt128 Multiplier, double *Out,
                   size_t Count) {
  size_t Index = 0;
  if (Count >= LaneCount) {
    LaneSetup<LaneCount> Setup = makeLaneSetup<LaneCount>(State, Multiplier);
    for (;;) {
      for (size_t J = 0; J < LaneCount; ++J)
        Out[Index + J] = bitsToUnitOpen(Setup.Lane[J].high());
      Index += LaneCount;
      if (Index + LaneCount > Count)
        break;
      for (size_t J = 0; J < LaneCount; ++J)
        Setup.Lane[J] = Setup.Lane[J] * Setup.Step;
    }
    State = Setup.Lane[LaneCount - 1];
  }
  serialTail(State, Multiplier, Out, Index, Count);
}

void fillBatchBits64Wide(UInt128 &State, UInt128 Multiplier, uint64_t *Out,
                         size_t Count) {
  size_t Index = 0;
  if (Count >= LaneCount) {
    LaneSetup<LaneCount> Setup = makeLaneSetup<LaneCount>(State, Multiplier);
    for (;;) {
      for (size_t J = 0; J < LaneCount; ++J)
        Out[Index + J] = Setup.Lane[J].high();
      Index += LaneCount;
      if (Index + LaneCount > Count)
        break;
      for (size_t J = 0; J < LaneCount; ++J)
        Setup.Lane[J] = Setup.Lane[J] * Setup.Step;
    }
    State = Setup.Lane[LaneCount - 1];
  }
  serialTailBits64(State, Multiplier, Out, Index, Count);
}

void fillBlockLeapWide(UInt128 &State, UInt128 Multiplier, double *Out,
                       size_t BlockCount, size_t DrawsPerBlock,
                       UInt128 LeapMultiplier) {
  size_t Block = 0;
  if (DrawsPerBlock > 0) {
    while (Block + LaneCount <= BlockCount) {
      // Lane j runs block Block+j; each lane steps by the base multiplier,
      // so the leap walk is once per lane group, not once per block.
      std::array<UInt128, LaneCount> Lane;
      UInt128 Walk = State;
      for (size_t J = 0; J < LaneCount; ++J) {
        Lane[J] = Walk;
        Walk = Walk * LeapMultiplier;
      }
      State = Walk;
      double *Base = Out + Block * DrawsPerBlock;
      for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw)
        for (size_t J = 0; J < LaneCount; ++J) {
          Lane[J] = Lane[J] * Multiplier;
          Base[J * DrawsPerBlock + Draw] = bitsToUnitOpen(Lane[J].high());
        }
      Block += LaneCount;
    }
  }
  for (; Block < BlockCount; ++Block) {
    UInt128 Current = State;
    double *Base = Out + Block * DrawsPerBlock;
    for (size_t Draw = 0; Draw < DrawsPerBlock; ++Draw) {
      Current = Current * Multiplier;
      Base[Draw] = bitsToUnitOpen(Current.high());
    }
    State = State * LeapMultiplier;
  }
}

#endif // backend selection

} // namespace rngsimd
} // namespace parmonc
