//===- core/CheckpointBridge.cpp - Shard <-> snapshot glue ----------------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/CheckpointBridge.h"

#include <algorithm>
#include <utility>

namespace parmonc {

/// Parses and merges one fully loaded generation. Payload parse or merge
/// failures reject the generation as a whole, exactly like a CRC failure.
static Result<RecoveredCheckpoint>
mergeGeneration(ckpt::CheckpointStore::RestoredGeneration Generation) {
  Result<MomentSnapshot> Base =
      MomentSnapshot::fromFileContents(Generation.BaseBody);
  if (!Base)
    return Status(Base.status().code(),
                  "base shard of checkpoint generation " +
                      std::to_string(Generation.Source.Generation) + ": " +
                      Base.status().message());
  MomentSnapshot Merged = std::move(Base).value();

  // The store hands shards back in ascending rank order already; sort
  // defensively so the merge order — and with it the floating-point
  // result — never depends on manifest line order.
  std::sort(Generation.Shards.begin(), Generation.Shards.end(),
            [](const ckpt::CheckpointStore::RestoredShard &Left,
               const ckpt::CheckpointStore::RestoredShard &Right) {
              return Left.Rank < Right.Rank;
            });
  for (const ckpt::CheckpointStore::RestoredShard &Shard : Generation.Shards) {
    Result<MomentSnapshot> Part = MomentSnapshot::fromFileContents(Shard.Body);
    if (!Part)
      return Status(Part.status().code(),
                    "shard of rank " + std::to_string(Shard.Rank) +
                        ", checkpoint generation " +
                        std::to_string(Generation.Source.Generation) + ": " +
                        Part.status().message());
    if (Status MergedOk = Merged.mergeFrom(Part.value()); !MergedOk)
      return Status(MergedOk.code(),
                    "merging shard of rank " + std::to_string(Shard.Rank) +
                        ": " + MergedOk.message());
  }

  // The manifest records the sequence number of the run that committed it
  // — the same number the legacy checkpoint.dat would carry.
  Merged.SequenceNumber = Generation.Source.SequenceNumber;

  RecoveredCheckpoint Recovered;
  Recovered.Merged = std::move(Merged);
  Recovered.FromBackupManifest = Generation.FromBackup;
  Recovered.Generation = Generation.Source.Generation;
  return Recovered;
}

Result<RecoveredCheckpoint>
restoreShardedCheckpoint(const ckpt::CheckpointStore &Store) {
  Result<ckpt::CheckpointStore::RestoredGeneration> Loaded =
      Store.restoreWithFallback();
  if (!Loaded)
    return Loaded.status();
  const bool PrimaryLoaded = !Loaded.value().FromBackup;
  Result<RecoveredCheckpoint> Merged =
      mergeGeneration(std::move(Loaded).value());
  if (Merged || !PrimaryLoaded)
    return Merged;
  // The primary generation's bytes all passed their CRCs yet a payload
  // refused to parse or merge (e.g. an interceptor rewrote a shard into a
  // different well-formed file, or shapes disagree). One more rung on the
  // ladder: the previous generation.
  Result<ckpt::CheckpointStore::RestoredGeneration> Previous =
      Store.restoreGeneration(Store.prevManifestPath());
  if (!Previous)
    return Merged; // the primary's error is the useful one
  Result<RecoveredCheckpoint> PreviousMerged =
      mergeGeneration(std::move(Previous).value());
  if (!PreviousMerged)
    return Merged;
  PreviousMerged.value().FromBackupManifest = true;
  return PreviousMerged;
}

} // namespace parmonc
