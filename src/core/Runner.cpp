//===- core/Runner.cpp - The parallel simulation engine (§3.2) -----------===//
//
// Part of the PARMONC reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Roles follow §2.2 exactly: every rank simulates realizations
// asynchronously; every rank periodically sends its *cumulative* moment
// sums to rank 0; rank 0 additionally keeps the latest snapshot per rank,
// merges them with the resumed base by eq. (5), and saves results at
// save-points. Cumulative (rather than incremental) subtotals make the
// collector idempotent: a lost or reordered message can only delay
// freshness, never corrupt the average.
//
//===----------------------------------------------------------------------===//

#include "parmonc/core/Runner.h"

#include "parmonc/ckpt/BackgroundWriter.h"
#include "parmonc/core/CheckpointBridge.h"
#include "parmonc/fault/FaultPlan.h"
#include "parmonc/mpsim/Communicator.h"
#include "parmonc/mpsim/Engine.h"
#include "parmonc/mpsim/Serialize.h"
#include "parmonc/obs/Stopwatch.h"
#include "parmonc/rng/Philox.h"
#include "parmonc/rng/StreamHierarchy.h"
#include "parmonc/support/Contract.h"
#include "parmonc/support/Text.h"

// mclint: allow-file(R8): the engine's stop/claim flags are the one
// reviewed lock-free seam outside mpsim/ — workers and the collector share
// them by reference inside a single runEngine() invocation, and all
// cross-rank *data* still flows through the communicator protocol.
#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

namespace parmonc {

namespace {

/// Everything the worker/collector closures share. Plain atomics; the
/// snapshot vectors are touched only by rank 0.
struct SharedRunState {
  std::atomic<int64_t> ClaimedVolume{0};
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> StoppedOnTimeLimit{false};
  std::atomic<bool> StoppedOnErrorTarget{false};
  /// The injected collector crash fired: the run ends exactly as a killed
  /// job would — no further saves, no final collection.
  std::atomic<bool> Killed{false};
  std::atomic<int64_t> FailedSends{0};
};

/// Merges \p From into \p Into: moment sums, compute seconds, histograms.
/// Shape mismatches here mean a snapshot was deserialized from a different
/// run configuration — merging it would corrupt the eq. (5) average, so
/// these contracts stay on in release builds. Shared by the rank-0
/// collector and the intra-rank thread merge, so both levels of the
/// hierarchy combine partials with the exact same arithmetic.
void mergeSnapshotInto(MomentSnapshot &Into, const MomentSnapshot &From) {
  Status MergedOk = Into.mergeFrom(From);
  PARMONC_ASSERT(MergedOk.isOk(), "snapshot shape/geometry mismatch");
}

/// Collector-side bookkeeping (rank 0 only).
struct CollectorState {
  std::vector<MomentSnapshot> LatestFromRank;
  std::vector<bool> HaveSnapshot;
  std::vector<bool> FinalReceived;
  std::vector<int> DeadWorkers;
  int FinalsOutstanding = 0;
  int SavePointCount = 0;
  int64_t LastSaveNanos = 0;

  // Sharded checkpointing: the latest shard file each rank reported, keyed
  // by the rank's own monotone write index so duplicated or reordered
  // reports (injected faults) can never roll a reference backwards.
  std::vector<ckpt::ShardEntry> ShardRef;
  std::vector<bool> HaveShardRef;
  std::vector<int64_t> ShardIndexSeen;

  /// Merges base + every received rank snapshot (eq. 5).
  MomentSnapshot mergeAll(const MomentSnapshot &Base) const {
    MomentSnapshot Merged = Base;
    for (size_t Rank = 0; Rank < LatestFromRank.size(); ++Rank)
      if (HaveSnapshot[Rank])
        mergeSnapshotInto(Merged, LatestFromRank[Rank]);
    return Merged;
  }
};

} // namespace

Status RunConfig::validate() const {
  if (Rows < 1 || Columns < 1)
    return invalidArgument("realization matrix must be at least 1x1");
  if (MaxSampleVolume < 1)
    return invalidArgument("maximal sample volume must be >= 1");
  if (ProcessorCount < 1)
    return invalidArgument("processor count must be >= 1");
  if (Status LeapsOk = Leaps.validate(); !LeapsOk)
    return LeapsOk;
  const unsigned MaxProcessorsLog2 = Leaps.maxProcessorsLog2();
  if (MaxProcessorsLog2 < 63 &&
      uint64_t(ProcessorCount) > (uint64_t(1) << MaxProcessorsLog2))
    return invalidArgument(
        "processor count exceeds the hierarchy capacity 2^" +
        std::to_string(MaxProcessorsLog2));
  const unsigned MaxExperimentsLog2 = Leaps.maxExperimentsLog2();
  if (MaxExperimentsLog2 < 63 &&
      SequenceNumber >= (uint64_t(1) << MaxExperimentsLog2))
    return invalidArgument(
        "experiment number exceeds the hierarchy capacity 2^" +
        std::to_string(MaxExperimentsLog2));
  if (PassPeriodNanos < 0 || AveragePeriodNanos < 0 || TimeLimitNanos < 0)
    return invalidArgument("periods must be non-negative");
  if (ErrorMultiplier <= 0.0)
    return invalidArgument("error multiplier must be positive");
  if (TargetMaxAbsoluteError < 0.0 || TargetMaxRelativeErrorPercent < 0.0)
    return invalidArgument("error targets must be non-negative");
  if (WorkDir.empty())
    return invalidArgument("work directory must not be empty");
  for (const HistogramSpec &Spec : Histograms) {
    if (Spec.Row >= Rows || Spec.Column >= Columns)
      return invalidArgument("histogram observable outside the matrix");
    if (Spec.Low >= Spec.High)
      return invalidArgument("histogram range is empty");
    if (Spec.BinCount < 1)
      return invalidArgument("histogram needs at least one bin");
  }
  if (SendMaxAttempts < 1)
    return invalidArgument("send attempts must be >= 1");
  if (SendRetryBackoffNanos < 0 || WorkerDeadlineNanos < 0)
    return invalidArgument("retry backoff and worker deadline must be "
                           "non-negative");
  if (CheckpointAsync && !CheckpointShards)
    return invalidArgument(
        "asynchronous checkpointing requires CheckpointShards");
  if (CheckpointQueueDepth < 1)
    return invalidArgument("checkpoint queue depth must be >= 1");
  if (CheckpointKeepShards < 1)
    return invalidArgument("checkpoint shard retention must be >= 1");
  if (WorkerThreadsPerRank < 1)
    return invalidArgument("worker threads per rank must be >= 1");
  if (WorkerThreadsPerRank > 1) {
    const unsigned MaxRealizationsLog2 = Leaps.maxRealizationsLog2();
    if (MaxRealizationsLog2 < 63 &&
        uint64_t(WorkerThreadsPerRank) > (uint64_t(1) << MaxRealizationsLog2))
      return invalidArgument(
          "worker thread count exceeds the per-processor realization "
          "capacity 2^" +
          std::to_string(MaxRealizationsLog2));
    if (Faults && !Faults->WorkerCrashes.empty())
      return invalidArgument(
          "injected worker crashes model whole-rank death and require "
          "WorkerThreadsPerRank == 1");
  }
  if (Transport == TransportKind::Processes && !DeterministicSchedule)
    return invalidArgument(
        "the process transport has no cross-process work counter; "
        "DeterministicSchedule must be on so every rank owns a fixed "
        "quota");
  if (Faults && Transport != TransportKind::Processes)
    for (const fault::WorkerCrashSpec &Crash : Faults->WorkerCrashes)
      if (Crash.RaiseKillSignal)
        return invalidArgument(
            "RaiseKillSignal kills a worker with SIGKILL and requires "
            "Transport == TransportKind::Processes");
  if (Faults)
    if (Status PlanOk = Faults->validate(); !PlanOk)
      return PlanOk;
  return Status::ok();
}

/// Fresh (empty) histograms matching the configured specs.
static std::vector<HistogramEstimator>
makeHistograms(const RunConfig &Config) {
  std::vector<HistogramEstimator> Histograms;
  Histograms.reserve(Config.Histograms.size());
  for (const HistogramSpec &Spec : Config.Histograms)
    Histograms.emplace_back(Spec.Low, Spec.High, Spec.BinCount);
  return Histograms;
}

Result<RunReport> runSimulation(const RealizationFn &Realization,
                                const RunConfig &Config,
                                Clock *ClockOverride) {
  if (!Realization)
    return invalidArgument("realization routine must be set");
  if (Status Valid = Config.validate(); !Valid)
    return Valid;

  static WallClock DefaultClock;
  Clock &Time = ClockOverride ? *ClockOverride : DefaultClock;

  // Observability: callers may supply a shared registry; otherwise the run
  // keeps a private one. Either way the final snapshot lands in
  // RunReport::Metrics and results/metrics.dat.
  obs::MetricsRegistry LocalRegistry;
  obs::MetricsRegistry &Registry =
      Config.Metrics ? *Config.Metrics : LocalRegistry;
  obs::TraceWriter *Trace = Config.Trace;

  ResultsStore Store(Config.WorkDir);
  Store.attachObservers(&Registry, Trace, &Time);
  if (Status Prepared = Store.prepareDirectories(); !Prepared)
    return Prepared;

  // Fault injection (testing only): a null or empty plan costs nothing.
  std::optional<fault::FaultInjector> InjectorStorage;
  fault::FaultInjector *Injector = nullptr;
  if (Config.Faults && Config.Faults->enabled()) {
    InjectorStorage.emplace(*Config.Faults);
    Injector = &*InjectorStorage;
    Injector->attachObservers(&Registry, Trace, &Time);
    Store.setFaultInjector(Injector);
  }

  // Sharded checkpoint store. Always constructed (resume must be able to
  // read a manifest a previous sharded run left behind); the directories
  // are only created when this run itself writes shards.
  ckpt::CheckpointStore Ckpt(Store.checkpointDir());
  Ckpt.attachMetrics(&Registry);
  if (Injector)
    Ckpt.setWriteInterceptor(
        [Injector](const std::string &Path, std::string_view Contents) {
          // mclint: allow(R8): fault-injection seam, same as the results
          // store's — the injector is plain data here.
          return Injector->corruptWrite(Path, Contents);
        });
  // Leap table: an explicit parmonc_genparam.dat in the working directory
  // overrides the configured exponents (§3.5).
  const int64_t LeapSetupStart = Time.nowNanos();
  LeapTable Table(Lcg128::defaultMultiplier(), Config.Leaps);
  if (fileExists(Store.genparamPath())) {
    Result<LeapTable> Loaded = LeapTable::loadOrDefault(Store.genparamPath());
    if (!Loaded)
      return Loaded.status();
    Table = std::move(Loaded).value();
  }
  // Backend dispatch: Philox partitions the same (e, p, k) coordinates by
  // counter intervals, using the table's (possibly genparam-overridden)
  // exponents. A genparam *multiplier* override is LCG arithmetic with no
  // counter-based equivalent — silently ignoring it would ship different
  // numbers than the operator asked for, so it is rejected instead.
  const bool UsePhilox = Config.RngBackend == RngBackendKind::Philox;
  if (UsePhilox && Table.baseMultiplier() != Lcg128::defaultMultiplier())
    return failedPrecondition(
        "parmonc_genparam.dat overrides the LCG multiplier, which has no "
        "counter-based equivalent; remove the override or run the lcg128 "
        "backend");
  StreamHierarchy Hierarchy(Table);
  Hierarchy.attachMetrics(Registry);
  Registry.latency("rng.leap_setup")
      .recordNanos(Time.nowNanos() - LeapSetupStart);
  if (Trace)
    Trace->completeSpan("rng.leap_setup", 0, LeapSetupStart,
                        Time.nowNanos());

  // Resumption (§3.2): res=1 loads the previous checkpoint as the base;
  // res=0 starts from clean files.
  MomentSnapshot Base;
  Base.Moments = EstimatorMatrix(Config.Rows, Config.Columns);
  Base.Histograms = makeHistograms(Config);
  Base.SequenceNumber = Config.SequenceNumber;
  bool ResumedFromBackup = false;
  bool RestoredFromShards = false;
  if (Config.Resume) {
    // The full recovery ladder. A sharded manifest and a legacy
    // checkpoint.dat can coexist — manaver rebuilds checkpoint.dat from
    // the subtotal files after a crash that left mid-run manifests behind
    // — and snapshots are cumulative, so whichever loadable state carries
    // the larger sample volume is the fresher one and wins. Each side
    // falls back to its own .prev generation before the comparison.
    const bool HaveManifest = Ckpt.hasAnyManifest();
    const bool HaveLegacy =
        fileExists(Store.checkpointPath()) ||
        fileExists(ResultsStore::backupPath(Store.checkpointPath()));
    if (!HaveManifest && !HaveLegacy)
      return failedPrecondition(
          "resume requested but no checkpoint exists at " +
          Store.checkpointPath());
    bool HaveSharded = false;
    bool HaveSingle = false;
    bool ShardedBackup = false;
    bool SingleBackup = false;
    MomentSnapshot Sharded;
    MomentSnapshot Single;
    Status FirstError;
    if (HaveManifest) {
      // Rebuild the merged state from base + rank shards (bit-identical
      // to the single-file path), falling back to the previous manifest
      // generation on any CRC, short-read, missing-shard or payload
      // failure.
      Result<RecoveredCheckpoint> Recovered = restoreShardedCheckpoint(Ckpt);
      if (Recovered) {
        HaveSharded = true;
        ShardedBackup = Recovered.value().FromBackupManifest;
        Sharded = std::move(Recovered).value().Merged;
      } else {
        FirstError = Recovered.status();
      }
    }
    if (HaveLegacy) {
      // A checkpoint that fails its CRC is never loaded; the previous
      // generation (checkpoint.dat.prev) covers the torn-write case.
      Result<ResultsStore::RecoveredSnapshot> Recovered =
          Store.readSnapshotWithFallback(Store.checkpointPath());
      if (Recovered) {
        HaveSingle = true;
        SingleBackup = Recovered.value().FromBackup;
        Single = std::move(Recovered).value().Snapshot;
      } else if (FirstError.isOk()) {
        FirstError = Recovered.status();
      }
    }
    if (!HaveSharded && !HaveSingle)
      return FirstError;
    MomentSnapshot Previous;
    const bool UseSharded =
        HaveSharded &&
        (!HaveSingle ||
         Sharded.Moments.sampleVolume() >= Single.Moments.sampleVolume());
    if (UseSharded) {
      ResumedFromBackup = ShardedBackup;
      RestoredFromShards = true;
      Previous = std::move(Sharded);
    } else {
      // Either a legacy-only tree, every manifest generation was rejected
      // (one more rung down the ladder — flagged as a backup resume), or
      // checkpoint.dat is strictly fresher than the best manifest.
      ResumedFromBackup = SingleBackup || (HaveManifest && !HaveSharded);
      Previous = std::move(Single);
    }
    if (Previous.Moments.rows() != Config.Rows ||
        Previous.Moments.columns() != Config.Columns)
      return failedPrecondition(
          "checkpoint shape does not match the configured matrix shape");
    if (Previous.SequenceNumber == Config.SequenceNumber)
      return failedPrecondition(
          "resumed run must use a different experiment subsequence number "
          "than the previous run (paper §3.2); previous used " +
          std::to_string(Previous.SequenceNumber));
    if (Previous.Histograms.size() != Config.Histograms.size())
      return failedPrecondition(
          "checkpoint histogram count does not match the configuration");
    for (size_t Index = 0; Index < Config.Histograms.size(); ++Index) {
      const HistogramEstimator &Saved = Previous.Histograms[Index];
      const HistogramSpec &Spec = Config.Histograms[Index];
      if (Saved.low() != Spec.Low || Saved.high() != Spec.High ||
          Saved.binCount() != Spec.BinCount)
        return failedPrecondition(
            "checkpoint histogram geometry does not match the "
            "configuration");
    }
    Base = std::move(Previous);
    // The merged results of this run belong to the *new* experiment.
    Base.SequenceNumber = Config.SequenceNumber;
  } else {
    if (Status Cleared = Store.clearPreviousRun(); !Cleared)
      return Cleared;
  }
  // After the res=0 clear (which removes the whole ckpt tree along with
  // the other per-run files), so the staging/shards directories survive.
  if (Config.CheckpointShards)
    if (Status Prepared = Ckpt.prepareDirectories(); !Prepared)
      return Prepared;
  if (Status Written = Store.writeSnapshot(Store.basePath(), Base); !Written)
    return Written;

  RunLogInfo StartLog;
  StartLog.SequenceNumber = Config.SequenceNumber;
  StartLog.Resumed = Config.Resume;
  StartLog.ProcessorCount = Config.ProcessorCount;
  StartLog.TotalSampleVolume = Base.Moments.sampleVolume();
  StartLog.RngBackend = rngBackendName(Config.RngBackend);
  if (Status Logged = Store.appendExperimentLog(StartLog); !Logged)
    return Logged;

  const int64_t StartNanos = Time.nowNanos();
  const int RankCount = Config.ProcessorCount;
  const size_t EntryCount = Config.Rows * Config.Columns;

  SharedRunState Shared;
  CollectorState Collector;
  Collector.LatestFromRank.assign(size_t(RankCount), MomentSnapshot{});
  Collector.HaveSnapshot.assign(size_t(RankCount), false);
  Collector.FinalReceived.assign(size_t(RankCount), false);
  Collector.FinalsOutstanding = RankCount;
  Collector.LastSaveNanos = StartNanos;
  Collector.ShardRef.assign(size_t(RankCount), ckpt::ShardEntry{});
  Collector.HaveShardRef.assign(size_t(RankCount), false);
  Collector.ShardIndexSeen.assign(size_t(RankCount), 0);

  Status CollectorFailure; // first IO failure seen by rank 0
  RunReport Report;

  // The merged-base shard every sharded commit references. Base is frozen
  // after the resume block, so serialize it once.
  const std::string BaseFileBody =
      Config.CheckpointShards ? Base.toFileContents() : std::string();

  // Background checkpoint writer (rank 0, parent process only): created
  // lazily at body entry, wound down after the engine returns so every
  // exit path — including a simulated collector death — is covered.
  std::optional<ckpt::BackgroundWriter> AsyncWriterStorage;
  ckpt::BackgroundWriter *AsyncWriter = nullptr;

  // Rank 0's communicator, captured at body entry: the collector-side
  // helpers broadcast stop/abort through it so the decision crosses
  // address spaces under the process transport (Shared's atomics only
  // reach threads of this process).
  Communicator *RootComm = nullptr;

  // Pre-register every hot-path metric on the cold path: workers then only
  // touch relaxed atomics through stable references.
  obs::Counter &RealizationsTotal = Registry.counter("runner.realizations");
  obs::Counter &SubtotalsSent = Registry.counter("runner.subtotals_sent");
  obs::Counter &SavePoints = Registry.counter("runner.save_points");
  obs::LatencyHistogram &RealizationLatency =
      Registry.latency("runner.realization");
  obs::LatencyHistogram &MergeLatency =
      Registry.latency("runner.subtotal_merge");
  obs::LatencyHistogram &SavePointLatency =
      Registry.latency("runner.save_point");
  obs::Counter &DeadWorkersCounter = Registry.counter("runner.dead_workers");
  std::vector<obs::Counter *> RankRealizations;
  RankRealizations.reserve(size_t(RankCount));
  for (int Rank = 0; Rank < RankCount; ++Rank)
    RankRealizations.push_back(&Registry.counter(
        "runner.rank" + std::to_string(Rank) + ".realizations"));

  // --- Collector helpers (rank 0 only) -----------------------------------

  auto buildLog = [&](const MomentSnapshot &Merged,
                      int64_t NowNanos) -> RunLogInfo {
    RunLogInfo Log;
    Log.TotalSampleVolume = Merged.Moments.sampleVolume();
    Log.NewSampleVolume =
        Merged.Moments.sampleVolume() - Base.Moments.sampleVolume();
    // Workers only ever add realizations to the resumed base, so the
    // merged volume can never shrink; if it does, a snapshot went bad.
    PARMONC_ASSERT(Log.NewSampleVolume >= 0,
                   "sample volume must be monotone across save-points");
    const double NewComputeSeconds =
        Merged.ComputeSeconds - Base.ComputeSeconds;
    Log.MeanRealizationSeconds =
        Log.NewSampleVolume > 0
            ? NewComputeSeconds / double(Log.NewSampleVolume)
            : 0.0;
    Log.ElapsedSeconds = double(NowNanos - StartNanos) * 1e-9;
    Log.ProcessorCount = RankCount;
    Log.SequenceNumber = Config.SequenceNumber;
    Log.Resumed = Config.Resume;
    Log.Degraded =
        !Collector.DeadWorkers.empty() ||
        Shared.FailedSends.load(std::memory_order_relaxed) > 0;
    Log.DeadWorkerCount = int(Collector.DeadWorkers.size());
    Log.ResumedFromBackup = ResumedFromBackup;
    if (Merged.Moments.sampleVolume() > 0) {
      const ErrorBounds Bounds =
          Merged.Moments.errorBounds(Config.ErrorMultiplier);
      Log.MaxAbsoluteError = Bounds.MaxAbsoluteError;
      Log.MaxRelativeErrorPercent = Bounds.MaxRelativeError;
      Log.MaxVariance = Bounds.MaxVariance;
    }
    return Log;
  };

  auto savePoint = [&](int64_t NowNanos, bool IsFinal = false) {
    const int64_t MergeStart = Time.nowNanos();
    const MomentSnapshot Merged = Collector.mergeAll(Base);
    const int64_t MergeEnd = Time.nowNanos();
    if (Merged.Moments.sampleVolume() <= 0)
      return; // nothing to report yet
    // Injected collector death: the save about to happen never does, and
    // the whole run stops — exactly a job killed mid-save. On-disk state
    // stays at the previous save-point plus whatever subtotals the workers
    // persisted, which is what manaver (§3.4) recovers from.
    if (Injector &&
        Injector->takeCollectorCrash(Collector.SavePointCount + 1,
                                     IsFinal)) {
      Injector->noteCollectorCrashed();
      Shared.Killed.store(true, std::memory_order_relaxed);
      Shared.StopRequested.store(true, std::memory_order_relaxed);
      if (RootComm)
        RootComm->requestAbort();
      return;
    }
    MergeLatency.recordNanos(MergeEnd - MergeStart);
    if (Trace)
      Trace->completeSpan("runner.subtotal_merge", 0, MergeStart, MergeEnd);
    const RunLogInfo Log = buildLog(Merged, NowNanos);
    if (Status Written =
            Store.writeResults(Merged.Moments, Log, Config.ErrorMultiplier);
        !Written && CollectorFailure.isOk())
      CollectorFailure = Written;
    if (!Config.CheckpointShards) {
      if (Status Written =
              Store.writeSnapshot(Store.checkpointPath(), Merged);
          !Written && CollectorFailure.isOk())
        CollectorFailure = Written;
    } else {
      // Sharded commit: the manifest references the latest shard every
      // rank has published so far. Worker shards carry this run's
      // contributions only; the base shard carries everything inherited,
      // so base + shards reconstructs the merged state exactly.
      ckpt::CheckpointStore::CommitRequest Request;
      Request.Generation = Collector.SavePointCount + 1;
      Request.SequenceNumber = Config.SequenceNumber;
      Request.RankCount = RankCount;
      Request.BaseBody = BaseFileBody;
      Request.BaseVolume = Base.Moments.sampleVolume();
      Request.KeepShards = Config.CheckpointKeepShards;
      for (size_t Rank = 0; Rank < size_t(RankCount); ++Rank)
        if (Collector.HaveShardRef[Rank])
          Request.Shards.push_back(Collector.ShardRef[Rank]);
      // The stall this save-point spends on checkpointing: the full
      // commit when synchronous, a queue hand-off when asynchronous —
      // the contrast BENCH_ckpt.json quantifies.
      const int64_t HandoffStart = Time.nowNanos();
      if (AsyncWriter) {
        (void)AsyncWriter->enqueue(std::move(Request));
      } else if (Status Committed = Ckpt.commit(Request);
                 !Committed && CollectorFailure.isOk()) {
        CollectorFailure = Committed;
      }
      Registry.latency("ckpt.save_stall")
          .recordNanos(Time.nowNanos() - HandoffStart);
    }
    for (size_t Index = 0; Index < Config.Histograms.size(); ++Index) {
      const HistogramSpec &Spec = Config.Histograms[Index];
      if (Status Written = writeFileAtomic(
              histogramPath(Store, Spec.Row, Spec.Column),
              Merged.Histograms[Index].toFileContents());
          !Written && CollectorFailure.isOk())
        CollectorFailure = Written;
    }
    ++Collector.SavePointCount;
    Collector.LastSaveNanos = NowNanos;
    SavePoints.add();
    const int64_t SaveEnd = Time.nowNanos();
    SavePointLatency.recordNanos(SaveEnd - MergeStart);
    if (Trace)
      Trace->completeSpan("runner.save_point", 0, MergeStart, SaveEnd);

    if (Config.OnSavePoint) {
      RunProgress Progress;
      Progress.TotalSampleVolume = Log.TotalSampleVolume;
      Progress.MaxAbsoluteError = Log.MaxAbsoluteError;
      Progress.MaxRelativeErrorPercent = Log.MaxRelativeErrorPercent;
      Progress.ElapsedSeconds = Log.ElapsedSeconds;
      Progress.SavePointCount = Collector.SavePointCount;
      Config.OnSavePoint(Progress);
    }

    // Early-stop targets are evaluated on saved (i.e. reported) bounds.
    const bool AbsoluteMet =
        Config.TargetMaxAbsoluteError > 0.0 &&
        Log.MaxAbsoluteError <= Config.TargetMaxAbsoluteError;
    const bool RelativeMet =
        Config.TargetMaxRelativeErrorPercent > 0.0 &&
        Log.MaxRelativeErrorPercent <= Config.TargetMaxRelativeErrorPercent;
    if (AbsoluteMet || RelativeMet) {
      Shared.StoppedOnErrorTarget.store(true, std::memory_order_relaxed);
      Shared.StopRequested.store(true, std::memory_order_relaxed);
      if (RootComm)
        RootComm->requestStop(StopReason::ErrorTarget);
      if (Trace)
        Trace->instantAt("runner.stop.error_target", 0, SaveEnd);
    }
  };

  auto handleMessage = [&](const Message &Incoming) {
    if (Incoming.Tag == TagShardReport) {
      ByteReader Reader(Incoming.Payload);
      Result<int64_t> WriteIndex = Reader.readI64();
      Result<std::string> File = Reader.readString();
      Result<uint32_t> Crc = Reader.readU32();
      Result<uint64_t> Bytes = Reader.readU64();
      Result<int64_t> Volume = Reader.readI64();
      if (!WriteIndex || !File || !Crc || !Bytes || !Volume ||
          !Reader.atEnd()) {
        if (CollectorFailure.isOk())
          CollectorFailure = parseError("malformed shard report from rank " +
                                        std::to_string(Incoming.Source));
        return;
      }
      const size_t Source = size_t(Incoming.Source);
      // Duplicated or delayed reports (injected faults) must never roll a
      // manifest reference back to an older shard.
      if (WriteIndex.value() <= Collector.ShardIndexSeen[Source])
        return;
      Collector.ShardIndexSeen[Source] = WriteIndex.value();
      ckpt::ShardEntry &Entry = Collector.ShardRef[Source];
      Entry.Rank = Incoming.Source;
      Entry.File = std::move(File).value();
      Entry.Crc = Crc.value();
      Entry.Bytes = Bytes.value();
      Entry.Volume = Volume.value();
      Collector.HaveShardRef[Source] = true;
      return;
    }
    Result<MomentSnapshot> Snapshot =
        MomentSnapshot::fromBytes(Incoming.Payload);
    if (!Snapshot) {
      if (CollectorFailure.isOk())
        CollectorFailure = Snapshot.status();
      return;
    }
    const size_t Rank = size_t(Incoming.Source);
    Collector.LatestFromRank[Rank] = std::move(Snapshot).value();
    Collector.HaveSnapshot[Rank] = true;
    if (Incoming.Tag == TagFinal && !Collector.FinalReceived[Rank]) {
      Collector.FinalReceived[Rank] = true;
      --Collector.FinalsOutstanding;
    }
  };

  auto collectorPoll = [&](Communicator &Comm, bool ForceSave) {
    while (std::optional<Message> Incoming = Comm.tryReceive())
      handleMessage(*Incoming);
    const int64_t Now = Time.nowNanos();
    if (ForceSave ||
        Now - Collector.LastSaveNanos >= Config.AveragePeriodNanos)
      savePoint(Now);
  };

  // --- Worker body (every rank, including 0) ------------------------------

  // mclint: allow(R12): every rank lambda joins before this scope exits,
  // so the by-reference capture of the stream hierarchy cannot outlive it.
  auto body = [&](Communicator &Comm) {
    const int Rank = Comm.rank();
    if (Rank == 0) {
      RootComm = &Comm;
      // Rank 0 always runs in the calling process (both transports), so
      // the writer thread spawned here never crosses a fork.
      if (Config.CheckpointAsync) {
        AsyncWriterStorage.emplace(Ckpt, Config.CheckpointQueueDepth,
                                   &Registry);
        AsyncWriter = &*AsyncWriterStorage;
      }
    }
    const int ThreadsPerRank = Config.WorkerThreadsPerRank;

    MomentSnapshot Local;
    Local.SequenceNumber = Config.SequenceNumber;
    Local.Moments = EstimatorMatrix(Config.Rows, Config.Columns);
    Local.Histograms = makeHistograms(Config);
    std::vector<double> Out(EntryCount);

    int64_t LastPassNanos = Time.nowNanos();
    int64_t LastPersistNanos = LastPassNanos;
    // The on-disk subtotal freshness manaver needs (§3.4) is bounded by
    // the pass period, but in send-every-realization mode (PassPeriod 0)
    // writing a file per realization would swamp fast workloads — persist
    // at most every 250 ms there.
    const int64_t PersistPeriodNanos =
        Config.PassPeriodNanos > 0 ? Config.PassPeriodNanos : 250'000'000;

    int64_t ShardWriteIndex = 0;
    auto sendSubtotal = [&](int Tag) {
      const int64_t SendStart = Trace ? Time.nowNanos() : 0;
      // Persist BEFORE sending, so the worker's on-disk subtotal is always
      // at least as fresh as the collector's view of this rank — §3.4's
      // precondition for manaver recovering results "fresher than the
      // moment of the last saving".
      const int64_t Now = Time.nowNanos();
      if (Tag == TagFinal || Now - LastPersistNanos >= PersistPeriodNanos) {
        (void)Store.writeSnapshot(Store.subtotalPath(Rank), Local);
        if (Config.CheckpointShards) {
          // Publish this rank's cumulative shard at subtotal-persist
          // cadence and tell rank 0 where it landed. Shard freshness thus
          // equals §3.4 subtotal freshness; at the final send the shard
          // body IS the final subtotal, which makes the committed
          // generation reconstruct the collector's merged state exactly.
          Result<ckpt::ShardEntry> Written =
              Ckpt.writeShard(Rank, Config.SequenceNumber, ++ShardWriteIndex,
                              Local.toFileContents(),
                              Local.Moments.sampleVolume());
          if (Written) {
            ByteWriter ShardMsg;
            ShardMsg.writeI64(ShardWriteIndex);
            ShardMsg.writeString(Written.value().File);
            ShardMsg.writeU32(Written.value().Crc);
            ShardMsg.writeU64(Written.value().Bytes);
            ShardMsg.writeI64(Written.value().Volume);
            if (Status Sent = Comm.sendReliable(0, TagShardReport,
                                                ShardMsg.takeBytes(),
                                                Config.SendMaxAttempts,
                                                Config.SendRetryBackoffNanos,
                                                &Time);
                !Sent)
              // Cumulative shards: the next report covers this one.
              Shared.FailedSends.fetch_add(1, std::memory_order_relaxed);
          } else {
            // A rank that cannot publish keeps simulating — the manifest
            // just references its previous shard — but the failure is
            // never silent, and on rank 0 it fails the run like any other
            // collector-side IO error.
            Registry.counter("ckpt.shard_write_failures").add();
            if (Rank == 0 && CollectorFailure.isOk())
              CollectorFailure = Written.status();
          }
        }
        LastPersistNanos = Now;
      }
      if (Status Sent = Comm.sendReliable(0, Tag, Local.toBytes(),
                                          Config.SendMaxAttempts,
                                          Config.SendRetryBackoffNanos,
                                          &Time);
          !Sent)
        // The message is gone, but subtotals are cumulative: the next
        // successful send covers everything this one carried.
        Shared.FailedSends.fetch_add(1, std::memory_order_relaxed);
      SubtotalsSent.add();
      if (Trace)
        Trace->completeSpan("runner.subtotal_send", Rank, SendStart,
                            Time.nowNanos());
    };

    // Deterministic scheduling splits maxsv into fixed per-rank quotas, so
    // per-rank volumes never depend on thread interleaving; the default
    // shared counter maximizes throughput instead.
    const int64_t Quota =
        Config.DeterministicSchedule
            ? Config.MaxSampleVolume / RankCount +
                  (Rank < int(Config.MaxSampleVolume % RankCount) ? 1 : 0)
            : -1;

    if (ThreadsPerRank == 1) {
    RealizationCursor Cursor(
        Hierarchy,
        StreamCoordinates{Config.SequenceNumber, uint64_t(Rank), 0});
    int64_t Completed = 0;
    const fault::WorkerCrashSpec *Crash =
        Injector ? Injector->workerCrash(Rank) : nullptr;

    // Shared covers threads of this process; stopRequested() additionally
    // hears wire broadcasts when this rank is a forked worker.
    while (!Shared.StopRequested.load(std::memory_order_relaxed) &&
           !Comm.stopRequested()) {
      if (Quota >= 0) {
        if (Completed >= Quota)
          break;
      } else {
        const int64_t Claimed =
            Shared.ClaimedVolume.fetch_add(1, std::memory_order_relaxed);
        if (Claimed >= Config.MaxSampleVolume)
          break;
      }

      int64_t ComputeStart = 0;
      int64_t ComputeEnd = 0;
      if (UsePhilox) {
        // Counter partitioning: realization k of this rank owns draw
        // interval k·2^nr — the same coordinates the cursor would leap to.
        Philox Stream = Philox::streamFor(
            StreamCoordinates{Config.SequenceNumber, uint64_t(Rank),
                              Cursor.nextRealizationIndex()},
            Table.config());
        Cursor.noteRealizationIssued();
        ComputeStart = Time.nowNanos();
        Realization(Stream, Out.data());
        ComputeEnd = Time.nowNanos();
      } else {
        Lcg128 Stream = Cursor.beginRealization();
        ComputeStart = Time.nowNanos();
        Realization(Stream, Out.data());
        ComputeEnd = Time.nowNanos();
      }
      Local.ComputeSeconds += double(ComputeEnd - ComputeStart) * 1e-9;
      // Reuses the ComputeStart/ComputeEnd reads the engine takes anyway,
      // so per-realization metrics cost two relaxed atomic updates.
      RealizationsTotal.add();
      RankRealizations[size_t(Rank)]->add();
      RealizationLatency.recordNanos(ComputeEnd - ComputeStart);
      if (Trace)
        Trace->completeSpan("runner.realization", Rank, ComputeStart,
                            ComputeEnd);
      Local.Moments.accumulate(Out.data());
      for (size_t Index = 0; Index < Config.Histograms.size(); ++Index) {
        const HistogramSpec &Spec = Config.Histograms[Index];
        Local.Histograms[Index].add(
            Out[Spec.Row * Config.Columns + Spec.Column]);
      }
      ++Completed;

      // Injected worker death: the thread vanishes mid-run without a final
      // send. PersistBeforeCrash models a node whose filesystem survives
      // the process (the paper's cluster), so manaver can still recover
      // every completed realization.
      if (Crash && Completed >= Crash->AfterRealizations) {
        if (Crash->PersistBeforeCrash)
          (void)Store.writeSnapshot(Store.subtotalPath(Rank), Local);
        Injector->noteWorkerCrashed(Rank);
        if (Crash->RaiseKillSignal)
          Comm.crashHard(); // SIGKILL the worker process: a real node loss
        Comm.markDead(Rank);
        return;
      }

      const int64_t Now = ComputeEnd;
      if (Config.TimeLimitNanos > 0 &&
          Now - StartNanos >= Config.TimeLimitNanos) {
        Shared.StoppedOnTimeLimit.store(true, std::memory_order_relaxed);
        Shared.StopRequested.store(true, std::memory_order_relaxed);
        Comm.requestStop(StopReason::TimeLimit);
        if (Trace)
          Trace->instantAt("runner.stop.time_limit", Rank, Now);
      }
      if (Config.PassPeriodNanos == 0 ||
          Now - LastPassNanos >= Config.PassPeriodNanos) {
        sendSubtotal(TagSubtotal);
        LastPassNanos = Now;
      }
      if (Rank == 0)
        collectorPoll(Comm, /*ForceSave=*/false);
    }
    } else {
    // --- Threaded fan-out: N worker threads inside this rank -------------
    // Each thread owns a private accumulator and a stride-N cursor (thread
    // t runs this rank's realizations t, t + N, ...), so the N threads
    // jointly consume exactly the substreams the serial rank would. They
    // hand *cumulative* snapshots to this rank thread through a mailbox —
    // the same MPSC primitive the fabric uses — and only the rank thread
    // talks to the collector, so the §2.2 protocol is untouched. Thread
    // partials merge in thread-index order, making the merged rank
    // snapshot independent of message arrival interleaving.
    Mailbox IntraRank;
    auto workerBody = [&](int Thread) {
      RealizationCursor Cursor(
          Hierarchy,
          StreamCoordinates{Config.SequenceNumber, uint64_t(Rank),
                            uint64_t(Thread)},
          uint64_t(ThreadsPerRank));
      MomentSnapshot Mine;
      Mine.SequenceNumber = Config.SequenceNumber;
      Mine.Moments = EstimatorMatrix(Config.Rows, Config.Columns);
      Mine.Histograms = makeHistograms(Config);
      std::vector<double> ThreadOut(EntryCount);
      // Round-robin split of the rank quota: thread t owns the rank's
      // realizations congruent to t modulo N.
      const int64_t ThreadQuota =
          Quota < 0 ? -1
                    : (Quota > Thread ? (Quota - Thread + ThreadsPerRank - 1) /
                                            ThreadsPerRank
                                      : 0);
      int64_t Done = 0;
      int64_t LastThreadPassNanos = Time.nowNanos();

      while (!Shared.StopRequested.load(std::memory_order_relaxed)) {
        if (ThreadQuota >= 0) {
          if (Done >= ThreadQuota)
            break;
        } else {
          const int64_t Claimed =
              Shared.ClaimedVolume.fetch_add(1, std::memory_order_relaxed);
          if (Claimed >= Config.MaxSampleVolume)
            break;
        }

        int64_t ComputeStart = 0;
        int64_t ComputeEnd = 0;
        if (UsePhilox) {
          // Thread t draws from realization intervals t, t + N, ... — the
          // identical stride-N partition the LCG cursor leaps through.
          Philox Stream = Philox::streamFor(
              StreamCoordinates{Config.SequenceNumber, uint64_t(Rank),
                                Cursor.nextRealizationIndex()},
              Table.config());
          Cursor.noteRealizationIssued();
          ComputeStart = Time.nowNanos();
          Realization(Stream, ThreadOut.data());
          ComputeEnd = Time.nowNanos();
        } else {
          Lcg128 Stream = Cursor.beginRealization();
          ComputeStart = Time.nowNanos();
          Realization(Stream, ThreadOut.data());
          ComputeEnd = Time.nowNanos();
        }
        Mine.ComputeSeconds += double(ComputeEnd - ComputeStart) * 1e-9;
        RealizationsTotal.add();
        RankRealizations[size_t(Rank)]->add();
        RealizationLatency.recordNanos(ComputeEnd - ComputeStart);
        if (Trace)
          Trace->completeSpan("runner.realization", Rank, ComputeStart,
                              ComputeEnd);
        Mine.Moments.accumulate(ThreadOut.data());
        for (size_t Index = 0; Index < Config.Histograms.size(); ++Index) {
          const HistogramSpec &Spec = Config.Histograms[Index];
          Mine.Histograms[Index].add(
              ThreadOut[Spec.Row * Config.Columns + Spec.Column]);
        }
        ++Done;

        const int64_t Now = ComputeEnd;
        if (Config.TimeLimitNanos > 0 &&
            Now - StartNanos >= Config.TimeLimitNanos) {
          Shared.StoppedOnTimeLimit.store(true, std::memory_order_relaxed);
          Shared.StopRequested.store(true, std::memory_order_relaxed);
          if (Trace)
            Trace->instantAt("runner.stop.time_limit", Rank, Now);
        }
        if (Config.PassPeriodNanos == 0 ||
            Now - LastThreadPassNanos >= Config.PassPeriodNanos) {
          IntraRank.push(Message{Thread, TagSubtotal, Mine.toBytes()});
          LastThreadPassNanos = Now;
        }
      }
      // Always hand in the final partial — even a zero-quota thread, so
      // the rank loop's finals accounting stays exact.
      IntraRank.push(Message{Thread, TagFinal, Mine.toBytes()});
    };

    WorkerGroup Workers(ThreadsPerRank, workerBody);

    const size_t ThreadCount = size_t(ThreadsPerRank);
    std::vector<MomentSnapshot> ThreadLatest(ThreadCount);
    std::vector<bool> ThreadHave(ThreadCount, false);
    int ThreadFinalsOutstanding = ThreadsPerRank;
    auto mergeThreads = [&] {
      MomentSnapshot Merged;
      Merged.SequenceNumber = Config.SequenceNumber;
      Merged.Moments = EstimatorMatrix(Config.Rows, Config.Columns);
      Merged.Histograms = makeHistograms(Config);
      for (int Thread = 0; Thread < ThreadsPerRank; ++Thread)
        if (ThreadHave[size_t(Thread)])
          mergeSnapshotInto(Merged, ThreadLatest[size_t(Thread)]);
      return Merged;
    };

    bool StopRelayed = false;
    while (ThreadFinalsOutstanding > 0) {
      // Relay stop both ways: wire broadcasts into this process's Shared
      // flags (so the worker threads wind down), and a locally detected
      // time limit out onto the wire (so the other ranks hear it too).
      if (!StopRelayed &&
          Shared.StoppedOnTimeLimit.load(std::memory_order_relaxed)) {
        Comm.requestStop(StopReason::TimeLimit);
        StopRelayed = true;
      }
      if (Comm.stopRequested())
        Shared.StopRequested.store(true, std::memory_order_relaxed);
      if (std::optional<Message> Incoming =
              IntraRank.popWait(-1, /*TimeoutNanos=*/2'000'000, &Time)) {
        Result<MomentSnapshot> Snapshot =
            MomentSnapshot::fromBytes(Incoming->Payload);
        // Same-process round trip: a decode failure here is a bug, not an
        // IO hazard.
        PARMONC_ASSERT(Snapshot.isOk(), "intra-rank snapshot decode failed");
        const size_t Thread = size_t(Incoming->Source);
        ThreadLatest[Thread] = std::move(Snapshot).value();
        ThreadHave[Thread] = true;
        if (Incoming->Tag == TagFinal)
          --ThreadFinalsOutstanding;
      }
      const int64_t Now = Time.nowNanos();
      if (Config.PassPeriodNanos == 0 ||
          Now - LastPassNanos >= Config.PassPeriodNanos) {
        Local = mergeThreads();
        if (Local.Moments.sampleVolume() > 0) {
          sendSubtotal(TagSubtotal);
          LastPassNanos = Now;
        }
      }
      if (Rank == 0)
        collectorPoll(Comm, /*ForceSave=*/false);
    }
    Workers.join();
    // Every thread's final partial, merged in thread order: the rank's
    // definitive subtotal for the epilogue below.
    Local = mergeThreads();
    }

    // A crashed collector kills the whole job: nobody finalizes. Forked
    // workers learn of the death from the abort broadcast.
    if (Shared.Killed.load(std::memory_order_relaxed) ||
        Comm.abortRequested())
      return;

    sendSubtotal(TagFinal);

    if (Rank == 0) {
      // Keep collecting until every rank's final snapshot has arrived, or
      // — with a worker deadline configured — until the silence lasts long
      // enough to declare the stragglers dead and finish degraded over the
      // survivors (still a correct eq. 5 average, just over fewer ranks).
      int64_t LastProgressNanos = Time.nowNanos();
      while (Collector.FinalsOutstanding > 0 &&
             !Shared.Killed.load(std::memory_order_relaxed)) {
        if (std::optional<Message> Incoming =
                Comm.receiveWait(-1, /*TimeoutNanos=*/2'000'000, &Time)) {
          handleMessage(*Incoming);
          LastProgressNanos = Time.nowNanos();
        } else if (Config.WorkerDeadlineNanos > 0 &&
                   Time.nowNanos() - LastProgressNanos >=
                       Config.WorkerDeadlineNanos) {
          for (int Straggler = 0; Straggler < RankCount; ++Straggler) {
            if (Collector.FinalReceived[size_t(Straggler)])
              continue;
            Collector.FinalReceived[size_t(Straggler)] = true;
            --Collector.FinalsOutstanding;
            Collector.DeadWorkers.push_back(Straggler);
            DeadWorkersCounter.add();
            if (Trace)
              Trace->instantAt("runner.dead_worker", Straggler,
                               Time.nowNanos());
            Comm.markDead(Straggler);
          }
        }
        // Periodic save-points continue while stragglers finish.
        const int64_t Now = Time.nowNanos();
        if (Config.AveragePeriodNanos > 0 &&
            Now - Collector.LastSaveNanos >= Config.AveragePeriodNanos)
          savePoint(Now);
      }
      if (Shared.Killed.load(std::memory_order_relaxed))
        return;
      savePoint(Time.nowNanos(), /*IsFinal=*/true); // covers everything
      if (Shared.Killed.load(std::memory_order_relaxed))
        return;

      const MomentSnapshot Merged = Collector.mergeAll(Base);
      const RunLogInfo Log = buildLog(Merged, Time.nowNanos());
      Report.TotalSampleVolume = Log.TotalSampleVolume;
      Report.NewSampleVolume = Log.NewSampleVolume;
      Report.MeanRealizationSeconds = Log.MeanRealizationSeconds;
      Report.ElapsedSeconds = Log.ElapsedSeconds;
      Report.MaxAbsoluteError = Log.MaxAbsoluteError;
      Report.MaxRelativeErrorPercent = Log.MaxRelativeErrorPercent;
      Report.MaxVariance = Log.MaxVariance;
      Report.StoppedOnErrorTarget =
          Shared.StoppedOnErrorTarget.load(std::memory_order_relaxed);
      Report.StoppedOnTimeLimit =
          Shared.StoppedOnTimeLimit.load(std::memory_order_relaxed);
      Report.PerProcessorVolumes.clear();
      for (size_t RankIndex = 0; RankIndex < size_t(RankCount); ++RankIndex)
        Report.PerProcessorVolumes.push_back(
            Collector.HaveSnapshot[RankIndex]
                ? Collector.LatestFromRank[RankIndex].Moments.sampleVolume()
                : 0);
    }
  };

  EngineOptions Hosting;
  Hosting.Metrics = &Registry;
  if (Injector) {
    // The transports know nothing of fault policy: adapt the injector's
    // verdicts onto the mpsim hook type here. Both backends consult the
    // hook at the same protocol points, so a deterministic plan replays
    // the same per-source fault sequence over threads and sockets.
    Hosting.FaultHook = [Injector](int Source, int Destination, int Tag) {
      const fault::MessageDecision Decision =
          Injector->onSendAttempt(Source, Destination, Tag);
      SendFault Verdict;
      switch (Decision.Action) {
      case fault::MessageAction::Deliver:
        Verdict.Act = SendFault::Action::Deliver;
        break;
      case fault::MessageAction::Drop:
        Verdict.Act = SendFault::Action::Drop;
        break;
      case fault::MessageAction::Duplicate:
        Verdict.Act = SendFault::Action::Duplicate;
        break;
      case fault::MessageAction::Delay:
        Verdict.Act = SendFault::Action::Delay;
        Verdict.DelayNanos = Decision.DelayNanos;
        break;
      case fault::MessageAction::FailSend:
        Verdict.Act = SendFault::Action::Fail;
        break;
      }
      return Verdict;
    };
    Hosting.FaultClock = &Time;
  }
  Result<EngineReport> Hosted =
      runEngine(Config.Transport, RankCount, body, Hosting);

  // Wind the background checkpoint writer down on every path. A simulated
  // collector death abandons the queue — whatever was still queued is
  // lost, exactly as a SIGKILL would lose it — while a normal finish
  // drains it and surfaces the first commit error.
  if (AsyncWriter) {
    if (Shared.Killed.load(std::memory_order_relaxed)) {
      AsyncWriter->abandon();
    } else if (Status Stopped = AsyncWriter->stop();
               !Stopped && CollectorFailure.isOk()) {
      CollectorFailure = Stopped;
    }
    Report.CoalescedCheckpoints = AsyncWriter->coalescedCount();
  }

  if (!Hosted)
    return Hosted.status();
  const EngineReport &Fleet = Hosted.value();

  // Filled here rather than in the rank-0 epilogue so a run killed by an
  // injected crash still reports how many saves landed before it died.
  // Stop flags and failed-send counts OR/sum in the engine's view: forked
  // workers report over the wire what thread ranks wrote into Shared.
  Report.SavePointCount = Collector.SavePointCount;
  Report.FailedSends = Shared.FailedSends.load(std::memory_order_relaxed) +
                       Fleet.ChildFailedSends;
  Report.StoppedOnTimeLimit |= Fleet.StopOnTimeLimit;
  Report.StoppedOnErrorTarget |= Fleet.StopOnErrorTarget;
  Report.ProcessRanks = Fleet.Ranks;
  Report.DeadWorkers = Collector.DeadWorkers;
  std::sort(Report.DeadWorkers.begin(), Report.DeadWorkers.end());
  Report.Degraded = !Report.DeadWorkers.empty() || Report.FailedSends > 0;
  Report.SimulatedCrash = Shared.Killed.load(std::memory_order_relaxed);
  Report.ResumedFromBackup = ResumedFromBackup;
  Report.RestoredFromShards = RestoredFromShards;
  Report.RngBackendName = rngBackendName(Config.RngBackend);

  Registry.gauge("runner.elapsed_seconds").set(Report.ElapsedSeconds);
  Report.Metrics = Registry.snapshot();
  if (Status Written = writeFileAtomic(Store.metricsPath(),
                                       Report.Metrics.toFileContents());
      !Written && CollectorFailure.isOk())
    CollectorFailure = Written;
  if (Trace)
    if (Status Written = writeFileAtomic(Store.tracePath(), Trace->toJson());
        !Written && CollectorFailure.isOk())
      CollectorFailure = Written;

  if (!CollectorFailure.isOk())
    return CollectorFailure;
  return Report;
}

} // namespace parmonc
